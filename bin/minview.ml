(* minview: derive and exercise minimal auxiliary views for GPSJ views.

   `minview derive schema.sql`   — print derivations for every CREATE VIEW
   `minview dot schema.sql`      — print the extended join graphs in DOT
   `minview simulate schema.sql changes.sql`
                                 — load, register, ingest, print views
   `minview recover state-dir`   — rebuild a durable warehouse after a crash
   `minview audit state-dir`     — check maintained views against recomputation
   `minview fsck state-dir`      — read-only integrity check (exit 0/4/5)
   `minview repair state-dir`    — quarantine whatever does not verify
   `minview serve schema.sql`    — line-protocol query server over read epochs
   `minview demo`                — the paper's running example end to end *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_script path =
  let db = Relational.Database.create () in
  let outcomes = Sqlfront.Elaborate.run_script db (read_file path) in
  (db, Sqlfront.Elaborate.views outcomes)

let with_errors f =
  try
    f ();
    0
  with
  | Sqlfront.Parser.Error m | Sqlfront.Elaborate.Error m ->
    Printf.eprintf "SQL error: %s\n" m;
    1
  | Sqlfront.Lexer.Error { pos; message } ->
    Printf.eprintf "lex error at offset %d: %s\n" pos message;
    1
  | Algebra.View.Invalid m ->
    Printf.eprintf "invalid view: %s\n" m;
    1
  | Relational.Database.Violation m ->
    Printf.eprintf "constraint violation: %s\n" m;
    1
  | Warehouse.Error { kind; detail } ->
    Printf.eprintf "warehouse error [%s]: %s\n" (Warehouse.kind_label kind)
      detail;
    1
  | Sys_error m ->
    Printf.eprintf "i/o error: %s\n" m;
    1
  | Maintenance.Faults.Crash p ->
    (* fault-injection harness: report the simulated crash distinctly so
       scripts can tell it from a real failure *)
    Printf.eprintf "fault injected: simulated crash at %s\n"
      (Maintenance.Faults.to_string p);
    3

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ]
        ~doc:"Enable debug logging (the mindetail.* log sources).")

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let setup_term = Term.(const setup_logs $ verbose_arg)

let script_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"SCHEMA.SQL"
        ~doc:"SQL script with CREATE TABLE / INSERT / CREATE VIEW statements.")

let derive_cmd =
  let run script =
    with_errors (fun () ->
        let db, views = load_script script in
        if views = [] then prerr_endline "warning: script defines no views";
        List.iter
          (fun v ->
            print_string (Mindetail.Explain.report (Mindetail.Derive.derive db v));
            print_newline ())
          views)
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:
         "Run Algorithm 3.2 on every view in the script and print the \
          extended join graph, Need sets and minimal auxiliary views.")
    Term.(const run $ script_arg)

let dot_cmd =
  let run script =
    with_errors (fun () ->
        let db, views = load_script script in
        List.iter
          (fun v ->
            print_string
              (Mindetail.Explain.join_graph_dot
                 (Mindetail.Derive.derive db v).Mindetail.Derive.graph))
          views)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the extended join graphs in Graphviz DOT form.")
    Term.(const run $ script_arg)

let changes_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"CHANGES.SQL"
        ~doc:"SQL script of INSERT/DELETE/UPDATE statements to ingest.")

let strategy_arg =
  Arg.(
    value
    & opt (enum [ ("minimal", Warehouse.Minimal);
                  ("psj", Warehouse.Psj);
                  ("replicate", Warehouse.Replicate) ])
        Warehouse.Minimal
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:"Detail-data strategy: $(b,minimal), $(b,psj) or $(b,replicate).")

let print_view wh name =
  let cols, rel = Warehouse.query wh name in
  Printf.printf "-- %s --\n%s" name
    (Relational.Table_printer.render_relation ~columns:cols rel)

let print_dead_letters wh =
  match Warehouse.dead_letters wh with
  | [] -> ()
  | dead ->
    Printf.printf "%d change(s) in the dead-letter queue:\n" (List.length dead);
    List.iter
      (fun r -> Format.printf "  %a@." Relational.Delta.pp_rejection r)
      dead

let state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state" ] ~docv:"DIR"
        ~doc:
          "Attach the warehouse to a durable state directory: accepted \
           batches are write-ahead logged there and $(b,minview recover) \
           rebuilds the warehouse after a crash.")

let simulate_cmd =
  let run () script changes strategy state =
    with_errors (fun () ->
        let db, views = load_script script in
        let wh = Warehouse.create db in
        List.iter (Warehouse.add_view ~strategy wh) views;
        Option.iter (fun dir -> Warehouse.attach wh ~dir) state;
        let outcomes = Sqlfront.Elaborate.run_script db (read_file changes) in
        let r = Warehouse.ingest_report wh (Sqlfront.Elaborate.changes outcomes) in
        if r.Warehouse.rejected <> [] then print_dead_letters wh;
        List.iter (print_view wh) (Warehouse.view_names wh);
        print_newline ();
        print_string (Warehouse.report wh);
        Warehouse.close wh)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Load the schema script, register its views, ingest the change \
          script without re-reading base tables, and print the maintained \
          views plus the detail-data report.")
    Term.(const run $ setup_term $ script_arg $ changes_arg $ strategy_arg
          $ state_arg)

let reconstruct_cmd =
  let run script =
    with_errors (fun () ->
        let db, views = load_script script in
        List.iter
          (fun v ->
            let d = Mindetail.Derive.derive db v in
            match Mindetail.Reconstruct.to_sql d with
            | sql -> print_endline (sql ^ "\n")
            | exception Mindetail.Reconstruct.Not_reconstructible why ->
              Printf.printf "-- %s: %s\n\n" v.Algebra.View.name why)
          views)
  in
  Cmd.v
    (Cmd.info "reconstruct"
       ~doc:
         "Print, for every view in the script, the SQL query that rebuilds \
          it from its minimal auxiliary views (Section 3.2's rewriting).")
    Term.(const run $ script_arg)

let sharing_cmd =
  let run script =
    with_errors (fun () ->
        let db, views = load_script script in
        let named =
          List.map (fun v -> (v.Algebra.View.name, Mindetail.Derive.derive db v)) views
        in
        print_string (Mindetail.Sharing.report named))
  in
  Cmd.v
    (Cmd.info "sharing"
       ~doc:
         "Analyze which auxiliary views can be shared across the script's \
          summary tables.")
    Term.(const run $ script_arg)

let verify_cmd =
  let changes_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "changes" ] ~docv:"CHANGES.SQL"
          ~doc:
            "SQL change script to ingest; without it a random legal stream \
             of $(b,--n) changes is generated.")
  in
  let n_arg =
    Arg.(
      value & opt int 500
      & info [ "n" ] ~docv:"N" ~doc:"Size of the generated change stream.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the generated stream.")
  in
  let run script changes n seed =
    with_errors (fun () ->
        let db, views = load_script script in
        let wh = Warehouse.create db in
        List.iter (Warehouse.add_view wh) views;
        let deltas =
          match changes with
          | Some file ->
            Sqlfront.Elaborate.changes
              (Sqlfront.Elaborate.run_script db (read_file file))
          | None ->
            Workload.Delta_gen.stream (Workload.Prng.create seed) db ~n
        in
        Warehouse.ingest wh deltas;
        let failures = ref 0 in
        List.iter
          (fun v ->
            let name = v.Algebra.View.name in
            let _, got = Warehouse.query wh name in
            let expected = Algebra.Eval.eval db v in
            let ok = Relational.Relation.equal got expected in
            if not ok then incr failures;
            Printf.printf "%-24s %s\n" name (if ok then "OK" else "MISMATCH"))
          views;
        Printf.printf "%d change(s) ingested, %d view(s), %d failure(s)\n"
          (List.length deltas) (List.length views) !failures;
        if !failures > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Self-maintenance check: load the schema, register its views, \
          ingest a change stream, and compare every maintained view against \
          recomputation from the (evolved) base tables.")
    Term.(const run $ script_arg $ changes_opt $ n_arg $ seed_arg)

let dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"STATE_DIR"
        ~doc:
          "Warehouse state directory (snapshot.bin + wal.bin), as written by \
           $(b,--state).")

let recover_cmd =
  let checkpoint_flag =
    Arg.(
      value & flag
      & info [ "checkpoint" ]
          ~doc:
            "Checkpoint the recovered state before exiting: the replayed WAL \
             is archived into the generation chain and the next recovery \
             starts from the fresh snapshot.")
  in
  let run () dir checkpoint =
    with_errors (fun () ->
        let wh = Warehouse.recover ~dir in
        Printf.printf "recovered %d view(s) at batch %d from %s\n"
          (List.length (Warehouse.view_names wh))
          (Warehouse.ingested_batches wh)
          dir;
        print_dead_letters wh;
        List.iter (print_view wh) (Warehouse.view_names wh);
        if checkpoint then Warehouse.checkpoint wh;
        Warehouse.close wh)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild a durable warehouse from its state directory — latest \
          snapshot plus write-ahead-log replay — and print the recovered \
          views. With $(b,--checkpoint), snapshot the recovered state so \
          the replayed log is archived into the generation chain.")
    Term.(const run $ setup_term $ dir_arg $ checkpoint_flag)

(* fsck/repair exit codes: 0 clean (or nothing to do), 4 damage found
   (fsck) / damage repaired (repair), 5 unrecoverable — no snapshot
   verifies, 1 operational error. Distinct from the generic codes so
   operator scripts can branch on the outcome. *)
let with_state_errors f =
  try f () with
  | Warehouse.Error { kind; detail } ->
    Printf.eprintf "warehouse error [%s]: %s\n" (Warehouse.kind_label kind)
      detail;
    1
  | Sys_error m ->
    Printf.eprintf "i/o error: %s\n" m;
    1

let fsck_cmd =
  let run () dir =
    with_state_errors (fun () ->
        let report = Warehouse.fsck ~dir in
        List.iter
          (fun (e : Warehouse.fsck_entry) ->
            Printf.printf "%-36s %s  %s\n" e.Warehouse.f_file
              (if e.Warehouse.f_ok then "ok     " else "DAMAGED")
              e.Warehouse.f_detail)
          report.Warehouse.fsck_entries;
        if report.Warehouse.fsck_clean then begin
          print_endline "state: clean";
          0
        end
        else if report.Warehouse.fsck_recoverable then begin
          print_endline
            "state: damaged but recoverable (run `minview repair` to \
             quarantine the damage)";
          4
        end
        else begin
          print_endline "state: unrecoverable (no snapshot verifies)";
          5
        end)
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Read-only integrity check of a warehouse state directory: verify \
          every snapshot (live and archived generations, CRC + decode) and \
          scan every WAL segment for torn writes and bit flips. Exit 0 if \
          clean, 4 if damaged but recoverable, 5 if no snapshot verifies, 1 \
          on operational errors.")
    Term.(const run $ setup_term $ dir_arg)

let repair_cmd =
  let run () dir =
    with_state_errors (fun () ->
        let r = Warehouse.repair ~dir in
        List.iter
          (fun (file, what) -> Printf.printf "%s: %s\n" file what)
          r.Warehouse.repair_actions;
        match (r.Warehouse.repair_actions, r.Warehouse.repair_recoverable) with
        | [], true ->
          print_endline "nothing to repair";
          0
        | actions, true ->
          Printf.printf "repaired: %d file(s) quarantined; `minview recover` \
                         will proceed\n"
            (List.length actions);
          4
        | _, false ->
          print_endline "unrepairable: no verifiable snapshot remains";
          5)
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Quarantine everything $(b,minview fsck) would flag: damaged WAL \
          tails are salvaged (bad bytes preserved in .quarantine files), \
          unverifiable snapshots and unreadable WAL files renamed aside, so \
          a subsequent $(b,minview recover) succeeds from what remains. \
          Never deletes data. Exit 0 if nothing to do, 4 if repairs were \
          made, 5 if no verifiable snapshot remains, 1 on operational \
          errors.")
    Term.(const run $ setup_term $ dir_arg)

let audit_cmd =
  let sample_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample" ] ~docv:"K"
          ~doc:
            "Drift-audit mode: instead of full recomputation, recompute \
             $(docv) evenly sampled groups per view from the retained \
             detail data and cross-check the maintained view.")
  in
  let run () dir sample =
    with_errors (fun () ->
        let wh = Warehouse.recover ~dir in
        let results =
          Warehouse.audit ?sample wh ~reference:(Warehouse.believed_source wh)
        in
        List.iter
          (fun (name, ok) ->
            Printf.printf "%-24s %s\n" name (if ok then "OK" else "MISMATCH"))
          results;
        (match sample with
        | Some k ->
          List.iter
            (fun (name, checked, divergences) ->
              Printf.printf
                "%-24s checked %d sampled group(s), %d divergence(s)\n" name
                checked divergences)
            (Warehouse.self_audit wh ~sample:k)
        | None -> ());
        let failures = List.filter (fun (_, ok) -> not ok) results in
        Printf.printf "%d batch(es) ingested, %d dead-letter(s), %d failure(s)\n"
          (Warehouse.ingested_batches wh)
          (List.length (Warehouse.dead_letters wh))
          (List.length failures);
        Warehouse.close wh;
        if failures <> [] then exit 1)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Recover a durable warehouse and compare every maintained view \
          against from-scratch recomputation over the believed source state \
          (or, with --sample, against sampled recomputation from its own \
          retained detail); exit non-zero on any mismatch.")
    Term.(const run $ setup_term $ dir_arg $ sample_opt)

(* --- telemetry: metrics / trace ----------------------------------------- *)

let changes_opt =
  Arg.(
    value
    & opt (some file) None
    & info [ "changes" ] ~docv:"CHANGES.SQL"
        ~doc:"SQL change script to ingest before reading the telemetry.")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Machine-readable output (one JSON object per line).")

let parallel_arg =
  Arg.(
    value & opt int 0
    & info [ "parallel" ] ~docv:"DOMAINS"
        ~doc:
          "Apply batches through a supervised shard-parallel pool of \
           $(docv) domains (0 or 1 = serial). A worker failure rolls the \
           batch back, re-applies it serially and degrades ingestion until \
           re-promotion — see the minview_warehouse_parallel_* metrics.")

(* Load, register, optionally ingest — the shared pipeline behind the
   telemetry verbs. *)
let run_pipeline script changes strategy parallel =
  let db, views = load_script script in
  let wh = Warehouse.create db in
  List.iter (Warehouse.add_view ~strategy wh) views;
  if parallel > 1 then
    Warehouse.set_parallel wh
      (Some (Maintenance.Shard.supervised ~domains:parallel ~deadline:10.));
  (match changes with
  | Some file ->
    let outcomes = Sqlfront.Elaborate.run_script db (read_file file) in
    ignore (Warehouse.ingest_report wh (Sqlfront.Elaborate.changes outcomes))
  | None -> ());
  wh

let gauge_fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let labels_fmt = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    ^ "}"

(* Deterministic dashboard: the compression table from the per-auxview
   gauges, then counters, gauges and histogram observation counts. Timing
   values (sums, minima, bucket spreads) are deliberately omitted — they
   vary run to run; use --json for the full dump. *)
let print_metrics_human () =
  let snaps = Telemetry.snapshot () in
  let dashboard_names =
    [
      "minview_aux_resident_rows"; "minview_aux_detail_rows";
      "minview_aux_compression_ratio";
    ]
  in
  let gauge_of name labels =
    List.find_map
      (fun (s : Telemetry.Metrics.snap) ->
        match s.Telemetry.Metrics.s_value with
        | Telemetry.Metrics.Gauge_v v
          when String.equal s.Telemetry.Metrics.s_name name
               && s.Telemetry.Metrics.s_labels = labels ->
          Some v
        | _ -> None)
      snaps
  in
  let aux_rows =
    List.filter_map
      (fun (s : Telemetry.Metrics.snap) ->
        if String.equal s.Telemetry.Metrics.s_name "minview_aux_resident_rows"
        then
          let labels = s.Telemetry.Metrics.s_labels in
          let get k = Option.value ~default:"?" (List.assoc_opt k labels) in
          let resident =
            match s.Telemetry.Metrics.s_value with
            | Telemetry.Metrics.Gauge_v v -> v
            | _ -> 0.
          in
          let detail =
            Option.value ~default:0.
              (gauge_of "minview_aux_detail_rows" labels)
          in
          let ratio =
            Option.value ~default:0.
              (gauge_of "minview_aux_compression_ratio" labels)
          in
          Some
            [
              get "view"; get "aux"; get "base"; gauge_fmt resident;
              gauge_fmt detail; gauge_fmt ratio;
            ]
        else None)
      snaps
  in
  if aux_rows <> [] then begin
    print_endline "== detail compression (live) ==";
    print_string
      (Relational.Table_printer.render
         ~header:
           [ "view"; "aux view"; "base"; "resident rows"; "detail rows";
             "ratio" ]
         aux_rows)
  end;
  print_endline "== counters ==";
  List.iter
    (fun (s : Telemetry.Metrics.snap) ->
      match s.Telemetry.Metrics.s_value with
      | Telemetry.Metrics.Counter_v v ->
        Printf.printf "%s%s %d\n" s.Telemetry.Metrics.s_name
          (labels_fmt s.Telemetry.Metrics.s_labels)
          v
      | _ -> ())
    snaps;
  print_endline "== gauges ==";
  List.iter
    (fun (s : Telemetry.Metrics.snap) ->
      match s.Telemetry.Metrics.s_value with
      | Telemetry.Metrics.Gauge_v v
        when not (List.mem s.Telemetry.Metrics.s_name dashboard_names) ->
        Printf.printf "%s%s %s\n" s.Telemetry.Metrics.s_name
          (labels_fmt s.Telemetry.Metrics.s_labels)
          (gauge_fmt v)
      | _ -> ())
    snaps;
  print_endline "== histograms (observation counts) ==";
  List.iter
    (fun (s : Telemetry.Metrics.snap) ->
      match s.Telemetry.Metrics.s_value with
      | Telemetry.Metrics.Histogram_v h ->
        let pct q =
          let v = Telemetry.Metrics.percentile h q in
          if Float.is_nan v then "-" else Printf.sprintf "%.3g" v
        in
        Printf.printf "%s%s %d p50=%s p95=%s p99=%s\n"
          s.Telemetry.Metrics.s_name
          (labels_fmt s.Telemetry.Metrics.s_labels)
          h.Telemetry.Metrics.h_count (pct 0.50) (pct 0.95) (pct 0.99)
      | _ -> ())
    snaps

let metrics_cmd =
  let prometheus_flag =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:"Prometheus text exposition instead of the dashboard.")
  in
  let run () script changes strategy parallel json prometheus =
    with_errors (fun () ->
        let wh = run_pipeline script changes strategy parallel in
        if json then print_endline (Telemetry.dump_json ())
        else if prometheus then print_string (Telemetry.to_prometheus ())
        else print_metrics_human ();
        Warehouse.close wh)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Load the schema, register its views, optionally ingest a change \
          script, then print the runtime telemetry: the live \
          detail-compression dashboard (resident vs. represented rows per \
          auxiliary view — the paper's 245 GB vs. 167 MB table, measured), \
          maintenance counters, and phase latency histograms.")
    Term.(
      const run $ setup_term $ script_arg $ changes_opt $ strategy_arg
      $ parallel_arg $ json_flag $ prometheus_flag)

let trace_cmd =
  let run () script changes strategy parallel json =
    with_errors (fun () ->
        let wh = run_pipeline script changes strategy parallel in
        let spans = Telemetry.Trace.recent () in
        if json then
          List.iter
            (fun s -> print_endline (Telemetry.Trace.span_to_json s))
            spans
        else
          List.iter
            (fun (s : Telemetry.Trace.span) ->
              Printf.printf "%s%s\n" s.Telemetry.Trace.name
                (match s.Telemetry.Trace.attrs with
                | [] -> ""
                | attrs ->
                  " "
                  ^ labels_fmt
                      (List.map (fun (k, v) -> (k, v)) attrs)))
            spans;
        Warehouse.close wh)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Load the schema, register its views, optionally ingest a change \
          script, then print the recorded pipeline spans (phase sequence; \
          --json adds timings as JSONL).")
    Term.(
      const run $ setup_term $ script_arg $ changes_opt $ strategy_arg
      $ parallel_arg $ json_flag)

(* --- workload profile ---------------------------------------------------- *)

(* Human rendering parses the same profile JSON the machine path emits, so
   the live-pipeline and --dir (persisted file) modes share one renderer. *)
let print_profile_human ~top raw =
  let module J = Telemetry.Json in
  let j =
    match J.parse raw with
    | Ok j -> j
    | Error m -> raise (Sys_error ("workload profile: " ^ m))
  in
  let fnum ?(default = 0.) node path =
    Option.value ~default (Option.bind (J.path path node) J.to_float)
  in
  let fstr ?(default = "?") node path =
    Option.value ~default (Option.bind (J.path path node) J.to_string)
  in
  let jlist node path =
    Option.value ~default:[] (Option.map J.to_list (J.path path node))
  in
  let count v = Printf.sprintf "%.0f" v in
  Printf.printf "== workload profile (schema %.0f, %.1fs observed) ==\n"
    (fnum j [ "schema" ])
    (fnum j [ "elapsed_s" ]);
  let views = jlist j [ "views" ] in
  if views = [] then print_endline "(no recorded workload)"
  else begin
    print_string
      (Relational.Table_printer.render
         ~header:
           [ "view"; "writes"; "reads"; "upd/read"; "hot-key share";
             "compaction" ]
         (List.map
            (fun vj ->
              [
                fstr vj [ "view" ];
                count (fnum vj [ "writes" ]);
                count
                  (fnum vj [ "reads"; "query" ]
                  +. fnum vj [ "reads"; "reconstruct" ]);
                Printf.sprintf "%.2f" (fnum vj [ "update_read_ratio" ]);
                Printf.sprintf "%.2f" (fnum vj [ "skew"; "hot_key_share" ]);
                Printf.sprintf "%.2f" (fnum vj [ "skew"; "compaction_ratio" ]);
              ])
            views));
    List.iter
      (fun vj ->
        let keys = jlist vj [ "hot_keys" ] in
        if keys <> [] then begin
          Printf.printf "== top keys: %s ==\n" (fstr vj [ "view" ]);
          print_string
            (Relational.Table_printer.render ~header:[ "key"; "est"; "err" ]
               (List.filteri
                  (fun i _ -> i < top)
                  (List.map
                     (fun kj ->
                       [
                         fstr kj [ "key" ]; count (fnum kj [ "est" ]);
                         count (fnum kj [ "err" ]);
                       ])
                     keys)))
        end)
      views
  end;
  let lag_count = fnum j [ "epoch_lag"; "count" ] in
  if lag_count > 0. then
    Printf.printf
      "== epoch lag (batches behind head) ==\n\
       reads %.0f p50=%.3g p95=%.3g p99=%.3g max=%.3g\n"
      lag_count
      (fnum j [ "epoch_lag"; "p50" ])
      (fnum j [ "epoch_lag"; "p95" ])
      (fnum j [ "epoch_lag"; "p99" ])
      (fnum j [ "epoch_lag"; "max" ]);
  let runs = fnum j [ "shards"; "runs" ] in
  if runs > 0. then begin
    Printf.printf "== shard heat (%.0f parallel dispatch(es)) ==\n" runs;
    let busy = jlist j [ "shards"; "busy_s" ] in
    let ops = jlist j [ "shards"; "ops" ] in
    let f v = Option.value ~default:0. (J.to_float v) in
    print_string
      (Relational.Table_printer.render ~header:[ "shard"; "busy_s"; "ops" ]
         (List.mapi
            (fun i b ->
              [
                string_of_int i;
                Printf.sprintf "%.4f" (f b);
                count (match List.nth_opt ops i with Some o -> f o | None -> 0.);
              ])
            busy));
    let recent = jlist j [ "shards"; "recent_imbalance" ] in
    if recent <> [] then
      Printf.printf "recent imbalance (max/mean busy): %s\n"
        (String.concat " "
           (List.map (fun v -> Printf.sprintf "%.2f" (f v)) recent))
  end

let profile_cmd =
  let script_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"SCHEMA.SQL"
          ~doc:
            "SQL script to load and profile; omit it and pass $(b,--dir) to \
             read a persisted profile instead.")
  in
  let dir_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"STATE_DIR"
          ~doc:
            "Read $(b,workload_profile.json) from this state directory (as \
             written by checkpoints and $(b,--state)) instead of running a \
             pipeline.")
  in
  let n_arg =
    Arg.(
      value & opt int 500
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Size of the generated change stream when no $(b,--changes) \
             script is given.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Seed of the generated stream.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Hot keys to print per view (human output).")
  in
  let run () script dir changes n seed strategy parallel state as_json top =
    with_errors (fun () ->
        let raw =
          match (dir, script) with
          | Some d, _ ->
            let path = Warehouse.workload_profile_path d in
            if not (Sys.file_exists path) then
              raise
                (Sys_error
                   (path
                  ^ ": no workload profile (checkpoint the warehouse, or run \
                     minview profile --state, first)"));
            read_file path
          | None, Some script ->
            let db, views = load_script script in
            let wh = Warehouse.create db in
            List.iter (Warehouse.add_view ~strategy wh) views;
            Option.iter (fun dir -> Warehouse.attach wh ~dir) state;
            if parallel > 1 then
              Warehouse.set_parallel wh
                (Some
                   (Maintenance.Shard.supervised ~domains:parallel
                      ~deadline:10.));
            let deltas =
              match changes with
              | Some file ->
                Sqlfront.Elaborate.changes
                  (Sqlfront.Elaborate.run_script db (read_file file))
              | None ->
                Workload.Delta_gen.stream (Workload.Prng.create seed) db ~n
            in
            ignore (Warehouse.ingest_report wh deltas);
            let raw = Telemetry.Workload.profile_json () in
            if state <> None then ignore (Warehouse.write_workload_profile wh);
            Warehouse.close wh;
            raw
          | None, None ->
            raise
              (Sys_error
                 "profile: pass SCHEMA.SQL to run a pipeline, or --dir to \
                  read a persisted profile")
        in
        if as_json then print_endline (String.trim raw)
        else print_profile_human ~top raw)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "The workload profile: per-view read/write rates, top-k hot group \
          keys with sketch error bounds, update/read ratio, skew \
          coefficient, and the shard heat map. Runs a pipeline (generated \
          or scripted changes) or, with $(b,--dir), prints the profile a \
          checkpoint persisted.")
    Term.(
      const run $ setup_term $ script_opt $ dir_opt $ changes_opt $ n_arg
      $ seed_arg $ strategy_arg $ parallel_arg $ state_arg $ json_flag
      $ top_arg)

(* --- lineage / attribution / explain ------------------------------------ *)

let lineage_cmd =
  let txn_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "txn" ] ~docv:"SEQ"
          ~doc:"Only the record of WAL sequence number $(docv).")
  in
  let table_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "table" ] ~docv:"TABLE"
          ~doc:"Only records whose batch touched base table $(docv).")
  in
  let run () script changes strategy parallel txn table json =
    with_errors (fun () ->
        let wh = run_pipeline script changes strategy parallel in
        let records = Telemetry.Lineage.recent ?txn ?table () in
        if records = [] then
          print_endline
            "no lineage records (nothing ingested, filtered out, or \
             TELEMETRY=off)"
        else
          List.iter
            (fun r ->
              if json then print_endline (Telemetry.Lineage.record_to_json r)
              else print_string (Mindetail.Explain.lineage_record r))
            records;
        Warehouse.close wh)
  in
  Cmd.v
    (Cmd.info "lineage"
       ~doc:
         "Load the schema, register its views, optionally ingest a change \
          script, then print the per-transaction lineage records: which \
          base-table deltas each committed batch carried and how they \
          flowed through netting, the auxiliary views (resident vs. detail \
          vs. folded rows) and the view groups.")
    Term.(
      const run $ setup_term $ script_arg $ changes_opt $ strategy_arg
      $ parallel_arg $ txn_opt $ table_opt $ json_flag)

let attribute_cmd =
  let run () script changes strategy parallel json =
    with_errors (fun () ->
        let wh = run_pipeline script changes strategy parallel in
        let attrs = Warehouse.attribution wh in
        (* exact resident bytes per auxview from the columnar byte
           accounting; auxviews absent from the lookup render the
           bytes-per-field estimate instead *)
        let all_measured = Warehouse.measured_bytes wh in
        let measured_for view name =
          Option.bind (List.assoc_opt view all_measured) (List.assoc_opt name)
        in
        if attrs = [] then
          print_endline "no derivation-backed views to attribute";
        if json then
          List.iter
            (fun (view, l) ->
              List.iter
                (fun a ->
                  print_endline
                    (Mindetail.Attribution.to_json
                       ~measured:(measured_for view) ~view a))
                l)
            attrs
        else begin
          List.iter
            (fun (view, l) ->
              print_string
                (Mindetail.Attribution.render ~measured:(measured_for view)
                   ~view l);
              print_newline ())
            attrs;
          let recs = Warehouse.reconcile_attribution wh in
          if recs <> [] then begin
            print_endline
              "reconciliation against live maintenance gauges (+-1 row):";
            List.iter
              (fun (r : Warehouse.reconciliation) ->
                Printf.printf
                  "  %s/%s: resident %d vs %d, detail %d vs %d  %s\n"
                  r.Warehouse.rec_view r.Warehouse.rec_aux
                  r.Warehouse.measured_resident r.Warehouse.gauge_resident
                  r.Warehouse.measured_detail r.Warehouse.gauge_detail
                  (if r.Warehouse.consistent then "OK" else "MISMATCH"))
              recs;
            if List.exists (fun r -> not r.Warehouse.consistent) recs then begin
              Warehouse.close wh;
              exit 1
            end
          end
        end;
        Warehouse.close wh)
  in
  Cmd.v
    (Cmd.info "attribute"
       ~doc:
         "Load the schema, register its views, optionally ingest a change \
          script, then print the paper's savings-attribution table: for \
          every auxiliary view, the bytes removed by local selection, local \
          projection, join reduction, duplicate compression and whole-view \
          elimination, reconciled (+-1 row) against the live maintenance \
          gauges; exit non-zero on a reconciliation mismatch.")
    Term.(
      const run $ setup_term $ script_arg $ changes_opt $ strategy_arg
      $ parallel_arg $ json_flag)

let explain_cmd =
  let dot_flag =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Graphviz DOT of the extended join graphs instead of the \
             textual report.")
  in
  let run script dot =
    with_errors (fun () ->
        let db, views = load_script script in
        if views = [] then prerr_endline "warning: script defines no views";
        List.iter
          (fun v ->
            let d = Mindetail.Derive.derive db v in
            if dot then
              print_string
                (Mindetail.Explain.join_graph_dot d.Mindetail.Derive.graph)
            else begin
              print_string (Mindetail.Explain.report d);
              print_newline ()
            end)
          views)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain every view in the script: the full derivation report, or \
          with $(b,--dot) the extended join graphs in Graphviz DOT form.")
    Term.(const run $ script_arg $ dot_flag)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 7171
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "TCP port to listen on (loopback only); $(b,0) picks an \
             ephemeral port, printed on startup.")
  in
  let simulate_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "simulate" ] ~docv:"N"
          ~doc:
            "Live-ingest demo: between polls, generate and ingest a batch \
             of $(docv) random valid source changes, so clients can watch \
             epochs advance ($(b,PIN)/$(b,EPOCH)).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for $(b,--simulate).")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Also export observability over HTTP on 127.0.0.1:$(docv) \
             ($(b,0) picks an ephemeral port, printed on startup): \
             $(b,GET /metrics) (Prometheus text, runtime GC and off-heap \
             gauges included), $(b,GET /healthz) (200/503 with JSON \
             checks) and $(b,GET /profile). The exporter runs on its own \
             domain; runtime gauges are sampled on every committed batch.")
  in
  let slowlog_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slowlog" ] ~docv:"PATH"
          ~doc:
            "Append a JSON line per slow QUERY/RECONSTRUCT to $(docv) \
             (size-capped, rotated shift-style). Inspect with $(b,minview \
             slowlog).")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 100.
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Slow-query threshold in milliseconds (default 100).")
  in
  let run () script port strategy simulate seed metrics_port slowlog slow_ms =
    with_errors (fun () ->
        let db, views = load_script script in
        if views = [] then prerr_endline "warning: script defines no views";
        let wh = Warehouse.create db in
        List.iter (Warehouse.add_view ~strategy wh) views;
        let sink =
          Option.map
            (fun path ->
              Telemetry.Jsonl_sink.open_ ~max_bytes:(4 * 1024 * 1024) ~keep:4
                path)
            slowlog
        in
        let srv =
          Serve.create ?slowlog:sink ~slow_threshold_s:(slow_ms /. 1000.)
            ~port wh
        in
        (* graceful shutdown: SIGINT/SIGTERM ask the loop to stop after the
           current poll (one atomic store, async-signal-safe) *)
        let stop _ = Serve.request_stop srv in
        ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
        ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop));
        Printf.printf "minview serve: listening on 127.0.0.1:%d (views: %s)\n%!"
          (Serve.port srv)
          (match Warehouse.view_names wh with
          | [] -> "none"
          | names -> String.concat ", " names);
        (* the performance observatory: runtime gauges sampled on every
           commit (and primed once now, before any batch lands), off-heap
           bytes sourced from this warehouse, the exporter on its own
           domain so scrapes never block the serving loop *)
        let exporter =
          Option.map
            (fun mport ->
              let exp =
                Telemetry.Http_exporter.create ~port:mport
                  ~health:(fun () -> Warehouse.health wh)
                  ()
              in
              Warehouse.publish_offheap wh;
              Telemetry.Runtime.set_auto_sample true;
              Telemetry.Runtime.sample ();
              Printf.printf
                "minview serve: exporting metrics on 127.0.0.1:%d\n%!"
                (Telemetry.Http_exporter.port exp);
              (exp, Domain.spawn (fun () -> Telemetry.Http_exporter.run exp)))
            metrics_port
        in
        let tick =
          Option.map
            (fun n ->
              let rng = Workload.Prng.create seed in
              fun () -> Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n))
            simulate
        in
        Serve.run ?tick srv;
        Option.iter
          (fun (exp, dom) ->
            Telemetry.Http_exporter.request_stop exp;
            Domain.join dom)
          exporter;
        Option.iter Telemetry.Jsonl_sink.close sink;
        Printf.printf "minview serve: shut down after %d request(s)\n%!"
          (Serve.requests srv))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the warehouse over a TCP line protocol: $(b,QUERY) / \
          $(b,RECONSTRUCT) / $(b,METRICS) / $(b,PING), with per-connection \
          read epochs ($(b,PIN)/$(b,EPOCH)) and graceful shutdown \
          ($(b,SHUTDOWN), SIGINT or SIGTERM). Reads are served from \
          published read epochs, so they never block ingestion. With \
          $(b,--metrics-port) the performance observatory is exported over \
          HTTP next to the serving loop; with $(b,--slowlog) slow queries \
          are journaled for $(b,minview slowlog).")
    Term.(
      const run $ setup_term $ script_arg $ port_arg $ strategy_arg
      $ simulate_arg $ seed_arg $ metrics_port_arg $ slowlog_arg $ slow_ms_arg)

let export_cmd =
  let port_arg =
    Arg.(
      value & opt int 9171
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "HTTP port to export on (loopback only); $(b,0) picks an \
             ephemeral port, printed on startup.")
  in
  let run () script changes strategy port =
    with_errors (fun () ->
        let wh = run_pipeline script changes strategy 0 in
        let exp =
          Telemetry.Http_exporter.create ~port
            ~health:(fun () -> Warehouse.health wh)
            ()
        in
        Warehouse.publish_offheap wh;
        (* no writer domain here: leave auto-sampling off so every scrape
           takes a fresh runtime sample *)
        let stop _ = Telemetry.Http_exporter.request_stop exp in
        ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
        ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop));
        Printf.printf "minview export: serving metrics on 127.0.0.1:%d\n%!"
          (Telemetry.Http_exporter.port exp);
        Telemetry.Http_exporter.run exp;
        Printf.printf "minview export: shut down after %d request(s)\n%!"
          (Telemetry.Http_exporter.requests exp);
        Warehouse.close wh)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Load the schema, register its views, optionally ingest a change \
          script, then export the telemetry over HTTP until interrupted: \
          $(b,GET /metrics) (Prometheus text exposition), $(b,GET /healthz) \
          and $(b,GET /profile) on 127.0.0.1.")
    Term.(
      const run $ setup_term $ script_arg $ changes_opt $ strategy_arg
      $ port_arg)

let slowlog_cmd =
  let path_arg =
    Arg.(
      value
      & pos 0 string "slowlog.jsonl"
      & info [] ~docv:"PATH"
          ~doc:"Slowlog file written by $(b,minview serve --slowlog).")
  in
  let run () path json =
    with_errors (fun () ->
        let lines =
          if not (Sys.file_exists path) then
            raise
              (Sys_error (Printf.sprintf "%s: no such slowlog (nothing slow \
                                          yet, or wrong path?)" path))
          else begin
            let ic = open_in path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let rec go acc =
                  match input_line ic with
                  | l -> go (if String.trim l = "" then acc else l :: acc)
                  | exception End_of_file -> List.rev acc
                in
                go [])
          end
        in
        if json then List.iter print_endline lines
        else begin
          let module J = Telemetry.Json in
          let field j k = Option.bind (J.member k j) J.to_float in
          let str j k = Option.bind (J.member k j) J.to_string in
          let rows =
            List.filter_map
              (fun l ->
                match J.parse l with
                | Error _ -> None
                | Ok j ->
                  let num k =
                    match field j k with
                    | Some f when Float.is_integer f ->
                      Printf.sprintf "%.0f" f
                    | Some f -> Printf.sprintf "%g" f
                    | None -> "?"
                  in
                  Some
                    [
                      (match field j "ts" with
                      | Some ts -> Printf.sprintf "%.3f" ts
                      | None -> "?");
                      Option.value ~default:"?" (str j "verb");
                      Option.value ~default:"?" (str j "view");
                      num "epoch"; num "rows";
                      (match field j "dur_s" with
                      | Some d -> Printf.sprintf "%.1f" (d *. 1000.)
                      | None -> "?");
                    ])
              lines
          in
          Printf.printf "%d slow quer%s in %s\n" (List.length rows)
            (if List.length rows = 1 then "y" else "ies")
            path;
          if rows <> [] then
            print_string
              (Relational.Table_printer.render
                 ~header:[ "ts"; "verb"; "view"; "epoch"; "rows"; "ms" ]
                 rows)
        end)
  in
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:
         "Inspect a slow-query log written by $(b,minview serve --slowlog): \
          a human table by default, the raw JSON lines with $(b,--json). \
          Rotated generations (PATH.1, PATH.2, ...) hold older entries.")
    Term.(const run $ setup_term $ path_arg $ json_flag)

let demo_cmd =
  let run () =
    with_errors (fun () ->
        let db = Relational.Database.create () in
        let schema = {|
          CREATE TABLE time (id INT PRIMARY KEY, day INT, month INT, year INT);
          CREATE TABLE product (id INT PRIMARY KEY, brand TEXT UPDATABLE,
                                category TEXT);
          CREATE TABLE store (id INT PRIMARY KEY, street_address TEXT,
                              city TEXT, country TEXT, manager TEXT);
          CREATE TABLE sale (id INT PRIMARY KEY, timeid INT REFERENCES time,
                             productid INT REFERENCES product,
                             storeid INT REFERENCES store,
                             price INT UPDATABLE);
        |} in
        ignore (Sqlfront.Elaborate.run_script db schema);
        let seed = {|
          INSERT INTO time VALUES (1, 1, 1, 1997);
          INSERT INTO time VALUES (2, 15, 1, 1997);
          INSERT INTO time VALUES (3, 40, 2, 1997);
          INSERT INTO time VALUES (4, 1, 1, 1996);
          INSERT INTO product VALUES (1, 'acme', 'food');
          INSERT INTO product VALUES (2, 'apex', 'food');
          INSERT INTO store VALUES (1, '1 Main St', 'Aalborg', 'DK', 'm1');
          INSERT INTO sale VALUES (1, 1, 1, 1, 10);
          INSERT INTO sale VALUES (2, 1, 1, 1, 10);
          INSERT INTO sale VALUES (3, 2, 2, 1, 25);
          INSERT INTO sale VALUES (4, 3, 2, 1, 30);
          INSERT INTO sale VALUES (5, 4, 1, 1, 99);
        |} in
        ignore (Sqlfront.Elaborate.run_script db seed);
        let wh = Warehouse.create db in
        Warehouse.add_view_sql wh
          {|CREATE VIEW product_sales AS
            SELECT time.month, SUM(price) AS TotalPrice, COUNT(*) AS TotalCount,
                   COUNT(DISTINCT brand) AS DifferentBrands
            FROM sale, time, product
            WHERE time.year = 1997 AND sale.timeid = time.id
              AND sale.productid = product.id
            GROUP BY time.month;|};
        print_string (Warehouse.report wh);
        print_view wh "product_sales";
        print_endline "\ningesting: two sales inserted, one deleted, one price update";
        let changes =
          Sqlfront.Elaborate.run_script db
            {|INSERT INTO sale VALUES (6, 3, 1, 1, 50);
              INSERT INTO sale VALUES (7, 2, 2, 1, 5);
              DELETE FROM sale WHERE id = 2;
              UPDATE sale SET price = 12 WHERE id = 1;|}
          |> Sqlfront.Elaborate.changes
        in
        Warehouse.ingest wh changes;
        print_view wh "product_sales")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's running example end to end.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "minview" ~version:"1.0.0"
       ~doc:
         "Minimizing detail data in data warehouses: derive minimal \
          self-maintaining auxiliary views for GPSJ summary tables (Akinde, \
          Jensen & Böhlen, EDBT 1998).")
    [ derive_cmd; dot_cmd; explain_cmd; simulate_cmd; reconstruct_cmd;
      sharing_cmd; verify_cmd; recover_cmd; audit_cmd; fsck_cmd; repair_cmd;
      metrics_cmd; trace_cmd; profile_cmd; lineage_cmd; attribute_cmd;
      serve_cmd;
      export_cmd; slowlog_cmd; demo_cmd ]

let () =
  (* the fault-injection harness: MINVIEW_FAULT=<point>[:skip] arms a named
     crash point before any command runs *)
  (match Maintenance.Faults.arm_from_env () with
  | () -> ()
  | exception Invalid_argument m ->
    prerr_endline m;
    exit 2);
  (* TELEMETRY=off disables all metric collection and span recording *)
  Telemetry.configure_from_env ();
  exit (Cmd.eval' main)
