(** Minimal JSON reader for the repo's own machine output (bench result
    files, slowlog/lineage JSONL, telemetry dumps). Zero dependencies.

    Numbers are represented as [float] — our writers never emit integers
    outside the exact-double range. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error. *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val path : string list -> t -> t option
(** Nested {!member}: [path ["a"; "b"] j] is [j.a.b]. *)

val to_float : t -> float option
(** [Num] as-is; [Bool] as 0/1; everything else [None]. *)

val to_string : t -> string option

val to_list : t -> t list
(** Array elements, [[]] for non-arrays. *)
