(** Runtime profiling gauges: [Gc.quick_stat] counters and the columnar
    store's off-heap bytes, published under [minview_runtime_*].

    Registration is lazy (first {!sample}), so binaries that never sample
    keep their metric dumps unchanged. Two call paths feed the gauges:
    the warehouse commit hook ({!tick}, armed via {!set_auto_sample})
    samples from the writer domain on every published epoch, and a scrape
    ({!scrape_sample}) samples only when no commit hook is armed — OCaml 5
    reports allocation counters for the calling domain, so scrape-domain
    samples must not overwrite commit-time ones. *)

val sample : unit -> unit
(** Publish the current [Gc.quick_stat] (and off-heap bytes, when a
    source is registered) unconditionally. No-op when telemetry is
    disabled. *)

val tick : unit -> unit
(** {!sample} if auto-sampling is armed, else nothing — the per-commit
    hook. *)

val scrape_sample : unit -> unit
(** {!sample} if auto-sampling is {e not} armed, else nothing — the
    scrape-time hook (see the precedence rule above). *)

val set_auto_sample : bool -> unit
(** Arm/disarm the per-commit hook. Armed by [minview serve
    --metrics-port]; everything else leaves it off. *)

val auto_sample : unit -> bool

val set_offheap_source : (unit -> int) option -> unit
(** Register the off-heap byte source (the warehouse's summed columnar
    Bigarray payload). The thunk runs during {!sample} on the sampling
    domain and must therefore be safe there; exceptions it raises are
    swallowed. Process-global: the last registration wins. *)
