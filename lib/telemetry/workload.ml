(* Process-global workload registry. Cardinality is bounded the same way
   everywhere: at most [max_views] named accumulators, overflow shares
   "_other". The note_* paths touch only atomics and the caller's own
   sketch cell; everything string- or list-shaped happens on read. *)

let max_views = 64
let overflow_view = "_other"
let topk = 32
let hot_share_n = 8 (* top-N estimates summed into the skew coefficient *)
let ring_cap = 512
let max_shards = 64

type view_stats = {
  v_name : string;
  v_hot : Sketch.Space_saving.t;
  v_freq : Sketch.Count_min.t;
  v_writes : int Atomic.t; (* exact netted write weight, via flush_writes *)
  v_write_events : int Atomic.t; (* exact group-key touches, via flush_writes *)
  v_batches : int Atomic.t;
  v_deltas_in : int Atomic.t;
  v_netted : int Atomic.t;
  v_applied : int Atomic.t;
  v_reads_query : int Atomic.t;
  v_reads_reconstruct : int Atomic.t;
}

let views : (string, view_stats) Hashtbl.t = Hashtbl.create 16
let views_m = Mutex.create ()

(* Elapsed workload time: from the first recorded event, plus whatever a
   restored profile had already observed. *)
let first_event_s = ref 0.
let first_m = Mutex.create ()
let restored_elapsed_s = ref 0.

let mark_active () =
  if !first_event_s = 0. then begin
    Mutex.lock first_m;
    if !first_event_s = 0. then first_event_s := Metrics.now_s ();
    Mutex.unlock first_m
  end

let elapsed_s () =
  let live =
    match !first_event_s with 0. -> 0. | t0 -> Metrics.now_s () -. t0
  in
  live +. !restored_elapsed_s

(* Epoch-lag distribution, registered on first read so idle processes
   don't grow their metric dump. *)
let lag_hist = ref None

let get_lag_hist () =
  match !lag_hist with
  | Some h -> h
  | None ->
    Mutex.lock views_m;
    let h =
      match !lag_hist with
      | Some h -> h
      | None ->
        let h =
          Metrics.Histogram.make ~lo:1. ~factor:2. ~buckets:16
            ~help:"Epochs a serve read was pinned behind the published head"
            "minview_workload_epoch_lag_batches"
        in
        lag_hist := Some h;
        h
    in
    Mutex.unlock views_m;
    h

(* Shard heat: cumulative per-shard busy seconds and applied ops, plus a
   bounded ring of per-dispatch imbalance samples (max/mean busy) — the
   time series the scalar imbalance gauge cannot give. Updated once per
   batch, so a single mutex is cheap. *)
type shard_state = {
  sh_m : Mutex.t;
  mutable sh_runs : int;
  mutable sh_workers : int; (* worker count of the last dispatch *)
  sh_busy_s : float array;
  sh_ops : int array;
  sh_ring : float array;
  mutable sh_ring_pos : int;
  mutable sh_ring_len : int;
}

let shards =
  {
    sh_m = Mutex.create ();
    sh_runs = 0;
    sh_workers = 0;
    sh_busy_s = Array.make max_shards 0.;
    sh_ops = Array.make max_shards 0;
    sh_ring = Array.make ring_cap 0.;
    sh_ring_pos = 0;
    sh_ring_len = 0;
  }

let make_stats name =
  {
    v_name = name;
    v_hot = Sketch.Space_saving.create ~k:topk;
    v_freq = Sketch.Count_min.create ~depth:3 ~width:256 ();
    v_writes = Atomic.make 0;
    v_write_events = Atomic.make 0;
    v_batches = Atomic.make 0;
    v_deltas_in = Atomic.make 0;
    v_netted = Atomic.make 0;
    v_applied = Atomic.make 0;
    v_reads_query = Atomic.make 0;
    v_reads_reconstruct = Atomic.make 0;
  }

let view name =
  Mutex.lock views_m;
  let find_or_add name =
    match Hashtbl.find_opt views name with
    | Some vs -> vs
    | None ->
      let vs = make_stats name in
      Hashtbl.replace views name vs;
      vs
  in
  let vs =
    match Hashtbl.find_opt views name with
    | Some vs -> vs
    | None ->
      if Hashtbl.length views >= max_views then find_or_add overflow_view
      else find_or_add name
  in
  Mutex.unlock views_m;
  vs

let view_name vs = vs.v_name

let rec atomic_add a d =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (v + d)) then atomic_add a d

(* Sketch updates are sampled one write event in [1 lsl sample_shift],
   with the fed weight scaled back up so frequency estimates stay
   unbiased: the producer keeps its own plain event counter (single
   domain, no synchronization), feeds a sampled event through
   [note_hot_key] when [counter land sample_mask = 0], and pushes the
   exact write/event totals here once per batch with [flush_writes] — so
   the engine's per-tuple hot path touches nothing shared (the overhead
   gate budgets the whole telemetry layer at a few percent). *)
let sample_shift = 5
let sample_mask = (1 lsl sample_shift) - 1

let note_hot_key ?(weight = 1) vs ~hash ~label =
  if weight > 0 && Metrics.enabled () then begin
    let weight = weight lsl sample_shift in
    Sketch.Space_saving.touch vs.v_hot ~weight ~hash ~label;
    Sketch.Count_min.add vs.v_freq ~weight ~hash
  end

let flush_writes vs ~writes ~events =
  if (writes > 0 || events > 0) && Metrics.enabled () then begin
    mark_active ();
    atomic_add vs.v_writes writes;
    atomic_add vs.v_write_events events
  end

let note_batch vs ~deltas_in ~netted ~applied =
  if Metrics.enabled () then begin
    mark_active ();
    atomic_add vs.v_batches 1;
    atomic_add vs.v_deltas_in deltas_in;
    atomic_add vs.v_netted netted;
    atomic_add vs.v_applied applied
  end

let note_read vs ~verb ~lag =
  if Metrics.enabled () then begin
    mark_active ();
    (match verb with
    | `Query -> atomic_add vs.v_reads_query 1
    | `Reconstruct -> atomic_add vs.v_reads_reconstruct 1);
    Metrics.Histogram.observe (get_lag_hist ()) (float_of_int (max 0 lag))
  end

let note_shard_run ~workers ~busy =
  if Metrics.enabled () && workers > 0 then begin
    mark_active ();
    let s = shards in
    Mutex.lock s.sh_m;
    s.sh_runs <- s.sh_runs + 1;
    s.sh_workers <- workers;
    let total = ref 0. and hot = ref 0. in
    Array.iteri
      (fun i b ->
        if i < max_shards then s.sh_busy_s.(i) <- s.sh_busy_s.(i) +. b;
        total := !total +. b;
        if b > !hot then hot := b)
      busy;
    let mean = !total /. float_of_int (Array.length busy) in
    let imbalance = if mean > 0. then !hot /. mean else 1. in
    s.sh_ring.(s.sh_ring_pos) <- imbalance;
    s.sh_ring_pos <- (s.sh_ring_pos + 1) mod ring_cap;
    if s.sh_ring_len < ring_cap then s.sh_ring_len <- s.sh_ring_len + 1;
    Mutex.unlock s.sh_m
  end

let note_shard_ops ops =
  if Metrics.enabled () then begin
    let s = shards in
    Mutex.lock s.sh_m;
    Array.iteri
      (fun i n -> if i < max_shards && n > 0 then s.sh_ops.(i) <- s.sh_ops.(i) + n)
      ops;
    Mutex.unlock s.sh_m
  end

(* --- profile rendering --------------------------------------------------- *)

let profile_schema = 1

let fmt_f f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let sorted_views () =
  Mutex.lock views_m;
  let all = Hashtbl.fold (fun _ vs acc -> vs :: acc) views [] in
  Mutex.unlock views_m;
  List.sort (fun a b -> compare a.v_name b.v_name) all

let reads_total vs =
  Atomic.get vs.v_reads_query + Atomic.get vs.v_reads_reconstruct

(* Skew coefficient: share of the total stream held by the top few keys.
   Uniform streams over many keys sit near [hot_share_n / distinct]; zipf
   streams push it toward 1. *)
let hot_key_share vs =
  let total = Sketch.Space_saving.total vs.v_hot in
  if total = 0 then 0.
  else begin
    let top = Sketch.Space_saving.top ~n:hot_share_n vs.v_hot in
    let est =
      List.fold_left
        (fun acc (e : Sketch.Space_saving.entry) -> acc + e.e_est)
        0 top
    in
    Float.min 1. (float_of_int est /. float_of_int total)
  end

let compaction_ratio vs =
  let din = Atomic.get vs.v_deltas_in in
  if din = 0 then 1.
  else float_of_int (Atomic.get vs.v_netted) /. float_of_int din

let update_read_ratio vs =
  let w = Atomic.get vs.v_writes and r = reads_total vs in
  if r = 0 then float_of_int w else float_of_int w /. float_of_int r

let view_json vs =
  let b = Buffer.create 1024 in
  let el = elapsed_s () in
  let rate n = if el > 0. then float_of_int n /. el else 0. in
  Buffer.add_string b
    (Printf.sprintf
       "{\"view\":\"%s\",\"writes\":%d,\"write_events\":%d,\"batches\":%d,\"deltas_in\":%d,\"netted\":%d,\"applied\":%d,\"reads\":{\"query\":%d,\"reconstruct\":%d},\"write_rate_per_s\":%s,\"read_rate_per_s\":%s,\"update_read_ratio\":%s,\"skew\":{\"hot_key_share\":%s,\"compaction_ratio\":%s}"
       (Trace.json_escape vs.v_name)
       (Atomic.get vs.v_writes)
       (Atomic.get vs.v_write_events)
       (Atomic.get vs.v_batches)
       (Atomic.get vs.v_deltas_in)
       (Atomic.get vs.v_netted)
       (Atomic.get vs.v_applied)
       (Atomic.get vs.v_reads_query)
       (Atomic.get vs.v_reads_reconstruct)
       (fmt_f (rate (Atomic.get vs.v_writes)))
       (fmt_f (rate (reads_total vs)))
       (fmt_f (update_read_ratio vs))
       (fmt_f (hot_key_share vs))
       (fmt_f (compaction_ratio vs)));
  Buffer.add_string b ",\"hot_keys\":[";
  List.iteri
    (fun i (e : Sketch.Space_saving.entry) ->
      if i > 0 then Buffer.add_char b ',';
      (* hashes as strings: 63-bit ints do not survive a double round-trip *)
      Buffer.add_string b
        (Printf.sprintf "{\"key\":\"%s\",\"hash\":\"%d\",\"est\":%d,\"err\":%d}"
           (Trace.json_escape e.e_key) e.e_hash e.e_est e.e_err))
    (Sketch.Space_saving.top vs.v_hot);
  Buffer.add_string b
    (Printf.sprintf "],\"sketch_total\":%d,\"cms\":{\"depth\":%d,\"width\":%d,\"total\":%d,\"rows\":["
       (Sketch.Space_saving.total vs.v_hot)
       (Sketch.Count_min.depth vs.v_freq)
       (Sketch.Count_min.width vs.v_freq)
       (Sketch.Count_min.total vs.v_freq));
  Array.iteri
    (fun r row ->
      if r > 0 then Buffer.add_char b ',';
      Buffer.add_char b '[';
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int v))
        row;
      Buffer.add_char b ']')
    (Sketch.Count_min.rows vs.v_freq);
  Buffer.add_string b "]}}";
  Buffer.contents b

let lag_snapshot () =
  match !lag_hist with
  | None -> None
  | Some h ->
    let bounds = Metrics.Histogram.bucket_bounds h in
    let counts = Metrics.Histogram.bucket_counts h in
    Some
      {
        Metrics.h_count = Metrics.Histogram.count h;
        h_sum = Metrics.Histogram.sum h;
        h_min = Metrics.Histogram.min_value h;
        h_max = Metrics.Histogram.max_value h;
        h_buckets = Array.mapi (fun i le -> (le, counts.(i))) bounds;
      }

let shards_json () =
  let s = shards in
  Mutex.lock s.sh_m;
  let runs = s.sh_runs and workers = s.sh_workers in
  let busy = Array.copy s.sh_busy_s and ops = Array.copy s.sh_ops in
  let recent =
    let n = min 32 s.sh_ring_len in
    List.init n (fun i ->
        let idx = (s.sh_ring_pos - n + i + ring_cap) mod ring_cap in
        s.sh_ring.(idx))
  in
  Mutex.unlock s.sh_m;
  (* trim trailing idle shards so 4-worker runs do not print 64 zeros *)
  let live = ref 0 in
  Array.iteri
    (fun i b -> if b > 0. || ops.(i) > 0 then live := i + 1)
    busy;
  let live = max !live workers in
  let floats a =
    String.concat ","
      (List.init live (fun i -> fmt_f a.(i)))
  in
  let ints a =
    String.concat "," (List.init live (fun i -> string_of_int a.(i)))
  in
  Printf.sprintf
    "{\"runs\":%d,\"workers\":%d,\"busy_s\":[%s],\"ops\":[%s],\"recent_imbalance\":[%s]}"
    runs workers (floats busy) (ints ops)
    (String.concat "," (List.map fmt_f recent))

let profile_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":%d,\"generated_unix_s\":%s,\"elapsed_s\":%s,\"views\":["
       profile_schema
       (fmt_f (Metrics.now_s ()))
       (fmt_f (elapsed_s ())));
  List.iteri
    (fun i vs ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (view_json vs))
    (sorted_views ());
  Buffer.add_string b "],\"epoch_lag\":";
  (match lag_snapshot () with
  | None -> Buffer.add_string b "{\"count\":0}"
  | Some h ->
    Buffer.add_string b
      (Printf.sprintf
         "{\"count\":%d,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}"
         h.Metrics.h_count
         (fmt_f (Metrics.percentile h 0.50))
         (fmt_f (Metrics.percentile h 0.95))
         (fmt_f (Metrics.percentile h 0.99))
         (fmt_f h.Metrics.h_max)));
  Buffer.add_string b ",\"shards\":";
  Buffer.add_string b (shards_json ());
  Buffer.add_char b '}';
  Buffer.contents b

(* --- persistence --------------------------------------------------------- *)

let write_profile ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (profile_json ());
      output_char oc '\n');
  Sys.rename tmp path

let load_profile ~path =
  match
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic))))
    else None
  with
  | None -> false
  | Some raw -> (
    match Json.parse raw with
    | Error _ -> false
    | Ok j ->
      let num ?(default = 0.) o =
        match Option.bind o Json.to_float with Some f -> f | None -> default
      in
      let inum ?default o = int_of_float (num ?default o) in
      (match Json.member "schema" j with
      | Some s when inum (Some s) = profile_schema ->
        restored_elapsed_s :=
          !restored_elapsed_s +. num (Json.member "elapsed_s" j);
        List.iter
          (fun vj ->
            match Option.bind (Json.member "view" vj) Json.to_string with
            | None -> ()
            | Some name ->
              let vs = view name in
              atomic_add vs.v_writes (inum (Json.member "writes" vj));
              atomic_add vs.v_write_events
                (inum (Json.member "write_events" vj));
              atomic_add vs.v_batches (inum (Json.member "batches" vj));
              atomic_add vs.v_deltas_in (inum (Json.member "deltas_in" vj));
              atomic_add vs.v_netted (inum (Json.member "netted" vj));
              atomic_add vs.v_applied (inum (Json.member "applied" vj));
              atomic_add vs.v_reads_query
                (inum (Json.path [ "reads"; "query" ] vj));
              atomic_add vs.v_reads_reconstruct
                (inum (Json.path [ "reads"; "reconstruct" ] vj));
              let entries =
                Json.member "hot_keys" vj
                |> Option.map Json.to_list
                |> Option.value ~default:[]
                |> List.filter_map (fun e ->
                       match
                         ( Option.bind (Json.member "key" e) Json.to_string,
                           Option.bind (Json.member "hash" e) Json.to_string )
                       with
                       | Some key, Some hash_s -> (
                         match int_of_string_opt hash_s with
                         | None -> None
                         | Some hash ->
                           Some
                             {
                               Sketch.Space_saving.e_key = key;
                               e_hash = hash;
                               e_est = inum (Json.member "est" e);
                               e_err = inum (Json.member "err" e);
                             })
                       | _ -> None)
              in
              Sketch.Space_saving.restore vs.v_hot entries
                ~total:(inum (Json.member "sketch_total" vj));
              (match Json.member "cms" vj with
              | None -> ()
              | Some cj ->
                let rows =
                  Json.member "rows" cj
                  |> Option.map Json.to_list
                  |> Option.value ~default:[]
                  |> List.map (fun row ->
                         Json.to_list row
                         |> List.map (fun v -> inum (Some v))
                         |> Array.of_list)
                  |> Array.of_list
                in
                Sketch.Count_min.restore vs.v_freq ~rows
                  ~total:(inum (Json.member "total" cj))))
          (Json.member "views" j |> Option.map Json.to_list
         |> Option.value ~default:[]);
        (match Json.member "shards" j with
        | None -> ()
        | Some sj ->
          let s = shards in
          Mutex.lock s.sh_m;
          s.sh_runs <- s.sh_runs + inum (Json.member "runs" sj);
          s.sh_workers <- max s.sh_workers (inum (Json.member "workers" sj));
          let add_arr name f =
            Json.member name sj
            |> Option.map Json.to_list
            |> Option.value ~default:[]
            |> List.iteri (fun i v ->
                   if i < max_shards then f i (num (Some v)))
          in
          add_arr "busy_s" (fun i v ->
              s.sh_busy_s.(i) <- s.sh_busy_s.(i) +. v);
          add_arr "ops" (fun i v ->
              s.sh_ops.(i) <- s.sh_ops.(i) + int_of_float v);
          Mutex.unlock s.sh_m);
        true
      | _ -> false))

(* --- gauges -------------------------------------------------------------- *)

let refresh_gauges () =
  List.iter
    (fun vs ->
      if
        Atomic.get vs.v_writes > 0
        || reads_total vs > 0
        || Atomic.get vs.v_batches > 0
      then begin
        let labels = [ ("view", vs.v_name) ] in
        let g name help = Metrics.Gauge.make ~help ~labels name in
        Metrics.Gauge.set
          (g "minview_workload_hot_key_share"
             "Share of the write stream held by the top hot keys")
          (hot_key_share vs);
        Metrics.Gauge.set
          (g "minview_workload_update_read_ratio"
             "Netted write weight per serve read")
          (update_read_ratio vs);
        Metrics.Gauge.set
          (g "minview_workload_compaction_ratio"
             "Netted ops over raw deltas (1 = netting won nothing)")
          (compaction_ratio vs);
        Metrics.Gauge.set
          (g "minview_workload_write_rate_per_s"
             "Netted write weight per observed second")
          (let el = elapsed_s () in
           if el > 0. then float_of_int (Atomic.get vs.v_writes) /. el else 0.);
        Metrics.Gauge.set
          (g "minview_workload_read_rate_per_s"
             "Serve reads per observed second")
          (let el = elapsed_s () in
           if el > 0. then float_of_int (reads_total vs) /. el else 0.)
      end)
    (sorted_views ());
  let s = shards in
  Mutex.lock s.sh_m;
  let runs = s.sh_runs in
  let last =
    if s.sh_ring_len = 0 then 0.
    else s.sh_ring.((s.sh_ring_pos - 1 + ring_cap) mod ring_cap)
  in
  Mutex.unlock s.sh_m;
  if runs > 0 then
    Metrics.Gauge.set
      (Metrics.Gauge.make
         ~help:"Max/mean per-worker busy time of the last shard dispatch"
         "minview_workload_shard_imbalance")
      last

let reset () =
  Mutex.lock views_m;
  Hashtbl.iter
    (fun _ vs ->
      Sketch.Space_saving.reset vs.v_hot;
      Sketch.Count_min.reset vs.v_freq;
      Atomic.set vs.v_writes 0;
      Atomic.set vs.v_write_events 0;
      Atomic.set vs.v_batches 0;
      Atomic.set vs.v_deltas_in 0;
      Atomic.set vs.v_netted 0;
      Atomic.set vs.v_applied 0;
      Atomic.set vs.v_reads_query 0;
      Atomic.set vs.v_reads_reconstruct 0)
    views;
  Mutex.unlock views_m;
  let s = shards in
  Mutex.lock s.sh_m;
  s.sh_runs <- 0;
  s.sh_workers <- 0;
  Array.fill s.sh_busy_s 0 max_shards 0.;
  Array.fill s.sh_ops 0 max_shards 0;
  Array.fill s.sh_ring 0 ring_cap 0.;
  s.sh_ring_pos <- 0;
  s.sh_ring_len <- 0;
  Mutex.unlock s.sh_m;
  first_event_s := 0.;
  restored_elapsed_s := 0.
