(** Minview telemetry: domain-safe metrics + span tracing, rendered as
    JSON lines or Prometheus text.

    See {!Metrics} for the registry semantics (per-domain sharded cells,
    idempotent registration, global enable switch) and {!Trace} for the
    span ring and sinks. This module re-exports both plus the renderers
    used by [minview metrics] / [minview trace], the {!Runtime} profiling
    gauges, and the {!Http_exporter} scrape endpoint. *)

module Metrics = Metrics
module Trace = Trace
module Lineage = Lineage
module Jsonl_sink = Jsonl_sink
module Render = Render
module Runtime = Runtime
module Http_exporter = Http_exporter

module Json = Json
(** Minimal JSON reader for the repo's own machine output. *)

module Sketch = Sketch
(** Streaming heavy-hitter / frequency sketches. *)

module Workload = Workload
(** Per-view access accounting and the persisted workload profile. *)

(** Shorthand for {!Metrics.Counter} etc. *)

module Counter = Metrics.Counter
module Gauge = Metrics.Gauge
module Histogram = Metrics.Histogram

val enabled : unit -> bool
val set_enabled : bool -> unit

val configure_from_env : unit -> unit
(** Disable collection when [$TELEMETRY] is [off]/[0]/[false]/[no]. *)

val now_s : unit -> float

val with_phase :
  ?attrs:(string * string) list ->
  ?alloc:Metrics.Histogram.t ->
  Metrics.Histogram.t ->
  string ->
  (unit -> 'a) ->
  'a
(** Time the thunk once and record the duration both as a histogram
    observation and as a span named [name] (also on exception). When
    [alloc] is given, additionally observe the calling domain's
    [Gc.allocated_bytes] delta over the thunk into it — the per-phase
    allocation profile. Runs the thunk untimed when telemetry is
    disabled. *)

val snapshot : unit -> Metrics.snap list

val reset : unit -> unit
(** Zero all metrics (for tests/benchmarks). *)

val snap_to_json : Metrics.snap -> string
(** {!Render.snap_to_json}. *)

val dump_json : unit -> string
(** {!Render.dump_json}. *)

val to_prometheus : unit -> string
(** {!Render.to_prometheus}. *)
