(** Minview telemetry: domain-safe metrics + span tracing, rendered as
    JSON lines or Prometheus text.

    See {!Metrics} for the registry semantics (per-domain sharded cells,
    idempotent registration, global enable switch) and {!Trace} for the
    span ring and sinks. This module re-exports both plus the renderers
    used by [minview metrics] / [minview trace]. *)

module Metrics = Metrics
module Trace = Trace
module Lineage = Lineage
module Jsonl_sink = Jsonl_sink

(** Shorthand for {!Metrics.Counter} etc. *)

module Counter = Metrics.Counter
module Gauge = Metrics.Gauge
module Histogram = Metrics.Histogram

val enabled : unit -> bool
val set_enabled : bool -> unit

val configure_from_env : unit -> unit
(** Disable collection when [$TELEMETRY] is [off]/[0]/[false]/[no]. *)

val now_s : unit -> float

val with_phase :
  ?attrs:(string * string) list ->
  Metrics.Histogram.t ->
  string ->
  (unit -> 'a) ->
  'a
(** Time the thunk once and record the duration both as a histogram
    observation and as a span named [name] (also on exception). Runs the
    thunk untimed when telemetry is disabled. *)

val snapshot : unit -> Metrics.snap list

val reset : unit -> unit
(** Zero all metrics (for tests/benchmarks). *)

val snap_to_json : Metrics.snap -> string
(** One-line JSON object for a single metric. Histograms carry
    [p50]/[p95]/[p99] percentile estimates (see {!Metrics.percentile})
    next to [count]/[sum]/[min]/[max]. *)

val dump_json : unit -> string
(** All metrics, one JSON object per line, sorted by (name, labels). *)

val to_prometheus : unit -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] headers, cumulative
    [_bucket{le=...}] series plus [_sum]/[_count] for histograms,
    followed by [NAME_p50]/[NAME_p95]/[NAME_p99] gauge families with the
    per-label-set percentile estimates. *)
