(** Domain-safe streaming sketches over integer-hashed keys: Space-Saving
    top-k heavy hitters and a count-min frequency sketch. Both use fixed
    memory regardless of stream length and split their hot state across
    per-domain cells merged on read — the same write-contention model as
    the {!Metrics} registry, except each cell is a multi-word structure, so
    cells are mutex-guarded rather than atomic (the writer's own cell lock
    is uncontended in the common case of one resident writer per domain).

    Updates are keyed by an integer hash supplied by the caller (e.g.
    [Tuple.hash] of a group key); the printable label is only materialized
    — via the [label] thunk — when a key first enters a Space-Saving
    summary, so hits on already-tracked hot keys never touch a string.
    Distinct keys with colliding hashes are conflated; with 63-bit hashes
    this is an accepted approximation, not an error source worth a second
    hash. All updates are dropped while {!Metrics.enabled} is false. *)

module Space_saving : sig
  type t

  val create : k:int -> t
  (** [k >= 1] counters per cell. @raise Invalid_argument otherwise. *)

  val capacity : t -> int

  val touch : ?weight:int -> t -> hash:int -> label:(unit -> string) -> unit
  (** Count [weight] (default 1) occurrences of the key; non-positive
      weights are ignored. O(log k) against the calling domain's cell. *)

  type entry = {
    e_key : string;  (** label captured when the key entered the summary *)
    e_hash : int;
    e_est : int;  (** estimated count; never below the true count *)
    e_err : int;  (** overestimation bound: [e_est - e_err <= true count] *)
  }

  val top : ?n:int -> t -> entry list
  (** Merged across cells, descending estimate, at most [n] (default [k])
      entries. The conservative cell merge sums estimates and error terms,
      charging a key absent from a full cell that cell's minimum counter —
      so the per-entry bounds above survive the merge. Any key whose true
      frequency exceeds [total t / k] is present in the unlimited
      ([n = max_int]) merged list. *)

  val total : t -> int
  (** Stream length seen (sum of all weights, all cells). *)

  val restore : t -> entry list -> total:int -> unit
  (** Additively merge a persisted summary into the calling domain's cell
      (entries beyond [k] are dropped lowest-first); used to re-seed the
      sketch from a saved workload profile on recovery. *)

  val reset : t -> unit
end

module Count_min : sig
  type t

  val create : ?depth:int -> ?width:int -> unit -> t
  (** [depth] hash rows (default 3) x [width] counters (default 512,
      rounded up to a power of two). Estimates overshoot by at most
      [e * total / width] with probability [1 - e^-depth].
      @raise Invalid_argument when either is < 1. *)

  val depth : t -> int
  val width : t -> int

  val add : ?weight:int -> t -> hash:int -> unit
  (** Non-positive weights are ignored. O(depth), no allocation. *)

  val estimate : t -> hash:int -> int
  (** Merged over cells (matrix addition); never under-estimates. *)

  val rows : t -> int array array
  (** The merged [depth x width] counter matrix, for persistence. *)

  val total : t -> int

  val restore : t -> rows:int array array -> total:int -> unit
  (** Additively merge a persisted matrix into the calling domain's cell;
      rows/columns beyond this sketch's shape are ignored. *)

  val reset : t -> unit
end
