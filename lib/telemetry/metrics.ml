(* Domain-safe metrics: counters, gauges and fixed-log-bucket histograms
   behind a process-global registry.

   Write-side contention model: every metric splits its hot cells across
   [ncells] slots indexed by the writing domain's id, so the shard-parallel
   maintenance path (one resident domain per shard set) never has two
   domains bouncing the same cache line in the common case. Collisions
   (domain ids equal modulo [ncells]) stay correct — cells are [Atomic]s —
   they just contend. Reads merge all cells, so they are O(ncells) and
   linearizable enough for dashboards (a read concurrent with writes sees
   some interleaving, never a torn value).

   Registration is idempotent: [Counter.make name ~labels] returns the
   already-registered metric when (name, labels) exists, so call sites can
   register at module-init time or lazily without coordination. *)

let ncells = 16
let cell_mask = ncells - 1
let cell_index () = (Domain.self () :> int) land cell_mask

(* --- global switch ------------------------------------------------------ *)

(* Collection switch: when off, every write is a single Atomic.get and an
   early return, so instrumented code costs (almost) nothing. Reads and
   registration are unaffected. *)
let enabled_flag = Atomic.make true

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let env_var = "TELEMETRY"

let configure_from_env () =
  match Sys.getenv_opt env_var with
  | Some ("off" | "0" | "false" | "no") -> set_enabled false
  | Some _ | None -> set_enabled true

let now_s () = Unix.gettimeofday ()

(* --- atomic float helpers ---------------------------------------------- *)

let atomic_add_float a x =
  let rec go () =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. x)) then go ()
  in
  go ()

let atomic_min_float a x =
  let rec go () =
    let cur = Atomic.get a in
    if x < cur && not (Atomic.compare_and_set a cur x) then go ()
  in
  go ()

let atomic_max_float a x =
  let rec go () =
    let cur = Atomic.get a in
    if x > cur && not (Atomic.compare_and_set a cur x) then go ()
  in
  go ()

(* --- counters ----------------------------------------------------------- *)

module Counter_impl = struct
  type t = { cells : int Atomic.t array }

  let create () = { cells = Array.init ncells (fun _ -> Atomic.make 0) }

  let inc t n =
    if enabled () && n <> 0 then
      ignore (Atomic.fetch_and_add t.cells.(cell_index ()) n)

  let value t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells
  let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells
end

(* --- gauges ------------------------------------------------------------- *)

module Gauge_impl = struct
  type t = { v : float Atomic.t }

  let create () = { v = Atomic.make 0. }
  let set t x = if enabled () then Atomic.set t.v x
  let add t x = if enabled () then atomic_add_float t.v x
  let value t = Atomic.get t.v
  let reset t = Atomic.set t.v 0.
end

(* --- histograms --------------------------------------------------------- *)

module Histogram_impl = struct
  (* Fixed log-scale buckets: bucket [0] holds values <= [lo]; bucket [i]
     (0 < i < n-1) holds values in (lo*factor^(i-1), lo*factor^i]; the last
     bucket is the +Inf overflow. The layout is fixed at registration, so
     merging cells (and scraping over time) is just integer addition. *)
  type cell = {
    buckets : int Atomic.t array;
    count : int Atomic.t;
    sum : float Atomic.t;
    mn : float Atomic.t;
    mx : float Atomic.t;
  }

  type t = {
    lo : float;
    factor : float;
    nbuckets : int;
    log_factor : float;
    cells : cell array;
  }

  let create ~lo ~factor ~buckets:nbuckets =
    if not (lo > 0.) then invalid_arg "Telemetry.Histogram: lo must be > 0";
    if not (factor > 1.) then
      invalid_arg "Telemetry.Histogram: factor must be > 1";
    if nbuckets < 2 then
      invalid_arg "Telemetry.Histogram: need at least 2 buckets";
    {
      lo;
      factor;
      nbuckets;
      log_factor = Float.log factor;
      cells =
        Array.init ncells (fun _ ->
            {
              buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
              count = Atomic.make 0;
              sum = Atomic.make 0.;
              mn = Atomic.make infinity;
              mx = Atomic.make neg_infinity;
            });
    }

  (* The 1e-9 slack keeps exact boundaries (v = lo * factor^i computed in
     floats) in their mathematical bucket despite log rounding. *)
  let bucket_of t v =
    if v <= t.lo then 0
    else
      let i =
        int_of_float (Float.ceil ((Float.log (v /. t.lo) /. t.log_factor) -. 1e-9))
      in
      if i >= t.nbuckets - 1 then t.nbuckets - 1 else max 0 i

  let observe t v =
    if enabled () then begin
      let c = t.cells.(cell_index ()) in
      ignore (Atomic.fetch_and_add c.buckets.(bucket_of t v) 1);
      ignore (Atomic.fetch_and_add c.count 1);
      atomic_add_float c.sum v;
      atomic_min_float c.mn v;
      atomic_max_float c.mx v
    end

  let count t =
    Array.fold_left (fun acc c -> acc + Atomic.get c.count) 0 t.cells

  let sum t = Array.fold_left (fun acc c -> acc +. Atomic.get c.sum) 0. t.cells

  let min_value t =
    let m =
      Array.fold_left (fun acc c -> Float.min acc (Atomic.get c.mn)) infinity
        t.cells
    in
    if m = infinity then Float.nan else m

  let max_value t =
    let m =
      Array.fold_left
        (fun acc c -> Float.max acc (Atomic.get c.mx))
        neg_infinity t.cells
    in
    if m = neg_infinity then Float.nan else m

  (* Upper bound of bucket [i]; the last is +Inf. *)
  let bucket_bounds t =
    Array.init t.nbuckets (fun i ->
        if i = t.nbuckets - 1 then infinity
        else t.lo *. (t.factor ** float_of_int i))

  let bucket_counts t =
    Array.init t.nbuckets (fun i ->
        Array.fold_left
          (fun acc c -> acc + Atomic.get c.buckets.(i))
          0 t.cells)

  let reset t =
    Array.iter
      (fun c ->
        Array.iter (fun b -> Atomic.set b 0) c.buckets;
        Atomic.set c.count 0;
        Atomic.set c.sum 0.;
        Atomic.set c.mn infinity;
        Atomic.set c.mx neg_infinity)
      t.cells

  let time t f =
    if enabled () then begin
      let t0 = now_s () in
      match f () with
      | r ->
        observe t (now_s () -. t0);
        r
      | exception e ->
        observe t (now_s () -. t0);
        raise e
    end
    else f ()
end

(* --- registry ----------------------------------------------------------- *)

type kind =
  | Counter of Counter_impl.t
  | Gauge of Gauge_impl.t
  | Histogram of Histogram_impl.t

type meta = {
  name : string;
  labels : (string * string) list;  (** sorted by label name *)
  help : string;
  kind : kind;
}

let registry : (string, meta) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Idempotent registration: an existing (name, labels) entry is returned as
   is (its kind must match); otherwise [create ()] is installed. *)
let register ~name ~labels ~help ~wanted create =
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let k = key name labels in
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      match Hashtbl.find_opt registry k with
      | Some m ->
        if not (String.equal (kind_name m.kind) wanted) then
          invalid_arg
            (Printf.sprintf "Telemetry: %s is already registered as a %s" name
               (kind_name m.kind));
        m.kind
      | None ->
        let kind = create () in
        Hashtbl.add registry k { name; labels; help; kind };
        kind)

module Counter = struct
  type t = Counter_impl.t

  let make ?(help = "") ?(labels = []) name : t =
    match
      register ~name ~labels ~help ~wanted:"counter" (fun () ->
          Counter (Counter_impl.create ()))
    with
    | Counter c -> c
    | Gauge _ | Histogram _ -> assert false

  let inc = Counter_impl.inc
  let one t = inc t 1
  let value = Counter_impl.value
end

module Gauge = struct
  type t = Gauge_impl.t

  let make ?(help = "") ?(labels = []) name : t =
    match
      register ~name ~labels ~help ~wanted:"gauge" (fun () ->
          Gauge (Gauge_impl.create ()))
    with
    | Gauge g -> g
    | Counter _ | Histogram _ -> assert false

  let set = Gauge_impl.set
  let add = Gauge_impl.add
  let value = Gauge_impl.value
end

module Histogram = struct
  type t = Histogram_impl.t

  (* Default layout: 1 µs lower edge, doubling buckets, 40 of them — covers
     1 µs .. ~4.5 min of latency with the last bucket as overflow. *)
  let make ?(help = "") ?(labels = []) ?(lo = 1e-6) ?(factor = 2.)
      ?(buckets = 40) name : t =
    match
      register ~name ~labels ~help ~wanted:"histogram" (fun () ->
          Histogram (Histogram_impl.create ~lo ~factor ~buckets))
    with
    | Histogram h -> h
    | Counter _ | Gauge _ -> assert false

  let observe = Histogram_impl.observe
  let count = Histogram_impl.count
  let sum = Histogram_impl.sum
  let min_value = Histogram_impl.min_value
  let max_value = Histogram_impl.max_value
  let bucket_bounds = Histogram_impl.bucket_bounds
  let bucket_counts = Histogram_impl.bucket_counts
  let time = Histogram_impl.time
end

(* --- snapshots ----------------------------------------------------------- *)

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** nan when empty *)
  h_max : float;  (** nan when empty *)
  h_buckets : (float * int) array;
      (** (inclusive upper bound, count) per bucket, non-cumulative; the
          last bound is [infinity] *)
}

(* Rank-based percentile estimate from the bucket counts: find the bucket
   holding the q-th observation and interpolate linearly between its edges.
   The first bucket's lower edge and the overflow bucket's upper edge are
   unknown, so the tracked min/max observations stand in for them; the
   result is always clamped to [h_min, h_max]. *)
let percentile h q =
  if h.h_count = 0 || Float.is_nan q then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.h_count in
    let n_buckets = Array.length h.h_buckets in
    let rec go i cum =
      if i >= n_buckets then h.h_max
      else begin
        let bound, n = h.h_buckets.(i) in
        let cum' = cum + n in
        if n > 0 && float_of_int cum' >= target then begin
          let lo =
            if i = 0 then h.h_min else fst h.h_buckets.(i - 1)
          in
          let hi = if bound = infinity then h.h_max else bound in
          let frac = (target -. float_of_int cum) /. float_of_int n in
          let est =
            if hi <= lo then hi else lo +. (frac *. (hi -. lo))
          in
          Float.max h.h_min (Float.min h.h_max est)
        end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_snapshot

type snap = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string;
  s_value : value;
}

let snapshot () =
  let entries =
    Mutex.lock registry_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mutex)
      (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  entries
  |> List.map (fun m ->
         let v =
           match m.kind with
           | Counter c -> Counter_v (Counter_impl.value c)
           | Gauge g -> Gauge_v (Gauge_impl.value g)
           | Histogram h ->
             Histogram_v
               {
                 h_count = Histogram_impl.count h;
                 h_sum = Histogram_impl.sum h;
                 h_min = Histogram_impl.min_value h;
                 h_max = Histogram_impl.max_value h;
                 h_buckets =
                   (let bounds = Histogram_impl.bucket_bounds h in
                    let counts = Histogram_impl.bucket_counts h in
                    Array.init (Array.length bounds) (fun i ->
                        (bounds.(i), counts.(i))));
               }
         in
         { s_name = m.name; s_labels = m.labels; s_help = m.help; s_value = v })
  |> List.sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> compare a.s_labels b.s_labels
         | c -> c)

let reset () =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m.kind with
          | Counter c -> Counter_impl.reset c
          | Gauge g -> Gauge_impl.reset g
          | Histogram h -> Histogram_impl.reset h)
        registry)
