(* Runtime (GC + off-heap) profiling gauges.

   [sample] publishes [Gc.quick_stat] and the registered off-heap source
   as plain gauges; nothing here runs on its own. Two call paths feed it:

   - the warehouse commit hook ([tick], armed with [set_auto_sample true])
     samples from the writer domain on every published epoch, so the
     gauges describe the domain actually doing the maintenance work;
   - a scrape ([scrape_sample], the HTTP exporter) samples only when no
     commit hook is armed — a scrape runs on the exporter's domain, and
     OCaml 5 reports the allocation counters of the *calling* domain, so
     overwriting commit-time values with exporter-domain ones would
     replace signal with noise.

   The gauges are registered lazily at the first sample: binaries that
   never sample (every CLI verb except export/serve --metrics-port) keep
   their metric dumps unchanged. *)

type handles = {
  minor_collections : Metrics.Gauge.t;
  major_collections : Metrics.Gauge.t;
  compactions : Metrics.Gauge.t;
  minor_words : Metrics.Gauge.t;
  promoted_words : Metrics.Gauge.t;
  major_words : Metrics.Gauge.t;
  heap_words : Metrics.Gauge.t;
  top_heap_words : Metrics.Gauge.t;
  offheap_bytes : Metrics.Gauge.t;
  sampled_at : Metrics.Gauge.t;
}

let handles =
  lazy
    (let g help name = Metrics.Gauge.make ~help name in
     {
       minor_collections =
         g "Minor collections since process start (Gc.quick_stat)"
           "minview_runtime_gc_minor_collections";
       major_collections =
         g "Major collection cycles since process start"
           "minview_runtime_gc_major_collections";
       compactions =
         g "Heap compactions since process start"
           "minview_runtime_gc_compactions";
       minor_words =
         g "Words allocated in the minor heap (sampling domain)"
           "minview_runtime_gc_minor_words";
       promoted_words =
         g "Words promoted from the minor to the major heap"
           "minview_runtime_gc_promoted_words";
       major_words =
         g "Words allocated directly in the major heap (promotions included)"
           "minview_runtime_gc_major_words";
       heap_words =
         g "Major heap size in words" "minview_runtime_gc_heap_words";
       top_heap_words =
         g "Largest major heap size reached, in words"
           "minview_runtime_gc_top_heap_words";
       offheap_bytes =
         g
           "Off-heap (Bigarray) bytes held by the columnar auxiliary-view \
            storage"
           "minview_runtime_offheap_bytes";
       sampled_at =
         g "Unix time of the last runtime sample"
           "minview_runtime_sampled_at_seconds";
     })

(* The off-heap source walks live engine storage, which only the writer
   domain may do safely — it is read exclusively from [sample], which the
   precedence rule above keeps on the writer (or an idle) domain. *)
let offheap_source : (unit -> int) option ref = ref None
let set_offheap_source f = offheap_source := f

let auto = Atomic.make false
let set_auto_sample b = Atomic.set auto b
let auto_sample () = Atomic.get auto

let sample () =
  if Metrics.enabled () then begin
    let h = Lazy.force handles in
    let s = Gc.quick_stat () in
    Metrics.Gauge.set h.minor_collections (float_of_int s.Gc.minor_collections);
    Metrics.Gauge.set h.major_collections (float_of_int s.Gc.major_collections);
    Metrics.Gauge.set h.compactions (float_of_int s.Gc.compactions);
    Metrics.Gauge.set h.minor_words s.Gc.minor_words;
    Metrics.Gauge.set h.promoted_words s.Gc.promoted_words;
    Metrics.Gauge.set h.major_words s.Gc.major_words;
    Metrics.Gauge.set h.heap_words (float_of_int s.Gc.heap_words);
    Metrics.Gauge.set h.top_heap_words (float_of_int s.Gc.top_heap_words);
    (match !offheap_source with
    | Some f -> (
      match f () with
      | bytes -> Metrics.Gauge.set h.offheap_bytes (float_of_int bytes)
      | exception _ -> ())
    | None -> ());
    Metrics.Gauge.set h.sampled_at (Metrics.now_s ())
  end

let tick () = if Atomic.get auto then sample ()
let scrape_sample () = if not (Atomic.get auto) then sample ()
