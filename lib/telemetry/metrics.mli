(** Domain-safe metrics registry: counters, gauges and fixed log-scale
    histograms.

    Writes go to per-domain sharded atomic cells (no locks, no cross-domain
    cache-line bouncing in the common case); reads merge the cells. Metrics
    are registered in a process-global registry keyed by (name, labels);
    registration is idempotent, so call sites may create handles eagerly or
    lazily without coordination. *)

val ncells : int
(** Number of write cells per metric (power of two). *)

(** {1 Global switch} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** When disabled, every write is an atomic flag check and an early return.
    Registration and reads are unaffected. *)

val env_var : string
(** ["TELEMETRY"] — see {!configure_from_env}. *)

val configure_from_env : unit -> unit
(** Disable collection when [$TELEMETRY] is [off]/[0]/[false]/[no];
    enable otherwise (including when unset). *)

val now_s : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the clock used by
    {!Histogram.time}. *)

(** {1 Metric kinds} *)

module Counter : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  (** Register (or fetch) the counter [(name, labels)]. Raises
      [Invalid_argument] if the name is already registered with a different
      kind. *)

  val inc : t -> int -> unit
  val one : t -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val make :
    ?help:string ->
    ?labels:(string * string) list ->
    ?lo:float ->
    ?factor:float ->
    ?buckets:int ->
    string ->
    t
  (** Log-scale buckets: bucket 0 holds values [<= lo], bucket [i] holds
      [(lo*factor^(i-1), lo*factor^i]], the last bucket is the +Inf
      overflow. Defaults: [lo = 1e-6] (1 µs), [factor = 2.],
      [buckets = 40]. The layout is fixed at registration. *)

  val observe : t -> float -> unit

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk and observe its wall-clock duration (also on
      exception). When telemetry is disabled the thunk runs untimed. *)

  val count : t -> int
  val sum : t -> float

  val min_value : t -> float
  (** [nan] when no observation was recorded. *)

  val max_value : t -> float
  (** [nan] when no observation was recorded. *)

  val bucket_bounds : t -> float array
  (** Inclusive upper bound per bucket; the last is [infinity]. *)

  val bucket_counts : t -> int array
  (** Per-bucket (non-cumulative) observation counts, cells merged. *)
end

(** {1 Snapshots} *)

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when empty *)
  h_max : float;  (** [nan] when empty *)
  h_buckets : (float * int) array;
      (** (inclusive upper bound, count) per bucket, non-cumulative; the
          last bound is [infinity] *)
}

val percentile : histogram_snapshot -> float -> float
(** [percentile h q] estimates the [q]-th ([0..1]) percentile from the
    bucket counts by linear interpolation inside the bucket holding the
    target rank. The estimate is clamped to the tracked [h_min]/[h_max]
    (which also stand in for the unknown edges of the first and overflow
    buckets); [nan] when the histogram is empty. *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_snapshot

type snap = {
  s_name : string;
  s_labels : (string * string) list;  (** sorted by label name *)
  s_help : string;
  s_value : value;
}

val snapshot : unit -> snap list
(** Every registered metric with its merged value, sorted by (name, labels)
    for deterministic output. *)

val reset : unit -> unit
(** Zero all registered metrics (registration survives). Intended for
    tests and benchmarks, not production paths. *)
