(* A zero-dependency HTTP exporter for scrapes: GET /metrics (Prometheus
   text), GET /healthz (JSON, 200/503), GET /profile (on-demand GC +
   histogram dump), GET /workload (the workload profile JSON). Same single-domain [Unix.select] style as the serve
   front-end, but strictly request/response: one request per connection,
   [Connection: close], no keep-alive — exactly what Prometheus and curl
   need, and nothing that can wedge the loop. *)

let log_src = Logs.Src.create "minview.export" ~doc:"metrics HTTP exporter"

module Log = (val Logs.src_log log_src : Logs.LOG)

type check = { check_name : string; check_ok : bool; check_detail : string }

let healthy checks = List.for_all (fun c -> c.check_ok) checks

type obs = { o_requests : string -> Metrics.Counter.t }

(* Registered at [create]; the path label set is closed so scrapers cannot
   mint unbounded label values. *)
let make_obs () =
  let mk path =
    Metrics.Counter.make
      ~help:"Requests handled by the metrics HTTP exporter"
      ~labels:[ ("path", path) ]
      "minview_export_requests_total"
  in
  let metrics = mk "metrics"
  and healthz = mk "healthz"
  and profile = mk "profile"
  and workload = mk "workload"
  and other = mk "other" in
  {
    o_requests =
      (function
      | "metrics" -> metrics
      | "healthz" -> healthz
      | "profile" -> profile
      | "workload" -> workload
      | _ -> other);
  }

type t = {
  health : unit -> check list;
  listen_fd : Unix.file_descr;
  bound_port : int;
  obs : obs;
  stop : bool Atomic.t;
  mutable served : int;
}

let port t = t.bound_port
let requests t = t.served
let request_stop t = Atomic.set t.stop true

let create ?(backlog = 16) ~port ~health () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd backlog
   with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise
      (Sys_error
         (Printf.sprintf "export: cannot listen on 127.0.0.1:%d: %s" port
            (Unix.error_message e))));
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  { health; listen_fd = fd; bound_port; obs = make_obs (); stop = Atomic.make false; served = 0 }

(* --- responses ----------------------------------------------------------- *)

let status_text = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let write_all fd s =
  match
    let b = Bytes.of_string s in
    let rec go off =
      if off < Bytes.length b then
        go (off + Unix.write fd b off (Bytes.length b - off))
    in
    go 0
  with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let respond fd ~status ~content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\n\
        Content-Type: %s\r\n\
        Content-Length: %d\r\n\
        Connection: close\r\n\
        \r\n\
        %s"
       status (status_text status) content_type (String.length body) body)

let checks_json checks =
  let one c =
    Printf.sprintf "{\"name\":\"%s\",\"ok\":%b,\"detail\":\"%s\"}"
      (Trace.json_escape c.check_name)
      c.check_ok
      (Trace.json_escape c.check_detail)
  in
  Printf.sprintf "{\"status\":\"%s\",\"checks\":[%s]}\n"
    (if healthy checks then "ok" else "degraded")
    (String.concat "," (List.map one checks))

let profile_json () =
  let s = Gc.quick_stat () in
  let histograms =
    Metrics.snapshot ()
    |> List.filter_map (fun (snap : Metrics.snap) ->
           match snap.s_value with
           | Metrics.Histogram_v _ -> Some (Render.snap_to_json snap)
           | _ -> None)
  in
  Printf.sprintf
    "{\"gc\":{\"minor_words\":%s,\"promoted_words\":%s,\"major_words\":%s,\"minor_collections\":%d,\"major_collections\":%d,\"compactions\":%d,\"heap_words\":%d,\"top_heap_words\":%d},\"histograms\":[%s]}\n"
    (Render.json_float s.Gc.minor_words)
    (Render.json_float s.Gc.promoted_words)
    (Render.json_float s.Gc.major_words)
    s.Gc.minor_collections s.Gc.major_collections s.Gc.compactions
    s.Gc.heap_words s.Gc.top_heap_words
    (String.concat "," histograms)

(* --- request handling ---------------------------------------------------- *)

(* Read until the blank line ending the header block (we ignore bodies —
   every route is a GET). Bounded: a peer that streams junk without a
   blank line is cut off at 16 KiB or at the socket timeout. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 16 * 1024 then Buffer.contents buf
    else
      let seen = Buffer.contents buf in
      let done_ =
        let has sub =
          let n = String.length sub and m = String.length seen in
          let rec at i = i + n <= m && (String.sub seen i n = sub || at (i + 1)) in
          at 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      if done_ then seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> seen
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> seen
  in
  go ()

let handle t fd =
  let raw = read_request fd in
  let request_line =
    match String.index_opt raw '\n' with
    | Some i -> String.trim (String.sub raw 0 i)
    | None -> String.trim raw
  in
  let meth, path =
    match String.split_on_char ' ' request_line with
    | m :: p :: _ -> (String.uppercase_ascii m, p)
    | _ -> ("", "")
  in
  (* strip any query string: curl 'http://.../metrics?x=1' still scrapes *)
  let path =
    match String.index_opt path '?' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  t.served <- t.served + 1;
  let count p = Metrics.Counter.one (t.obs.o_requests p) in
  if meth <> "GET" && meth <> "HEAD" then begin
    count "other";
    respond fd ~status:405 ~content_type:"text/plain; charset=utf-8"
      "only GET is supported\n"
  end
  else
    match path with
    | "/metrics" ->
      count "metrics";
      Runtime.scrape_sample ();
      (* freshen the minview_workload_* gauges before rendering *)
      Workload.refresh_gauges ();
      respond fd ~status:200
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Render.to_prometheus ())
    | "/healthz" ->
      count "healthz";
      let checks = try t.health () with _ -> [] in
      respond fd
        ~status:(if healthy checks then 200 else 503)
        ~content_type:"application/json" (checks_json checks)
    | "/profile" ->
      count "profile";
      Runtime.scrape_sample ();
      respond fd ~status:200 ~content_type:"application/json" (profile_json ())
    | "/workload" ->
      count "workload";
      respond fd ~status:200 ~content_type:"application/json"
        (Workload.profile_json () ^ "\n")
    | _ ->
      count "other";
      respond fd ~status:404 ~content_type:"text/plain; charset=utf-8"
        (Printf.sprintf
           "no route for %s (try /metrics, /healthz, /profile, /workload)\n"
           path)

(* --- the accept loop ----------------------------------------------------- *)

let run t =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  Log.info (fun m -> m "exporting metrics on 127.0.0.1:%d" t.bound_port);
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _addr ->
        (* a stalled client must not wedge the scrape loop *)
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0
         with Unix.Unix_error _ -> ());
        (try handle t fd with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Log.info (fun m ->
      m "exporter shutdown: %d request(s) served on port %d" t.served
        t.bound_port)
