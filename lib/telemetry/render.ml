(* Snapshot renderers: JSON lines and Prometheus text exposition. Kept
   separate from the [Telemetry] facade so the HTTP exporter (which the
   facade re-exports) can render without a dependency cycle. *)

(* JSON-safe float: JSON has no nan/inf, so map them to null / signed
   "Inf" strings; integers render without an exponent. *)
let json_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "\"+Inf\""
  else if f = neg_infinity then "\"-Inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let json_labels labels =
  labels
  |> List.map (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (Trace.json_escape k)
           (Trace.json_escape v))
  |> String.concat ","

let snap_to_json (s : Metrics.snap) =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"labels\":{%s}"
      (Trace.json_escape s.s_name)
      (json_labels s.s_labels)
  in
  match s.s_value with
  | Metrics.Counter_v v ->
    Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" common v
  | Metrics.Gauge_v v ->
    Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" common (json_float v)
  | Metrics.Histogram_v h ->
    let buckets =
      h.h_buckets |> Array.to_list
      |> List.map (fun (le, n) ->
             Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) n)
      |> String.concat ","
    in
    (* count and sum travel next to the percentile estimates so external
       tooling can compute averages without touching the raw buckets; avg
       is precomputed for the common case *)
    let avg =
      if h.h_count = 0 then Float.nan
      else h.h_sum /. float_of_int h.h_count
    in
    Printf.sprintf
      "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"avg\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":[%s]}"
      common h.h_count (json_float h.h_sum) (json_float avg)
      (json_float h.h_min)
      (json_float h.h_max)
      (json_float (Metrics.percentile h 0.50))
      (json_float (Metrics.percentile h 0.95))
      (json_float (Metrics.percentile h 0.99))
      buckets

(* One metric per line: greppable, diffable, and a valid JSONL stream. *)
let dump_json () =
  Metrics.snapshot () |> List.map snap_to_json |> String.concat "\n"

(* --- Prometheus text exposition ----------------------------------------- *)

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
           labels)
    ^ "}"

(* Build identity, scrape-only: emitted as literal lines rather than a
   registered gauge so [reset] cannot zero it, TELEMETRY=off cannot blank
   it, and the JSON dump (cram-pinned) stays unchanged. The sha comes from
   the environment — CI exports MINVIEW_BUILD_SHA=$GITHUB_SHA. *)
let build_info_lines () =
  let sha =
    match Sys.getenv_opt "MINVIEW_BUILD_SHA" with
    | Some s when s <> "" -> s
    | Some _ | None -> "unknown"
  in
  Printf.sprintf
    "# HELP minview_build_info Build identity of this binary (value is \
     always 1)\n\
     # TYPE minview_build_info gauge\n\
     minview_build_info%s 1\n"
    (prom_labels [ ("ocaml_version", Sys.ocaml_version); ("sha", sha) ])

let to_prometheus () =
  let snaps = Metrics.snapshot () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (build_info_lines ());
  let last_header = ref "" in
  let header name help kind =
    if !last_header <> name then begin
      last_header := name;
      (* HELP is always emitted so scrapes are self-describing; metrics
         registered without help text say so instead of going silent *)
      let help = if help = "" then "(no help registered)" else help in
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Metrics.snap) ->
      let lbl extra = prom_labels (s.s_labels @ extra) in
      match s.s_value with
      | Metrics.Counter_v v ->
        header s.s_name s.s_help "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" s.s_name (lbl []) v)
      | Metrics.Gauge_v v ->
        header s.s_name s.s_help "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" s.s_name (lbl []) (prom_float v))
      | Metrics.Histogram_v h ->
        header s.s_name s.s_help "histogram";
        let cum = ref 0 in
        Array.iter
          (fun (le, n) ->
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                 (lbl [ ("le", prom_float le) ])
                 !cum))
          h.h_buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" s.s_name (lbl [])
             (prom_float h.h_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.s_name (lbl []) h.h_count))
    snaps;
  (* percentile estimates as separate gauge families, grouped per quantile
     so each synthetic family gets exactly one TYPE header *)
  let histograms =
    List.filter_map
      (fun (s : Metrics.snap) ->
        match s.s_value with
        | Metrics.Histogram_v h -> Some (s, h)
        | _ -> None)
      snaps
  in
  if histograms <> [] then
    List.iter
      (fun (suffix, q) ->
        last_header := "";
        List.iter
          (fun ((s : Metrics.snap), h) ->
            let name = s.s_name ^ suffix in
            header name
              (Printf.sprintf "Estimated %g-quantile of %s" q s.s_name)
              "gauge";
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name
                 (prom_labels s.s_labels)
                 (prom_float (Metrics.percentile h q))))
          histograms)
      [ ("_p50", 0.50); ("_p95", 0.95); ("_p99", 0.99) ];
  Buffer.contents buf
