(** Span/phase tracer: a bounded ring of recent spans plus a pluggable
    sink.

    Spans are recorded when they {e finish}; the ring keeps the most recent
    {!capacity} of them for [minview trace] and tests. Sinks: [Null] drops
    everything, [Memory] keeps the ring only, [Jsonl path] additionally
    appends one JSON object per span to [path]. Tracing honours the global
    {!Metrics.enabled} switch.

    The tracer is for phase-level events (tens per batch) and is guarded by
    a single mutex; do not call it per row. *)

type span = {
  name : string;
  start_s : float;  (** wall-clock start, seconds *)
  dur_s : float;  (** duration, seconds; [0.] for point events *)
  attrs : (string * string) list;
}

type sink = Null | Memory | Jsonl of string

val capacity : int
(** Ring size (512). *)

val set_sink : sink -> unit
(** Default is [Memory]. Switching away from [Jsonl] closes the file;
    [Jsonl] opens it in append mode, size-capped and rotated per
    {!set_rotation}. *)

val sink : unit -> sink

val set_rotation : max_bytes:int -> keep:int -> unit
(** Configure rotation of the [Jsonl] sink file. When the active file
    grows past [max_bytes] it is rotated shift-style ([path] becomes
    [path.1], [path.1] becomes [path.2], ...) keeping at most [keep]
    files including the active one, so the sink's total footprint is
    bounded by roughly [max_bytes * keep]. Applies to the currently open
    sink (reopened in place) and to sinks opened later. Defaults:
    {!Jsonl_sink.default_max_bytes} (64 MiB) and
    {!Jsonl_sink.default_keep} (4). [max_bytes <= 0] disables rotation;
    [keep] is clamped to [>= 1]. *)

val record : span -> unit
(** Record a finished span as is (ignores the enabled switch; prefer
    {!with_span} unless the caller already measured the duration). *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk and record a span covering it (also on exception). When
    telemetry is disabled the thunk runs unrecorded. *)

val event : ?attrs:(string * string) list -> string -> unit
(** Record a zero-duration point event. *)

val recent : unit -> span list
(** Up to {!capacity} most recent spans, oldest first. *)

val total : unit -> int
(** Spans recorded since the last {!clear} (may exceed {!capacity}). *)

val clear : unit -> unit

val span_to_json : span -> string
(** One-line JSON object (the JSONL sink's wire format). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)
