(** Size-capped rotating JSONL file sink, shared by {!Trace} and
    {!Lineage}.

    Lines are appended to [path]. When the active file grows past
    [max_bytes] it is rotated shift-style before the next write:
    [path.N-1] is dropped, [path.i] becomes [path.i+1], and the active
    file becomes [path.1] — so at most [keep] files (the active one plus
    [keep - 1] rotated generations) ever exist. *)

type t

val default_max_bytes : int
(** 64 MiB. *)

val default_keep : int
(** 4 files (the active one plus 3 rotated generations). *)

val open_ : ?max_bytes:int -> ?keep:int -> string -> t
(** Open [path] for appending, creating it if needed. [max_bytes <= 0]
    disables rotation (unbounded growth); [keep] is clamped to [>= 1]. *)

val write_line : t -> string -> unit
(** Append one line (the terminating newline is added) and flush.
    Rotates first when the active file is already over the byte limit,
    so a single oversized line never splits across files. *)

val close : t -> unit
(** Close the active channel. Further {!write_line} calls are no-ops. *)

val path : t -> string
