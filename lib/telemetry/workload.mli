(** Workload intelligence: per-view access accounting backed by the
    {!Sketch} structures, shard heat accounting, and a schema-versioned
    persisted workload profile.

    The maintenance engine feeds group-key touches and batch netting stats,
    the serve front-end feeds reads and epoch lag, and [Shard.run] feeds
    per-worker busy time. Everything aggregates into one process-global
    registry (keyed by view name, bounded cardinality) that renders as
    [workload_profile.json] — the cost-model artifact view selection will
    consume — and as [minview_workload_*] gauges.

    All note functions are cheap no-ops while {!Metrics.enabled} is
    false. *)

type view_stats
(** Per-view accumulator: hot-key sketches plus read/write/netting
    counters. Handles are stable for the process lifetime — {!reset} zeroes
    them in place, so engines and servers may cache one per view. *)

val view : string -> view_stats
(** Registry lookup-or-create. At most 64 distinct views are tracked;
    later names share one ["_other"] accumulator (bounded cardinality, same
    rule as the serve read counters). *)

val view_name : view_stats -> string

val sample_mask : int
(** Sketch feeds are sampled: a producer keeps its own plain event
    counter and calls {!note_hot_key} only when
    [counter land sample_mask = 0] (one event in thirty-two), so unsampled
    events pay for no key hashing, no label closure, and nothing
    shared. *)

val note_hot_key :
  ?weight:int -> view_stats -> hash:int -> label:(unit -> string) -> unit
(** Feed one {e sampled} group-key touch of [weight] netted operations
    (the sampling scale-up happens here, keeping frequency estimates
    unbiased) into the Space-Saving top-k and count-min sketches. [label]
    is only forced when the key first enters the top-k summary. *)

val flush_writes : view_stats -> writes:int -> events:int -> unit
(** Fold a producer's locally accumulated exact totals — [writes] netted
    operations over [events] group-key touches — into the view's
    counters; the engine calls this once per applied batch. *)

val note_batch :
  view_stats -> deltas_in:int -> netted:int -> applied:int -> unit
(** Netting outcome of one maintenance batch ([netted <= deltas_in];
    their ratio is the skew-driven compaction win). *)

val note_read :
  view_stats -> verb:[ `Query | `Reconstruct ] -> lag:int -> unit
(** One serve-path read pinned [lag] epochs behind the published head. *)

val note_shard_run : workers:int -> busy:float array -> unit
(** Per-worker busy seconds of one parallel shard dispatch; accumulates
    the heat map and appends max/mean imbalance to the time-series ring. *)

val note_shard_ops : int array -> unit
(** Per-shard applied-operation counts for one batch (index = shard id). *)

(** {1 Profile} *)

val profile_schema : int

val profile_json : unit -> string
(** The full workload profile as one line of JSON: per-view write/read
    counts and rates, update/read ratio, skew (hot-key share, compaction
    ratio), top-k hot keys with estimate and error bound, the count-min
    matrix, the epoch-lag distribution, and the shard heat map. Sketch
    hashes are serialized as strings — OCaml ints exceed exact-double
    range. *)

val write_profile : path:string -> unit
(** Atomically (tmp + rename) write {!profile_json} to [path]. *)

val load_profile : path:string -> bool
(** Additively merge a persisted profile (same schema) back into the live
    registry: sketch contents, counters and observed elapsed time all
    accumulate, so restore-then-replay matches the snapshot + WAL
    discipline. [false] when the file is missing or unreadable. *)

val elapsed_s : unit -> float
(** Observed workload seconds: time since the first recorded event in this
    process plus any elapsed time restored by {!load_profile}. *)

val refresh_gauges : unit -> unit
(** Register/update the [minview_workload_*] gauges from current state so
    a Prometheus scrape or JSON dump sees fresh values. Only views with
    activity register anything. *)

val reset : unit -> unit
(** Zero all accumulators in place (handles stay valid). *)
