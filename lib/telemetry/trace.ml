(* Lightweight span tracer: a bounded ring of recent spans plus a pluggable
   sink. The ring answers "what did the last N pipeline phases cost" without
   any collector infrastructure; the JSONL sink turns the same stream into a
   file a notebook or jq can chew on.

   Spans are recorded at END time (a span that never finishes is never
   recorded) and carry wall-clock start, duration and a small bag of string
   attributes. Everything is guarded by one mutex — tracing is for
   phase-level events (tens per batch), not per-row hot paths. *)

type span = {
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

type sink = Null | Memory | Jsonl of string

let capacity = 512

type state = {
  mutable sink : sink;
  ring : span option array;
  mutable next : int;  (* ring slot for the next span *)
  mutable total : int; (* spans recorded since last [clear] *)
  mutable jsonl : Jsonl_sink.t option;
  mutable rotate_max_bytes : int;
  mutable rotate_keep : int;
}

let state =
  {
    sink = Memory;
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    jsonl = None;
    rotate_max_bytes = Jsonl_sink.default_max_bytes;
    rotate_keep = Jsonl_sink.default_keep;
  }

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_to_json s =
  let attrs =
    s.attrs
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
    |> String.concat ","
  in
  Printf.sprintf "{\"name\":\"%s\",\"start_s\":%.6f,\"dur_s\":%.9f,\"attrs\":{%s}}"
    (json_escape s.name) s.start_s s.dur_s attrs

let close_jsonl () =
  match state.jsonl with
  | Some s ->
    Jsonl_sink.close s;
    state.jsonl <- None
  | None -> ()

let open_jsonl path =
  state.jsonl <-
    Some
      (Jsonl_sink.open_ ~max_bytes:state.rotate_max_bytes
         ~keep:state.rotate_keep path)

let set_sink sink =
  locked (fun () ->
      close_jsonl ();
      state.sink <- sink;
      match sink with
      | Jsonl path -> open_jsonl path
      | Null | Memory -> ())

let sink () = locked (fun () -> state.sink)

let set_rotation ~max_bytes ~keep =
  locked (fun () ->
      state.rotate_max_bytes <- max_bytes;
      state.rotate_keep <- max 1 keep;
      (* reopen a live sink so the new caps take effect immediately *)
      match state.sink with
      | Jsonl path ->
        close_jsonl ();
        open_jsonl path
      | Null | Memory -> ())

let record span =
  locked (fun () ->
      match state.sink with
      | Null -> ()
      | Memory ->
        state.ring.(state.next) <- Some span;
        state.next <- (state.next + 1) mod capacity;
        state.total <- state.total + 1
      | Jsonl _ ->
        state.ring.(state.next) <- Some span;
        state.next <- (state.next + 1) mod capacity;
        state.total <- state.total + 1;
        (match state.jsonl with
        | Some s -> Jsonl_sink.write_line s (span_to_json span)
        | None -> ()))

let with_span ?(attrs = []) name f =
  if Metrics.enabled () then begin
    let t0 = Metrics.now_s () in
    let finish () =
      record { name; start_s = t0; dur_s = Metrics.now_s () -. t0; attrs }
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end
  else f ()

let event ?(attrs = []) name =
  if Metrics.enabled () then
    record { name; start_s = Metrics.now_s (); dur_s = 0.; attrs }

(* Most recent last (chronological order of recording). *)
let recent () =
  locked (fun () ->
      let n = min state.total capacity in
      let first = (state.next - n + capacity) mod capacity in
      List.init n (fun i ->
          match state.ring.((first + i) mod capacity) with
          | Some s -> s
          | None -> assert false))

let total () = locked (fun () -> state.total)

let clear () =
  locked (fun () ->
      Array.fill state.ring 0 capacity None;
      state.next <- 0;
      state.total <- 0)
