(** Per-transaction lineage records and the sampling drift auditor.

    Lineage answers "which base-table deltas produced this view change".
    Every committed warehouse transaction leaves one {!record} keyed by
    its WAL sequence number, describing the batch's flow through the
    pipeline: raw deltas per base table, then per view [deltas in ->
    netted -> operations applied], then per auxiliary view the net change
    in resident rows versus the detail rows they represent (the excess of
    detail over resident change is the duplicate-compression fold
    absorbed by the batch), and finally the net change in view groups.

    Records live in a bounded in-memory ring of {!ring_capacity} entries
    (queryable with {!recent}); when a sink is set they are additionally
    persisted as one JSON object per line, rotated like the trace sink.
    The warehouse points the sink at [lineage.jsonl] next to [wal.bin],
    so each line sits alongside the WAL [Batch] commit marker with the
    same sequence number. Rolled-back transactions never reach {!emit}.

    Collection obeys the [TELEMETRY=off] kill switch: {!emit} is a no-op
    while telemetry is disabled. *)

type aux_flow = {
  aux : string;  (** auxiliary view name *)
  base : string;  (** base table it minimizes *)
  resident_delta : int;  (** net change in stored (compressed) rows *)
  detail_delta : int;  (** net change in detail rows represented *)
  folded : int;
      (** detail rows absorbed without new resident rows:
          [max 0 (detail_delta - resident_delta)] *)
}

type view_flow = {
  view : string;
  mode : string;  (** ["serial"] or ["parallel"] *)
  deltas_in : int;  (** deltas routed to this view's engine *)
  netted : int;  (** after net-effect compaction (= [deltas_in] serially) *)
  applied : int;  (** operations actually issued to aux/view state *)
  group_delta : int;  (** net change in view group count *)
  aux_flows : aux_flow list;  (** in view table order *)
}

type record = {
  txn : int;  (** WAL sequence number of the committing batch *)
  tables : (string * int) list;  (** base table -> raw deltas, sorted *)
  flows : view_flow list;  (** one per registered view *)
}

val ring_capacity : int
(** In-memory record ring size (256). *)

val emit : record -> unit
(** Record a committed transaction: bump
    [minview_lineage_records_total], push onto the ring, append to the
    sink if set, and emit a [lineage.record] trace event. No-op while
    telemetry is disabled. *)

val recent : ?txn:int -> ?table:string -> unit -> record list
(** Up to {!ring_capacity} most recent records, oldest first,
    optionally filtered by exact transaction sequence and/or by base
    table touched. *)

val clear : unit -> unit
(** Drop the in-memory ring (the sink file is left alone). *)

val set_sink : string option -> unit
(** [Some path] opens (append, size-capped rotation as in
    {!Jsonl_sink}) the JSONL persistence file; [None] closes it. *)

val sink_path : unit -> string option
val record_to_json : record -> string

(** {1 Drift auditor}

    A generic sampling cross-check harness. The caller owns the
    recompute logic; the harness owns deterministic sample selection and
    the divergence accounting ([minview_lineage_audit_checked_total] /
    [minview_lineage_audit_divergences_total] counters, both labelled by
    view, plus a [lineage.audit] trace event). *)

val sample_indices : sample:int -> total:int -> int list
(** Up to [sample] evenly spaced indices in [\[0, total)], ascending;
    all of them when [sample >= total]. Deterministic. *)

val audit :
  view:string -> sample:int -> total:int -> check:(int -> bool) -> int * int
(** [audit ~view ~sample ~total ~check] runs [check] on each sampled
    index and returns [(checked, divergences)] where a divergence is a
    [check] returning [false]. The checks always run; only the counters
    and the trace event obey the telemetry switch. *)
