(** Snapshot renderers: JSON lines and Prometheus text exposition.

    Factored out of the [Telemetry] facade so {!Http_exporter} can render
    scrapes without a dependency cycle; the facade re-exports everything
    here under its historical names. *)

val json_float : float -> string
(** JSON-safe float: nan maps to [null], infinities to signed ["Inf"]
    strings, integers render without an exponent. *)

val snap_to_json : Metrics.snap -> string
(** One-line JSON object for a single metric. Histograms carry
    [count]/[sum]/[avg] next to [min]/[max], the [p50]/[p95]/[p99]
    percentile estimates and the raw buckets, so external tooling can
    compute averages without rebinning. *)

val dump_json : unit -> string
(** All metrics, one JSON object per line, sorted by (name, labels). *)

val to_prometheus : unit -> string
(** Prometheus text exposition. Every family gets [# HELP] (with a
    placeholder when no help text was registered) and [# TYPE] lines;
    histograms emit cumulative [_bucket{le=...}] series plus
    [_sum]/[_count], followed by [NAME_p50]/[_p95]/[_p99] gauge families
    with per-label-set percentile estimates. The output opens with a
    [minview_build_info{ocaml_version,sha}] gauge (sha from
    [$MINVIEW_BUILD_SHA], ["unknown"] otherwise) so scrapes are
    self-describing. *)
