(* Lineage records: a bounded ring of per-transaction flow summaries plus
   an optional rotating JSONL file. Emission happens once per committed
   batch (never per row), so a single mutex is plenty. *)

type aux_flow = {
  aux : string;
  base : string;
  resident_delta : int;
  detail_delta : int;
  folded : int;
}

type view_flow = {
  view : string;
  mode : string;
  deltas_in : int;
  netted : int;
  applied : int;
  group_delta : int;
  aux_flows : aux_flow list;
}

type record = {
  txn : int;
  tables : (string * int) list;
  flows : view_flow list;
}

let ring_capacity = 256

type state = {
  ring : record option array;
  mutable next : int;
  mutable total : int;
  mutable jsonl : Jsonl_sink.t option;
}

let state =
  { ring = Array.make ring_capacity None; next = 0; total = 0; jsonl = None }

let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let records_total =
  Metrics.Counter.make
    ~help:"Lineage records emitted for committed transactions"
    "minview_lineage_records_total"

let audit_checked view =
  Metrics.Counter.make ~help:"Group keys cross-checked by the drift auditor"
    ~labels:[ ("view", view) ]
    "minview_lineage_audit_checked_total"

let audit_divergences view =
  Metrics.Counter.make
    ~help:"Sampled group keys whose recomputation disagreed with the view"
    ~labels:[ ("view", view) ]
    "minview_lineage_audit_divergences_total"

(* --- JSON rendering ------------------------------------------------------ *)

let aux_flow_to_json a =
  Printf.sprintf
    "{\"aux\":\"%s\",\"base\":\"%s\",\"resident_delta\":%d,\"detail_delta\":%d,\"folded\":%d}"
    (Trace.json_escape a.aux) (Trace.json_escape a.base) a.resident_delta
    a.detail_delta a.folded

let view_flow_to_json f =
  Printf.sprintf
    "{\"view\":\"%s\",\"mode\":\"%s\",\"deltas_in\":%d,\"netted\":%d,\"applied\":%d,\"group_delta\":%d,\"aux\":[%s]}"
    (Trace.json_escape f.view) (Trace.json_escape f.mode) f.deltas_in f.netted
    f.applied f.group_delta
    (String.concat "," (List.map aux_flow_to_json f.aux_flows))

let record_to_json r =
  let tables =
    r.tables
    |> List.map (fun (t, n) ->
           Printf.sprintf "\"%s\":%d" (Trace.json_escape t) n)
    |> String.concat ","
  in
  Printf.sprintf "{\"txn\":%d,\"tables\":{%s},\"flows\":[%s]}" r.txn tables
    (String.concat "," (List.map view_flow_to_json r.flows))

(* --- emission ------------------------------------------------------------ *)

let set_sink = function
  | Some path ->
    locked (fun () ->
        (match state.jsonl with Some s -> Jsonl_sink.close s | None -> ());
        state.jsonl <- Some (Jsonl_sink.open_ path))
  | None ->
    locked (fun () ->
        match state.jsonl with
        | Some s ->
          Jsonl_sink.close s;
          state.jsonl <- None
        | None -> ())

let sink_path () =
  locked (fun () -> Option.map Jsonl_sink.path state.jsonl)

let emit r =
  if Metrics.enabled () then begin
    Metrics.Counter.one records_total;
    locked (fun () ->
        state.ring.(state.next) <- Some r;
        state.next <- (state.next + 1) mod ring_capacity;
        state.total <- state.total + 1;
        match state.jsonl with
        | Some s -> Jsonl_sink.write_line s (record_to_json r)
        | None -> ());
    let deltas = List.fold_left (fun acc (_, n) -> acc + n) 0 r.tables in
    Trace.event "lineage.record"
      ~attrs:
        [
          ("txn", string_of_int r.txn);
          ("tables", string_of_int (List.length r.tables));
          ("deltas", string_of_int deltas);
        ]
  end

let recent ?txn ?table () =
  let all =
    locked (fun () ->
        let n = min state.total ring_capacity in
        let first = (state.next - n + ring_capacity) mod ring_capacity in
        List.init n (fun i ->
            match state.ring.((first + i) mod ring_capacity) with
            | Some r -> r
            | None -> assert false))
  in
  all
  |> List.filter (fun r ->
         (match txn with Some t -> r.txn = t | None -> true)
         &&
         match table with
         | Some t -> List.mem_assoc t r.tables
         | None -> true)

let clear () =
  locked (fun () ->
      Array.fill state.ring 0 ring_capacity None;
      state.next <- 0;
      state.total <- 0)

(* --- drift auditor ------------------------------------------------------- *)

let sample_indices ~sample ~total =
  if total <= 0 || sample <= 0 then []
  else if sample >= total then List.init total Fun.id
  else List.init sample (fun i -> i * total / sample)

let audit ~view ~sample ~total ~check =
  let idxs = sample_indices ~sample ~total in
  let checked = List.length idxs in
  let divergences =
    List.fold_left (fun acc i -> if check i then acc else acc + 1) 0 idxs
  in
  if Metrics.enabled () then begin
    Metrics.Counter.inc (audit_checked view) checked;
    if divergences > 0 then
      Metrics.Counter.inc (audit_divergences view) divergences;
    Trace.event "lineage.audit"
      ~attrs:
        [
          ("view", view);
          ("checked", string_of_int checked);
          ("divergences", string_of_int divergences);
        ]
  end;
  (checked, divergences)
