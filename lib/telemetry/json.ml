(* Minimal JSON reader for the repo's own machine output (bench result
   files, slowlog/lineage JSONL, telemetry dumps). Zero dependencies;
   recursive descent over a string. Accepts exactly RFC 8259 syntax with
   two liberties that match our writers: top-level scalars are allowed,
   and [\uXXXX] escapes outside ASCII decode to ['?'] (none of our
   writers emit them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { s : string; mutable i : int }

let error c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" c.i m))) fmt

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> error c "expected %c, got %c" ch x
  | None -> error c "expected %c, got end of input" ch

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else error c "unrecognized literal"

let hex_digit = function
  | '0' .. '9' as ch -> Char.code ch - Char.code '0'
  | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
  | _ -> -1

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then error c "unterminated string";
    match c.s.[c.i] with
    | '"' -> c.i <- c.i + 1
    | '\\' ->
      c.i <- c.i + 1;
      (if c.i >= String.length c.s then error c "unterminated escape";
       match c.s.[c.i] with
       | '"' -> Buffer.add_char b '"'; c.i <- c.i + 1
       | '\\' -> Buffer.add_char b '\\'; c.i <- c.i + 1
       | '/' -> Buffer.add_char b '/'; c.i <- c.i + 1
       | 'n' -> Buffer.add_char b '\n'; c.i <- c.i + 1
       | 't' -> Buffer.add_char b '\t'; c.i <- c.i + 1
       | 'r' -> Buffer.add_char b '\r'; c.i <- c.i + 1
       | 'b' -> Buffer.add_char b '\b'; c.i <- c.i + 1
       | 'f' -> Buffer.add_char b '\012'; c.i <- c.i + 1
       | 'u' ->
         if c.i + 4 >= String.length c.s then error c "truncated \\u escape";
         let v =
           List.fold_left
             (fun acc k ->
               let d = hex_digit c.s.[c.i + k] in
               if d < 0 then error c "bad \\u escape" else (acc * 16) + d)
             0 [ 1; 2; 3; 4 ]
         in
         Buffer.add_char b (if v < 0x80 then Char.chr v else '?');
         c.i <- c.i + 5
       | ch -> error c "bad escape \\%c" ch);
      go ()
    | ch ->
      Buffer.add_char b ch;
      c.i <- c.i + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some f -> Num f
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.i <- c.i + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.i <- c.i + 1;
          List.rev ((k, v) :: acc)
        | _ -> error c "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.i <- c.i + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.i <- c.i + 1;
          elements (v :: acc)
        | Some ']' ->
          c.i <- c.i + 1;
          List.rev (v :: acc)
        | _ -> error c "expected , or ] in array"
      in
      Arr (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c "unexpected character %c" ch

let parse s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.i <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error m -> Error m

let parse_exn s =
  match parse s with Ok v -> v | Error m -> raise (Parse_error m)

(* --- accessors ----------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let path keys j =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some j) keys

let to_float = function
  | Num f -> Some f
  | Bool b -> Some (if b then 1. else 0.)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr l -> l | _ -> []
