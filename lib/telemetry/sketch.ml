(* Streaming sketches with the registry's per-domain cell layout (see
   metrics.ml): [ncells] cells indexed by the writing domain's id, merged
   on read. Unlike counters, a sketch update mutates several words (heap
   slots, an index table), so each cell carries a mutex instead of relying
   on atomics; the writer's own cell lock is uncontended unless two domain
   ids collide modulo [ncells], which stays correct and merely contends. *)

let ncells = 16
let cell_mask = ncells - 1
let cell_index () = (Domain.self () :> int) land cell_mask

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- Space-Saving heavy hitters ----------------------------------------- *)

(* Metwally/Agrawal/El Abbadi's Space-Saving with a binary min-heap on the
   counts instead of the classic stream-summary list: the list gives O(1)
   unit increments but weighted increments (the engine feeds compacted
   operations whose net count exceeds 1) degrade it to O(k); the heap is
   O(log k) for both. Invariants per cell: every tracked key overcounts
   ([count >= true]) and overcounts by at most [err] ([count - err <=
   true]); a key with true frequency > n/k is always tracked, because the
   evicted minimum can never exceed n/k. *)
module Space_saving = struct
  type slot = {
    mutable hash : int;
    mutable label : string;
    mutable count : int;
    mutable err : int;
    mutable pos : int;  (* index in the heap array, kept by sifts *)
  }

  type cell = {
    m : Mutex.t;
    mutable n : int;  (* stream weight seen by this cell *)
    heap : slot array;  (* slots [0 .. size-1] live, min-heap on count *)
    mutable size : int;
    index : (int, slot) Hashtbl.t;  (* key hash -> live slot *)
  }

  type t = { k : int; cells : cell array }

  type entry = { e_key : string; e_hash : int; e_est : int; e_err : int }

  let dummy = { hash = 0; label = ""; count = 0; err = 0; pos = -1 }

  let create ~k =
    if k < 1 then invalid_arg "Sketch.Space_saving.create: k must be >= 1";
    {
      k;
      cells =
        Array.init ncells (fun _ ->
            {
              m = Mutex.create ();
              n = 0;
              heap = Array.make k dummy;
              size = 0;
              index = Hashtbl.create (2 * k);
            });
    }

  let capacity t = t.k

  let swap c i j =
    let a = c.heap.(i) and b = c.heap.(j) in
    c.heap.(i) <- b;
    c.heap.(j) <- a;
    b.pos <- i;
    a.pos <- j

  let rec sift_up c i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if c.heap.(parent).count > c.heap.(i).count then begin
        swap c i parent;
        sift_up c parent
      end
    end

  let rec sift_down c i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < c.size && c.heap.(l).count < c.heap.(!smallest).count then
      smallest := l;
    if r < c.size && c.heap.(r).count < c.heap.(!smallest).count then
      smallest := r;
    if !smallest <> i then begin
      swap c i !smallest;
      sift_down c !smallest
    end

  (* Core update against one cell, caller holds the lock. *)
  let touch_cell t c ~weight ~hash ~label =
    c.n <- c.n + weight;
    match Hashtbl.find_opt c.index hash with
    | Some s ->
      s.count <- s.count + weight;
      sift_down c s.pos
    | None ->
      if c.size < t.k then begin
        let s = { hash; label = label (); count = weight; err = 0; pos = c.size } in
        c.heap.(c.size) <- s;
        c.size <- c.size + 1;
        sift_up c s.pos;
        Hashtbl.replace c.index hash s
      end
      else begin
        (* evict the minimum: the classic over-count hand-off — the new
           key inherits the minimum as both baseline and error bound *)
        let s = c.heap.(0) in
        Hashtbl.remove c.index s.hash;
        s.err <- s.count;
        s.count <- s.count + weight;
        s.hash <- hash;
        s.label <- label ();
        Hashtbl.replace c.index hash s;
        sift_down c 0
      end

  let touch ?(weight = 1) t ~hash ~label =
    if weight > 0 && Metrics.enabled () then begin
      let c = t.cells.(cell_index ()) in
      with_lock c.m (fun () -> touch_cell t c ~weight ~hash ~label)
    end

  let total t =
    Array.fold_left
      (fun acc c -> acc + with_lock c.m (fun () -> c.n))
      0 t.cells

  (* Conservative mergeable-summary combine (Agarwal et al.): sum the
     estimates of cells tracking the key; a full cell not tracking it may
     have absorbed up to its minimum counter of the key's occurrences, so
     charge that minimum to both the estimate and the error term. Keeps
     both per-entry bounds and the guaranteed-hitter property for the
     unlimited list (a key absent from every cell has true frequency at
     most the sum of the cell minima <= n/k). *)
  let merged t =
    let snaps =
      Array.map
        (fun c ->
          with_lock c.m (fun () ->
              let mn = if c.size = t.k then c.heap.(0).count else 0 in
              ( Array.init c.size (fun i ->
                    let s = c.heap.(i) in
                    { e_key = s.label; e_hash = s.hash; e_est = s.count;
                      e_err = s.err }),
                mn )))
        t.cells
    in
    let combined : (int, entry) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun (entries, _) ->
        Array.iter
          (fun e ->
            match Hashtbl.find_opt combined e.e_hash with
            | None -> Hashtbl.replace combined e.e_hash e
            | Some prev ->
              Hashtbl.replace combined e.e_hash
                {
                  prev with
                  e_est = prev.e_est + e.e_est;
                  e_err = prev.e_err + e.e_err;
                })
          entries)
      snaps;
    Hashtbl.fold
      (fun hash e acc ->
        let e =
          Array.fold_left
            (fun e (entries, mn) ->
              if
                mn > 0
                && not (Array.exists (fun x -> x.e_hash = hash) entries)
              then { e with e_est = e.e_est + mn; e_err = e.e_err + mn }
              else e)
            e snaps
        in
        e :: acc)
      combined []

  let top ?n t =
    let n = Option.value n ~default:t.k in
    let sorted =
      List.sort (fun a b -> compare (b.e_est, a.e_hash) (a.e_est, b.e_hash))
        (merged t)
    in
    List.filteri (fun i _ -> i < n) sorted

  let restore t entries ~total =
    let c = t.cells.(cell_index ()) in
    with_lock c.m (fun () ->
        let entries =
          List.sort (fun a b -> compare b.e_est a.e_est) entries
        in
        List.iter
          (fun e ->
            (* additive: merge with whatever the cell already tracks *)
            match Hashtbl.find_opt c.index e.e_hash with
            | Some s ->
              s.count <- s.count + e.e_est;
              s.err <- s.err + e.e_err;
              sift_down c s.pos
            | None ->
              if c.size < t.k then begin
                let s =
                  { hash = e.e_hash; label = e.e_key; count = e.e_est;
                    err = e.e_err; pos = c.size }
                in
                c.heap.(c.size) <- s;
                c.size <- c.size + 1;
                sift_up c s.pos;
                Hashtbl.replace c.index e.e_hash s
              end)
          entries;
        c.n <- c.n + total)

  let reset t =
    Array.iter
      (fun c ->
        with_lock c.m (fun () ->
            Hashtbl.reset c.index;
            Array.fill c.heap 0 t.k dummy;
            c.size <- 0;
            c.n <- 0))
      t.cells
end

(* --- count-min ----------------------------------------------------------- *)

module Count_min = struct
  type cell = { m : Mutex.t; rows : int array array; mutable n : int }
  type t = { depth : int; width : int; mask : int; cells : cell array }

  (* Row hashes derived from the caller's single hash by splitmix-style
     finalization with a per-row odd seed: cheap, stateless, and distinct
     rows see effectively independent bucket choices. *)
  let mix h seed =
    let h = (h lxor seed) * 0x2545F4914F6CDD1 in
    let h = h lxor (h lsr 29) in
    let h = h * 0x9E3779B97F4A7C1 in
    h lxor (h lsr 32)

  let row_seed r = (2 * r) + 0x9E3779B9

  let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (2 * acc)

  let create ?(depth = 3) ?(width = 512) () =
    if depth < 1 then invalid_arg "Sketch.Count_min.create: depth must be >= 1";
    if width < 1 then invalid_arg "Sketch.Count_min.create: width must be >= 1";
    let width = pow2_at_least width 1 in
    {
      depth;
      width;
      mask = width - 1;
      cells =
        Array.init ncells (fun _ ->
            {
              m = Mutex.create ();
              rows = Array.init depth (fun _ -> Array.make width 0);
              n = 0;
            });
    }

  let depth t = t.depth
  let width t = t.width
  let bucket t r hash = mix hash (row_seed r) land t.mask

  let add ?(weight = 1) t ~hash =
    if weight > 0 && Metrics.enabled () then begin
      let c = t.cells.(cell_index ()) in
      with_lock c.m (fun () ->
          for r = 0 to t.depth - 1 do
            let b = bucket t r hash in
            c.rows.(r).(b) <- c.rows.(r).(b) + weight
          done;
          c.n <- c.n + weight)
    end

  let estimate t ~hash =
    (* minimum over rows of the cell-summed (merged) matrix *)
    let est = ref max_int in
    for r = 0 to t.depth - 1 do
      let b = bucket t r hash in
      let v =
        Array.fold_left
          (fun acc c -> acc + with_lock c.m (fun () -> c.rows.(r).(b)))
          0 t.cells
      in
      if v < !est then est := v
    done;
    if !est = max_int then 0 else !est

  let rows t =
    let out = Array.init t.depth (fun _ -> Array.make t.width 0) in
    Array.iter
      (fun c ->
        with_lock c.m (fun () ->
            for r = 0 to t.depth - 1 do
              for b = 0 to t.width - 1 do
                out.(r).(b) <- out.(r).(b) + c.rows.(r).(b)
              done
            done))
      t.cells;
    out

  let total t =
    Array.fold_left
      (fun acc c -> acc + with_lock c.m (fun () -> c.n))
      0 t.cells

  let restore t ~rows ~total =
    let c = t.cells.(cell_index ()) in
    with_lock c.m (fun () ->
        Array.iteri
          (fun r row ->
            if r < t.depth then
              Array.iteri
                (fun b v ->
                  if b < t.width then c.rows.(r).(b) <- c.rows.(r).(b) + v)
                row)
          rows;
        c.n <- c.n + total)

  let reset t =
    Array.iter
      (fun c ->
        with_lock c.m (fun () ->
            Array.iter (fun row -> Array.fill row 0 t.width 0) c.rows;
            c.n <- 0))
      t.cells
end
