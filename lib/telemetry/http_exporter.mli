(** A zero-dependency HTTP exporter for metric scrapes.

    Serves three GET routes from a single-domain accept loop, one request
    per connection ([Connection: close]):

    {ul
    {- [/metrics] — Prometheus text exposition ({!Render.to_prometheus}),
       preceded by a runtime sample when no per-commit sampler is armed
       ({!Runtime.scrape_sample}).}
    {- [/healthz] — runs the health thunk; [200] with
       [{"status":"ok",...}] when every check passes, [503] with
       [{"status":"degraded",...}] otherwise. Each check appears as
       [{"name","ok","detail"}].}
    {- [/profile] — on-demand profile: current [Gc.quick_stat] plus every
       histogram snapshot as JSON.}}

    Unknown paths get 404; non-GET methods get 405. *)

type check = { check_name : string; check_ok : bool; check_detail : string }

val healthy : check list -> bool
(** All checks ok (vacuously true when empty). *)

type t

val create : ?backlog:int -> port:int -> health:(unit -> check list) -> unit -> t
(** Bind and listen on [127.0.0.1:port] ([port = 0] picks an ephemeral
    port — read it back with {!port}). [health] is evaluated per
    [/healthz] request, on the exporter's domain: it must only read
    atomics/immutable state. Registers
    [minview_export_requests_total{path}] over the closed path set
    [metrics|healthz|profile|other].
    @raise Sys_error when binding fails. *)

val port : t -> int

val run : t -> unit
(** Accept and serve until {!request_stop}; then close the listening
    socket and return. Run it on a dedicated domain next to a serve loop,
    or directly for a standalone exporter. *)

val request_stop : t -> unit
(** Ask a running {!run} to stop after the current poll (async-signal-safe:
    one atomic store). *)

val requests : t -> int
(** Requests handled so far. *)
