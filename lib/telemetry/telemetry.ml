(* Library entry point: re-export the registry and tracer, and render
   snapshots as JSON lines or Prometheus text exposition. *)

module Metrics = Metrics
module Trace = Trace
module Lineage = Lineage
module Jsonl_sink = Jsonl_sink
module Counter = Metrics.Counter
module Gauge = Metrics.Gauge
module Histogram = Metrics.Histogram

let enabled = Metrics.enabled

(* Time [f] once and record it both as a histogram observation and as a
   span — the common shape for pipeline phases. *)
let with_phase ?(attrs = []) hist name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let t0 = Metrics.now_s () in
    let finish () =
      let dur_s = Metrics.now_s () -. t0 in
      Metrics.Histogram.observe hist dur_s;
      Trace.record { Trace.name; start_s = t0; dur_s; attrs }
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end
let set_enabled = Metrics.set_enabled
let configure_from_env = Metrics.configure_from_env
let now_s = Metrics.now_s
let snapshot = Metrics.snapshot
let reset = Metrics.reset

(* JSON-safe float: JSON has no nan/inf, so map them to null / signed
   "Inf" strings; integers render without an exponent. *)
let json_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "\"+Inf\""
  else if f = neg_infinity then "\"-Inf\""
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let json_labels labels =
  labels
  |> List.map (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (Trace.json_escape k)
           (Trace.json_escape v))
  |> String.concat ","

let snap_to_json (s : Metrics.snap) =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"labels\":{%s}"
      (Trace.json_escape s.s_name)
      (json_labels s.s_labels)
  in
  match s.s_value with
  | Metrics.Counter_v v ->
    Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" common v
  | Metrics.Gauge_v v ->
    Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" common (json_float v)
  | Metrics.Histogram_v h ->
    let buckets =
      h.h_buckets |> Array.to_list
      |> List.map (fun (le, n) ->
             Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) n)
      |> String.concat ","
    in
    Printf.sprintf
      "{%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"buckets\":[%s]}"
      common h.h_count (json_float h.h_sum) (json_float h.h_min)
      (json_float h.h_max)
      (json_float (Metrics.percentile h 0.50))
      (json_float (Metrics.percentile h 0.95))
      (json_float (Metrics.percentile h 0.99))
      buckets

(* One metric per line: greppable, diffable, and a valid JSONL stream. *)
let dump_json () =
  snapshot () |> List.map snap_to_json |> String.concat "\n"

(* --- Prometheus text exposition ----------------------------------------- *)

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
           labels)
    ^ "}"

let to_prometheus () =
  let snaps = snapshot () in
  let buf = Buffer.create 4096 in
  let last_header = ref "" in
  let header name help kind =
    if !last_header <> name then begin
      last_header := name;
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Metrics.snap) ->
      let lbl extra = prom_labels (s.s_labels @ extra) in
      match s.s_value with
      | Metrics.Counter_v v ->
        header s.s_name s.s_help "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" s.s_name (lbl []) v)
      | Metrics.Gauge_v v ->
        header s.s_name s.s_help "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" s.s_name (lbl []) (prom_float v))
      | Metrics.Histogram_v h ->
        header s.s_name s.s_help "histogram";
        let cum = ref 0 in
        Array.iter
          (fun (le, n) ->
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                 (lbl [ ("le", prom_float le) ])
                 !cum))
          h.h_buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" s.s_name (lbl [])
             (prom_float h.h_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.s_name (lbl []) h.h_count))
    snaps;
  (* percentile estimates as separate gauge families, grouped per quantile
     so each synthetic family gets exactly one TYPE header *)
  let histograms =
    List.filter_map
      (fun (s : Metrics.snap) ->
        match s.s_value with
        | Metrics.Histogram_v h -> Some (s, h)
        | _ -> None)
      snaps
  in
  if histograms <> [] then
    List.iter
      (fun (suffix, q) ->
        last_header := "";
        List.iter
          (fun ((s : Metrics.snap), h) ->
            let name = s.s_name ^ suffix in
            header name
              (Printf.sprintf "Estimated %g-quantile of %s" q s.s_name)
              "gauge";
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name
                 (prom_labels s.s_labels)
                 (prom_float (Metrics.percentile h q))))
          histograms)
      [ ("_p50", 0.50); ("_p95", 0.95); ("_p99", 0.99) ];
  Buffer.contents buf
