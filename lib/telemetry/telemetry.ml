(* Library entry point: re-export the registry, tracer, renderers, and the
   runtime/export surfaces added for the performance observatory. *)

module Metrics = Metrics
module Trace = Trace
module Lineage = Lineage
module Jsonl_sink = Jsonl_sink
module Render = Render
module Runtime = Runtime
module Http_exporter = Http_exporter
module Json = Json
module Sketch = Sketch
module Workload = Workload
module Counter = Metrics.Counter
module Gauge = Metrics.Gauge
module Histogram = Metrics.Histogram

let enabled = Metrics.enabled

(* Time [f] once and record it both as a histogram observation and as a
   span — the common shape for pipeline phases. When [alloc] is given, the
   calling domain's [Gc.allocated_bytes] delta over the thunk is observed
   too, so phases report bytes-allocated next to latency. *)
let with_phase ?(attrs = []) ?alloc hist name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let t0 = Metrics.now_s () in
    let a0 = match alloc with Some _ -> Gc.allocated_bytes () | None -> 0. in
    let finish () =
      let dur_s = Metrics.now_s () -. t0 in
      Metrics.Histogram.observe hist dur_s;
      (match alloc with
      | Some h -> Metrics.Histogram.observe h (Gc.allocated_bytes () -. a0)
      | None -> ());
      Trace.record { Trace.name; start_s = t0; dur_s; attrs }
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let set_enabled = Metrics.set_enabled
let configure_from_env = Metrics.configure_from_env
let now_s = Metrics.now_s
let snapshot = Metrics.snapshot
let reset = Metrics.reset

(* Renderers live in [Render] (so [Http_exporter] can use them without a
   cycle through this facade); the historical names stay. *)
let snap_to_json = Render.snap_to_json
let dump_json = Render.dump_json
let to_prometheus = Render.to_prometheus
