(* Rotating JSONL appender. Rotation is shift-style (logrotate's default
   scheme): the active file moves to [path.1], [path.i] to [path.i+1], and
   the oldest generation falls off the end. All IO errors are swallowed —
   a telemetry sink must never take the pipeline down with it. *)

type t = {
  path : string;
  max_bytes : int;
  keep : int;
  mutable oc : out_channel option;
}

let default_max_bytes = 64 * 1024 * 1024
let default_keep = 4

let open_channel path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  (* Open_append writes at EOF regardless, but [pos_out] only reflects the
     real offset once we seek there explicitly. *)
  (try seek_out oc (out_channel_length oc) with Sys_error _ -> ());
  oc

let open_ ?(max_bytes = default_max_bytes) ?(keep = default_keep) path =
  { path; max_bytes; keep = max 1 keep; oc = Some (open_channel path) }

let path t = t.path
let generation t i = Printf.sprintf "%s.%d" t.path i

let close t =
  match t.oc with
  | Some oc ->
    (try close_out oc with Sys_error _ -> ());
    t.oc <- None
  | None -> ()

let rotate t =
  close t;
  let last = t.keep - 1 in
  if last = 0 then (try Sys.remove t.path with Sys_error _ -> ())
  else begin
    (try Sys.remove (generation t last) with Sys_error _ -> ());
    for i = last - 1 downto 1 do
      if Sys.file_exists (generation t i) then (
        try Sys.rename (generation t i) (generation t (i + 1))
        with Sys_error _ -> ())
    done;
    try Sys.rename t.path (generation t 1) with Sys_error _ -> ()
  end;
  t.oc <- Some (open_channel t.path)

let write_line t line =
  (match t.oc with
  | Some oc when t.max_bytes > 0 && pos_out oc > t.max_bytes -> rotate t
  | _ -> ());
  match t.oc with
  | Some oc -> (
    try
      output_string oc line;
      output_char oc '\n';
      flush oc
    with Sys_error _ -> ())
  | None -> ()
