type point =
  | After_wal_append
  | Mid_engine_apply
  | Mid_checkpoint
  | Before_wal_truncate
  | After_truncate_rename
  | After_checkpoint_rename
  | Mid_group_commit
  | In_shard_worker
  | Wal_fsync

type mode = Kill | Fail | Stall of float

exception Crash of point
exception Injected of point

let all =
  [
    After_wal_append; Mid_engine_apply; Mid_checkpoint; Before_wal_truncate;
    After_truncate_rename; After_checkpoint_rename; Mid_group_commit;
    In_shard_worker; Wal_fsync;
  ]

let to_string = function
  | After_wal_append -> "after-wal-append"
  | Mid_engine_apply -> "mid-engine-apply"
  | Mid_checkpoint -> "mid-checkpoint"
  | Before_wal_truncate -> "before-wal-truncate"
  | After_truncate_rename -> "after-truncate-rename"
  | After_checkpoint_rename -> "after-checkpoint-rename"
  | Mid_group_commit -> "mid-group-commit"
  | In_shard_worker -> "in-shard-worker"
  | Wal_fsync -> "wal-fsync"

let of_string s = List.find_opt (fun p -> String.equal (to_string p) s) all

(* armed point, failure mode, and number of hits to survive before firing *)
let state : (point * mode * int ref) option ref = ref None

let arm ?(skip = 0) ?(mode = Kill) point = state := Some (point, mode, ref skip)
let disarm () = state := None
let armed () = Option.map (fun (p, _, _) -> p) !state

let hit point =
  match !state with
  (* a stall models a wedged *worker*: hits on the main domain neither fire
     nor consume the trigger, so the sleep always lands on a spawned domain *)
  | Some (p, Stall _, _) when p = point && Domain.is_main_domain () -> ()
  | Some (p, mode, remaining) when p = point ->
    if !remaining = 0 then begin
      (* disarm first: recovery code running in the same process after the
         simulated fault must not trip again at the same point *)
      disarm ();
      (* registered lazily — faults are rare and injected *)
      Telemetry.Counter.one
        (Telemetry.Counter.make
           ~labels:
             [
               ("point", to_string point);
               ( "mode",
                 match mode with
                 | Kill -> "kill"
                 | Fail -> "fail"
                 | Stall _ -> "stall" );
             ]
           ~help:"Injected faults raised at this crash point"
           "minview_faults_crashes_total");
      match mode with
      | Kill -> raise (Crash point)
      | Fail -> raise (Injected point)
      | Stall seconds -> Unix.sleepf seconds
    end
    else decr remaining
  | Some _ | None -> ()

let env_var = "MINVIEW_FAULT"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec ->
    (* "<point>[:skip]" kills the process at the point; "fail:<point>[:skip]"
       raises the recoverable Injected fault instead *)
    let mode, spec =
      let prefix = "fail:" in
      if
        String.length spec > String.length prefix
        && String.equal (String.sub spec 0 (String.length prefix)) prefix
      then
        (Fail, String.sub spec (String.length prefix)
                 (String.length spec - String.length prefix))
      else (Kill, spec)
    in
    let name, skip =
      match String.index_opt spec ':' with
      | None -> (spec, 0)
      | Some i ->
        ( String.sub spec 0 i,
          match
            int_of_string_opt
              (String.sub spec (i + 1) (String.length spec - i - 1))
          with
          | Some n when n >= 0 -> n
          | Some _ | None ->
            invalid_arg
              (Printf.sprintf "%s: bad skip count in %S" env_var spec) )
    in
    (match of_string name with
    | Some p -> arm ~skip ~mode p
    | None ->
      invalid_arg
        (Printf.sprintf "%s: unknown crash point %S (known: %s)" env_var name
           (String.concat ", " (List.map to_string all))))
