type point =
  | After_wal_append
  | Mid_engine_apply
  | Mid_checkpoint
  | Before_wal_truncate
  | After_truncate_rename
  | Mid_group_commit

exception Crash of point

let all =
  [
    After_wal_append; Mid_engine_apply; Mid_checkpoint; Before_wal_truncate;
    After_truncate_rename; Mid_group_commit;
  ]

let to_string = function
  | After_wal_append -> "after-wal-append"
  | Mid_engine_apply -> "mid-engine-apply"
  | Mid_checkpoint -> "mid-checkpoint"
  | Before_wal_truncate -> "before-wal-truncate"
  | After_truncate_rename -> "after-truncate-rename"
  | Mid_group_commit -> "mid-group-commit"

let of_string s = List.find_opt (fun p -> String.equal (to_string p) s) all

(* armed point and number of hits to survive before crashing *)
let state : (point * int ref) option ref = ref None

let arm ?(skip = 0) point = state := Some (point, ref skip)
let disarm () = state := None
let armed () = Option.map fst !state

let hit point =
  match !state with
  | Some (p, remaining) when p = point ->
    if !remaining = 0 then begin
      (* disarm first: recovery code running in the same process after the
         simulated crash must not crash again at the same point *)
      disarm ();
      (* registered lazily — crashes are rare and injected *)
      Telemetry.Counter.one
        (Telemetry.Counter.make
           ~labels:[ ("point", to_string point) ]
           ~help:"Injected crashes raised at this crash point"
           "minview_faults_crashes_total");
      raise (Crash point)
    end
    else decr remaining
  | Some _ | None -> ()

let env_var = "MINVIEW_FAULT"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec ->
    let name, skip =
      match String.index_opt spec ':' with
      | None -> (spec, 0)
      | Some i ->
        ( String.sub spec 0 i,
          match
            int_of_string_opt
              (String.sub spec (i + 1) (String.length spec - i - 1))
          with
          | Some n when n >= 0 -> n
          | Some _ | None ->
            invalid_arg
              (Printf.sprintf "%s: bad skip count in %S" env_var spec) )
    in
    (match of_string name with
    | Some p -> arm ~skip p
    | None ->
      invalid_arg
        (Printf.sprintf "%s: unknown crash point %S (known: %s)" env_var name
           (String.concat ", " (List.map to_string all))))
