(* Slots are 32-bit entries packed in [Bytes] — row ids are segment offsets
   and stay far below 2^31, and halving the slot width matters: the slot
   table is the largest per-row overhead of the columnar representation
   (the bytes/aux-row numbers in BENCH_columnar.json count it).

   Slot encoding: [empty] never held an entry (terminates probe chains);
   [tombstone] held one once (does not terminate chains). *)
let empty = -1
let tombstone = -2

type t = {
  hash : int -> int;
  mutable slots : Bytes.t;  (** 4 bytes per slot, native endian *)
  mutable mask : int;
  mutable live : int;
  mutable fill : int;  (** live + tombstones *)
}

let slot_get slots i = Int32.to_int (Bytes.get_int32_ne slots (4 * i))
let slot_set slots i v = Bytes.set_int32_ne slots (4 * i) (Int32.of_int v)

(* every byte 0xff = each int32 slot reads as [empty] *)
let make_slots cap = Bytes.make (4 * cap) '\xff'

let rec pow2 n c = if c >= n then c else pow2 n (2 * c)

let create ?(hint = 8) ~hash () =
  let cap = pow2 (max 8 hint) 8 in
  { hash; slots = make_slots cap; mask = cap - 1; live = 0; fill = 0 }

let length t = t.live

let rehash t cap =
  let old = t.slots in
  let slots = make_slots cap in
  let mask = cap - 1 in
  for s = 0 to (Bytes.length old / 4) - 1 do
    let row = slot_get old s in
    if row >= 0 then begin
      let i = ref (t.hash row land mask) in
      while slot_get slots !i <> empty do
        i := (!i + 1) land mask
      done;
      slot_set slots !i row
    end
  done;
  t.slots <- slots;
  t.mask <- mask;
  t.fill <- t.live

(* Grow when 3/4 full (counting tombstones); shrink tombstone load by
   rehashing in place when live entries alone would fit twice over. *)
let maybe_grow t =
  if 4 * (t.fill + 1) > 3 * (t.mask + 1) then
    rehash t
      (if 4 * (t.live + 1) > 3 * (t.mask + 1) / 2 then 2 * (t.mask + 1)
       else t.mask + 1)

let find t ~hash ~eq =
  let mask = t.mask and slots = t.slots in
  let rec probe i =
    let s = slot_get slots i in
    if s = empty then None
    else if s >= 0 && eq s then Some s
    else probe ((i + 1) land mask)
  in
  probe (hash land mask)

let add t ~hash row =
  maybe_grow t;
  let mask = t.mask and slots = t.slots in
  let rec probe i =
    let s = slot_get slots i in
    if s = empty || s = tombstone then begin
      slot_set slots i row;
      t.live <- t.live + 1;
      if s = empty then t.fill <- t.fill + 1
    end
    else probe ((i + 1) land mask)
  in
  probe (hash land mask)

let replace t ~hash ~eq row =
  let mask = t.mask and slots = t.slots in
  let rec probe i =
    let s = slot_get slots i in
    if s = empty then None
    else if s >= 0 && eq s then begin
      slot_set slots i row;
      Some s
    end
    else probe ((i + 1) land mask)
  in
  match probe (hash land mask) with
  | Some _ as prev -> prev
  | None ->
    add t ~hash row;
    None

let remove_value t ~hash row =
  let mask = t.mask and slots = t.slots in
  let rec probe i =
    let s = slot_get slots i in
    if s = empty then false
    else if s = row then begin
      slot_set slots i tombstone;
      t.live <- t.live - 1;
      true
    end
    else probe ((i + 1) land mask)
  in
  probe (hash land mask)

let rename_value t ~hash ~old_row ~new_row =
  let mask = t.mask and slots = t.slots in
  let rec probe i =
    let s = slot_get slots i in
    if s = empty then false
    else if s = old_row then begin
      slot_set slots i new_row;
      true
    end
    else probe ((i + 1) land mask)
  in
  probe (hash land mask)

let iter t f =
  for i = 0 to t.mask do
    let s = slot_get t.slots i in
    if s >= 0 then f s
  done

let copy t ~hash = { t with hash; slots = Bytes.copy t.slots }
let byte_size t = Bytes.length t.slots
