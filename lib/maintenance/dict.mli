(** Append-only interned string dictionaries for dictionary-encoded columns.

    A dictionary maps each distinct string to a dense [int] code and back.
    Codes are append-only: once assigned, a code's string never changes, so
    columnar cells can store the code and decode lazily. Dictionaries are
    shared per (table, column) through a {!pool}, so the root auxiliary
    view, the dimension auxiliary views and the view state all intern e.g.
    "product.brand" values once.

    Concurrency: {!intern} takes a mutex (writers are the serial routing
    phase or shard-owned appliers interning pre-routed values). {!decode},
    {!hash} and {!size} are lock-free: the backing arrays are published with
    [Atomic.set] before the size bump, and readers load the size first, so
    any code below the observed size reads fully-initialized slots (the
    OCaml 5 memory model's release/acquire pairing on atomics). *)

type t

(** A fresh private dictionary (used when a column is not pooled). *)
val create : unit -> t

(** [intern d s] returns the code of [s], assigning the next free code on
    first sight. Thread-safe. *)
val intern : t -> string -> int

(** [decode d c] is the string of code [c]. Lock-free.
    @raise Invalid_argument if [c] was never assigned. *)
val decode : t -> int -> string

(** [hash d c] is [Relational.Value.hash (String (decode d c))], precomputed
    at intern time so probe paths never re-hash the string. Lock-free. *)
val hash : t -> int -> int

(** Number of assigned codes. Lock-free. *)
val size : t -> int

(** Heap bytes held by the dictionary: both tables, the code/hash arrays and
    the interned strings themselves. *)
val byte_size : t -> int

(** {2 Pools}

    One pool per maintenance engine; dictionaries are keyed by
    ["table.column"] so every state storing the same base column shares one
    dictionary. Pool lookup is not thread-safe — states are created during
    serial engine initialization. *)

type pool

val create_pool : unit -> pool

(** [shared pool ~table ~column] is the pooled dictionary for
    [table.column], created on first request. *)
val shared : pool -> table:string -> column:string -> t
