(** Open-addressing hash index from keys stored {e in} columnar rows to row
    ids.

    A [Rowmap] never stores keys: a slot holds only a row id, and the key
    lives in the owning state's columns. Probing therefore takes the key's
    hash plus an equality closure over row ids; resizing rehashes via the
    [hash] closure given at creation (which reads the current cells of a
    row). Linear probing with tombstones — removals never break probe
    chains. *)

type t

(** [create ~hash ()] with [hash row] = the hash of row [row]'s key cells
    (must agree with the hash callers pass to the probe operations). *)
val create : ?hint:int -> hash:(int -> int) -> unit -> t

(** Number of live entries. *)
val length : t -> int

(** [find t ~hash ~eq] is the row of the unique entry whose key matches
    ([eq row] decides), if present. *)
val find : t -> hash:int -> eq:(int -> bool) -> int option

(** [add t ~hash row] inserts an entry. The caller guarantees no entry with
    an equal key exists. *)
val add : t -> hash:int -> int -> unit

(** [replace t ~hash ~eq row] upserts, returning the replaced entry's row
    (steal semantics for by-key maps). *)
val replace : t -> hash:int -> eq:(int -> bool) -> int -> int option

(** [remove_value t ~hash row] removes the entry holding exactly [row]
    (searched along [hash]'s probe chain); [false] if absent. *)
val remove_value : t -> hash:int -> int -> bool

(** [rename_value t ~hash ~old_row ~new_row] re-points the entry holding
    [old_row] (searched along [hash]'s probe chain) at [new_row]; [false]
    if absent. Used when swap-with-last deletion renumbers a row. *)
val rename_value : t -> hash:int -> old_row:int -> new_row:int -> bool

(** Iterate over live rows (arbitrary order). *)
val iter : t -> (int -> unit) -> unit

(** [copy t ~hash] duplicates the slot table; [hash] must read the {e new}
    owner's columns. *)
val copy : t -> hash:(int -> int) -> t

val byte_size : t -> int
