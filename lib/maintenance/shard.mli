(** Domain pool for shard-parallel maintenance.

    Worker domains are spawned lazily on the first multi-worker {!run} and
    kept parked on a condition variable between jobs, so the (substantial)
    domain-spawn cost is paid once per pool rather than once per phase.
    Parked workers sit in a blocking section: they burn no CPU and do not
    delay other domains' collections, and the process exits normally while
    they are parked — pools need no explicit shutdown.

    Supervision: a pool created with [?deadline] bounds how long the caller
    waits for each spawned worker per {!run}. A worker that exceeds it is
    {e wedged}: {!Wedged} is raised on the caller and the pool is poisoned —
    the wedged domain cannot be cancelled, so it is abandoned (it leaks, by
    design) and a fresh worker set is spawned on the next multi-worker run.
    Every worker slot is drained (each within the deadline) before {!Wedged}
    is raised, so all non-wedged workers are quiescent when the caller sees
    the failure; the wedged domain itself, however, may still be executing
    its job and can resume mutating whatever state the job closes over at
    any later time — after {!Wedged}, callers must abandon that state
    (replace it wholesale), never roll it back or re-apply over it in
    place. Worker failures of either kind are counted as
    [minview_shard_worker_failures_total{kind="raised"|"wedged"}].

    A pool must be driven from one domain at a time.  Pools are runtime-only
    objects (they hold mutexes) and must not be marshalled. *)

type pool

(** A spawned worker did not finish its job within the pool's deadline.
    The pool is poisoned when this is raised; the next {!run} respawns its
    workers. *)
exception Wedged of { worker : int; waited : float }

(** @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> pool

(** As {!create}, with a per-worker-per-run [deadline] in seconds.
    @raise Invalid_argument if [domains < 1] or [deadline <= 0]. *)
val supervised : domains:int -> deadline:float -> pool

val domains : pool -> int
val deadline : pool -> float option

(** One-domain pool: {!run} executes inline on the calling domain. *)
val serial : pool

(** [run pool ~workers f] runs [f w] for [w = 0 .. min pool.domains workers - 1],
    worker 0 on the calling domain, the rest on the pool's resident worker
    domains.  Returns once every worker has finished; if any worker raised,
    the exception of the lowest-indexed failing worker is re-raised (after
    all workers finished, so the pool is quiescent). With a pool deadline, a
    worker that overruns it raises {!Wedged} instead.

    Multi-worker runs pass the [Maintenance.Faults.In_shard_worker] fault
    point inside every worker's job — arming it in [Fail] mode injects a
    recoverable worker failure mid-parallel-apply. *)
val run : pool -> workers:int -> (int -> unit) -> unit

(** Static shard ownership: shard [s] belongs to worker [s mod workers]. *)
val owns : worker:int -> workers:int -> int -> bool
