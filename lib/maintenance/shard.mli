(** Domain pool for shard-parallel maintenance.

    Worker domains are spawned lazily on the first multi-worker {!run} and
    kept parked on a condition variable between jobs, so the (substantial)
    domain-spawn cost is paid once per pool rather than once per phase.
    Parked workers sit in a blocking section: they burn no CPU and do not
    delay other domains' collections, and the process exits normally while
    they are parked — pools need no explicit shutdown.

    A pool must be driven from one domain at a time.  Pools are runtime-only
    objects (they hold mutexes) and must not be marshalled. *)

type pool

(** @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> pool

val domains : pool -> int

(** One-domain pool: {!run} executes inline on the calling domain. *)
val serial : pool

(** [run pool ~workers f] runs [f w] for [w = 0 .. min pool.domains workers - 1],
    worker 0 on the calling domain, the rest on the pool's resident worker
    domains.  Returns once every worker has finished; if any worker raised,
    the exception of the lowest-indexed failing worker is re-raised. *)
val run : pool -> workers:int -> (int -> unit) -> unit

(** Static shard ownership: shard [s] belongs to worker [s mod workers]. *)
val owns : worker:int -> workers:int -> int -> bool
