module Value = Relational.Value
module BA1 = Bigarray.Array1

module Icol = struct
  type t = { mutable len : int; mutable cells : int array }

  let create () = { len = 0; cells = [||] }
  let length c = c.len

  let check c i op =
    if i < 0 || i >= c.len then
      invalid_arg (Printf.sprintf "Column.Icol.%s: row %d of %d" op i c.len)

  let get c i =
    check c i "get";
    c.cells.(i)

  let set c i v =
    check c i "set";
    c.cells.(i) <- v

  let add c i d =
    check c i "add";
    c.cells.(i) <- c.cells.(i) + d

  let append c v =
    if c.len = Array.length c.cells then begin
      let cells = Array.make (max 16 (2 * c.len)) 0 in
      Array.blit c.cells 0 cells 0 c.len;
      c.cells <- cells
    end;
    c.cells.(c.len) <- v;
    c.len <- c.len + 1

  let swap_delete c i =
    check c i "swap_delete";
    c.cells.(i) <- c.cells.(c.len - 1);
    c.len <- c.len - 1

  let copy c = { len = c.len; cells = Array.copy c.cells }
  let byte_size c = 8 * Array.length c.cells
end

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) BA1.t
type float_ba = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t
type code_ba = (int32, Bigarray.int32_elt, Bigarray.c_layout) BA1.t

(* Storage specializes on the first appended value; a later type mismatch
   (or a NULL) demotes the whole column to boxed cells. The relational
   layer's typed schemas make demotion rare in practice. *)
type storage =
  | S_empty
  | S_int of int_ba
  | S_float of float_ba
  | S_dict of { codes : code_ba; dict : Dict.t }
  | S_boxed of Value.t array

type t = {
  mutable len : int;
  mutable storage : storage;
  dict_hint : Dict.t option;
  boxed_only : bool;
}

let create ?dict () =
  { len = 0; storage = S_empty; dict_hint = dict; boxed_only = false }

let create_boxed () =
  { len = 0; storage = S_empty; dict_hint = None; boxed_only = true }

let length c = c.len

let check c i op =
  if i < 0 || i >= c.len then
    invalid_arg (Printf.sprintf "Column.%s: row %d of %d" op i c.len)

let get c i =
  check c i "get";
  match c.storage with
  | S_empty -> assert false
  | S_int a -> Value.Int a.{i}
  | S_float a -> Value.Float a.{i}
  | S_dict { codes; dict } -> Value.String (Dict.decode dict (Int32.to_int codes.{i}))
  | S_boxed a -> a.(i)

let grow_int (a : int_ba) n : int_ba =
  let b = BA1.create Bigarray.int Bigarray.c_layout (max 16 n) in
  BA1.blit a (BA1.sub b 0 (BA1.dim a));
  b

let grow_float (a : float_ba) n : float_ba =
  let b = BA1.create Bigarray.float64 Bigarray.c_layout (max 16 n) in
  BA1.blit a (BA1.sub b 0 (BA1.dim a));
  b

let grow_codes (a : code_ba) n : code_ba =
  let b = BA1.create Bigarray.int32 Bigarray.c_layout (max 16 n) in
  BA1.blit a (BA1.sub b 0 (BA1.dim a));
  b

(* Demote to boxed cells, materializing what is already stored. *)
let to_boxed c =
  let cells = Array.make (max 16 (2 * c.len)) Value.Null in
  (match c.storage with
  | S_empty -> ()
  | S_int a ->
    for i = 0 to c.len - 1 do
      cells.(i) <- Value.Int a.{i}
    done
  | S_float a ->
    for i = 0 to c.len - 1 do
      cells.(i) <- Value.Float a.{i}
    done
  | S_dict { codes; dict } ->
    for i = 0 to c.len - 1 do
      cells.(i) <- Value.String (Dict.decode dict (Int32.to_int codes.{i}))
    done
  | S_boxed a -> Array.blit a 0 cells 0 c.len);
  c.storage <- S_boxed cells

let specialize c v =
  if c.boxed_only then to_boxed c
  else
    match v with
    | Value.Int _ -> c.storage <- S_int (BA1.create Bigarray.int Bigarray.c_layout 16)
    | Value.Float _ ->
      c.storage <- S_float (BA1.create Bigarray.float64 Bigarray.c_layout 16)
    | Value.String _ ->
      let dict =
        match c.dict_hint with Some d -> d | None -> Dict.create ()
      in
      c.storage <-
        S_dict { codes = BA1.create Bigarray.int32 Bigarray.c_layout 16; dict }
    | Value.Null | Value.Bool _ -> to_boxed c

let intern_code dict s =
  let code = Dict.intern dict s in
  if code > 0x3FFFFFFF then
    invalid_arg "Column: dictionary exceeded 2^30 distinct strings";
  Int32.of_int code

let rec append c v =
  match c.storage, v with
  | S_empty, _ ->
    specialize c v;
    append c v
  | S_int a, Value.Int x ->
    let a = if c.len = BA1.dim a then grow_int a (2 * c.len) else a in
    a.{c.len} <- x;
    c.storage <- S_int a;
    c.len <- c.len + 1
  | S_float a, Value.Float x ->
    let a = if c.len = BA1.dim a then grow_float a (2 * c.len) else a in
    a.{c.len} <- x;
    c.storage <- S_float a;
    c.len <- c.len + 1
  | S_dict { codes; dict }, Value.String s ->
    let codes =
      if c.len = BA1.dim codes then grow_codes codes (2 * c.len) else codes
    in
    codes.{c.len} <- intern_code dict s;
    c.storage <- S_dict { codes; dict };
    c.len <- c.len + 1
  | S_boxed a, _ ->
    let a =
      if c.len = Array.length a then begin
        let b = Array.make (max 16 (2 * c.len)) Value.Null in
        Array.blit a 0 b 0 c.len;
        b
      end
      else a
    in
    a.(c.len) <- v;
    c.storage <- S_boxed a;
    c.len <- c.len + 1
  | (S_int _ | S_float _ | S_dict _), _ ->
    to_boxed c;
    append c v

let set c i v =
  check c i "set";
  match c.storage, v with
  | S_empty, _ -> assert false
  | S_int a, Value.Int x -> a.{i} <- x
  | S_float a, Value.Float x -> a.{i} <- x
  | S_dict { codes; dict }, Value.String s -> codes.{i} <- intern_code dict s
  | S_boxed a, _ -> a.(i) <- v
  | (S_int _ | S_float _ | S_dict _), _ -> (
    to_boxed c;
    match c.storage with S_boxed a -> a.(i) <- v | _ -> assert false)

let swap_delete c i =
  check c i "swap_delete";
  let l = c.len - 1 in
  (match c.storage with
  | S_empty -> assert false
  | S_int a -> a.{i} <- a.{l}
  | S_float a -> a.{i} <- a.{l}
  | S_dict { codes; _ } -> codes.{i} <- codes.{l}
  | S_boxed a ->
    a.(i) <- a.(l);
    (* release the vacated box for the GC *)
    a.(l) <- Value.Null);
  c.len <- l

let equal_cell c i v =
  check c i "equal_cell";
  match c.storage, v with
  | S_empty, _ -> assert false
  | S_int a, Value.Int x -> a.{i} = x
  | S_float a, Value.Float x -> Float.equal a.{i} x
  | S_dict { codes; dict }, Value.String s ->
    String.equal (Dict.decode dict (Int32.to_int codes.{i})) s
  | S_boxed a, _ -> Value.equal a.(i) v
  | (S_int _ | S_float _ | S_dict _), _ -> false

(* Must agree with [Value.hash] cell-for-cell: shard routing and map probes
   hash boxed tuples on one side and stored cells on the other. *)
let hash_cell c i =
  check c i "hash_cell";
  match c.storage with
  | S_empty -> assert false
  | S_int a -> Hashtbl.hash (0, a.{i})
  | S_float a -> Hashtbl.hash (1, a.{i})
  | S_dict { codes; dict } -> Dict.hash dict (Int32.to_int codes.{i})
  | S_boxed a -> Value.hash a.(i)

let add_cell c i v n =
  check c i "add_cell";
  match c.storage, v with
  | S_int a, Value.Int x -> a.{i} <- a.{i} + (x * n)
  | S_float a, Value.Float x -> a.{i} <- a.{i} +. (x *. float_of_int n)
  | S_float a, Value.Int x -> a.{i} <- a.{i} +. float_of_int (x * n)
  | _ ->
    (* generic fallback; a type-changing result (Int cell + Float operand)
       demotes the column via [set] *)
    set c i (Value.add (get c i) (Value.scale v n))

let sub_cell c i v n =
  check c i "sub_cell";
  match c.storage, v with
  | S_int a, Value.Int x -> a.{i} <- a.{i} - (x * n)
  | S_float a, Value.Float x -> a.{i} <- a.{i} -. (x *. float_of_int n)
  | S_float a, Value.Int x -> a.{i} <- a.{i} -. float_of_int (x * n)
  | _ -> set c i (Value.sub (get c i) (Value.scale v n))

let combine_ext c i v ~is_min =
  check c i "combine_ext";
  match c.storage, v with
  | S_int a, Value.Int x ->
    if (is_min && x < a.{i}) || ((not is_min) && x > a.{i}) then a.{i} <- x
  | _ ->
    let cur = get c i in
    let cmp = Value.compare v cur in
    if (is_min && cmp < 0) || ((not is_min) && cmp > 0) then set c i v

let copy c =
  let storage =
    match c.storage with
    | S_empty -> S_empty
    | S_int a ->
      let b = BA1.create Bigarray.int Bigarray.c_layout (BA1.dim a) in
      BA1.blit a b;
      S_int b
    | S_float a ->
      let b = BA1.create Bigarray.float64 Bigarray.c_layout (BA1.dim a) in
      BA1.blit a b;
      S_float b
    | S_dict { codes; dict } ->
      let b = BA1.create Bigarray.int32 Bigarray.c_layout (BA1.dim codes) in
      BA1.blit codes b;
      S_dict { codes = b; dict }
    | S_boxed a -> S_boxed (Array.copy a)
  in
  { c with storage }

let boxed_bytes v =
  match v with
  | Value.Null -> 0
  | Value.Int _ | Value.Float _ | Value.Bool _ -> 16
  | Value.String s -> 24 + (String.length s / 8 * 8) + 8

let offheap_bytes c =
  match c.storage with
  | S_empty | S_boxed _ -> 0
  | S_int a -> 8 * BA1.dim a
  | S_float a -> 8 * BA1.dim a
  | S_dict { codes; _ } -> 4 * BA1.dim codes

let byte_size c =
  match c.storage with
  | S_empty -> 0
  | S_int _ | S_float _ | S_dict _ -> offheap_bytes c
  | S_boxed a ->
    let bytes = ref (8 * Array.length a) in
    for i = 0 to c.len - 1 do
      bytes := !bytes + boxed_bytes a.(i)
    done;
    !bytes

let dict c =
  match c.storage with
  | S_dict { dict; _ } -> Some dict
  | S_empty | S_int _ | S_float _ | S_boxed _ -> None

let kind c =
  match c.storage with
  | S_empty -> "empty"
  | S_int _ -> "int"
  | S_float _ -> "float"
  | S_dict _ -> "dict"
  | S_boxed _ -> "boxed"
