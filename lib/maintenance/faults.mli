(** Fault injection: named crash points in the ingestion pipeline.

    A crash point marks a place where a real deployment could lose the
    process — power cut, OOM kill, operator error — or hit a transient
    failure (a flaky fsync, a worker domain dying). Tests (and the CLI, via
    the [MINVIEW_FAULT] environment variable) {!arm} a point; when the
    pipeline reaches it, {!hit} raises.

    Three failure modes:
    - [Kill] (the default) raises {!Crash}, which the warehouse deliberately
      never catches: the exception unwinds like a [kill -9], leaving the
      on-disk state exactly as a real crash would. Recovery code then has to
      cope with whatever was left behind.
    - [Fail] raises {!Injected}, a {e recoverable} fault: the supervised
      paths (WAL durability barriers, shard workers) catch it and exercise
      their retry / rollback / degradation machinery instead of dying.
    - [Stall seconds] sleeps at the point instead of raising, and only on a
      spawned (non-main) domain: it wedges a shard worker past a supervised
      pool's deadline while the worker eventually resumes — the
      slow-but-alive domain the wedge remedy must survive.

    The crash-point matrix (what is on disk when each point fires) is
    documented in DESIGN.md. *)

type point =
  | After_wal_append
      (** the batch is durable in the WAL; no engine has applied it *)
  | Mid_engine_apply
      (** the batch is durable; some engines applied it, the warehouse state
          was not yet swapped in *)
  | Mid_checkpoint
      (** a snapshot temp file is partially written; the previous snapshot
          and the full WAL are intact *)
  | Before_wal_truncate
      (** the new snapshot is in place; the WAL still holds the batches the
          snapshot already contains *)
  | After_truncate_rename
      (** the truncated WAL was renamed into place but the directory entry
          was not yet fsynced: after a power cut the old (stale) WAL may
          reappear, and replay must still converge *)
  | After_checkpoint_rename
      (** the new snapshot was renamed into place but the directory entry
          was not yet fsynced: a power cut may resurrect the previous
          snapshot, and the generation chain must still recover *)
  | Mid_group_commit
      (** a group commit flushed only part of its buffered frames to the OS
          before the power cut: the WAL ends in a torn record and replay must
          recover the durable prefix *)
  | In_shard_worker
      (** inside a shard worker's job, mid-parallel-apply: with [Fail] the
          supervisor must roll the transaction back and degrade to serial *)
  | Wal_fsync
      (** at the WAL durability barrier: with [Fail] models a transient
          fsync failure that the ingest retry policy must absorb *)

(** How an armed point fires: [Kill] simulates process death ({!Crash},
    never caught by the pipeline); [Fail] simulates a transient, recoverable
    fault ({!Injected}, absorbed by supervision/retry); [Stall seconds]
    sleeps at the point instead of raising — it models a wedged worker, so
    it only fires on a spawned (non-main) domain, and hits on the main
    domain neither fire nor consume the trigger. *)
type mode = Kill | Fail | Stall of float

(** The simulated process death. Deliberately not an [Error]-style
    exception: only test harnesses and the CLI top level may catch it. *)
exception Crash of point

(** The simulated transient fault; supervised paths catch it. *)
exception Injected of point

val all : point list

(** Stable kebab-case names ("after-wal-append", ...). *)
val to_string : point -> string

val of_string : string -> point option

(** [arm ?skip ?mode p] makes the [(skip+1)]-th {!hit} of [p] fire with
    [mode] (default [Kill]). Arming replaces any previously armed point; the
    trigger disarms itself before raising, so post-fault code in the same
    process runs clean. *)
val arm : ?skip:int -> ?mode:mode -> point -> unit

val disarm : unit -> unit
val armed : unit -> point option

(** Called by the pipeline at each crash point; no-op unless armed. *)
val hit : point -> unit

(** ["MINVIEW_FAULT"] — set to ["<point>"] or ["<point>:<skip>"] for a kill,
    or ["fail:<point>[:<skip>]"] for a recoverable injected fault. *)
val env_var : string

(** Arm from the environment (CLI entry point).
    @raise Invalid_argument on an unknown point name or bad skip. *)
val arm_from_env : unit -> unit
