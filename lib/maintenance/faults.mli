(** Fault injection: named crash points in the ingestion pipeline.

    A crash point marks a place where a real deployment could lose the
    process — power cut, OOM kill, operator error. Tests (and the CLI, via
    the [MINVIEW_FAULT] environment variable) {!arm} a point; when the
    pipeline reaches it, {!hit} raises {!Crash}, which the warehouse
    deliberately never catches: the exception unwinds like a [kill -9],
    leaving the on-disk state exactly as a real crash would. Recovery code
    then has to cope with whatever was left behind.

    The crash-point matrix (what is on disk when each point fires) is
    documented in DESIGN.md. *)

type point =
  | After_wal_append
      (** the batch is durable in the WAL; no engine has applied it *)
  | Mid_engine_apply
      (** the batch is durable; some engines applied it, the warehouse state
          was not yet swapped in *)
  | Mid_checkpoint
      (** a snapshot temp file is partially written; the previous snapshot
          and the full WAL are intact *)
  | Before_wal_truncate
      (** the new snapshot is in place; the WAL still holds the batches the
          snapshot already contains *)
  | After_truncate_rename
      (** the truncated WAL was renamed into place but the directory entry
          was not yet fsynced: after a power cut the old (stale) WAL may
          reappear, and replay must still converge *)
  | Mid_group_commit
      (** a group commit flushed only part of its buffered frames to the OS
          before the power cut: the WAL ends in a torn record and replay must
          recover the durable prefix *)

(** The simulated crash. Deliberately not an [Error]-style exception: only
    test harnesses and the CLI top level may catch it. *)
exception Crash of point

val all : point list

(** Stable kebab-case names ("after-wal-append", ...). *)
val to_string : point -> string

val of_string : string -> point option

(** [arm ?skip p] makes the [(skip+1)]-th {!hit} of [p] raise {!Crash}.
    Arming replaces any previously armed point; the trigger disarms itself
    before raising, so post-crash recovery in the same process runs clean. *)
val arm : ?skip:int -> point -> unit

val disarm : unit -> unit
val armed : unit -> point option

(** Called by the pipeline at each crash point; no-op unless armed. *)
val hit : point -> unit

(** ["MINVIEW_FAULT"] — set to ["<point>"] or ["<point>:<skip>"]. *)
val env_var : string

(** Arm from the environment (CLI entry point).
    @raise Invalid_argument on an unknown point name or bad skip. *)
val arm_from_env : unit -> unit
