(** The self-maintenance engine.

    Given a derivation (Algorithm 3.2's auxiliary-view specs), the engine
    holds the materialized view and its auxiliary views and keeps both
    consistent under the source delta stream — {e without ever touching the
    base tables} after {!init} (the engine retains no reference to the
    store; this is the paper's self-maintainability in an executable form).

    Handled changes:
    - insertions/deletions/updates of the root (fact) table — updates split
      into deletion + insertion (Section 2.1);
    - insertions/deletions of dimension tables (no view effect, by
      referential integrity);
    - dimension updates, including {e exposed} ones, by contribution diffing
      against the root auxiliary view, or — when the root auxiliary view was
      eliminated — by group rewriting through the nearest key-annotated
      ancestor;
    - non-CSMAS components (MIN/MAX under deletion, DISTINCT) are recomputed
      for affected groups from the auxiliary views, per Section 3.2.

    The engine also serves the PSJ (Quass et al.) baseline: it accepts any
    derivation whose specs are uncompressed. *)

type t

(** Raised when the engine's invariants are violated — e.g. a deletion
    reaches an append-only warehouse, or the auxiliary state contradicts the
    derivation. A correct derivation plus a legal delta stream never raises. *)
exception Invariant of string

(** Load the initial state from the store. This is the only moment base data
    is read (Figure 1's initial extract).

    [fk_index] (default true) builds secondary indexes on the foreign-key
    columns of every auxiliary view, making dimension-update propagation
    proportional to the affected rows instead of the detail size; disable it
    only for the ablation benchmark. *)
val init : ?fk_index:bool -> Relational.Database.t -> Mindetail.Derive.t -> t

val derivation : t -> Mindetail.Derive.t

(** Deep copy of the engine's mutable state (auxiliary views and view
    groups); the derivation and plans are shared. Snapshot-grade (O(state)):
    used for checkpoints, never on the batch path — batches run in place
    under {!begin_txn}. *)
val copy : t -> t

(** Structural equality of the mutable state (auxiliary views and view
    groups) of two engines over the same derivation. *)
val equal_state : t -> t -> bool

(** {2 Batch transactions}

    O(delta) alternative to [copy]-and-swap: {!begin_txn} opens undo
    journals in every auxiliary view and the view state; {!rollback}
    restores exactly the groups the batch touched. *)

(** Whether undo journals are currently open. *)
val in_txn : t -> bool

(** Opens undo journals across all state.
    @raise Invalid_argument if a transaction is already open. *)
val begin_txn : t -> unit

(** Discards the journals, keeping all mutations.
    @raise Invalid_argument if no transaction is open. *)
val commit : t -> unit

(** Restores every touched group to its before-image and closes the
    journals. @raise Invalid_argument if no transaction is open. *)
val rollback : t -> unit

(** Process one source change; non-CSMAS recomputation is flushed before
    returning.

    The engine trusts the stream: changes are assumed already validated and
    applied by the source store (key uniqueness, referential integrity,
    updatable columns, existing before-images). Violations of that contract
    are detected best-effort — an underflow or a missing group raises
    [Invalid_argument] / {!Invariant} — but a fabricated change that happens
    to match existing state is indistinguishable from a legal one. *)
val apply : t -> Relational.Delta.t -> unit

(** Process a batch; recomputation is flushed once at the end.

    With [?parallel], the batch takes the compacted fast path: deltas are
    netted per (table, key) ({!Relational.Delta_batch}), root-table changes
    are merged into weighted operations keyed by the engine's read-set
    projection (the paper's duplicate compression applied to the delta
    stream), and the merged operations are applied across the given domain
    pool — each domain owning a disjoint set of hash shards of the root
    auxiliary view and the view state. Dimension changes and cross-group
    work (key changes, regrouping updates, eliminated-root rewrites) run on
    the calling domain. The final state is structurally equal to the serial
    replay for any batch that is legal against the pre-batch state, and
    {!begin_txn}/{!rollback} semantics are preserved: shard undo journals
    are only ever touched by the shard's owning domain. *)
val apply_batch : ?parallel:Shard.pool -> t -> Relational.Delta.t list -> unit

(** What {!apply_batch}'s fast path would do to a batch, without applying
    it: [input] raw deltas, [netted] after per-key compaction, [applied]
    operations actually issued — net dimension deltas plus merged weighted
    root operations, or the netted root deltas as-is when the batch sits
    below the auto dispatcher's serial floor (where the fast path applies
    them directly, skipping the weighted merge). *)
type batch_profile = { input : int; netted : int; applied : int }

val net_profile : t -> Relational.Delta.t list -> batch_profile

(** Current view contents, in select-list order. *)
val view_contents : t -> Relational.Relation.t

(** Current auxiliary-view contents, in spec column order. *)
val aux_contents : t -> (string * Relational.Relation.t) list

(** (name, rows, fields-per-row) for every stored object: the view itself and
    each auxiliary view. Input to the storage model. *)
val storage_profile : t -> (string * int * int) list

(** (name, resident bytes) for every stored object, in {!storage_profile}
    order. Unlike the storage model's rows x fields x bytes-per-field
    estimate, this is measured from the columnar segments' per-column byte
    accounting ({!Aux_state.byte_size}, {!View_state.byte_size}). *)
val measured_bytes : t -> (string * int) list

(** Off-heap (Bigarray) bytes across the view state and every auxiliary
    view — the columnar payloads the GC heap gauges cannot see. *)
val offheap_bytes : t -> int

(** {2 Lineage and drift auditing} *)

(** Lineage flow of the most recent {!apply_batch}: deltas in -> netted ->
    applied, plus the per-auxview net change in resident and represented
    detail rows. [None] before the first batch and while telemetry is
    disabled (capture costs two O(auxviews x shards) row-count sweeps per
    batch, nothing on the per-row hot path). *)
val last_flow : t -> Telemetry.Lineage.view_flow option

(** [audit ~sample t] recomputes up to [sample] maintained group keys from
    the retained detail (the root auxiliary view, joined through the
    dimension auxiliary views exactly like the initial load) and
    cross-checks the maintained view rows, via {!Telemetry.Lineage.audit}
    — which emits the [minview_lineage_audit_*] counters and a
    [lineage.audit] trace event. Returns [(checked, divergences)], or
    [None] when the root auxiliary view was eliminated (there is no
    retained detail to recompute from). Float aggregates are compared with
    a relative tolerance of 1e-9 to absorb accumulation-order drift. *)
val audit : sample:int -> t -> (int * int) option
