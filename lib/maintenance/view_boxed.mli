(** Boxed reference implementation of {!View_state} (one record per group).

    Kept as the oracle for the columnar storage equivalence tests and as
    the baseline of [bench columnar]; not used by the engine itself.

    Following the paper's convention that view aggregates are replaced by
    their Table 2 distributive components before maintenance (Section 3.1),
    each group stores internal components — a base-row count [cnt0], running
    SUM/COUNT pairs, current extrema and DISTINCT results — from which the
    visible select-list values are rendered on demand.

    CSMAS components are maintained exactly under both feeds and unfeeds;
    non-CSMAS components (MIN/MAX under deletion, DISTINCT aggregates) mark
    their group {e dirty} so the engine can recompute them from the auxiliary
    views, exactly as Section 3.2 prescribes. In {e determined} mode (used
    when the root auxiliary view has been eliminated, where every non-CSMAS
    argument is functionally determined by the group key) they are set at
    group creation and never dirtied. *)

type contrib =
  | C_count of int
  | C_sum of { amount : Relational.Value.t; n : int }
  | C_value of Relational.Value.t

type t

(** [create ?shards view ~determined] prepares empty state for a validated
    view. [shards] (a power of two, default 1) splits groups, the dirty set
    and the undo journal into hash shards so a parallel applier can hand
    disjoint shards to disjoint domains; sharding is invisible to accessors
    and to {!equal}.
    @raise Invalid_argument if [shards] is not a positive power of two. *)
val create : ?shards:int -> Algebra.View.t -> determined:bool -> t

val shard_count : t -> int

(** Shard that owns group key [key]. *)
val shard_of_key : t -> Relational.Tuple.t -> int

(** Deep copy: groups (and their component arrays) and the dirty set are
    duplicated so the copy and the original evolve independently (snapshot
    checkpoints). The copy carries no open transaction. *)
val copy : t -> t

(** Structural equality of the resident state: groups (base count and every
    aggregate component) and the dirty set. Open transactions are ignored. *)
val equal : t -> t -> bool

(** {2 Batch transactions}

    First-touch undo journal over groups plus a saved dirty set; rollback
    restores exactly the groups a batch touched — O(delta), never O(state). *)

(** Whether an undo journal is currently open. *)
val in_txn : t -> bool

(** Opens an undo journal; subsequent {!feed}/{!unfeed}/{!set_value}/
    {!adjust_group} calls are journaled.
    @raise Invalid_argument if a transaction is already open. *)
val begin_txn : t -> unit

(** Discards the journal, keeping all mutations.
    @raise Invalid_argument if no transaction is open. *)
val commit : t -> unit

(** Restores every touched group to its before-image, restores the dirty
    set, and closes the journal.
    @raise Invalid_argument if no transaction is open. *)
val rollback : t -> unit

val view : t -> Algebra.View.t
val group_count : t -> int

(** [feed t ~key ~cnt contribs] adds one (possibly weighted) row's
    contribution; [contribs] has one entry per select item ([None] for
    group-by items). Creates the group when new. *)
val feed : t -> key:Relational.Tuple.t -> cnt:int -> contrib option array -> unit

(** Reverse of {!feed}; removes the group when its base-row count reaches
    zero.
    @raise Invalid_argument on underflow or missing group. *)
val unfeed :
  t -> key:Relational.Tuple.t -> cnt:int -> contrib option array -> unit

(** Groups marked dirty since the last call; clears the set. *)
val take_dirty : t -> Relational.Tuple.t list

val is_dirty_pending : t -> bool

(** [set_value t ~key ~item v] overwrites the rendered value of a recomputed
    non-CSMAS item. No-op if the group has disappeared. *)
val set_value : t -> key:Relational.Tuple.t -> item:int -> Relational.Value.t -> unit

(** [adjust_group t ~key ~new_key updates] rewrites a group's key and applies
    per-item component updates (used for dimension updates when the root
    auxiliary view is eliminated): [updates] maps item index to the update.
    @raise Invalid_argument if the group is missing or [new_key] collides. *)
type component_update =
  | Shift_sum of Relational.Value.t  (** sum += delta * n *)
  | Set_current of Relational.Value.t  (** extremum / distinct result := v *)

val adjust_group :
  t ->
  key:Relational.Tuple.t ->
  new_key:Relational.Tuple.t ->
  (int * component_update) list ->
  unit

(** Fold over groups as (key, base-row count). *)
val fold_groups : t -> (Relational.Tuple.t -> int -> 'a -> 'a) -> 'a -> 'a

(** Render the view contents in select-list order. *)
val render : t -> Relational.Relation.t
