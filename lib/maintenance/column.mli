(** Typed, growable column segments — the physical storage of auxiliary and
    view state.

    A column stores one cell per resident row. Storage specializes on the
    first value appended: [Int] cells go to a native-int {!Bigarray},
    [Float] cells to a float64 {!Bigarray}, [String] cells to int32
    dictionary codes (see {!Dict}); anything else — or a later type
    mismatch, which the relational layer's typed schemas make rare — falls
    back to a boxed [Value.t array]. Growth is by doubling; deletion is
    swap-with-last, keeping segments dense (row ids are not stable across
    deletes — indexes are repaired by the owner).

    Cells are read/written through [Value.t] at the API boundary, but the
    probe hot paths use {!equal_cell} / {!hash_cell} / {!add_cell} /
    {!sub_cell}, which avoid boxing entirely on specialized storage. *)

module Icol : sig
  (** A dense unboxed [int] column (counts, row positions). *)

  type t

  val create : unit -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit

  (** [add c i d] is [set c i (get c i + d)]. *)
  val add : t -> int -> int -> unit

  val append : t -> int -> unit

  (** [swap_delete c i] moves the last cell into [i] and shrinks by one. *)
  val swap_delete : t -> int -> unit

  val copy : t -> t
  val byte_size : t -> int
end

type t

(** [create ?dict ()] is an empty, as-yet-untyped column. [dict] is used if
    the column turns out to hold strings; otherwise a private dictionary is
    made on demand. *)
val create : ?dict:Dict.t -> unit -> t

(** [create_boxed ()] forces boxed storage — used for columns that must
    represent an absent value ([Value.Null] as the [None] sentinel, e.g.
    pending MIN/MAX components of the view state). *)
val create_boxed : unit -> t

val length : t -> int
val append : t -> Relational.Value.t -> unit
val get : t -> int -> Relational.Value.t
val set : t -> int -> Relational.Value.t -> unit

(** [swap_delete c i] moves the last cell into [i] and shrinks by one. *)
val swap_delete : t -> int -> unit

(** [equal_cell c i v] is [Value.equal (get c i) v] without materializing
    the cell. *)
val equal_cell : t -> int -> Relational.Value.t -> bool

(** [hash_cell c i] is [Value.hash (get c i)] without materializing the
    cell (string cells use the hash precomputed at intern time). *)
val hash_cell : t -> int -> int

(** [add_cell c i v n] folds [Value.add (get c i) (Value.scale v n)] into
    the cell — unboxed when storage and [v] agree on a numeric type.
    [sub_cell] is the subtractive mirror.
    @raise Invalid_argument on non-numeric operands (matching [Value.add]). *)
val add_cell : t -> int -> Relational.Value.t -> int -> unit

val sub_cell : t -> int -> Relational.Value.t -> int -> unit

(** [combine_ext c i v ~is_min] folds an append-only extremum:
    cell := min/max(cell, v) under [Value.compare]. *)
val combine_ext : t -> int -> Relational.Value.t -> is_min:bool -> unit

(** Deep copy of the cells; a shared dictionary stays shared (codes are
    append-only, so they remain valid in both copies). *)
val copy : t -> t

(** Bytes held by this column's cells: Bigarray payloads (which
    [Obj.reachable_words] cannot see — they live off-heap) plus an estimate
    of boxed storage. Excludes the dictionary (shared; account it once via
    {!dict}). *)
val byte_size : t -> int

(** Off-heap (Bigarray payload) bytes only — the complement of what
    [Obj.reachable_words] measures. *)
val offheap_bytes : t -> int

(** The dictionary backing string cells, if the column holds any. *)
val dict : t -> Dict.t option

(** Storage kind, for diagnostics: "empty" | "int" | "float" | "dict" |
    "boxed". *)
val kind : t -> string
