module View = Algebra.View
module Attr = Algebra.Attr
module Aggregate = Algebra.Aggregate
module Select_item = Algebra.Select_item
module Predicate = Algebra.Predicate
module Derive = Mindetail.Derive
module Auxview = Mindetail.Auxview
module Join_graph = Mindetail.Join_graph
module Database = Relational.Database
module Schema = Relational.Schema
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Delta = Relational.Delta
module Delta_batch = Relational.Delta_batch

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

module VSet = Set.Make (struct
  type t = Value.t

  let compare = Value.compare
end)

(* A row participating in a join: either a base tuple carried by a delta, or
   a stored auxiliary row. *)
type rowval = Base of Tuple.t | Auxrow of Aux_state.t * Aux_state.row

type agg_src = A_count | A_attr of { table : string; column : string }

type item_plan =
  | P_group of { table : string; column : string }
  | P_agg of { agg : Aggregate.t; src : agg_src }

type t = {
  d : Derive.t;
  view : View.t;
  root : string;
  schemas : (string, Schema.t) Hashtbl.t;
  aux : (string, Aux_state.t) Hashtbl.t;
  vstate : View_state.t;
  plans : item_plan array;
  group_plan : (string * string) array;  (** (table, column) per group attr *)
  determined : bool;  (** the root auxiliary view was eliminated *)
  residuals : (string, Predicate.t list) Hashtbl.t;
      (** per table: view local conditions not enforced by its auxiliary
          view (non-empty only in the no-pushdown ablation) *)
  append_only : bool;
  root_reads : int array;
      (** root-schema positions the engine ever reads off a root base tuple
          (group/aggregate/local/join-fk/aux columns): two root tuples equal
          on this projection are interchangeable, so the fast path merges
          them into one weighted operation *)
  scratch_key : Tuple.t;  (** reusable group-key buffer, serial path only *)
  scratch_cs : View_state.contrib option array;
      (** reusable contribution buffer, serial path only *)
  obs_groups : Telemetry.Gauge.t;  (** resident view groups *)
  mutable obs_aux :
    (string * Telemetry.Gauge.t * Telemetry.Gauge.t * Telemetry.Gauge.t) list;
      (** per auxiliary view, keyed by base table: resident rows, detail
          rows represented, compression ratio (handles are process-global,
          so engine copies share them; the table key makes the copy read
          its own [aux] states) *)
  mutable last_flow : Telemetry.Lineage.view_flow option;
      (** lineage flow of the most recent [apply_batch]; [None] before the
          first batch and while telemetry is disabled *)
  wk : Telemetry.Workload.view_stats;
      (** process-global workload accumulator for this view (hot group
          keys, netting skew, batch counts) *)
  mutable wk_live : bool;
      (** false while [init] seeds the view from base rows — seeding is
          not workload *)
  mutable wk_writes : int;
      (** netted write weight accumulated since the last batch flush;
          plain fields — one domain drives an engine's apply path — so
          the per-tuple accounting touches nothing shared *)
  mutable wk_events : int;
      (** group-key touches since the last batch flush; also the sketch
          sampling phase (feed when [wk_events land sample_mask = 0]) *)
}

exception Invariant of string

let invariant fmt = Format.kasprintf (fun s -> raise (Invariant s)) fmt

let log_src = Logs.Src.create "mindetail.engine" ~doc:"self-maintenance engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Telemetry handles, registered once at module load; counters and phase
   histograms are process-global across engine instances (per-view storage
   gauges live on [t] instead, keyed by view/aux labels). *)
module Obs = struct
  let phase p =
    Telemetry.Histogram.make
      ~labels:[ ("phase", p) ]
      ~help:"Latency of one maintenance pipeline phase"
      "minview_engine_phase_seconds"

  let compact = phase "compact"
  let weighted_merge = phase "weighted-merge"
  let dim_apply = phase "dim-apply"
  let prepare = phase "prepare"
  let shard_apply = phase "shard-apply"
  let view_update = phase "view-update"

  (* Allocation profile next to the latency profile: the coordinating
     domain's [Gc.allocated_bytes] delta over each phase (worker-domain
     allocations in sharded phases are not attributed). Log-scale from
     4 KiB: phase footprints span batch sizes, not microseconds. *)
  let phase_alloc p =
    Telemetry.Histogram.make
      ~labels:[ ("phase", p) ]
      ~help:"Bytes allocated during one maintenance pipeline phase"
      ~lo:4096. ~factor:4. ~buckets:24 "minview_engine_phase_alloc_bytes"

  let compact_alloc = phase_alloc "compact"
  let weighted_merge_alloc = phase_alloc "weighted-merge"
  let dim_apply_alloc = phase_alloc "dim-apply"
  let prepare_alloc = phase_alloc "prepare"
  let shard_apply_alloc = phase_alloc "shard-apply"
  let view_update_alloc = phase_alloc "view-update"

  let apply_mode m =
    Telemetry.Histogram.make
      ~labels:[ ("mode", m) ]
      ~help:"End-to-end latency of Engine.apply_batch"
      "minview_engine_apply_seconds"

  let apply_serial = apply_mode "serial"
  let apply_parallel = apply_mode "parallel"

  let batches m =
    Telemetry.Counter.make
      ~labels:[ ("mode", m) ]
      ~help:"Batches applied" "minview_engine_batches_total"

  let batches_serial = batches "serial"
  let batches_parallel = batches "parallel"

  let deltas_total =
    Telemetry.Counter.make
      ~help:"Deltas received that touch a view table (both apply modes)"
      "minview_engine_deltas_total"

  let deltas_netted =
    Telemetry.Counter.make
      ~help:"Deltas surviving net-effect compaction (parallel path)"
      "minview_engine_deltas_netted_total"

  let ops_applied =
    Telemetry.Counter.make
      ~help:"Compacted operations actually applied (parallel path)"
      "minview_engine_ops_applied_total"

  let merge_folds =
    Telemetry.Counter.make
      ~help:
        "Root changes folded away by the weighted duplicate merge (the \
         paper's smart duplicate compression on the delta stream)"
      "minview_engine_merge_folds_total"
end

let derivation t = t.d

(* Deep copy of all mutable state; the derivation, plans and schemas are
   immutable after [init] and stay shared. *)
let copy t =
  let aux = Hashtbl.create (Hashtbl.length t.aux) in
  Hashtbl.iter (fun name st -> Hashtbl.add aux name (Aux_state.copy st)) t.aux;
  {
    t with
    aux;
    vstate = View_state.copy t.vstate;
    (* scratch buffers must never be shared between engines *)
    scratch_key = Array.copy t.scratch_key;
    scratch_cs = Array.copy t.scratch_cs;
  }

(* Structural equality of all mutable state: every auxiliary view (matched
   by table) and the materialized view state. *)
let equal_state a b =
  Hashtbl.length a.aux = Hashtbl.length b.aux
  && Hashtbl.fold
       (fun name st acc ->
         acc
         &&
         match Hashtbl.find_opt b.aux name with
         | Some st' -> Aux_state.equal st st'
         | None -> false)
       a.aux true
  && View_state.equal a.vstate b.vstate

(* --- transactions ------------------------------------------------------- *)

(* Aux journals open and close in lockstep with the view state's, so the
   view state alone answers for the whole engine. *)
let in_txn t = View_state.in_txn t.vstate

let begin_txn t =
  Hashtbl.iter (fun _ st -> Aux_state.begin_txn st) t.aux;
  View_state.begin_txn t.vstate

let commit t =
  Hashtbl.iter (fun _ st -> Aux_state.commit st) t.aux;
  View_state.commit t.vstate

let rollback t =
  Hashtbl.iter (fun _ st -> Aux_state.rollback st) t.aux;
  View_state.rollback t.vstate

let schema t name = Hashtbl.find t.schemas name
let aux_of t name = Hashtbl.find_opt t.aux name

let dim_aux t name =
  match aux_of t name with
  | Some st -> st
  | None -> invariant "auxiliary view for %s is missing" name

(* --- reading attribute values out of a joined row -------------------- *)

let read t env table column =
  match List.assoc table env with
  | Base tup -> tup.(Schema.index_of (schema t table) column)
  | Auxrow (st, row) -> Aux_state.plain_of st row column

let group_key t env =
  Array.map (fun (table, column) -> read t env table column) t.group_plan

(* Allocation-free variant for the hot path; [dst] must not be retained by
   the callee (View_state copies keys on retention). *)
let group_key_into t env dst =
  Array.iteri
    (fun i (table, column) -> dst.(i) <- read t env table column)
    t.group_plan

(* View local conditions on [table] not already enforced by its auxiliary
   view, evaluated against an auxiliary row (the condition columns are kept
   plainly whenever the list is non-empty). *)
let residual_ok t table (st : Aux_state.t) row =
  match Hashtbl.find_opt t.residuals table with
  | None | Some [] -> true
  | Some ps ->
    let look (a : Attr.t) = Aux_state.plain_of st row a.Attr.column in
    List.for_all (fun p -> Predicate.holds p look) ps

(* Extend an environment along the join tree; key joins find at most one
   partner per table, all of them in dimension auxiliary views. *)
let rec extend t env table =
  List.fold_left
    (fun env_opt (j : View.join) ->
      match env_opt with
      | None -> None
      | Some env -> (
        let fk = read t env j.View.src.Attr.table j.View.src.Attr.column in
        let child = j.View.dst.Attr.table in
        let child_st = dim_aux t child in
        match Aux_state.find_by_key child_st fk with
        | None -> None
        | Some row ->
          if residual_ok t child child_st row then
            extend t ((child, Auxrow (child_st, row)) :: env) child
          else None))
    (Some env) (View.joins_from t.view table)

(* Root auxiliary rows participate in the view only when they pass the view
   conditions not already enforced by the root spec (no-pushdown ablation). *)
let extend_root t root_st row =
  if residual_ok t t.root root_st row then
    extend t [ (t.root, Auxrow (root_st, row)) ] t.root
  else None

(* --- contributions ---------------------------------------------------- *)

let is_csmas_sum (agg : Aggregate.t) =
  (not agg.Aggregate.distinct)
  && (agg.Aggregate.func = Aggregate.Sum || agg.Aggregate.func = Aggregate.Avg)

let value_contrib (agg : Aggregate.t) a ~cnt =
  if agg.Aggregate.distinct then View_state.C_value a
  else
    match agg.Aggregate.func with
    | Aggregate.Min | Aggregate.Max -> View_state.C_value a
    | Aggregate.Sum | Aggregate.Avg ->
      View_state.C_sum { amount = Value.scale a cnt; n = cnt }
    | Aggregate.Count | Aggregate.Count_star ->
      (* COUNTs are planned as A_count *)
      assert false

let contrib_of t env ~cnt plan =
  match plan with
  | P_group _ -> None
  | P_agg { agg; src } ->
    Some
      (match src with
      | A_count -> View_state.C_count cnt
      | A_attr { table; column } -> (
        match List.assoc table env with
        | Base tup ->
          value_contrib agg
            tup.(Schema.index_of (schema t table) column)
            ~cnt
        | Auxrow (st, row) ->
          let spec = Aux_state.spec st in
          if
            is_csmas_sum agg
            && Auxview.sum_position spec column <> None
          then
            View_state.C_sum
              { amount = Aux_state.sum_of st row column; n = cnt }
          else if
            (not agg.Aggregate.distinct)
            && agg.Aggregate.func = Aggregate.Min
            && Auxview.min_position spec column <> None
          then View_state.C_value (Aux_state.min_of st row column)
          else if
            (not agg.Aggregate.distinct)
            && agg.Aggregate.func = Aggregate.Max
            && Auxview.max_position spec column <> None
          then View_state.C_value (Aux_state.max_of st row column)
          else value_contrib agg (Aux_state.plain_of st row column) ~cnt))

let contribs t env ~cnt = Array.map (contrib_of t env ~cnt) t.plans

(* Allocation-free variant; [dst] is not retained by View_state. *)
let contribs_into t env ~cnt dst =
  Array.iteri (fun i plan -> dst.(i) <- contrib_of t env ~cnt plan) t.plans

(* --- local conditions and semijoin membership ------------------------- *)

let passes_locals t table tup =
  let sch = schema t table in
  let lookup (a : Attr.t) = tup.(Schema.index_of sch a.Attr.column) in
  List.for_all
    (fun p -> Predicate.holds p lookup)
    (View.locals_of t.view ~table)

let semijoin_ok t (spec : Auxview.t) tup =
  let sch = schema t spec.Auxview.base in
  List.for_all
    (fun (sj : Auxview.semijoin) ->
      let fk = tup.(Schema.index_of sch sj.Auxview.fk) in
      Aux_state.mem_key (dim_aux t sj.Auxview.target) fk)
    spec.Auxview.semijoins

(* Membership in the auxiliary view is governed by the spec's own pushed-down
   conditions and semijoins; the view's full conditions only gate the view
   feed (they coincide except in the no-pushdown ablation). *)
let passes_spec_locals t (spec : Auxview.t) tup =
  let sch = schema t spec.Auxview.base in
  let lookup (a : Attr.t) = tup.(Schema.index_of sch a.Attr.column) in
  List.for_all (fun p -> Predicate.holds p lookup) spec.Auxview.locals

let in_aux t table tup =
  match aux_of t table with
  | None -> false
  | Some st ->
    let spec = Aux_state.spec st in
    passes_spec_locals t spec tup && semijoin_ok t spec tup

(* --- root-table changes ----------------------------------------------- *)

let root_view_feed t tup ~sign =
  match extend t [ (t.root, Base tup) ] t.root with
  | None -> ()
  | Some env ->
    (* scratch buffers avoid a per-tuple key + contribution allocation;
       View_state copies what it retains *)
    let key = t.scratch_key in
    group_key_into t env key;
    (* the label thunk is forced synchronously (only on a top-k miss), so
       handing it the reused scratch buffer is safe; hashing and the
       closure are only paid on sampled events, and the exact counts go
       through plain fields flushed once per batch *)
    if t.wk_live && Telemetry.enabled () then begin
      if t.wk_events land Telemetry.Workload.sample_mask = 0 then
        Telemetry.Workload.note_hot_key t.wk ~hash:(Tuple.hash key)
          ~label:(fun () -> Tuple.to_string key);
      t.wk_writes <- t.wk_writes + 1;
      t.wk_events <- t.wk_events + 1
    end;
    contribs_into t env ~cnt:1 t.scratch_cs;
    if sign > 0 then View_state.feed t.vstate ~key ~cnt:1 t.scratch_cs
    else View_state.unfeed t.vstate ~key ~cnt:1 t.scratch_cs

let root_insert t tup =
  if in_aux t t.root tup then
    Aux_state.insert_base (Option.get (aux_of t t.root)) tup;
  if passes_locals t t.root tup then root_view_feed t tup ~sign:1

let root_delete t tup =
  if passes_locals t t.root tup then root_view_feed t tup ~sign:(-1);
  if in_aux t t.root tup then
    Aux_state.delete_base (Option.get (aux_of t t.root)) tup

(* --- dimension-table changes ------------------------------------------ *)

let dim_insert t table tup =
  if in_aux t table tup then Aux_state.insert_base (dim_aux t table) tup

let dim_delete t table tup =
  if in_aux t table tup then Aux_state.delete_base (dim_aux t table) tup

(* The unique join path root -> ... -> target, as a list of joins. *)
let path_to t target =
  let rec go from =
    if String.equal from target then Some []
    else
      List.find_map
        (fun (j : View.join) ->
          Option.map (fun p -> j :: p) (go j.View.dst.Attr.table))
        (View.joins_from t.view from)
  in
  match go t.root with
  | Some p -> p
  | None -> invariant "no join path from %s to %s" t.root target

(* Keys of [j.src.table]'s auxiliary rows whose foreign key (j.src.column)
   lies in [targets] — one upward step of reverse chain resolution. *)
let reach_step t (j : View.join) targets =
  let table = j.View.src.Attr.table in
  let st = dim_aux t table in
  let key_col = (schema t table).Schema.key in
  VSet.fold
    (fun v acc ->
      List.fold_left
        (fun acc r -> VSet.add (Aux_state.plain_of st r key_col) acc)
        acc
        (Aux_state.rows_with st ~column:j.View.src.Attr.column v))
    targets VSet.empty

(* Keys of the table at the top of [path] whose fk chain reaches [key_val]
   at the bottom. [path] must be non-empty; its first join starts at the
   table whose keys are returned. *)
let keys_reaching t path key_val =
  List.fold_left
    (fun targets j -> reach_step t j targets)
    (VSet.singleton key_val)
    (List.rev path)

(* Dimension update with unchanged key, root auxiliary view retained:
   contribution diffing through the root auxiliary view. *)
(* Columns of [table] whose value matters to the warehouse: anything kept in
   its auxiliary view or used in its local conditions. *)
let relevant_change t table ~before ~after =
  let sch = schema t table in
  let kept =
    match aux_of t table with
    | Some st -> Auxview.group_columns (Aux_state.spec st)
    | None -> []
  in
  let locals = View.local_columns t.view ~table in
  List.exists
    (fun i ->
      let col = sch.Schema.columns.(i).Schema.col_name in
      List.mem col kept || List.mem col locals)
    (Delta.changed_indices (Delta.Update { before; after }))

let dim_update_diff t table ~before ~after =
  let key_val = before.(Schema.key_index (schema t table)) in
  Log.debug (fun m ->
      m "dim update on %s key %a: contribution diffing through X_%s" table
        Value.pp key_val t.root);
  let root_st =
    match aux_of t t.root with
    | Some st -> st
    | None -> invariant "dim_update_diff without a root auxiliary view"
  in
  let affected =
    match path_to t table with
    | [] -> invariant "dim_update_diff: empty join path"
    | j1 :: rest ->
      let fk_targets =
        match rest with
        | [] -> VSet.singleton key_val
        | _ -> keys_reaching t rest key_val
      in
      VSet.fold
        (fun v acc ->
          Aux_state.rows_with root_st ~column:j1.View.src.Attr.column v @ acc)
        fk_targets []
  in
  let affected = ref affected in
  (* capture the old contributions before mutating X_table *)
  let old_feeds =
    List.filter_map
      (fun row ->
        match extend_root t root_st row with
        | None -> None
        | Some env ->
          let cnt = Aux_state.cnt row in
          Some (group_key t env, cnt, contribs t env ~cnt))
      !affected
  in
  let was_in = in_aux t table before in
  let st = dim_aux t table in
  if was_in then Aux_state.delete_base st before;
  if in_aux t table after then Aux_state.insert_base st after;
  let new_feeds =
    List.filter_map
      (fun row ->
        match extend_root t root_st row with
        | None -> None
        | Some env ->
          let cnt = Aux_state.cnt row in
          Some (group_key t env, cnt, contribs t env ~cnt))
      !affected
  in
  List.iter
    (fun (key, cnt, cs) -> View_state.unfeed t.vstate ~key ~cnt cs)
    old_feeds;
  List.iter
    (fun (key, cnt, cs) -> View_state.feed t.vstate ~key ~cnt cs)
    new_feeds

(* Nearest key-annotated ancestor of [table] (possibly itself), strictly
   below the root. Elimination of the root auxiliary view guarantees its
   existence for every table with preserved attributes (Section 3.3). *)
let keyed_ancestor t table =
  let g = t.d.Derive.graph in
  let rec up tbl =
    if String.equal tbl t.root then
      invariant
        "no key-annotated ancestor for %s below the root; the root auxiliary \
         view should not have been eliminated"
        table
    else if Join_graph.annotation g tbl = Join_graph.Keyed then tbl
    else
      match Join_graph.parent g tbl with
      | Some p -> up p
      | None -> invariant "table %s is outside the join tree" tbl
  in
  up table

(* Dimension update with unchanged key while the root auxiliary view is
   eliminated: rewrite the affected view groups through the nearest
   key-annotated ancestor. *)
let dim_update_rewrite t table ~before ~after =
  let sch = schema t table in
  let st = dim_aux t table in
  let kept = Auxview.group_columns (Aux_state.spec st) in
  let changed =
    List.filter_map
      (fun i ->
        let col = sch.Schema.columns.(i).Schema.col_name in
        if List.mem col kept then Some col else None)
      (Delta.changed_indices (Delta.Update { before; after }))
  in
  if changed = [] then ()
  else begin
    Log.debug (fun m ->
        m "dim update on %s with eliminated root: group rewrite through the \
           keyed ancestor"
          table);
    (* membership cannot change here: condition columns of a non-exposed
       table are not updatable *)
    if in_aux t table before then begin
      Aux_state.delete_base st before;
      Aux_state.insert_base st after
    end;
    let key_val = before.(Schema.key_index sch) in
    let anchor = keyed_ancestor t table in
    (* key values of the anchor whose chain reaches the updated tuple *)
    let anchor_keys =
      if String.equal anchor table then
        List.to_seq [ key_val ] |> VSet.of_seq
      else begin
        (* path from the anchor down to [table] *)
        let full_path = path_to t table in
        let rec drop_until = function
          | [] -> invariant "anchor %s not on the path to %s" anchor table
          | (j : View.join) :: rest ->
            if String.equal j.View.src.Attr.table anchor then j :: rest
            else drop_until rest
        in
        keys_reaching t (drop_until full_path) key_val
      end
    in
    (* positions in the view group key *)
    let anchor_key_attr =
      Attr.make anchor (schema t anchor).Schema.key
    in
    let gattrs = View.group_attrs t.view in
    let anchor_pos =
      match
        List.find_index (fun a -> Attr.equal a anchor_key_attr) gattrs
      with
      | Some i -> i
      | None -> invariant "anchor key %s not in group-by" anchor
    in
    let table_positions =
      List.filteri
        (fun _ (a : Attr.t) -> String.equal a.Attr.table table)
        gattrs
      |> List.map (fun (a : Attr.t) ->
             ( (match
                  List.find_index (fun x -> Attr.equal x a) gattrs
                with
               | Some i -> i
               | None -> assert false),
               Schema.index_of sch a.Attr.column ))
    in
    let item_updates =
      Array.to_list t.plans
      |> List.mapi (fun i plan -> (i, plan))
      |> List.filter_map (fun (i, plan) ->
             match plan with
             | P_agg { agg; src = A_attr { table = tb; column } }
               when String.equal tb table && List.mem column changed ->
               let ci = Schema.index_of sch column in
               if is_csmas_sum agg then
                 Some
                   ( i,
                     View_state.Shift_sum
                       (Value.sub after.(ci) before.(ci)) )
               else Some (i, View_state.Set_current after.(ci))
             | P_agg _ | P_group _ -> None)
    in
    (* collect affected groups first, then rewrite *)
    let affected_groups =
      View_state.fold_groups t.vstate
        (fun key _cnt acc ->
          if VSet.mem key.(anchor_pos) anchor_keys then key :: acc else acc)
        []
    in
    List.iter
      (fun key ->
        let new_key = Array.copy key in
        List.iter
          (fun (pos, src) ->
            if not (Value.equal key.(pos) before.(src)) then
              invariant "group key component does not match before-image";
            new_key.(pos) <- after.(src))
          table_positions;
        View_state.adjust_group t.vstate ~key ~new_key item_updates)
      affected_groups
  end

let dim_update t table ~before ~after =
  let sch = schema t table in
  let ki = Schema.key_index sch in
  if not (Value.equal before.(ki) after.(ki)) then begin
    (* key changed: only legal while unreferenced, so no view effect *)
    dim_delete t table before;
    dim_insert t table after
  end
  else if not (relevant_change t table ~before ~after) then ()
  else if t.determined then dim_update_rewrite t table ~before ~after
  else dim_update_diff t table ~before ~after

(* --- recomputation of dirty non-CSMAS components ----------------------- *)

let finalize_distinct (agg : Aggregate.t) set =
  let elts = VSet.elements set in
  let n = List.length elts in
  if n = 0 then invariant "empty DISTINCT set during recomputation";
  match agg.Aggregate.func with
  | Aggregate.Count -> Value.Int n
  | Aggregate.Sum ->
    List.fold_left Value.add (Value.zero_like (List.hd elts)) elts
  | Aggregate.Avg ->
    let s = List.fold_left Value.add (Value.zero_like (List.hd elts)) elts in
    Value.div_as_float s (Value.Int n)
  | Aggregate.Min -> List.hd elts
  | Aggregate.Max -> List.nth elts (n - 1)
  | Aggregate.Count_star -> assert false

type recompute_acc = R_extremum of Value.t option ref | R_distinct of VSet.t ref

let flush_dirty t =
  match View_state.take_dirty t.vstate with
  | [] -> ()
  | dirty_keys ->
    Log.debug (fun m ->
        m "recomputing %d dirty group(s) of %s from the auxiliary views"
          (List.length dirty_keys) t.view.View.name);
    if t.determined then
      invariant "dirty groups cannot arise when the root view is eliminated";
    let root_st =
      match aux_of t t.root with
      | Some st -> st
      | None -> invariant "dirty groups without a root auxiliary view"
    in
    (* items needing recomputation: aggregates that are not CSMAS under the
       paper's standard classification. Their value is re-derived from the
       auxiliary rows — from the plain column, or (append-only mode, where
       dimension updates can still regroup rows) from the pre-aggregated
       MIN/MAX column of the root view. *)
    let targets =
      Array.to_list t.plans
      |> List.mapi (fun i plan -> (i, plan))
      |> List.filter_map (fun (i, plan) ->
             match plan with
             | P_agg { agg; src = _ } when not (Mindetail.Classify.is_csmas agg)
               -> (
               match Derive.agg_source t.d agg with
               | Some (Derive.From_plain _ as src) -> Some (i, agg, src)
               | Some ((Derive.From_min _ | Derive.From_max _) as src) ->
                 Some (i, agg, src)
               | _ -> None)
             | P_agg _ | P_group _ -> None)
    in
    let dirty : recompute_acc array TH.t = TH.create 16 in
    List.iter
      (fun key ->
        if not (TH.mem dirty key) then
          TH.add dirty key
            (Array.of_list
               (List.map
                  (fun (_, agg, _) ->
                    if agg.Aggregate.distinct then R_distinct (ref VSet.empty)
                    else R_extremum (ref None))
                  targets)))
      dirty_keys;
    Aux_state.iter root_st (fun row ->
        match extend_root t root_st row with
        | None -> ()
        | Some env ->
          let key = group_key t env in
          (match TH.find_opt dirty key with
          | None -> ()
          | Some accs ->
            List.iteri
              (fun j (_, agg, src) ->
                let a =
                  match src with
                  | Derive.From_plain { table; column } ->
                    read t env table column
                  | Derive.From_min { table; column } -> (
                    match List.assoc table env with
                    | Auxrow (st, arow) -> Aux_state.min_of st arow column
                    | Base tup ->
                      tup.(Schema.index_of (schema t table) column))
                  | Derive.From_max { table; column } -> (
                    match List.assoc table env with
                    | Auxrow (st, arow) -> Aux_state.max_of st arow column
                    | Base tup ->
                      tup.(Schema.index_of (schema t table) column))
                  | Derive.From_sum _ | Derive.From_count ->
                    invariant "CSMAS marked for recomputation"
                in
                match accs.(j) with
                | R_distinct set -> set := VSet.add a !set
                | R_extremum cur ->
                  cur :=
                    Some
                      (match !cur with
                      | None -> a
                      | Some m ->
                        let better =
                          match agg.Aggregate.func with
                          | Aggregate.Min -> Value.compare a m < 0
                          | Aggregate.Max -> Value.compare a m > 0
                          | _ -> assert false
                        in
                        if better then a else m))
              targets));
    TH.iter
      (fun key accs ->
        (* groups removed since being dirtied have no view entry and stay
           silent in set_value *)
        List.iteri
          (fun j (i, agg, _) ->
            match accs.(j) with
            | R_distinct set ->
              if not (VSet.is_empty !set) then
                View_state.set_value t.vstate ~key ~item:i
                  (finalize_distinct agg !set)
            | R_extremum cur -> (
              match !cur with
              | Some v -> View_state.set_value t.vstate ~key ~item:i v
              | None -> ()))
          targets)
      dirty

(* The paper-facing dashboard: per auxiliary view, resident rows vs. the
   detail rows they stand for (the sum of the stored count weights) — the
   live analogue of the 245 GB → 167 MB table. [row_count]/[base_count] are
   O(shards), so refreshing after every batch is cheap. *)
let update_storage_gauges t =
  if Telemetry.enabled () then begin
    Telemetry.Gauge.set t.obs_groups
      (float_of_int (View_state.group_count t.vstate));
    List.iter
      (fun (tbl, resident, detail, ratio) ->
        match aux_of t tbl with
        | None -> ()
        | Some st ->
          let rows = Aux_state.row_count st in
          let base = Aux_state.base_count st in
          Telemetry.Gauge.set resident (float_of_int rows);
          Telemetry.Gauge.set detail (float_of_int base);
          Telemetry.Gauge.set ratio
            (if rows = 0 then 0.
             else float_of_int base /. float_of_int rows))
      t.obs_aux
  end

let flush t =
  flush_dirty t;
  update_storage_gauges t

(* --- initialization ---------------------------------------------------- *)

let post_order g =
  let rec walk tbl =
    List.concat_map walk (Join_graph.children g tbl) @ [ tbl ]
  in
  walk (Join_graph.root g)

(* Shard count for the root auxiliary view and the view state. A power of
   two; dimension auxiliary views stay single-shard — they are join
   destinations, and their by-key probe must remain a single lookup. *)
let nshards = 16

let init ?(fk_index = true) db (d : Derive.t) =
  let view = d.Derive.view in
  let root = Derive.root d in
  let schemas = Hashtbl.create 8 in
  List.iter
    (fun tbl -> Hashtbl.add schemas tbl (Database.schema_of db tbl))
    view.View.tables;
  let determined = Option.is_none (Derive.spec_for d root) in
  let plans =
    Array.of_list
      (List.map
         (fun item ->
           match item with
           | Select_item.Group { attr; _ } ->
             P_group { table = attr.Attr.table; column = attr.Attr.column }
           | Select_item.Agg agg ->
             let src =
               match agg.Aggregate.func, agg.Aggregate.distinct with
               | Aggregate.Count_star, _ -> A_count
               | Aggregate.Count, false -> A_count
               | _ -> (
                 match Aggregate.attr agg with
                 | Some (a : Attr.t) ->
                   A_attr { table = a.Attr.table; column = a.Attr.column }
                 | None -> assert false)
             in
             P_agg { agg; src })
         view.View.select)
  in
  let group_plan =
    Array.of_list
      (List.map
         (fun (a : Attr.t) -> (a.Attr.table, a.Attr.column))
         (View.group_attrs view))
  in
  let residuals = Hashtbl.create 8 in
  List.iter
    (fun tbl -> Hashtbl.add residuals tbl (Derive.residual_locals d tbl))
    view.View.tables;
  (* Everything the engine can ever read off a root base tuple: group-by and
     aggregate sources, view local-condition columns, outgoing join foreign
     keys, and — when the root auxiliary view is retained — its kept,
     summed, extremum, semijoin-fk and pushed-condition columns. Two root
     tuples equal on this projection are indistinguishable to maintenance. *)
  let root_reads =
    let sch = Hashtbl.find schemas root in
    let cols = ref [] in
    let add_col c = cols := Schema.index_of sch c :: !cols in
    Array.iter
      (fun (tbl, col) -> if String.equal tbl root then add_col col)
      group_plan;
    Array.iter
      (function
        | P_agg { src = A_attr { table; column }; _ }
          when String.equal table root ->
          add_col column
        | P_agg _ | P_group _ -> ())
      plans;
    List.iter add_col (View.local_columns view ~table:root);
    List.iter
      (fun (j : View.join) -> add_col j.View.src.Attr.column)
      (View.joins_from view root);
    (match Derive.spec_for d root with
    | None -> ()
    | Some spec ->
      List.iter add_col (Auxview.group_columns spec);
      List.iter add_col (Auxview.summed_columns spec);
      List.iter (fun (c, _) -> add_col c) (Auxview.ext_columns spec);
      List.iter
        (fun (sj : Auxview.semijoin) -> add_col sj.Auxview.fk)
        spec.Auxview.semijoins;
      List.iter
        (fun p ->
          List.iter
            (fun (a : Attr.t) -> add_col a.Attr.column)
            (Predicate.attrs p))
        spec.Auxview.locals);
    Array.of_list (List.sort_uniq compare !cols)
  in
  (* one dictionary pool per engine: a string attribute kept in several
     states (a dimension column in both its auxiliary view and the view
     state, say) interns each distinct string once *)
  let dict_pool = Dict.create_pool () in
  let t =
    {
      d;
      view;
      root;
      schemas;
      aux = Hashtbl.create 8;
      vstate = View_state.create ~shards:nshards ~dict_pool view ~determined;
      plans;
      group_plan;
      determined;
      residuals;
      append_only = d.Derive.options.Derive.append_only;
      root_reads;
      scratch_key = Array.make (Array.length group_plan) Value.Null;
      scratch_cs = Array.make (Array.length plans) None;
      obs_groups =
        Telemetry.Gauge.make
          ~labels:[ ("view", view.View.name) ]
          ~help:"Resident groups of the materialized view"
          "minview_view_groups";
      obs_aux = [];
      last_flow = None;
      wk = Telemetry.Workload.view view.View.name;
      wk_live = false;
      wk_writes = 0;
      wk_events = 0;
    }
  in
  (* build auxiliary states children-first so semijoin targets exist *)
  List.iter
    (fun tbl ->
      match Derive.spec_for d tbl with
      | None -> ()
      | Some spec ->
        (* index every auxiliary view on its outgoing foreign keys so
           dimension-update propagation touches only the affected rows *)
        let indexed_columns =
          (* only fk columns the spec actually keeps plainly can be indexed;
             the rest are unreachable through this auxiliary view anyway *)
          if fk_index then
            List.filter
              (fun col -> Auxview.plain_position spec col <> None)
              (List.map
                 (fun (j : View.join) -> j.View.src.Attr.column)
                 (View.joins_from view tbl))
          else []
        in
        let st =
          Aux_state.create ~indexed_columns
            ~shards:(if String.equal tbl root then nshards else 1)
            ~dict_pool spec (schema t tbl)
        in
        Hashtbl.add t.aux tbl st;
        Database.fold db tbl
          (fun tup () ->
            if passes_spec_locals t spec tup && semijoin_ok t spec tup then
              Aux_state.insert_base st tup)
          ())
    (post_order d.Derive.graph);
  t.obs_aux <-
    Hashtbl.fold
      (fun tbl st acc ->
        let labels =
          [
            ("view", view.View.name);
            ("aux", (Aux_state.spec st).Auxview.name);
            ("base", tbl);
          ]
        in
        ( tbl,
          Telemetry.Gauge.make ~labels
            ~help:"Resident rows of the auxiliary view"
            "minview_aux_resident_rows",
          Telemetry.Gauge.make ~labels
            ~help:"Detail (base) rows the auxiliary view represents"
            "minview_aux_detail_rows",
          Telemetry.Gauge.make ~labels
            ~help:"Detail rows per resident row (compression factor)"
            "minview_aux_compression_ratio" )
        :: acc)
      t.aux [];
  Log.info (fun m ->
      m "initializing %s: %d auxiliary view(s), %s"
        view.View.name (Hashtbl.length t.aux)
        (if determined then "root view eliminated" else "root view retained"));
  (* seed the view state from the root base rows *)
  Database.fold db root
    (fun tup () ->
      if passes_locals t root tup then root_view_feed t tup ~sign:1)
    ();
  flush t;
  t.wk_live <- true;
  t

(* --- delta routing ----------------------------------------------------- *)

let route t (delta : Delta.t) =
  if List.mem delta.Delta.table t.view.View.tables then begin
    (* append-only protects the detail (root) data: dimension tables stay
       mutable (Section 4 concerns old fact rows, not the dimensions) *)
    (if t.append_only && String.equal delta.Delta.table t.root then
       match delta.Delta.change with
       | Delta.Insert _ -> ()
       | Delta.Delete _ | Delta.Update _ ->
         invariant
           "append-only warehouse: root table %s received a deletion or \
            update"
           delta.Delta.table);
    if String.equal delta.Delta.table t.root then
      match delta.Delta.change with
      | Delta.Insert tup -> root_insert t tup
      | Delta.Delete tup -> root_delete t tup
      | Delta.Update { before; after } ->
        (* exposed or not, a root update is a deletion then an insertion *)
        root_delete t before;
        root_insert t after
    else
      match delta.Delta.change with
      | Delta.Insert tup -> dim_insert t delta.Delta.table tup
      | Delta.Delete tup -> dim_delete t delta.Delta.table tup
      | Delta.Update { before; after } ->
        dim_update t delta.Delta.table ~before ~after
  end

let apply t delta =
  route t delta;
  flush t

(* --- netted + shard-parallel batch fast path ---------------------------- *)

(* One compacted root-table operation: [net] identical (on [root_reads])
   tuples inserted (net > 0) or deleted (net < 0). The prepare phase fills
   the placement fields; the apply phase consumes them. *)
type root_op = {
  rep : Tuple.t;  (** representative full root tuple of the duplicate class *)
  mutable net : int;
  mutable aux_shard : int;  (** owning shard of the root aux group, or -1 *)
  mutable feed : (Tuple.t * View_state.contrib option array) option;
  mutable view_shard : int;
}

let known_deltas t deltas =
  List.filter
    (fun (d : Delta.t) -> List.mem d.Delta.table t.view.View.tables)
    deltas

let net_batch t deltas =
  Delta_batch.net
    ~key_index:(fun tbl -> Schema.key_index (schema t tbl))
    (known_deltas t deltas)

(* Merge net root changes into signed weighted operations keyed by the
   [root_reads] projection — the delta-stream counterpart of the paper's
   smart duplicate compression: tuples that agree on every column the
   engine reads collapse to one operation with a count. *)
let root_merge t root_deltas =
  (* sized for the worst case (no two deltas share a projection) so the
     table never rehashes mid-merge *)
  let merged : root_op TH.t = TH.create (max 1024 (List.length root_deltas)) in
  let order = ref [] in
  let add sign tup =
    let proj = Tuple.project tup t.root_reads in
    match TH.find_opt merged proj with
    | Some op -> op.net <- op.net + sign
    | None ->
      let op =
        { rep = tup; net = sign; aux_shard = -1; feed = None; view_shard = 0 }
      in
      TH.add merged proj op;
      order := op :: !order
  in
  List.iter
    (fun (d : Delta.t) ->
      match d.Delta.change with
      | Delta.Insert tup -> add 1 tup
      | Delta.Delete tup -> add (-1) tup
      | Delta.Update { before; after } ->
        add (-1) before;
        add 1 after)
    root_deltas;
  Array.of_list (List.rev !order)

(* Below this many compacted root operations, domain spawns cost more than
   they recover; the fast path then runs both phases inline. Overridable
   (MINVIEW_PAR_THRESHOLD) so fault-injection tests can reach the parallel
   path with small batches; read per batch, so tests may set it late. *)
let default_par_threshold = 512

let par_threshold () =
  match Sys.getenv_opt "MINVIEW_PAR_THRESHOLD" with
  | None -> default_par_threshold
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | Some _ | None -> default_par_threshold)

(* Target slice per domain once dispatch does go parallel: below ~2k ops a
   worker's share of the fixed costs (undo-journal bookkeeping, two shard
   barriers, cache refill on its shard partition) outweighs its slice. *)
let ops_per_domain = 2048

(* How many workers to give a batch of [n] compacted root operations
   against [resident] stored rows (root auxiliary groups + view groups).
   1 means inline.

   The old fixed [n < 512] cutoff mispredicts on large states: each
   worker re-touches its whole shard partition's cache footprint, so the
   break-even batch size grows with the resident state — measured on the
   uniform parallel-scaling grid, 10k-op batches over 500k resident rows
   run ~3x slower parallel than serial (BENCH_parallel.json). Hence the
   serial floor scales as resident/32, and beyond it the worker count is
   matched to the batch so each domain keeps >= [ops_per_domain] ops.

   An explicit MINVIEW_PAR_THRESHOLD keeps the fixed-threshold behavior
   exactly (tests rely on forcing the parallel path with tiny batches).
   An empty value counts as unset — callers cannot portably remove an
   environment variable from inside the process, so [putenv var ""] must
   mean "back to auto dispatch", not "legacy with the default cutoff". *)
let dispatch_workers ~pool ~resident n =
  let cap = min (Shard.domains pool) nshards in
  match Sys.getenv_opt "MINVIEW_PAR_THRESHOLD" with
  | Some s when String.trim s <> "" ->
    if n < par_threshold () then 1 else cap
  | Some _ | None ->
    let floor = max default_par_threshold (resident / 32) in
    if n < floor then 1 else min cap (max 2 (n / ops_per_domain))

(* Stored rows a batch's application can touch: view groups, the root
   auxiliary view it writes, and the dimension auxiliary views the prepare
   probes read — the cache footprint that sets the parallel break-even. *)
let resident_rows t =
  List.fold_left
    (fun acc tbl ->
      match aux_of t tbl with
      | Some st -> acc + Aux_state.row_count st
      | None -> acc)
    (View_state.group_count t.vstate)
    t.view.View.tables

let root_change_count ds =
  List.fold_left
    (fun acc (d : Delta.t) ->
      acc + match d.Delta.change with Delta.Update _ -> 2 | _ -> 1)
    0 ds

(* Whether a netted batch of [root_changes] raw root operations takes the
   serial-floor direct path (auto dispatch only — an explicit
   MINVIEW_PAR_THRESHOLD keeps the merged two-phase path reachable for any
   batch size, which tests rely on). *)
let direct_root_dispatch t ~root_changes =
  (match Sys.getenv_opt "MINVIEW_PAR_THRESHOLD" with
  | Some s when String.trim s <> "" -> false
  | Some _ | None -> true)
  && root_changes < max default_par_threshold (resident_rows t / 32)

let apply_root_ops t pool ops =
  let n = Array.length ops in
  let root_st = aux_of t t.root in
  let resident = resident_rows t in
  let nw = dispatch_workers ~pool ~resident n in
  (* Phase A — preparation, read-only on all shared state: membership
     tests and join probes read dimension auxiliary views (concurrent pure
     reads of hash tables are safe; nothing mutates during this phase),
     group keys and contributions are materialized per operation. *)
  Telemetry.with_phase Obs.prepare ~alloc:Obs.prepare_alloc "engine.prepare"
    (fun () ->
      Shard.run pool ~workers:nw (fun w ->
          let lo = n * w / nw and hi = n * (w + 1) / nw in
          for i = lo to hi - 1 do
            let op = ops.(i) in
            if op.net <> 0 then begin
              (match root_st with
              | Some st when in_aux t t.root op.rep ->
                op.aux_shard <- Aux_state.shard_of_base st op.rep
              | Some _ | None -> ());
              if passes_locals t t.root op.rep then
                match extend t [ (t.root, Base op.rep) ] t.root with
                | None -> ()
                | Some env ->
                  let key = group_key t env in
                  op.feed <- Some (key, contribs t env ~cnt:(abs op.net));
                  op.view_shard <- View_state.shard_of_key t.vstate key
            end
          done));
  (* Workload accounting between the phases, on the coordinator: netted
     weights per group key plus the per-shard op heat of this batch. *)
  if t.wk_live && Telemetry.enabled () then begin
    let per_shard = Array.make nshards 0 in
    Array.iter
      (fun op ->
        match op.feed with
        | Some (key, _) when op.net <> 0 ->
          if t.wk_events land Telemetry.Workload.sample_mask = 0 then
            Telemetry.Workload.note_hot_key ~weight:(abs op.net) t.wk
              ~hash:(Tuple.hash key)
              ~label:(fun () -> Tuple.to_string key);
          t.wk_writes <- t.wk_writes + abs op.net;
          t.wk_events <- t.wk_events + 1;
          let sh = op.view_shard in
          if sh >= 0 && sh < nshards then
            per_shard.(sh) <- per_shard.(sh) + abs op.net
        | Some _ | None -> ())
      ops;
    Telemetry.Workload.note_shard_ops per_shard
  end;
  (* Phase B — application: every shard (root aux and view state) is owned
     by exactly one worker, so no hash table is ever shared. Each worker
     applies all positive operations before any negative one: counts then
     stay at or above their final value throughout, so a group whose net
     change is zero is never transiently destroyed (which would lose
     extremum/DISTINCT components and dirty marks). *)
  Telemetry.with_phase Obs.shard_apply ~alloc:Obs.shard_apply_alloc
    "engine.shard-apply" (fun () ->
      Shard.run pool ~workers:nw (fun w ->
          let apply_op op =
            let cnt = abs op.net in
            (if
               op.aux_shard >= 0
               && Shard.owns ~worker:w ~workers:nw op.aux_shard
             then
               let st = Option.get root_st in
               if op.net > 0 then Aux_state.insert_base ~count:cnt st op.rep
               else Aux_state.delete_base ~count:cnt st op.rep);
            match op.feed with
            | Some (key, cs)
              when Shard.owns ~worker:w ~workers:nw op.view_shard ->
              if op.net > 0 then View_state.feed t.vstate ~key ~cnt cs
              else View_state.unfeed t.vstate ~key ~cnt cs
            | Some _ | None -> ()
          in
          Array.iter (fun op -> if op.net > 0 then apply_op op) ops;
          Array.iter (fun op -> if op.net < 0 then apply_op op) ops))

(* Serial-floor fast path: in auto-dispatch mode, a batch whose raw
   root-delta count is already below the serial floor skips the weighted
   merge and the prepare/apply split — per operation, the dimension probes
   feed the root-aux and view-state writes directly, with no op records,
   no projection hashing and no shard-ownership hashing. Exactly
   equivalent to [root_merge] + [apply_root_ops]: preparation reads only
   dimension auxiliary views while application writes only the root
   auxiliary view and the view state (so fusing them per operation changes
   nothing), and a weighted fold of [k] identical projections equals [k]
   unit operations. Positive changes still go before negative ones — the
   same transient-group discipline as phase B. *)
let apply_root_direct t root_deltas =
  let root_st = aux_of t t.root in
  let one sign tup =
    (match root_st with
    | Some st when in_aux t t.root tup ->
      if sign > 0 then Aux_state.insert_base st tup
      else Aux_state.delete_base st tup
    | Some _ | None -> ());
    if passes_locals t t.root tup then
      match extend t [ (t.root, Base tup) ] t.root with
      | None -> ()
      | Some env ->
        let key = group_key t env in
        if t.wk_live && Telemetry.enabled () then begin
          if t.wk_events land Telemetry.Workload.sample_mask = 0 then
            Telemetry.Workload.note_hot_key t.wk ~hash:(Tuple.hash key)
              ~label:(fun () -> Tuple.to_string key);
          t.wk_writes <- t.wk_writes + 1;
          t.wk_events <- t.wk_events + 1
        end;
        let cs = contribs t env ~cnt:1 in
        if sign > 0 then View_state.feed t.vstate ~key ~cnt:1 cs
        else View_state.unfeed t.vstate ~key ~cnt:1 cs
  in
  List.iter
    (fun (d : Delta.t) ->
      match d.Delta.change with
      | Delta.Insert tup -> one 1 tup
      | Delta.Update { after; _ } -> one 1 after
      | Delta.Delete _ -> ())
    root_deltas;
  List.iter
    (fun (d : Delta.t) ->
      match d.Delta.change with
      | Delta.Delete tup -> one (-1) tup
      | Delta.Update { before; _ } -> one (-1) before
      | Delta.Insert _ -> ())
    root_deltas

(* Netted batch application: dimension phases run serially in join-tree
   order (inserts leaves-first so join partners exist, deletes root-first so
   references are gone), root operations run compacted and shard-parallel.
   Equivalent to the serial replay for any batch that is legal against the
   pre-batch state — see DESIGN.md, "Concurrency model". *)
(* --- lineage flow capture ---------------------------------------------- *)

(* Cheap pre/post snapshots — O(auxviews x shards) per batch, nothing on
   the per-row hot path — turn a batch into per-auxview net flows for the
   lineage record the warehouse emits at commit. *)
let flow_pre t =
  if not (Telemetry.enabled ()) then None
  else
    Some
      ( List.filter_map
          (fun tbl ->
            Option.map
              (fun st ->
                (tbl, Aux_state.row_count st, Aux_state.base_count st))
              (aux_of t tbl))
          t.view.View.tables,
        View_state.group_count t.vstate )

let flow_finish t pre ~mode ~deltas_in ~netted ~applied =
  match pre with
  | None -> ()
  | Some (pre_aux, pre_groups) ->
    if t.wk_live then begin
      Telemetry.Workload.note_batch t.wk ~deltas_in ~netted ~applied;
      Telemetry.Workload.flush_writes t.wk ~writes:t.wk_writes
        ~events:t.wk_events;
      t.wk_writes <- 0;
      t.wk_events <- 0
    end;
    let aux_flows =
      List.filter_map
        (fun (tbl, rows0, detail0) ->
          Option.map
            (fun st ->
              let resident_delta = Aux_state.row_count st - rows0 in
              let detail_delta = Aux_state.base_count st - detail0 in
              {
                Telemetry.Lineage.aux = (Aux_state.spec st).Auxview.name;
                base = tbl;
                resident_delta;
                detail_delta;
                folded = max 0 (detail_delta - resident_delta);
              })
            (aux_of t tbl))
        pre_aux
    in
    t.last_flow <-
      Some
        {
          Telemetry.Lineage.view = t.view.View.name;
          mode;
          deltas_in;
          netted;
          applied;
          group_delta = View_state.group_count t.vstate - pre_groups;
          aux_flows;
        }

let last_flow t = t.last_flow

let apply_batch_parallel t pool deltas =
  (* append-only violations must reject the batch whether or not the
     offending change nets out — match the serial path's verdict *)
  if t.append_only then
    List.iter
      (fun (d : Delta.t) ->
        if String.equal d.Delta.table t.root then
          match d.Delta.change with
          | Delta.Insert _ -> ()
          | Delta.Delete _ | Delta.Update _ ->
            invariant
              "append-only warehouse: root table %s received a deletion or \
               update"
              d.Delta.table)
      deltas;
  let pre_flow = flow_pre t in
  let net =
    Telemetry.with_phase Obs.compact ~alloc:Obs.compact_alloc "engine.compact"
      (fun () -> net_batch t deltas)
  in
  if Telemetry.enabled () then begin
    Telemetry.Counter.inc Obs.deltas_total
      net.Delta_batch.stats.Delta_batch.input;
    Telemetry.Counter.inc Obs.deltas_netted
      net.Delta_batch.stats.Delta_batch.output
  end;
  let root_deltas = ref [] in
  let dims = ref [] in
  List.iter
    (fun (tbl, ds) ->
      if String.equal tbl t.root then root_deltas := ds
      else dims := (List.length (path_to t tbl), tbl, ds) :: !dims)
    net.Delta_batch.tables;
  let deep_first =
    List.sort (fun (a, _, _) (b, _, _) -> compare b a) (List.rev !dims)
  in
  let shallow_first = List.rev deep_first in
  Telemetry.with_phase Obs.dim_apply ~alloc:Obs.dim_apply_alloc
    "engine.dim-apply" (fun () ->
      List.iter
        (fun (_, tbl, ds) ->
          List.iter
            (fun (d : Delta.t) ->
              match d.Delta.change with
              | Delta.Insert tup -> dim_insert t tbl tup
              | Delta.Delete _ | Delta.Update _ -> ())
            ds)
        deep_first;
      List.iter
        (fun (_, tbl, ds) ->
          List.iter
            (fun (d : Delta.t) ->
              match d.Delta.change with
              | Delta.Update { before; after } ->
                dim_update t tbl ~before ~after
              | Delta.Insert _ | Delta.Delete _ -> ())
            ds)
        deep_first);
  let root_changes = root_change_count !root_deltas in
  let dim_ops () =
    List.fold_left (fun acc (_, _, ds) -> acc + List.length ds) 0 deep_first
  in
  let applied_ops = ref 0 in
  if direct_root_dispatch t ~root_changes then begin
    if Telemetry.enabled () then begin
      applied_ops := dim_ops () + root_changes;
      Telemetry.Counter.inc Obs.ops_applied !applied_ops
    end;
    Telemetry.with_phase Obs.shard_apply ~alloc:Obs.shard_apply_alloc
      "engine.shard-apply" (fun () -> apply_root_direct t !root_deltas)
  end
  else begin
    let ops =
      Telemetry.with_phase Obs.weighted_merge ~alloc:Obs.weighted_merge_alloc
        "engine.weighted-merge" (fun () -> root_merge t !root_deltas)
    in
    if Telemetry.enabled () then begin
      Telemetry.Counter.inc Obs.merge_folds
        (root_changes - Array.length ops);
      let root_ops =
        Array.fold_left
          (fun acc op -> if op.net <> 0 then acc + 1 else acc)
          0 ops
      in
      applied_ops := dim_ops () + root_ops;
      Telemetry.Counter.inc Obs.ops_applied !applied_ops
    end;
    apply_root_ops t pool ops
  end;
  Telemetry.with_phase Obs.dim_apply ~alloc:Obs.dim_apply_alloc
    "engine.dim-apply" (fun () ->
      List.iter
        (fun (_, tbl, ds) ->
          List.iter
            (fun (d : Delta.t) ->
              match d.Delta.change with
              | Delta.Delete tup -> dim_delete t tbl tup
              | Delta.Insert _ | Delta.Update _ -> ())
            ds)
        shallow_first);
  Telemetry.with_phase Obs.view_update ~alloc:Obs.view_update_alloc
    "engine.view-update" (fun () -> flush t);
  flow_finish t pre_flow ~mode:"parallel"
    ~deltas_in:net.Delta_batch.stats.Delta_batch.input
    ~netted:net.Delta_batch.stats.Delta_batch.output ~applied:!applied_ops

let apply_batch ?parallel t deltas =
  match parallel with
  | None ->
    Telemetry.Counter.one Obs.batches_serial;
    let known =
      if Telemetry.enabled () then List.length (known_deltas t deltas) else 0
    in
    Telemetry.Counter.inc Obs.deltas_total known;
    let pre_flow = flow_pre t in
    Telemetry.with_phase Obs.apply_serial "engine.apply-batch"
      ~attrs:[ ("mode", "serial"); ("view", t.view.View.name) ]
      (fun () ->
        List.iter (route t) deltas;
        Telemetry.with_phase Obs.view_update ~alloc:Obs.view_update_alloc
          "engine.view-update" (fun () -> flush t));
    (* the serial path neither compacts nor merges: every known delta is
       applied as is *)
    flow_finish t pre_flow ~mode:"serial" ~deltas_in:known ~netted:known
      ~applied:known
  | Some pool ->
    Telemetry.Counter.one Obs.batches_parallel;
    Telemetry.with_phase Obs.apply_parallel "engine.apply-batch"
      ~attrs:[ ("mode", "parallel"); ("view", t.view.View.name) ]
      (fun () -> apply_batch_parallel t pool deltas)

type batch_profile = { input : int; netted : int; applied : int }

(* Measure what compaction would do to [deltas] without applying them. *)
let net_profile t deltas =
  let net = net_batch t deltas in
  let dim_ops, root_ds =
    List.fold_left
      (fun (dims, root) (tbl, ds) ->
        if String.equal tbl t.root then (dims, ds)
        else (dims + List.length ds, root))
      (0, []) net.Delta_batch.tables
  in
  let root_changes = root_change_count root_ds in
  let root_ops =
    (* mirror the dispatch: below the serial floor the fast path applies
       the netted root deltas directly, without the weighted merge *)
    if direct_root_dispatch t ~root_changes then root_changes
    else
      Array.fold_left
        (fun acc (op : root_op) -> if op.net <> 0 then acc + 1 else acc)
        0 (root_merge t root_ds)
  in
  {
    input = List.length deltas;
    netted = net.Delta_batch.stats.Delta_batch.output;
    applied = dim_ops + root_ops;
  }

(* --- inspection -------------------------------------------------------- *)

let view_contents t = View_state.render t.vstate

let aux_contents t =
  List.filter_map
    (fun tbl ->
      Option.map
        (fun st -> (tbl, Aux_state.to_relation st))
        (aux_of t tbl))
    t.view.View.tables

let storage_profile t =
  (t.view.View.name, View_state.group_count t.vstate, Array.length t.plans)
  :: List.filter_map
       (fun tbl ->
         Option.map
           (fun st ->
             ( (Aux_state.spec st).Auxview.name,
               Aux_state.row_count st,
               List.length (Aux_state.spec st).Auxview.columns ))
           (aux_of t tbl))
       t.view.View.tables

(* Measured resident bytes per stored object, in [storage_profile] order:
   the columnar layout accounts allocated cell bytes per column (Bigarray
   payloads included), so this is a measurement, not the bytes-per-field
   estimate. *)
let measured_bytes t =
  (t.view.View.name, View_state.byte_size t.vstate)
  :: List.filter_map
       (fun tbl ->
         Option.map
           (fun st ->
             ((Aux_state.spec st).Auxview.name, Aux_state.byte_size st))
           (aux_of t tbl))
       t.view.View.tables

(* Off-heap (Bigarray) bytes across the view state and every auxiliary
   view — the columnar payloads the GC gauges cannot see. *)
let offheap_bytes t =
  List.fold_left
    (fun acc tbl ->
      match aux_of t tbl with
      | Some st -> acc + Aux_state.offheap_bytes st
      | None -> acc)
    (View_state.offheap_bytes t.vstate)
    t.view.View.tables

(* --- drift auditor ------------------------------------------------------ *)

(* Float aggregates are accumulated incrementally by maintenance but summed
   in storage order by the recompute, so allow for rounding drift. *)
let value_close a b =
  match a, b with
  | Value.Float x, Value.Float y ->
    x = y
    || Float.abs (x -. y)
       <= 1e-9 *. Float.max 1. (Float.max (Float.abs x) (Float.abs y))
  | _ -> Value.equal a b

let audit ~sample t =
  match aux_of t t.root with
  | None -> None (* root auxview eliminated: no retained detail to recompute *)
  | Some root_st ->
    let keys =
      Array.of_list
        (View_state.fold_groups t.vstate
           (fun key cnt acc -> (key, cnt) :: acc)
           [])
    in
    let total = Array.length keys in
    let idxs = Telemetry.Lineage.sample_indices ~sample ~total in
    let sampled = TH.create (2 * List.length idxs) in
    List.iter (fun i -> TH.replace sampled (fst keys.(i)) ()) idxs;
    (* recompute the sampled groups from the retained detail: feed every
       contributing root auxiliary row into a scratch view state, exactly
       as the initial load does *)
    let scratch = View_state.create t.view ~determined:false in
    Aux_state.iter root_st (fun row ->
        match extend_root t root_st row with
        | None -> ()
        | Some env ->
          let key = group_key t env in
          if TH.mem sampled key then
            let cnt = Aux_state.cnt row in
            View_state.feed scratch ~key ~cnt (contribs t env ~cnt));
    let expected_cnt = TH.create 64 in
    View_state.fold_groups scratch
      (fun key cnt () -> TH.replace expected_cnt key cnt)
      ();
    (* group-key positions in the rendered select row, for indexing *)
    let key_positions =
      Array.map
        (fun (tbl, col) ->
          let found = ref (-1) in
          Array.iteri
            (fun i plan ->
              match plan with
              | P_group { table; column }
                when !found < 0 && String.equal table tbl
                     && String.equal column col ->
                found := i
              | P_group _ | P_agg _ -> ())
            t.plans;
          assert (!found >= 0);
          !found)
        t.group_plan
    in
    let index_render rel =
      let h = TH.create 64 in
      Relation.iter
        (fun row _m ->
          TH.replace h (Array.map (fun i -> row.(i)) key_positions) row)
        rel;
      h
    in
    let expected = index_render (View_state.render scratch) in
    let actual = index_render (View_state.render t.vstate) in
    let rows_close a b =
      Array.length a = Array.length b
      && Array.for_all2 value_close a b
    in
    let check i =
      let key, cnt = keys.(i) in
      TH.find_opt expected_cnt key = Some cnt
      &&
      match TH.find_opt expected key, TH.find_opt actual key with
      | Some erow, Some arow -> rows_close erow arow
      | _, _ -> false
    in
    Some
      (Telemetry.Lineage.audit ~view:t.view.View.name ~sample ~total ~check)
