(** Boxed reference implementation of {!Aux_state} (one record per group).

    Kept as the oracle for the columnar storage equivalence tests and as
    the baseline of [bench columnar]; not used by the engine itself.

    Rows are grouped by the spec's [Plain] columns; each group carries its
    ["COUNT(*)"] and the running [Sum_of] values. Degenerate (uncompressed)
    PSJ views use the same representation — their grouping key is the whole
    kept tuple and the count is the tuple multiplicity. *)

type t

(** One group of the auxiliary view; same cursor-handle protocol as
    {!Aux_state.row} so the two implementations stay interchangeable in the
    equivalence tests. *)
type row

(** Snapshot of the group's ["COUNT(*)"] at handle creation. *)
val cnt : row -> int

(** Group key, in {!Mindetail.Auxview.group_columns} order. Callers must
    not mutate it. *)
val plains : t -> row -> Relational.Tuple.t

(** Fresh running sums, in {!Mindetail.Auxview.summed_columns} order. *)
val sums : t -> row -> Relational.Value.t array

(** Fresh extrema, in {!Mindetail.Auxview.ext_columns} order. *)
val exts : t -> row -> Relational.Value.t array

(** [create ?indexed_columns ?shards spec schema] prepares empty state.
    [indexed_columns] (plain columns, typically the foreign keys of a root
    view) get secondary indexes so rows_with is O(matching groups) instead
    of a scan — the engine uses this to make dimension-update propagation
    proportional to the affected rows.

    [shards] (a power of two, default 1) splits every group-keyed structure
    — groups, by-key map, secondary indexes, undo journal, totals — into
    hash shards so a parallel applier can hand disjoint shards to disjoint
    domains. Sharding is invisible to every accessor and to {!equal};
    states with different shard counts compare structurally.
    @raise Invalid_argument if an indexed column is not a plain column of
    [spec] — a misspelled index column must not become a silent full scan —
    or if [shards] is not a positive power of two. *)
val create :
  ?indexed_columns:string list ->
  ?shards:int ->
  Mindetail.Auxview.t ->
  Relational.Schema.t ->
  t

val shard_count : t -> int

(** Shard that owns the group of base tuple [tup] (computed without
    materializing the projection). *)
val shard_of_base : t -> Relational.Tuple.t -> int

(** Shard that owns group key [key]. *)
val shard_of_key : t -> Relational.Tuple.t -> int

val spec : t -> Mindetail.Auxview.t

(** Deep copy: groups, key index and secondary indexes are duplicated so the
    copy and the original evolve independently (snapshot checkpoints). The
    copy carries no open transaction. *)
val copy : t -> t

(** Structural equality of the resident state: groups (count, sums, extrema),
    by-key map, secondary-index membership, and the base-row total. Open
    transactions are ignored. *)
val equal : t -> t -> bool

(** {2 Batch transactions}

    The undo journal records a first-touch before-image of every group a
    batch mutates (creation, count/sum/extremum changes — and with them the
    implied by-key and index membership). [rollback] restores exactly the
    touched groups, so aborting a batch costs O(delta), never O(state). *)

(** Opens an undo journal; subsequent mutations are journaled.
    @raise Invalid_argument if a transaction is already open. *)
val begin_txn : t -> unit

(** Discards the journal, keeping all mutations.
    @raise Invalid_argument if no transaction is open. *)
val commit : t -> unit

(** Restores every group touched since {!begin_txn} to its before-image
    (removing created groups, reinstating deleted ones, and repairing by-key
    and secondary-index membership) and closes the journal.
    @raise Invalid_argument if no transaction is open. *)
val rollback : t -> unit

(** [insert_base ?count s tup] folds [count] (default 1) identical base
    tuples in; the caller has already checked local conditions and semijoin
    reductions. Weighted insertion is exact: COUNT gains [count] and each
    SUM gains the value scaled by [count] — the compactor relies on this to
    replay a merged duplicate class as one operation.
    @raise Invalid_argument (before any mutation — the group stays intact)
    if a summed column holds a non-numeric value, a MIN/MAX column holds
    NULL, or [count < 1]. *)
val insert_base : ?count:int -> t -> Relational.Tuple.t -> unit

(** [delete_base ?count s tup] removes [count] (default 1) identical base
    tuples' contributions.
    @raise Invalid_argument if the tuple's group is absent or underflows, if
    the view carries append-only MIN/MAX columns (which are not
    maintainable under deletions — the engine never lets this happen), if
    [count < 1], or — before any mutation — if a summed column holds a
    non-numeric value. *)
val delete_base : ?count:int -> t -> Relational.Tuple.t -> unit

(** Number of groups (= stored rows). *)
val row_count : t -> int

(** Total base tuples folded in (Σ counts). *)
val base_count : t -> int

(** Key-indexed lookup, available when the base key is kept plainly (always
    true for semijoin targets and join destinations).
    @raise Invalid_argument when the key is not kept. *)
val find_by_key : t -> Relational.Value.t -> row option

val mem_key : t -> Relational.Value.t -> bool

val iter : t -> (row -> unit) -> unit

(** [rows_with s ~column v] are the groups whose plain [column] equals [v].
    O(result) when [column] was indexed at {!create}; falls back to a scan
    otherwise. *)
val rows_with : t -> column:string -> Relational.Value.t -> row list

(** [plain_of s row col] reads the projection of base column [col].
    @raise Not_found if the column is not kept plainly. *)
val plain_of : t -> row -> string -> Relational.Value.t

(** [sum_of s row col] reads the running SUM over base column [col].
    @raise Not_found if the column has no SUM. *)
val sum_of : t -> row -> string -> Relational.Value.t

(** [min_of s row col] / [max_of s row col] read the append-only extremum
    columns. @raise Not_found if absent. *)
val min_of : t -> row -> string -> Relational.Value.t

val max_of : t -> row -> string -> Relational.Value.t

(** Project one base tuple to the grouping key of this view. *)
val group_key_of_base : t -> Relational.Tuple.t -> Relational.Tuple.t

(** Contents in spec column order, as a relation (degenerate views expand the
    count into tuple multiplicity). *)
val to_relation : t -> Relational.Relation.t
