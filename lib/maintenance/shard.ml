(* Domain pool for shard-parallel maintenance.

   Spawning a domain is far from free (it reserves a minor-heap arena and
   registers with the stop-the-world machinery), so the pool keeps its
   workers alive across phases: they are spawned lazily on the first
   multi-worker [run] and then park on a condition variable between jobs.
   A parked worker sits in [Condition.wait] — a blocking section — so it
   neither burns CPU nor delays any other domain's minor collection.

   With [domains = 1] (or a single-worker run) everything executes on the
   calling domain and no domain is ever spawned.

   Supervision: worker exceptions are captured and re-raised on the caller
   (lowest worker index wins, deterministically), after every worker has
   finished its job, so a failing phase never leaves a worker mid-run. A
   pool created with a [deadline] additionally bounds how long the caller
   waits for each spawned worker; a worker that blows the deadline raises
   [Wedged] on the caller and poisons the pool — the wedged domain cannot
   be killed (OCaml domains are not cancellable), so it is abandoned and a
   fresh worker set is spawned on the next multi-worker run. Every worker
   slot is still awaited before [Wedged] is raised, so all non-wedged
   workers are quiescent — but the wedged domain itself may still be
   executing the job, and callers must treat any state it closes over as
   unsalvageable. Both failure kinds bump
   [minview_shard_worker_failures_total].

   Workers are daemon-like: they are never joined, and the process exits
   normally while they are parked.  A pool must only be driven from one
   domain at a time (the engine's apply path already guarantees this). *)

type worker = {
  m : Mutex.t;
  cv : Condition.t;  (* signalled both ways: job posted / job finished *)
  mutable job : (int -> unit) option;
  mutable busy : bool;
  mutable error : exn option;
}

type pool = {
  domains : int;
  deadline : float option;  (* seconds the caller waits per worker per run *)
  mutable workers : worker array;  (* empty until the first parallel run *)
  mutable poisoned : bool;  (* a worker wedged: abandon and respawn *)
}

exception Wedged of { worker : int; waited : float }

let make deadline domains =
  if domains < 1 then invalid_arg "Shard.create: domains must be >= 1";
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Shard.create: deadline must be > 0"
  | Some _ | None -> ());
  { domains; deadline; workers = [||]; poisoned = false }

let create ~domains = make None domains
let supervised ~domains ~deadline = make (Some deadline) domains

let domains t = t.domains
let deadline t = t.deadline

let serial = { domains = 1; deadline = None; workers = [||]; poisoned = false }

let worker_loop w id =
  Mutex.lock w.m;
  while true do
    while w.job = None do
      Condition.wait w.cv w.m
    done;
    let f = Option.get w.job in
    Mutex.unlock w.m;
    let error = (try f id; None with exn -> Some exn) in
    Mutex.lock w.m;
    w.job <- None;
    w.error <- error;
    w.busy <- false;
    Condition.signal w.cv
  done

let ensure_workers pool =
  (* a poisoned pool abandons its workers (one of them is wedged inside a
     job and can never be reused) and starts a fresh set; the wedged domain
     leaks by design — OCaml offers no way to kill it *)
  if pool.poisoned then begin
    pool.workers <- [||];
    pool.poisoned <- false
  end;
  if Array.length pool.workers = 0 then
    pool.workers <-
      Array.init (pool.domains - 1) (fun i ->
          let w =
            {
              m = Mutex.create ();
              cv = Condition.create ();
              job = None;
              busy = false;
              error = None;
            }
          in
          ignore (Domain.spawn (fun () -> worker_loop w (i + 1)));
          w)

let post w f =
  Mutex.lock w.m;
  w.job <- Some f;
  w.busy <- true;
  w.error <- None;
  Condition.signal w.cv;
  Mutex.unlock w.m

let await w =
  Mutex.lock w.m;
  while w.busy do
    Condition.wait w.cv w.m
  done;
  let error = w.error in
  Mutex.unlock w.m;
  error

(* Deadline-bounded wait: [Condition] has no timed wait, so poll the busy
   flag in short sleeps. Only the supervised (deadline) path pays this;
   2 ms granularity is noise next to a multi-worker phase. *)
let await_deadline w ~seconds =
  let t0 = Unix.gettimeofday () in
  let rec loop () =
    Mutex.lock w.m;
    if not w.busy then begin
      let error = w.error in
      Mutex.unlock w.m;
      Ok error
    end
    else begin
      Mutex.unlock w.m;
      let waited = Unix.gettimeofday () -. t0 in
      if waited > seconds then Error waited
      else begin
        Unix.sleepf 0.002;
        loop ()
      end
    end
  in
  loop ()

module Obs = struct
  let run_seconds =
    Telemetry.Histogram.make
      ~help:"Wall-clock latency of one multi-worker pool run"
      "minview_shard_run_seconds"

  let imbalance =
    Telemetry.Gauge.make
      ~help:"Busiest worker / mean worker busy time of the last pool run"
      "minview_shard_imbalance_ratio"

  (* registration is idempotent, so fetching the per-worker gauge by label
     on every run is just a registry lookup (worker counts are small) *)
  let busy w =
    Telemetry.Gauge.make
      ~labels:[ ("worker", string_of_int w) ]
      ~help:"Cumulative busy time of this pool worker across runs"
      "minview_shard_worker_busy_seconds_total"

  let failures kind =
    Telemetry.Counter.make
      ~labels:[ ("kind", kind) ]
      ~help:"Shard workers that failed a pool run (raised or wedged)"
      "minview_shard_worker_failures_total"
end

let raise_failure exn =
  Telemetry.Counter.one (Obs.failures "raised");
  raise exn

let run_jobs pool n f =
  ensure_workers pool;
  (* the injected worker fault: in [Fail] mode the supervisor above the
     engine must roll the transaction back and degrade to serial apply *)
  let f w =
    Faults.hit Faults.In_shard_worker;
    f w
  in
  for w = 1 to n - 1 do
    post pool.workers.(w - 1) f
  done;
  let err0 = (try f 0; None with exn -> Some exn) in
  (match pool.deadline with
  | None ->
    let errors = Array.init (n - 1) (fun i -> await pool.workers.(i)) in
    (match err0 with Some exn -> raise_failure exn | None -> ());
    Array.iter
      (function Some exn -> raise_failure exn | None -> ())
      errors
  | Some seconds ->
    (* drain the await of every worker before raising — even after a wedge —
       so every worker that still answers is provably quiescent when the
       supervisor sees the failure. A wedge poisons the pool but does NOT
       stop the collection: skipping the remaining awaits would leave
       merely-slow workers running unobserved. Note that after [Wedged] the
       pool is still not quiescent: the wedged domain itself cannot be
       cancelled and may resume inside the job at any time, so the caller
       must abandon (never roll back or reuse) any state the job closes
       over. *)
    let errors = Array.make (n - 1) None in
    let wedged = ref None in
    for i = 0 to n - 2 do
      match await_deadline pool.workers.(i) ~seconds with
      | Ok e -> errors.(i) <- e
      | Error waited ->
        pool.poisoned <- true;
        Telemetry.Counter.one (Obs.failures "wedged");
        if Option.is_none !wedged then
          wedged := Some (Wedged { worker = i + 1; waited })
    done;
    (match !wedged with Some exn -> raise exn | None -> ());
    (match err0 with Some exn -> raise_failure exn | None -> ());
    Array.iter
      (function Some exn -> raise_failure exn | None -> ())
      errors)

(* [run pool n f] executes [f w] for workers [w = 0 .. n-1] where
   [n = min pool.domains n_wanted]; worker 0 runs on the calling domain. *)
let run pool ~workers:wanted f =
  let n = min pool.domains (max 1 wanted) in
  if n = 1 then f 0
  else if not (Telemetry.enabled ()) then run_jobs pool n f
  else begin
    (* each busy slot is written by exactly one domain, and the post/await
       mutexes order those writes before the caller's read below *)
    let busy = Array.make n 0. in
    let timed w =
      let t0 = Telemetry.now_s () in
      Fun.protect
        ~finally:(fun () -> busy.(w) <- Telemetry.now_s () -. t0)
        (fun () -> f w)
    in
    let t0 = Telemetry.now_s () in
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Histogram.observe Obs.run_seconds
          (Telemetry.now_s () -. t0);
        let total = Array.fold_left ( +. ) 0. busy in
        let max_busy = Array.fold_left Float.max 0. busy in
        let mean = total /. float_of_int n in
        Telemetry.Gauge.set Obs.imbalance
          (if mean > 0. then max_busy /. mean else 1.);
        Array.iteri (fun w d -> Telemetry.Gauge.add (Obs.busy w) d) busy;
        (* the workload profile keeps the imbalance time series the scalar
           gauge above overwrites *)
        Telemetry.Workload.note_shard_run ~workers:n ~busy)
      (fun () -> run_jobs pool n timed)
  end

(* Shard [s] of [nshards] belongs to worker [s mod n] — every worker owns a
   disjoint, statically known set of shards, so two workers never touch the
   same hash table. *)
let owns ~worker ~workers shard = shard mod workers = worker
