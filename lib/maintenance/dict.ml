module Value = Relational.Value

type t = {
  lock : Mutex.t;
  codes : (string, int) Hashtbl.t;  (** guarded by [lock] *)
  strings : string array Atomic.t;
  hashes : int array Atomic.t;
  size : int Atomic.t;
      (** published last: slots below [size] are immutable and initialized *)
}

let create () =
  {
    lock = Mutex.create ();
    codes = Hashtbl.create 64;
    strings = Atomic.make (Array.make 16 "");
    hashes = Atomic.make (Array.make 16 0);
    size = Atomic.make 0;
  }

let size d = Atomic.get d.size

let decode d c =
  let n = Atomic.get d.size in
  if c < 0 || c >= n then
    invalid_arg (Printf.sprintf "Dict.decode: code %d of %d" c n);
  (Atomic.get d.strings).(c)

let hash d c =
  let n = Atomic.get d.size in
  if c < 0 || c >= n then
    invalid_arg (Printf.sprintf "Dict.hash: code %d of %d" c n);
  (Atomic.get d.hashes).(c)

(* Grow-and-publish: the enlarged array (with every assigned slot blitted)
   is installed with [Atomic.set] before the new code becomes visible via
   [size], so lock-free readers never observe an unwritten slot. *)
let ensure_capacity d n =
  let cur = Atomic.get d.strings in
  if Array.length cur < n then begin
    let cap = max n (2 * Array.length cur) in
    let strings = Array.make cap "" in
    Array.blit cur 0 strings 0 (Array.length cur);
    Atomic.set d.strings strings;
    let hs = Atomic.get d.hashes in
    let hashes = Array.make cap 0 in
    Array.blit hs 0 hashes 0 (Array.length hs);
    Atomic.set d.hashes hashes
  end

let intern d s =
  Mutex.lock d.lock;
  match Hashtbl.find_opt d.codes s with
  | Some c ->
    Mutex.unlock d.lock;
    c
  | None ->
    let c = Atomic.get d.size in
    ensure_capacity d (c + 1);
    (Atomic.get d.strings).(c) <- s;
    (Atomic.get d.hashes).(c) <- Value.hash (Value.String s);
    Hashtbl.add d.codes s c;
    Atomic.set d.size (c + 1);
    Mutex.unlock d.lock;
    c

let string_bytes s = 24 + (String.length s / 8 * 8) + 8

let byte_size d =
  let n = Atomic.get d.size in
  let cap = Array.length (Atomic.get d.strings) in
  let strings = ref 0 in
  let arr = Atomic.get d.strings in
  for c = 0 to n - 1 do
    strings := !strings + string_bytes arr.(c)
  done;
  (* both snapshots (strings + hashes) at 8 B/slot, the intern table at
     ~3 words per binding, and the interned payloads *)
  (16 * cap) + (24 * n) + !strings

type pool = (string, t) Hashtbl.t

let create_pool () : pool = Hashtbl.create 16

let shared pool ~table ~column =
  let key = table ^ "." ^ column in
  match Hashtbl.find_opt pool key with
  | Some d -> d
  | None ->
    let d = create () in
    Hashtbl.add pool key d;
    d
