module View = Algebra.View
module Select_item = Algebra.Select_item
module Aggregate = Algebra.Aggregate
module Attr = Algebra.Attr
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Icol = Column.Icol

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type contrib =
  | C_count of int
  | C_sum of { amount : Value.t; n : int }
  | C_value of Value.t

(* Physical layout mirrors {!Aux_state}: groups are row ids into parallel
   typed columns — one column per group-key attribute plus per-aggregate
   component columns ([slot]s below) and a dense base-row-count column.
   Extremum and DISTINCT components live in boxed columns because they need
   an absent state; [Value.Null] is the [None] sentinel (base data is
   null-free, Section 2.1). *)

(* One aggregate's component storage across all groups of a shard. *)
type slot =
  | L_group  (** group-by item: its cells live in the key columns *)
  | L_count of Icol.t
  | L_sum of { sum : Column.t; n : Icol.t }
  | L_ext of Column.t  (** current extremum; [Null] = pending recompute *)
  | L_dist of Column.t  (** DISTINCT result; [Null] = pending recompute *)

(* First-touch before-image of one group under an open transaction, keyed
   by group key (row ids are renumbered by swap-with-last deletion, so only
   keys are stable across a batch). *)
type saved_acc =
  | Sv_group
  | Sv_count of int
  | Sv_sum of { sum : Value.t; n : int }
  | Sv_value of Value.t  (** extremum / distinct cell, [Null] = pending *)

type saved_group =
  | Absent
  | Present of { cnt0 : int; accs : saved_acc array }

type txn = { saved : saved_group TH.t; dirty0 : unit TH.t }

(* One hash-shard of the view state: key columns, component columns, the
   dirty set and the undo journal all live per shard so parallel appliers
   owning disjoint shards never share a structure. Group keys entering the
   dirty set or the journal are copied on retention, because callers may
   pass reused scratch buffers. *)
type shard = {
  keys : Column.t array;
  slots : slot array;
  cnt0 : Icol.t;
  map : Rowmap.t;  (** group key (= key cells) -> row id *)
  dirty : unit TH.t;
  mutable txn : txn option;
}

type t = {
  view : View.t;
  determined : bool;
  items : Select_item.t array;
  mask : int;  (** shard count - 1 *)
  shards : shard array;
}

(* Row-key hash over the key cells; must agree with [Tuple.hash] of the
   boxed group key. *)
let key_hash_cols (keys : Column.t array) r =
  Array.fold_left (fun acc c -> (acc * 31) + Column.hash_cell c r) 17 keys

let nrows (sh : shard) = Icol.length sh.cnt0

let create ?(shards = 1) ?dict_pool view ~determined =
  if shards < 1 || shards land (shards - 1) <> 0 then
    invalid_arg "View_state.create: shard count is not a power of two";
  let items = Array.of_list view.View.select in
  let key_attrs = Array.of_list (View.group_attrs view) in
  let mk_slot (item : Select_item.t) =
    match item with
    | Select_item.Group _ -> L_group
    | Select_item.Agg agg -> (
      if agg.Aggregate.distinct then L_dist (Column.create_boxed ())
      else
        match agg.Aggregate.func with
        | Aggregate.Count | Aggregate.Count_star -> L_count (Icol.create ())
        | Aggregate.Sum | Aggregate.Avg ->
          L_sum { sum = Column.create (); n = Icol.create () }
        | Aggregate.Min | Aggregate.Max -> L_ext (Column.create_boxed ()))
  in
  let mk_shard () =
    let keys =
      Array.map
        (fun (a : Attr.t) ->
          let dict =
            Option.map
              (fun pool -> Dict.shared pool ~table:a.Attr.table ~column:a.Attr.column)
              dict_pool
          in
          Column.create ?dict ())
        key_attrs
    in
    {
      keys;
      slots = Array.map mk_slot items;
      cnt0 = Icol.create ();
      map = Rowmap.create ~hash:(fun r -> key_hash_cols keys r) ();
      dirty = TH.create 16;
      txn = None;
    }
  in
  {
    view;
    determined;
    items;
    mask = shards - 1;
    shards = Array.init shards (fun _ -> mk_shard ());
  }

let shard_count t = Array.length t.shards
let shard_of_key t key = if t.mask = 0 then 0 else Tuple.hash key land t.mask
let shard_for t key = t.shards.(shard_of_key t key)

let row_matches_key (sh : shard) r (key : Tuple.t) =
  let n = Array.length key in
  let rec ok i =
    i >= n || Column.equal_cell sh.keys.(i) r key.(i) && ok (i + 1)
  in
  ok 0

let find_row (sh : shard) key =
  Rowmap.find sh.map ~hash:(Tuple.hash key) ~eq:(fun r -> row_matches_key sh r key)

let key_at (sh : shard) r =
  Array.init (Array.length sh.keys) (fun i -> Column.get sh.keys.(i) r)

(* --- row attach / detach ------------------------------------------------- *)

let saved_accs (sh : shard) r =
  Array.map
    (function
      | L_group -> Sv_group
      | L_count c -> Sv_count (Icol.get c r)
      | L_sum { sum; n } -> Sv_sum { sum = Column.get sum r; n = Icol.get n r }
      | L_ext v | L_dist v -> Sv_value (Column.get v r))
    sh.slots

(* Append a group with explicit component values (journal restore, group
   moves). *)
let append_saved (sh : shard) key cnt0 accs =
  let r = nrows sh in
  Array.iteri (fun i v -> Column.append sh.keys.(i) v) key;
  Array.iteri
    (fun i slot ->
      match slot, accs.(i) with
      | L_group, Sv_group -> ()
      | L_count c, Sv_count x -> Icol.append c x
      | L_sum { sum; n }, Sv_sum { sum = s; n = m } ->
        Column.append sum s;
        Icol.append n m
      | (L_ext v | L_dist v), Sv_value x -> Column.append v x
      | (L_group | L_count _ | L_sum _ | L_ext _ | L_dist _), _ ->
        assert false)
    sh.slots;
  Icol.append sh.cnt0 cnt0;
  Rowmap.add sh.map ~hash:(Tuple.hash key) r;
  r

(* Append a fresh group. Sum components are seeded with the zero of their
   first contribution's type so the column specializes to the right numeric
   storage (a later type change demotes the column to boxed cells). *)
let append_fresh (sh : shard) key (contribs : contrib option array) =
  let r = nrows sh in
  Array.iteri (fun i v -> Column.append sh.keys.(i) v) key;
  Array.iteri
    (fun i slot ->
      match slot with
      | L_group -> ()
      | L_count c -> Icol.append c 0
      | L_sum { sum; n } ->
        let zero =
          match contribs.(i) with
          | Some (C_sum { amount; n = _ }) -> Value.zero_like amount
          | Some (C_count _ | C_value _) | None -> Value.Int 0
        in
        Column.append sum zero;
        Icol.append n 0
      | L_ext v | L_dist v -> Column.append v Value.Null)
    sh.slots;
  Icol.append sh.cnt0 0;
  Rowmap.add sh.map ~hash:(Tuple.hash key) r;
  r

(* Swap-with-last removal of row [r], re-pointing the moved row's map
   entry. *)
let delete_row (sh : shard) r =
  let l = nrows sh - 1 in
  ignore (Rowmap.remove_value sh.map ~hash:(key_hash_cols sh.keys r) r);
  if r <> l then
    ignore
      (Rowmap.rename_value sh.map ~hash:(key_hash_cols sh.keys l) ~old_row:l
         ~new_row:r);
  Array.iter (fun c -> Column.swap_delete c r) sh.keys;
  Array.iter
    (function
      | L_group -> ()
      | L_count c -> Icol.swap_delete c r
      | L_sum { sum; n } ->
        Column.swap_delete sum r;
        Icol.swap_delete n r
      | L_ext v | L_dist v -> Column.swap_delete v r)
    sh.slots;
  Icol.swap_delete sh.cnt0 r

let copy t =
  let copy_slot = function
    | L_group -> L_group
    | L_count c -> L_count (Icol.copy c)
    | L_sum { sum; n } -> L_sum { sum = Column.copy sum; n = Icol.copy n }
    | L_ext v -> L_ext (Column.copy v)
    | L_dist v -> L_dist (Column.copy v)
  in
  let copy_shard (sh : shard) =
    let keys = Array.map Column.copy sh.keys in
    {
      keys;
      slots = Array.map copy_slot sh.slots;
      cnt0 = Icol.copy sh.cnt0;
      map = Rowmap.copy sh.map ~hash:(fun r -> key_hash_cols keys r);
      dirty = TH.copy sh.dirty;
      txn = None;
    }
  in
  { t with shards = Array.map copy_shard t.shards }

(* --- transactions -------------------------------------------------------- *)

let in_txn t = t.shards.(0).txn <> None

let begin_txn t =
  if in_txn t then
    invalid_arg "View_state.begin_txn: transaction already open";
  (* the dirty set is saved whole: it is bounded by the groups pending
     recompute, a handful at any moment, not by the resident state *)
  Array.iter
    (fun sh -> sh.txn <- Some { saved = TH.create 64; dirty0 = TH.copy sh.dirty })
    t.shards

(* Journal [key]'s before-image, once per transaction, before any mutation
   of the group at [row] (or its creation). [key] may alias a caller's
   scratch buffer; copied if retained. *)
let note_known (sh : shard) key row =
  match sh.txn with
  | None -> ()
  | Some { saved; _ } ->
    if not (TH.mem saved key) then
      TH.add saved (Array.copy key)
        (match row with
        | None -> Absent
        | Some r -> Present { cnt0 = Icol.get sh.cnt0 r; accs = saved_accs sh r })

let commit t =
  if t.shards.(0).txn = None then
    invalid_arg "View_state.commit: no open transaction";
  Array.iter (fun sh -> sh.txn <- None) t.shards

let rollback t =
  if t.shards.(0).txn = None then
    invalid_arg "View_state.rollback: no open transaction";
  Array.iter
    (fun (sh : shard) ->
      match sh.txn with
      | None -> ()
      | Some { saved; dirty0 } ->
        TH.iter
          (fun key before ->
            match before, find_row sh key with
            | Absent, Some r -> delete_row sh r
            | Absent, None | Present _, _ -> ())
          saved;
        TH.iter
          (fun key before ->
            match before, find_row sh key with
            | Absent, _ -> ()
            | Present p, Some r ->
              Icol.set sh.cnt0 r p.cnt0;
              Array.iteri
                (fun i slot ->
                  match slot, p.accs.(i) with
                  | L_group, Sv_group -> ()
                  | L_count c, Sv_count x -> Icol.set c r x
                  | L_sum { sum; n }, Sv_sum { sum = s; n = m } ->
                    Column.set sum r s;
                    Icol.set n r m
                  | (L_ext v | L_dist v), Sv_value x -> Column.set v r x
                  | (L_group | L_count _ | L_sum _ | L_ext _ | L_dist _), _
                    ->
                    assert false)
                sh.slots
            | Present p, None -> ignore (append_saved sh key p.cnt0 p.accs))
          saved;
        TH.reset sh.dirty;
        TH.iter (fun key () -> TH.add sh.dirty key ()) dirty0;
        sh.txn <- None)
    t.shards

let view t = t.view
let group_count t = Array.fold_left (fun acc sh -> acc + nrows sh) 0 t.shards

let mark_dirty (sh : shard) key =
  if not (TH.mem sh.dirty key) then TH.add sh.dirty (Array.copy key) ()

(* The finalized value of a DISTINCT aggregate over a singleton value set —
   the determined case. *)
let singleton_distinct (agg : Aggregate.t) v =
  match agg.Aggregate.func with
  | Aggregate.Count -> Value.Int 1
  | Aggregate.Sum | Aggregate.Min | Aggregate.Max -> v
  | Aggregate.Avg -> Value.div_as_float v (Value.Int 1)
  | Aggregate.Count_star -> assert false

let apply_contrib t (sh : shard) key ~sign r i (item : Select_item.t) contrib =
  let agg =
    match item with
    | Select_item.Agg a -> a
    | Select_item.Group _ -> assert false (* group items carry no contrib *)
  in
  match sh.slots.(i), contrib with
  | L_count c, C_count d -> Icol.add c r (sign * d)
  | L_sum { sum; n }, C_sum { amount; n = dn } ->
    if sign > 0 then Column.add_cell sum r amount 1
    else Column.sub_cell sum r amount 1;
    Icol.add n r (sign * dn)
  | L_ext cell, C_value v ->
    if sign > 0 then begin
      match Column.get cell r with
      | Value.Null -> Column.set cell r v
      | cur ->
        let better =
          match agg.Aggregate.func with
          | Aggregate.Min -> Value.compare v cur < 0
          | Aggregate.Max -> Value.compare v cur > 0
          | _ -> assert false
        in
        if better then Column.set cell r v
    end
    else if not t.determined then begin
      (* deletion of the current extremum invalidates the component *)
      match Column.get cell r with
      | Value.Null -> ()
      | cur -> if Value.equal cur v then mark_dirty sh key
    end
  | L_dist cell, C_value v ->
    if t.determined then begin
      (* the argument is functionally determined by the group key: the value
         set is a singleton fixed at group creation *)
      match Column.get cell r with
      | Value.Null -> Column.set cell r (singleton_distinct agg v)
      | _ -> ()
    end
    else mark_dirty sh key
  | (L_group | L_count _ | L_sum _ | L_ext _ | L_dist _), _ ->
    invalid_arg "View_state: contribution does not match aggregate state"

let feed t ~key ~cnt contribs =
  let sh = shard_for t key in
  let row = find_row sh key in
  note_known sh key row;
  let r = match row with Some r -> r | None -> append_fresh sh key contribs in
  Icol.add sh.cnt0 r cnt;
  Array.iteri
    (fun i c ->
      match c with
      | Some contrib -> apply_contrib t sh key ~sign:1 r i t.items.(i) contrib
      | None -> ())
    contribs

let unfeed t ~key ~cnt contribs =
  let sh = shard_for t key in
  match find_row sh key with
  | None ->
    invalid_arg
      (Printf.sprintf "View_state.unfeed: group %s absent"
         (Tuple.to_string key))
  | Some r ->
    if Icol.get sh.cnt0 r < cnt then
      invalid_arg "View_state.unfeed: count underflow";
    note_known sh key (Some r);
    Icol.add sh.cnt0 r (-cnt);
    if Icol.get sh.cnt0 r = 0 then begin
      delete_row sh r;
      TH.remove sh.dirty key
    end
    else
      Array.iteri
        (fun i c ->
          match c with
          | Some contrib ->
            apply_contrib t sh key ~sign:(-1) r i t.items.(i) contrib
          | None -> ())
        contribs

let take_dirty t =
  Array.fold_left
    (fun acc (sh : shard) ->
      let keys = TH.fold (fun k () acc -> k :: acc) sh.dirty acc in
      TH.reset sh.dirty;
      keys)
    [] t.shards

let is_dirty_pending t =
  Array.exists (fun (sh : shard) -> TH.length sh.dirty > 0) t.shards

let set_value t ~key ~item v =
  let sh = shard_for t key in
  match find_row sh key with
  | None -> ()
  | Some r -> (
    note_known sh key (Some r);
    match sh.slots.(item) with
    | L_ext cell | L_dist cell -> Column.set cell r v
    | L_group | L_count _ | L_sum _ ->
      invalid_arg "View_state.set_value: item is CSMAS-maintained")

type component_update = Shift_sum of Value.t | Set_current of Value.t

let adjust_group t ~key ~new_key updates =
  let sh = shard_for t key in
  match find_row sh key with
  | None ->
    invalid_arg
      (Printf.sprintf "View_state.adjust_group: group %s absent"
         (Tuple.to_string key))
  | Some r ->
    let moving = not (Tuple.equal key new_key) in
    let sh' = if moving then shard_for t new_key else sh in
    note_known sh key (Some r);
    if moving then note_known sh' new_key (find_row sh' new_key);
    List.iter
      (fun (i, upd) ->
        let agg =
          match t.items.(i) with
          | Select_item.Agg a -> Some a
          | Select_item.Group _ -> None
        in
        match sh.slots.(i), upd with
        | L_sum { sum; n }, Shift_sum delta ->
          Column.add_cell sum r delta (Icol.get n r)
        | L_ext cell, Set_current v -> Column.set cell r v
        | L_dist cell, Set_current v ->
          (* the caller passes the witnessed (determined) value; finalize
             the singleton DISTINCT here *)
          Column.set cell r (singleton_distinct (Option.get agg) v)
        | (L_group | L_count _ | L_sum _ | L_ext _ | L_dist _), _ ->
          invalid_arg "View_state.adjust_group: update does not match state")
      updates;
    if moving then begin
      if find_row sh' new_key <> None then
        invalid_arg "View_state.adjust_group: new key collides";
      let cnt0 = Icol.get sh.cnt0 r in
      let accs = saved_accs sh r in
      delete_row sh r;
      ignore (append_saved sh' new_key cnt0 accs);
      if TH.mem sh.dirty key then begin
        TH.remove sh.dirty key;
        TH.add sh'.dirty (Array.copy new_key) ()
      end
    end

let fold_groups t f acc =
  Array.fold_left
    (fun acc (sh : shard) ->
      let acc = ref acc in
      for r = 0 to nrows sh - 1 do
        acc := f (key_at sh r) (Icol.get sh.cnt0 r) !acc
      done;
      !acc)
    acc t.shards

let saved_acc_equal a b =
  match a, b with
  | Sv_group, Sv_group -> true
  | Sv_count n, Sv_count m -> n = m
  | Sv_sum { sum; n }, Sv_sum { sum = sum'; n = m } ->
    Value.equal sum sum' && n = m
  | Sv_value x, Sv_value y -> Value.equal x y
  | (Sv_group | Sv_count _ | Sv_sum _ | Sv_value _), _ -> false

let dirty_count t =
  Array.fold_left (fun acc (sh : shard) -> acc + TH.length sh.dirty) 0 t.shards

(* Structural equality of the resident view state: groups (base counts and
   every aggregate component) and the pending-recompute (dirty) set.
   Deliberately independent of the shard layout and of physical row order;
   open transactions are ignored. *)
let equal a b =
  group_count a = group_count b
  && Array.for_all
       (fun (sh : shard) ->
         let ok = ref true in
         for r = 0 to nrows sh - 1 do
           if !ok then begin
             let key = key_at sh r in
             let sh' = shard_for b key in
             match find_row sh' key with
             | Some r' ->
               if
                 not
                   (Icol.get sh.cnt0 r = Icol.get sh'.cnt0 r'
                   && Array.for_all2 saved_acc_equal (saved_accs sh r)
                        (saved_accs sh' r'))
               then ok := false
             | None -> ok := false
           end
         done;
         !ok)
       a.shards
  && dirty_count a = dirty_count b
  && Array.for_all
       (fun (sh : shard) ->
         TH.fold
           (fun key () acc -> acc && TH.mem (shard_for b key).dirty key)
           sh.dirty true)
       a.shards

let render t =
  let result = Relation.create ~size_hint:(group_count t) () in
  Array.iter
    (fun (sh : shard) ->
      for r = 0 to nrows sh - 1 do
        let gi = ref 0 in
        let row =
          Array.mapi
            (fun i item ->
              match (item : Select_item.t) with
              | Select_item.Group _ ->
                let v = Column.get sh.keys.(!gi) r in
                incr gi;
                v
              | Select_item.Agg agg -> (
                match sh.slots.(i) with
                | L_group -> assert false
                | L_count c -> Value.Int (Icol.get c r)
                | L_sum { sum; n } -> (
                  match agg.Aggregate.func with
                  | Aggregate.Sum -> Column.get sum r
                  | Aggregate.Avg ->
                    Value.div_as_float (Column.get sum r)
                      (Value.Int (Icol.get n r))
                  | _ -> assert false)
                | L_ext cell | L_dist cell -> (
                  match Column.get cell r with
                  | Value.Null ->
                    invalid_arg
                      "View_state.render: non-CSMAS component pending recompute"
                  | v -> v)))
            t.items
        in
        Relation.insert result row
      done)
    t.shards;
  (* restrictions on groups (HAVING) are applied at read time: the full group
     state is what gets maintained *)
  View.filter_having t.view result

(* --- byte accounting ----------------------------------------------------- *)

let fold_columns t f acc =
  Array.fold_left
    (fun acc (sh : shard) ->
      let acc = Array.fold_left f acc sh.keys in
      Array.fold_left
        (fun acc slot ->
          match slot with
          | L_group | L_count _ -> acc
          | L_sum { sum; _ } -> f acc sum
          | L_ext v | L_dist v -> f acc v)
        acc sh.slots)
    acc t.shards

let offheap_bytes t =
  fold_columns t (fun acc c -> acc + Column.offheap_bytes c) 0

let byte_size t =
  let cells = fold_columns t (fun acc c -> acc + Column.byte_size c) 0 in
  let icols =
    Array.fold_left
      (fun acc (sh : shard) ->
        Array.fold_left
          (fun acc slot ->
            match slot with
            | L_group | L_ext _ | L_dist _ -> acc
            | L_count c -> acc + Icol.byte_size c
            | L_sum { n; _ } -> acc + Icol.byte_size n)
          (acc + Icol.byte_size sh.cnt0 + Rowmap.byte_size sh.map)
          sh.slots)
      0 t.shards
  in
  let dicts =
    fold_columns t
      (fun acc c ->
        match Column.dict c with
        | Some d when not (List.memq d acc) -> d :: acc
        | Some _ | None -> acc)
      []
  in
  cells + icols
  + List.fold_left (fun acc d -> acc + Dict.byte_size d) 0 dicts
