module Database = Relational.Database
module Relation = Relational.Relation
module Schema = Relational.Schema
module Tuple = Relational.Tuple
module Delta = Relational.Delta
module View = Algebra.View
module Derive = Mindetail.Derive

type t =
  | Incremental of { name : string; engine : Engine.t }
  | Recompute of {
      replica : Database.t;
      view : View.t;
      (* undo journal: deltas applied since begin_txn, newest first *)
      mutable txn : Delta.t list option;
    }
  | Split of Partitioned.t

let name = function
  | Incremental { name; _ } -> name
  | Recompute _ -> "recompute"
  | Split _ -> "partitioned"

let minimal db view =
  Incremental { name = "minimal"; engine = Engine.init db (Derive.derive db view) }

let psj db view =
  Incremental { name = "psj"; engine = Engine.init db (Mindetail.Psj.derive db view) }

let with_options ~name options db view =
  Incremental { name; engine = Engine.init db (Derive.derive_with options db view) }

let append_only db view =
  with_options ~name:"append-only" Derive.append_only_options db view

let partitioned db view ~is_old = Split (Partitioned.init db view ~is_old)

let as_partitioned = function
  | Split p -> Some p
  | Incremental _ | Recompute _ -> None

let recompute db view =
  View.validate db view;
  Recompute { replica = Database.copy db; view; txn = None }

let copy = function
  | Incremental { name; engine } -> Incremental { name; engine = Engine.copy engine }
  | Recompute { replica; view; txn = _ } ->
    Recompute { replica = Database.copy replica; view; txn = None }
  | Split p -> Split (Partitioned.copy p)

let db_equal a b =
  let ta = List.sort String.compare (Database.table_names a) in
  ta = List.sort String.compare (Database.table_names b)
  && List.for_all
       (fun tbl ->
         let ki = Schema.key_index (Database.schema_of a tbl) in
         Database.row_count a tbl = Database.row_count b tbl
         && Database.fold a tbl
              (fun tup acc ->
                acc
                &&
                match Database.find_by_key b tbl tup.(ki) with
                | Some tup' -> Tuple.equal tup tup'
                | None -> false)
              true)
       ta

let equal_state a b =
  match a, b with
  | Incremental { engine; _ }, Incremental { engine = engine'; _ } ->
    Engine.equal_state engine engine'
  | Recompute { replica; _ }, Recompute { replica = replica'; _ } ->
    db_equal replica replica'
  | Split p, Split p' -> Partitioned.equal_state p p'
  | (Incremental _ | Recompute _ | Split _), _ -> false

let in_txn = function
  | Incremental { engine; _ } -> Engine.in_txn engine
  | Recompute r -> r.txn <> None
  | Split p -> Partitioned.in_txn p

let begin_txn = function
  | Incremental { engine; _ } -> Engine.begin_txn engine
  | Recompute r ->
    if r.txn <> None then invalid_arg "Engines.begin_txn: transaction open";
    r.txn <- Some []
  | Split p -> Partitioned.begin_txn p

let commit = function
  | Incremental { engine; _ } -> Engine.commit engine
  | Recompute r ->
    if r.txn = None then invalid_arg "Engines.commit: no open transaction";
    r.txn <- None
  | Split p -> Partitioned.commit p

let rollback = function
  | Incremental { engine; _ } -> Engine.rollback engine
  | Recompute r -> (
    match r.txn with
    | None -> invalid_arg "Engines.rollback: no open transaction"
    | Some journal ->
      (* newest-first journal: applying the inverses in list order replays
         the applied prefix backwards *)
      List.iter (fun d -> Database.apply r.replica (Delta.invert d)) journal;
      r.txn <- None)
  | Split p -> Partitioned.rollback p

let apply_batch ?parallel t deltas =
  match t with
  | Incremental { engine; _ } -> Engine.apply_batch ?parallel engine deltas
  | Recompute r -> (
    match r.txn with
    | None -> Database.apply_all r.replica deltas
    | Some _ ->
      List.iter
        (fun d ->
          Database.apply r.replica d;
          match r.txn with
          | Some journal -> r.txn <- Some (d :: journal)
          | None -> assert false)
        deltas)
  | Split p -> Partitioned.apply_batch ?parallel p deltas

let view_contents = function
  | Incremental { engine; _ } -> Engine.view_contents engine
  | Recompute { replica; view; _ } -> Algebra.Eval.eval replica view
  | Split p -> Partitioned.view_contents p

(* Epoch capture: [view_contents] behind a guard. Every rendering path
   builds a fresh relation (new rows, never aliasing engine internals), so
   the result is immutable-by-construction and safe to hand to concurrent
   readers — but only if the engine is quiescent: rendering mid-transaction
   would freeze uncommitted group state into the published epoch. *)
let capture t =
  if in_txn t then
    invalid_arg "Engines.capture: transaction open (capture only at commit)";
  view_contents t

let detail_profile = function
  | Incremental { engine; _ } ->
    (* drop the view itself: only detail data counts *)
    (match Engine.storage_profile engine with
    | _view :: aux -> aux
    | [] -> [])
  | Split p -> Partitioned.detail_profile p
  | Recompute { replica; view; _ } ->
    List.map
      (fun tbl ->
        ( tbl,
          Database.row_count replica tbl,
          Schema.arity (Database.schema_of replica tbl) ))
      view.View.tables

(* Measured bytes only exist for columnar state; the recompute baseline
   stores a boxed replica, so it keeps the estimate-only path. *)
let measured_bytes = function
  | Incremental { engine; _ } -> Some (Engine.measured_bytes engine)
  | Split p -> Some (Partitioned.measured_bytes p)
  | Recompute _ -> None

(* Off-heap bytes exist only where columnar state does; the boxed-replica
   baseline contributes zero. *)
let offheap_bytes = function
  | Incremental { engine; _ } -> Engine.offheap_bytes engine
  | Split p -> Partitioned.offheap_bytes p
  | Recompute _ -> 0

let derivation = function
  | Incremental { engine; _ } -> Some (Engine.derivation engine)
  | Recompute _ | Split _ -> None

let last_flow = function
  | Incremental { engine; _ } -> Engine.last_flow engine
  | Recompute _ | Split _ -> None

let self_audit ~sample = function
  | Incremental { engine; _ } -> Engine.audit ~sample engine
  | Recompute _ | Split _ -> None
