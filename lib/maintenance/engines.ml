module Database = Relational.Database
module Relation = Relational.Relation
module Schema = Relational.Schema
module View = Algebra.View
module Derive = Mindetail.Derive

type t =
  | Incremental of { name : string; engine : Engine.t }
  | Recompute of { replica : Database.t; view : View.t }
  | Split of Partitioned.t

let name = function
  | Incremental { name; _ } -> name
  | Recompute _ -> "recompute"
  | Split _ -> "partitioned"

let minimal db view =
  Incremental { name = "minimal"; engine = Engine.init db (Derive.derive db view) }

let psj db view =
  Incremental { name = "psj"; engine = Engine.init db (Mindetail.Psj.derive db view) }

let with_options ~name options db view =
  Incremental { name; engine = Engine.init db (Derive.derive_with options db view) }

let append_only db view =
  with_options ~name:"append-only" Derive.append_only_options db view

let partitioned db view ~is_old = Split (Partitioned.init db view ~is_old)

let as_partitioned = function
  | Split p -> Some p
  | Incremental _ | Recompute _ -> None

let recompute db view =
  View.validate db view;
  Recompute { replica = Database.copy db; view }

let copy = function
  | Incremental { name; engine } -> Incremental { name; engine = Engine.copy engine }
  | Recompute { replica; view } -> Recompute { replica = Database.copy replica; view }
  | Split p -> Split (Partitioned.copy p)

let apply_batch t deltas =
  match t with
  | Incremental { engine; _ } -> Engine.apply_batch engine deltas
  | Recompute { replica; _ } -> Database.apply_all replica deltas
  | Split p -> Partitioned.apply_batch p deltas

let view_contents = function
  | Incremental { engine; _ } -> Engine.view_contents engine
  | Recompute { replica; view } -> Algebra.Eval.eval replica view
  | Split p -> Partitioned.view_contents p

let detail_profile = function
  | Incremental { engine; _ } ->
    (* drop the view itself: only detail data counts *)
    (match Engine.storage_profile engine with
    | _view :: aux -> aux
    | [] -> [])
  | Split p -> Partitioned.detail_profile p
  | Recompute { replica; view } ->
    List.map
      (fun tbl ->
        ( tbl,
          Database.row_count replica tbl,
          Schema.arity (Database.schema_of replica tbl) ))
      view.View.tables

let derivation = function
  | Incremental { engine; _ } -> Some (Engine.derivation engine)
  | Recompute _ | Split _ -> None
