module View = Algebra.View
module Select_item = Algebra.Select_item
module Aggregate = Algebra.Aggregate
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type contrib =
  | C_count of int
  | C_sum of { amount : Value.t; n : int }
  | C_value of Value.t

(* One aggregate's internal components within a group. *)
type agg_state =
  | S_count of int
  | S_sum of { sum : Value.t; n : int }
  | S_extremum of Value.t option
  | S_distinct of Value.t option

type group = { mutable cnt0 : int; accs : agg_state array }

(* First-touch before-image of one group under an open transaction. *)
type saved_group =
  | Absent
  | Present of { cnt0 : int; accs : agg_state array }

type txn = { saved : saved_group TH.t; dirty0 : unit TH.t }

(* One hash-shard of the view state: groups, the dirty set and the undo
   journal all live per shard so parallel appliers owning disjoint shards
   never share a hash table. Group keys entering a shard's tables are
   copied on retention, because callers may pass reused scratch buffers. *)
type shard = {
  groups : group TH.t;
  dirty : unit TH.t;
  mutable txn : txn option;
}

type t = {
  view : View.t;
  determined : bool;
  items : Select_item.t array;
  mask : int;  (** shard count - 1 *)
  shards : shard array;
}

let create ?(shards = 1) view ~determined =
  if shards < 1 || shards land (shards - 1) <> 0 then
    invalid_arg "View_boxed.create: shard count is not a power of two";
  {
    view;
    determined;
    items = Array.of_list view.View.select;
    mask = shards - 1;
    shards =
      Array.init shards (fun _ ->
          { groups = TH.create 256; dirty = TH.create 16; txn = None });
  }

let shard_count t = Array.length t.shards
let shard_of_key t key = if t.mask = 0 then 0 else Tuple.hash key land t.mask
let shard_for t key = t.shards.(shard_of_key t key)
let find_group t key = TH.find_opt (shard_for t key).groups key

let copy t =
  let copy_shard sh =
    let groups = TH.create (max 16 (TH.length sh.groups)) in
    TH.iter
      (fun key (g : group) ->
        TH.add groups key { cnt0 = g.cnt0; accs = Array.copy g.accs })
      sh.groups;
    { groups; dirty = TH.copy sh.dirty; txn = None }
  in
  { t with shards = Array.map copy_shard t.shards }

(* --- transactions ------------------------------------------------------- *)

let in_txn t = t.shards.(0).txn <> None

let begin_txn t =
  if in_txn t then
    invalid_arg "View_boxed.begin_txn: transaction already open";
  (* the dirty set is saved whole: it is bounded by the groups pending
     recompute, a handful at any moment, not by the resident state *)
  Array.iter
    (fun sh -> sh.txn <- Some { saved = TH.create 64; dirty0 = TH.copy sh.dirty })
    t.shards

(* [key] may alias a caller's scratch buffer; copied if retained. *)
let note sh key =
  match sh.txn with
  | None -> ()
  | Some { saved; _ } ->
    if not (TH.mem saved key) then
      TH.add saved (Array.copy key)
        (match TH.find_opt sh.groups key with
        | None -> Absent
        | Some g -> Present { cnt0 = g.cnt0; accs = Array.copy g.accs })

let commit t =
  if t.shards.(0).txn = None then
    invalid_arg "View_boxed.commit: no open transaction";
  Array.iter (fun sh -> sh.txn <- None) t.shards

let rollback t =
  if t.shards.(0).txn = None then
    invalid_arg "View_boxed.rollback: no open transaction";
  Array.iter
    (fun sh ->
      match sh.txn with
      | None -> ()
      | Some { saved; dirty0 } ->
        TH.iter
          (fun key before ->
            match before, TH.find_opt sh.groups key with
            | Absent, None -> ()
            | Absent, Some _ -> TH.remove sh.groups key
            | Present p, Some g ->
              g.cnt0 <- p.cnt0;
              Array.blit p.accs 0 g.accs 0 (Array.length p.accs)
            | Present p, None ->
              TH.add sh.groups key { cnt0 = p.cnt0; accs = p.accs })
          saved;
        TH.reset sh.dirty;
        TH.iter (fun key () -> TH.add sh.dirty key ()) dirty0;
        sh.txn <- None)
    t.shards

let view t = t.view

let group_count t =
  Array.fold_left (fun acc sh -> acc + TH.length sh.groups) 0 t.shards

let initial_state (item : Select_item.t) =
  match item with
  | Select_item.Group _ -> S_count 0 (* placeholder, never consulted *)
  | Select_item.Agg agg -> (
    if agg.Aggregate.distinct then S_distinct None
    else
      match agg.Aggregate.func with
      | Aggregate.Count | Aggregate.Count_star -> S_count 0
      | Aggregate.Sum | Aggregate.Avg -> S_sum { sum = Value.Int 0; n = 0 }
      | Aggregate.Min | Aggregate.Max -> S_extremum None)

let mark_dirty sh key =
  if not (TH.mem sh.dirty key) then TH.add sh.dirty (Array.copy key) ()

let combine_extremum (agg : Aggregate.t) cur v =
  match cur with
  | None -> Some v
  | Some m ->
    let better =
      match agg.Aggregate.func with
      | Aggregate.Min -> Value.compare v m < 0
      | Aggregate.Max -> Value.compare v m > 0
      | _ -> assert false
    in
    Some (if better then v else m)

(* The finalized value of a DISTINCT aggregate over a singleton value set —
   the determined case. *)
let singleton_distinct (agg : Aggregate.t) v =
  match agg.Aggregate.func with
  | Aggregate.Count -> Value.Int 1
  | Aggregate.Sum | Aggregate.Min | Aggregate.Max -> v
  | Aggregate.Avg -> Value.div_as_float v (Value.Int 1)
  | Aggregate.Count_star -> assert false

let apply_contrib t sh key ~sign g i (item : Select_item.t) contrib =
  let agg =
    match item with
    | Select_item.Agg a -> a
    | Select_item.Group _ -> assert false (* group items carry no contrib *)
  in
  match g.accs.(i), contrib with
  | S_count n, C_count d -> g.accs.(i) <- S_count (n + (sign * d))
  | S_sum { sum; n }, C_sum { amount; n = dn } ->
    let sum =
      if sign > 0 then Value.add sum amount else Value.sub sum amount
    in
    g.accs.(i) <- S_sum { sum; n = n + (sign * dn) }
  | S_extremum cur, C_value v ->
    if sign > 0 then
      g.accs.(i) <- S_extremum (combine_extremum agg cur v)
    else if not t.determined then begin
      (* deletion of the current extremum invalidates the component *)
      match cur with
      | Some m when Value.equal m v -> mark_dirty sh key
      | Some _ | None -> ()
    end
  | S_distinct cur, C_value v ->
    if t.determined then begin
      (* the argument is functionally determined by the group key: the value
         set is a singleton fixed at group creation *)
      if cur = None then g.accs.(i) <- S_distinct (Some (singleton_distinct agg v))
    end
    else mark_dirty sh key
  | (S_count _ | S_sum _ | S_extremum _ | S_distinct _), _ ->
    invalid_arg "View_state: contribution does not match aggregate state"

let feed t ~key ~cnt contribs =
  let sh = shard_for t key in
  note sh key;
  let g =
    match TH.find_opt sh.groups key with
    | Some g -> g
    | None ->
      let g = { cnt0 = 0; accs = Array.map initial_state t.items } in
      TH.add sh.groups (Array.copy key) g;
      g
  in
  g.cnt0 <- g.cnt0 + cnt;
  Array.iteri
    (fun i c ->
      match c with
      | Some contrib -> apply_contrib t sh key ~sign:1 g i t.items.(i) contrib
      | None -> ())
    contribs

let unfeed t ~key ~cnt contribs =
  let sh = shard_for t key in
  match TH.find_opt sh.groups key with
  | None ->
    invalid_arg
      (Printf.sprintf "View_boxed.unfeed: group %s absent"
         (Tuple.to_string key))
  | Some g ->
    if g.cnt0 < cnt then invalid_arg "View_boxed.unfeed: count underflow";
    note sh key;
    g.cnt0 <- g.cnt0 - cnt;
    if g.cnt0 = 0 then begin
      TH.remove sh.groups key;
      TH.remove sh.dirty key
    end
    else
      Array.iteri
        (fun i c ->
          match c with
          | Some contrib -> apply_contrib t sh key ~sign:(-1) g i t.items.(i) contrib
          | None -> ())
        contribs

let take_dirty t =
  Array.fold_left
    (fun acc sh ->
      let keys = TH.fold (fun k () acc -> k :: acc) sh.dirty acc in
      TH.reset sh.dirty;
      keys)
    [] t.shards

let is_dirty_pending t =
  Array.exists (fun sh -> TH.length sh.dirty > 0) t.shards

let set_value t ~key ~item v =
  let sh = shard_for t key in
  match TH.find_opt sh.groups key with
  | None -> ()
  | Some g -> (
    note sh key;
    match g.accs.(item) with
    | S_extremum _ -> g.accs.(item) <- S_extremum (Some v)
    | S_distinct _ -> g.accs.(item) <- S_distinct (Some v)
    | S_count _ | S_sum _ ->
      invalid_arg "View_boxed.set_value: item is CSMAS-maintained")

type component_update = Shift_sum of Value.t | Set_current of Value.t

let adjust_group t ~key ~new_key updates =
  let sh = shard_for t key in
  match TH.find_opt sh.groups key with
  | None ->
    invalid_arg
      (Printf.sprintf "View_boxed.adjust_group: group %s absent"
         (Tuple.to_string key))
  | Some g ->
    let moving = not (Tuple.equal key new_key) in
    let sh' = if moving then shard_for t new_key else sh in
    note sh key;
    if moving then note sh' new_key;
    List.iter
      (fun (i, upd) ->
        let agg =
          match t.items.(i) with
          | Select_item.Agg a -> Some a
          | Select_item.Group _ -> None
        in
        match g.accs.(i), upd with
        | S_sum { sum; n }, Shift_sum delta ->
          g.accs.(i) <- S_sum { sum = Value.add sum (Value.scale delta n); n }
        | S_extremum _, Set_current v -> g.accs.(i) <- S_extremum (Some v)
        | S_distinct _, Set_current v ->
          (* the caller passes the witnessed (determined) value; finalize the
             singleton DISTINCT here *)
          g.accs.(i) <-
            S_distinct (Some (singleton_distinct (Option.get agg) v))
        | (S_count _ | S_sum _ | S_extremum _ | S_distinct _), _ ->
          invalid_arg "View_boxed.adjust_group: update does not match state")
      updates;
    if moving then begin
      if TH.mem sh'.groups new_key then
        invalid_arg "View_boxed.adjust_group: new key collides";
      TH.remove sh.groups key;
      TH.add sh'.groups (Array.copy new_key) g;
      if TH.mem sh.dirty key then begin
        TH.remove sh.dirty key;
        TH.add sh'.dirty (Array.copy new_key) ()
      end
    end

let fold_groups t f acc =
  Array.fold_left
    (fun acc sh -> TH.fold (fun k g acc -> f k g.cnt0 acc) sh.groups acc)
    acc t.shards

let agg_state_equal a b =
  match a, b with
  | S_count n, S_count m -> n = m
  | S_sum { sum; n }, S_sum { sum = sum'; n = m } ->
    Value.equal sum sum' && n = m
  | S_extremum x, S_extremum y | S_distinct x, S_distinct y ->
    Option.equal Value.equal x y
  | (S_count _ | S_sum _ | S_extremum _ | S_distinct _), _ -> false

let group_equal (g : group) (g' : group) =
  g.cnt0 = g'.cnt0
  && Array.length g.accs = Array.length g'.accs
  && Array.for_all2 agg_state_equal g.accs g'.accs

let dirty_count t =
  Array.fold_left (fun acc sh -> acc + TH.length sh.dirty) 0 t.shards

(* Structural equality of the resident view state: groups (base counts and
   every aggregate component) and the pending-recompute (dirty) set.
   Deliberately shard-layout-independent; open transactions are ignored. *)
let equal a b =
  group_count a = group_count b
  && Array.for_all
       (fun sh ->
         TH.fold
           (fun key g acc ->
             acc
             &&
             match find_group b key with
             | Some g' -> group_equal g g'
             | None -> false)
           sh.groups true)
       a.shards
  && dirty_count a = dirty_count b
  && Array.for_all
       (fun sh ->
         TH.fold
           (fun key () acc -> acc && TH.mem (shard_for b key).dirty key)
           sh.dirty true)
       a.shards

let render t =
  let result = Relation.create ~size_hint:(group_count t) () in
  Array.iter
    (fun sh ->
      TH.iter
        (fun key g ->
          let gi = ref 0 in
          let row =
            Array.mapi
              (fun i item ->
                match item with
                | Select_item.Group _ ->
                  let v = key.(!gi) in
                  incr gi;
                  v
                | Select_item.Agg agg -> (
                  match g.accs.(i) with
                  | S_count n -> Value.Int n
                  | S_sum { sum; n } -> (
                    match agg.Aggregate.func with
                    | Aggregate.Sum -> sum
                    | Aggregate.Avg -> Value.div_as_float sum (Value.Int n)
                    | _ -> assert false)
                  | S_extremum (Some v) | S_distinct (Some v) -> v
                  | S_extremum None | S_distinct None ->
                    invalid_arg
                      "View_boxed.render: non-CSMAS component pending recompute"))
              t.items
          in
          Relation.insert result row)
        sh.groups)
    t.shards;
  (* restrictions on groups (HAVING) are applied at read time: the full group
     state is what gets maintained *)
  View.filter_having t.view result
