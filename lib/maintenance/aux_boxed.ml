module Auxview = Mindetail.Auxview
module Schema = Relational.Schema
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type group = {
  mutable cnt : int;
  sums : Value.t array;
  exts : Value.t array;
}

(* First-touch before-image of one group, taken when an open transaction
   first mutates it. [Absent] marks a group the batch created. *)
type saved_group =
  | Absent
  | Present of { cnt : int; sums : Value.t array; exts : Value.t array }

type txn = { saved : saved_group TH.t; total0 : int }

(* One hash-shard of the resident state. Every structure keyed by group key
   — groups, by_key, indexes, the undo journal, the base-row total — lives
   per shard, so during a parallel apply each domain owns a disjoint set of
   shards and never touches another domain's hash tables (stdlib [Hashtbl]
   is not thread-safe, even for disjoint keys, because of resizing). *)
type shard = {
  groups : group TH.t;
  by_key : Tuple.t VH.t option;  (** base key value -> group key *)
  indexes : (int * unit TH.t VH.t) list;
      (** per indexed column: its position among plains, and value -> set of
          group keys *)
  mutable total : int;
  mutable txn : txn option;
  scratch : Tuple.t;
      (** reusable projection buffer for the probe path; copied only when a
          key must be retained (group creation, first journal touch) *)
}

type t = {
  spec : Auxview.t;
  plain_src : int array;  (** base-schema index of each Plain column *)
  sum_src : int array;  (** base-schema index of each Sum_of column *)
  ext_src : (int * bool) array;
      (** base-schema index and is-MIN flag of each extremum column *)
  key_plain_pos : int;  (** position of the base key among plains, or -1 *)
  mask : int;  (** shard count - 1; shard of a key is [hash land mask] *)
  shards : shard array;
}

(* Mirrors the columnar implementation's cursor handle: the count is
   snapshotted at creation, everything else reads through to the stored
   group. *)
type row = { key_ : Tuple.t; cnt_ : int; g_ : group }

let create ?(indexed_columns = []) ?(shards = 1) spec schema =
  if shards < 1 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Aux_boxed.create(%s): shard count %d is not a power of two"
         spec.Auxview.name shards);
  let idx c = Schema.index_of schema c in
  let key_plain_pos =
    match Auxview.plain_position spec schema.Schema.key with
    | Some i -> i
    | None -> -1
  in
  let plain_src =
    Array.of_list (List.map idx (Auxview.group_columns spec))
  in
  let mk_shard () =
    let indexes =
      List.map
        (fun col ->
          match Auxview.plain_position spec col with
          | Some pos -> (pos, VH.create 256)
          | None ->
            (* a misspelled index column must not degrade to a silent full
               scan on every probe *)
            invalid_arg
              (Printf.sprintf
                 "Aux_boxed.create(%s): indexed column %s is not a plain \
                  column of the view"
                 spec.Auxview.name col))
        (List.sort_uniq String.compare indexed_columns)
    in
    {
      groups = TH.create 256;
      by_key = (if key_plain_pos >= 0 then Some (VH.create 256) else None);
      indexes;
      total = 0;
      txn = None;
      scratch = Array.make (Array.length plain_src) Value.Null;
    }
  in
  {
    spec;
    plain_src;
    sum_src = Array.of_list (List.map idx (Auxview.summed_columns spec));
    ext_src =
      Array.of_list
        (List.map
           (fun (c, is_min) -> (idx c, is_min))
           (Auxview.ext_columns spec));
    key_plain_pos;
    mask = shards - 1;
    shards = Array.init shards (fun _ -> mk_shard ());
  }

let spec s = s.spec
let shard_count s = Array.length s.shards

let group_key_of_base s tup = Tuple.project tup s.plain_src

(* Shard routing must agree with [Tuple.hash (group_key_of_base s tup)]
   without materializing the projection; this mirrors [Tuple.hash]'s fold. *)
let hash_base s tup =
  Array.fold_left (fun acc src -> (acc * 31) + Value.hash tup.(src)) 17 s.plain_src

let shard_of_base s tup = if s.mask = 0 then 0 else hash_base s tup land s.mask
let shard_of_key s key = if s.mask = 0 then 0 else Tuple.hash key land s.mask

let find_group s key = TH.find_opt s.shards.(shard_of_key s key).groups key

let index_add sh key =
  List.iter
    (fun (pos, index) ->
      let v = key.(pos) in
      let bucket =
        match VH.find_opt index v with
        | Some b -> b
        | None ->
          let b = TH.create 4 in
          VH.add index v b;
          b
      in
      TH.replace bucket key ())
    sh.indexes

let index_remove sh key =
  List.iter
    (fun (pos, index) ->
      match VH.find_opt index key.(pos) with
      | None -> ()
      | Some bucket ->
        TH.remove bucket key;
        if TH.length bucket = 0 then VH.remove index key.(pos))
    sh.indexes

let combine_ext ~is_min cur v =
  let c = Value.compare v cur in
  if (is_min && c < 0) || ((not is_min) && c > 0) then v else cur

(* --- transactions ------------------------------------------------------- *)

let begin_txn s =
  if s.shards.(0).txn <> None then
    invalid_arg
      (Printf.sprintf "Aux_boxed.begin_txn(%s): transaction already open"
         s.spec.Auxview.name);
  Array.iter
    (fun sh -> sh.txn <- Some { saved = TH.create 64; total0 = sh.total })
    s.shards

(* Journal [key]'s before-image, once per transaction. Must run before any
   mutation of the group (or its creation). [key] may alias a scratch
   buffer; it is copied if retained. *)
let note sh key =
  match sh.txn with
  | None -> ()
  | Some { saved; _ } ->
    if not (TH.mem saved key) then
      TH.add saved (Array.copy key)
        (match TH.find_opt sh.groups key with
        | None -> Absent
        | Some g ->
          Present
            { cnt = g.cnt; sums = Array.copy g.sums; exts = Array.copy g.exts })

let commit s =
  if s.shards.(0).txn = None then
    invalid_arg
      (Printf.sprintf "Aux_boxed.commit(%s): no open transaction"
         s.spec.Auxview.name);
  Array.iter (fun sh -> sh.txn <- None) s.shards

let rollback_shard s sh =
  match sh.txn with
  | None -> ()
  | Some { saved; total0 } ->
    (* by_key and index membership are pure functions of the group key, so
       restoring group presence restores them too. Two phases: first drop
       every group created inside the transaction, then restore the
       pre-existing ones — a created and a restored group can share a base
       key value (e.g. a root-tuple update rewrote an aggregated column),
       and removal must not clobber the restored by_key mapping. *)
    TH.iter
      (fun key before ->
        match before, TH.find_opt sh.groups key with
        | Absent, Some _ ->
          TH.remove sh.groups key;
          Option.iter
            (fun by_key -> VH.remove by_key key.(s.key_plain_pos))
            sh.by_key;
          index_remove sh key
        | Absent, None | Present _, _ -> ())
      saved;
    TH.iter
      (fun key before ->
        match before, TH.find_opt sh.groups key with
        | Absent, _ -> ()
        | Present p, Some g ->
          g.cnt <- p.cnt;
          Array.blit p.sums 0 g.sums 0 (Array.length p.sums);
          Array.blit p.exts 0 g.exts 0 (Array.length p.exts);
          (* the mapping may have been stolen by a since-removed group *)
          Option.iter
            (fun by_key -> VH.replace by_key key.(s.key_plain_pos) key)
            sh.by_key
        | Present p, None ->
          TH.add sh.groups key { cnt = p.cnt; sums = p.sums; exts = p.exts };
          Option.iter
            (fun by_key -> VH.replace by_key key.(s.key_plain_pos) key)
            sh.by_key;
          index_add sh key)
      saved;
    sh.total <- total0;
    sh.txn <- None

let rollback s =
  if s.shards.(0).txn = None then
    invalid_arg
      (Printf.sprintf "Aux_boxed.rollback(%s): no open transaction"
         s.spec.Auxview.name);
  Array.iter (rollback_shard s) s.shards

(* Reject NULL (and any other non-aggregatable value) in aggregated columns
   before mutating anything, so a poisoned tuple cannot leave a group with
   its count bumped but its sums untouched. *)
let check_aggregands s op tup =
  Array.iter
    (fun src ->
      if not (Value.is_numeric tup.(src)) then
        invalid_arg
          (Printf.sprintf
             "Aux_boxed.%s(%s): %s value in summed column (index %d)" op
             s.spec.Auxview.name
             (Value.type_name tup.(src))
             src))
    s.sum_src;
  Array.iter
    (fun (src, _) ->
      if Value.is_null tup.(src) then
        invalid_arg
          (Printf.sprintf
             "Aux_boxed.%s(%s): NULL value in MIN/MAX column (index %d)" op
             s.spec.Auxview.name src))
    s.ext_src

(* Project [tup]'s group key into the shard's scratch buffer — valid only
   until the next probe of the same shard, and only retained via copies. *)
let scratch_key sh s tup =
  let key = sh.scratch in
  Array.iteri (fun i src -> key.(i) <- tup.(src)) s.plain_src;
  key

let insert_base ?(count = 1) s tup =
  if count < 1 then invalid_arg "Aux_boxed.insert_base: count must be >= 1";
  check_aggregands s "insert_base" tup;
  let sh = s.shards.(shard_of_base s tup) in
  let key = scratch_key sh s tup in
  note sh key;
  (match TH.find_opt sh.groups key with
  | Some g ->
    g.cnt <- g.cnt + count;
    Array.iteri
      (fun i src -> g.sums.(i) <- Value.add g.sums.(i) (Value.scale tup.(src) count))
      s.sum_src;
    Array.iteri
      (fun i (src, is_min) ->
        g.exts.(i) <- combine_ext ~is_min g.exts.(i) tup.(src))
      s.ext_src
  | None ->
    let key = Array.copy key in
    TH.add sh.groups key
      {
        cnt = count;
        sums = Array.map (fun src -> Value.scale tup.(src) count) s.sum_src;
        exts = Array.map (fun (src, _) -> tup.(src)) s.ext_src;
      };
    Option.iter
      (fun by_key -> VH.replace by_key key.(s.key_plain_pos) key)
      sh.by_key;
    index_add sh key);
  sh.total <- sh.total + count

let delete_base ?(count = 1) s tup =
  if count < 1 then invalid_arg "Aux_boxed.delete_base: count must be >= 1";
  if Array.length s.ext_src > 0 then
    invalid_arg
      (Printf.sprintf
         "Aux_boxed.delete_base(%s): append-only view holds MIN/MAX columns"
         s.spec.Auxview.name);
  check_aggregands s "delete_base" tup;
  let sh = s.shards.(shard_of_base s tup) in
  let key = scratch_key sh s tup in
  match TH.find_opt sh.groups key with
  | None ->
    invalid_arg
      (Printf.sprintf "Aux_boxed.delete_base(%s): group %s absent"
         s.spec.Auxview.name (Tuple.to_string key))
  | Some g ->
    if g.cnt < count then
      invalid_arg
        (Printf.sprintf "Aux_boxed.delete_base(%s): count underflow"
           s.spec.Auxview.name);
    note sh key;
    g.cnt <- g.cnt - count;
    Array.iteri
      (fun i src -> g.sums.(i) <- Value.sub g.sums.(i) (Value.scale tup.(src) count))
      s.sum_src;
    sh.total <- sh.total - count;
    if g.cnt = 0 then begin
      TH.remove sh.groups key;
      Option.iter
        (fun by_key ->
          (* reordered replay (insertions before deletions) may have already
             re-pointed this base key at the updated row's group; removing
             unconditionally would clobber that live mapping *)
          match VH.find_opt by_key key.(s.key_plain_pos) with
          | Some gk when Tuple.equal gk key ->
            VH.remove by_key key.(s.key_plain_pos)
          | Some _ | None -> ())
        sh.by_key;
      index_remove sh key
    end

let copy s =
  let copy_shard sh =
    let groups = TH.create (max 16 (TH.length sh.groups)) in
    TH.iter
      (fun key (g : group) ->
        TH.add groups key
          { cnt = g.cnt; sums = Array.copy g.sums; exts = Array.copy g.exts })
      sh.groups;
    {
      groups;
      by_key = Option.map VH.copy sh.by_key;
      indexes =
        List.map
          (fun (pos, index) ->
            let index' = VH.create (max 16 (VH.length index)) in
            VH.iter (fun v bucket -> VH.add index' v (TH.copy bucket)) index;
            (pos, index'))
          sh.indexes;
      total = sh.total;
      txn = None;
      scratch = Array.copy sh.scratch;
    }
  in
  { s with shards = Array.map copy_shard s.shards }

let array_equal eq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (eq x b.(i)) then ok := false) a;
  !ok

let group_equal (g : group) (g' : group) =
  g.cnt = g'.cnt
  && array_equal Value.equal g.sums g'.sums
  && array_equal Value.equal g.exts g'.exts

let sum_over_shards s f = Array.fold_left (fun acc sh -> acc + f sh) 0 s.shards

let group_count s = sum_over_shards s (fun sh -> TH.length sh.groups)

let by_key_size s =
  sum_over_shards s (fun sh ->
      match sh.by_key with Some by_key -> VH.length by_key | None -> 0)

(* b's by_key mapping for a base key lives in the shard of its *group* key. *)
let by_key_mem b k gkey =
  match b.shards.(shard_of_key b gkey).by_key with
  | None -> false
  | Some by_key -> (
    match VH.find_opt by_key k with
    | Some gkey' -> Tuple.equal gkey gkey'
    | None -> false)

let index_positions s =
  match Array.to_list s.shards with
  | [] -> []
  | sh :: _ -> List.map fst sh.indexes

let index_size s pos =
  sum_over_shards s (fun sh ->
      match List.assoc_opt pos sh.indexes with
      | None -> 0
      | Some index -> VH.fold (fun _ bucket acc -> acc + TH.length bucket) index 0)

let index_mem b pos v key =
  match List.assoc_opt pos b.shards.(shard_of_key b key).indexes with
  | None -> false
  | Some index -> (
    match VH.find_opt index v with
    | None -> false
    | Some bucket -> TH.mem bucket key)

(* Structural equality of the full resident state: groups (counts, sums,
   extrema), the by-key map, every secondary index (positions and bucket
   membership), and the base-row total. Deliberately independent of the
   shard layout, so a 1-shard serial state compares equal to a 16-shard
   parallel one. Open transactions are ignored. *)
let equal a b =
  sum_over_shards a (fun sh -> sh.total) = sum_over_shards b (fun sh -> sh.total)
  && group_count a = group_count b
  && Array.for_all
       (fun sh ->
         TH.fold
           (fun key g acc ->
             acc
             &&
             match find_group b key with
             | Some g' -> group_equal g g'
             | None -> false)
           sh.groups true)
       a.shards
  && by_key_size a = by_key_size b
  && Array.for_all
       (fun sh ->
         match sh.by_key with
         | None -> true
         | Some by_key ->
           VH.fold (fun k gkey acc -> acc && by_key_mem b k gkey) by_key true)
       a.shards
  && (match a.shards.(0).by_key, b.shards.(0).by_key with
     | None, None | Some _, Some _ -> true
     | Some _, None | None, Some _ -> false)
  && index_positions a = index_positions b
  && List.for_all
       (fun pos ->
         index_size a pos = index_size b pos
         && Array.for_all
              (fun sh ->
                match List.assoc_opt pos sh.indexes with
                | None -> true
                | Some index ->
                  VH.fold
                    (fun v bucket acc ->
                      acc
                      && TH.fold
                           (fun key () acc ->
                             acc && index_mem b pos v key)
                           bucket true)
                    index true)
              a.shards)
       (index_positions a)

let row_count = group_count
let base_count s = sum_over_shards s (fun sh -> sh.total)

let row_of key (g : group) = { key_ = key; cnt_ = g.cnt; g_ = g }
let cnt (r : row) = r.cnt_
let plains _s (r : row) = r.key_
let sums _s (r : row) = Array.copy r.g_.sums
let exts _s (r : row) = Array.copy r.g_.exts

let find_by_key s k =
  if s.key_plain_pos < 0 then
    invalid_arg
      (Printf.sprintf "Aux_boxed.find_by_key(%s): key not kept"
         s.spec.Auxview.name);
  let n = Array.length s.shards in
  let rec scan i =
    if i >= n then None
    else
      match s.shards.(i).by_key with
      | None -> None
      | Some by_key -> (
        match VH.find_opt by_key k with
        | Some key -> Some (row_of key (TH.find s.shards.(i).groups key))
        | None -> scan (i + 1))
  in
  scan 0

let mem_key s k = find_by_key s k <> None

let iter s f =
  Array.iter
    (fun sh -> TH.iter (fun key (g : group) -> f (row_of key g)) sh.groups)
    s.shards

let rows_with s ~column v =
  match Auxview.plain_position s.spec column with
  | None -> raise Not_found
  | Some pos ->
    Array.fold_left
      (fun acc sh ->
        match List.assoc_opt pos sh.indexes with
        | Some index -> (
          match VH.find_opt index v with
          | None -> acc
          | Some bucket ->
            TH.fold
              (fun key () acc -> row_of key (TH.find sh.groups key) :: acc)
              bucket acc)
        | None ->
          (* unindexed fallback: scan *)
          TH.fold
            (fun key (g : group) acc ->
              if Value.equal key.(pos) v then row_of key g :: acc else acc)
            sh.groups acc)
      [] s.shards

let plain_of s (row : row) col =
  match Auxview.plain_position s.spec col with
  | Some i -> row.key_.(i)
  | None -> raise Not_found

let sum_of s (row : row) col =
  match Auxview.sum_position s.spec col with
  | Some i -> row.g_.sums.(i)
  | None -> raise Not_found

let min_of s (row : row) col =
  match Auxview.min_position s.spec col with
  | Some i -> row.g_.exts.(i)
  | None -> raise Not_found

let max_of s (row : row) col =
  match Auxview.max_position s.spec col with
  | Some i -> row.g_.exts.(i)
  | None -> raise Not_found

let to_relation s =
  let rel = Relation.create ~size_hint:(group_count s) () in
  iter s (fun r ->
      let gi = ref 0 and si = ref 0 and ei = ref 0 in
      let cell (_, def) =
        match def with
        | Auxview.Plain _ ->
          let v = r.key_.(!gi) in
          incr gi;
          v
        | Auxview.Sum_of _ ->
          let v = r.g_.sums.(!si) in
          incr si;
          v
        | Auxview.Min_of _ | Auxview.Max_of _ ->
          let v = r.g_.exts.(!ei) in
          incr ei;
          v
        | Auxview.Count_star -> Value.Int r.cnt_
      in
      let row = Array.of_list (List.map cell s.spec.Auxview.columns) in
      if s.spec.Auxview.compressed then Relation.insert rel row
      else Relation.insert ~count:r.cnt_ rel row);
  rel
