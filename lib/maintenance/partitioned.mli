(** Current vs. old detail data (Figure 1, Section 4).

    The paper's warehouse keeps {e current} detail data (mutable, mirroring
    the sources) over {e older} detail data, which is append-only — and
    Section 4 observes that old detail can therefore be reduced further,
    since only insertions have to be survived (MIN/MAX become completely
    self-maintainable and are pre-aggregated).

    This engine realizes that split for one GPSJ view: the root (fact) table
    is logically partitioned by a predicate into an old part, maintained by
    an append-only engine with the Section 4 relaxation, and a current part,
    maintained by the standard engine. Facts can be {e aged out} of the
    current partition into the old one — a warehouse-internal move that never
    touches the sources. The view is the distributive merge of the two
    partial views.

    Restrictions: merging partial aggregates distributively requires
    COUNT/SUM/MIN/MAX; views with AVG or DISTINCT aggregates are rejected at
    [init] (rewrite AVG as separate SUM and COUNT columns). Source deletions
    and updates of root tuples must stay within the current partition. *)

type t

exception Unsupported of string

(** [init db view ~is_old] partitions the root table by [is_old] (applied to
    full base tuples) and loads both engines.
    @raise Unsupported if the view has AVG or DISTINCT aggregates, or
    [Algebra.View.Invalid] if the view is malformed. *)
val init :
  Relational.Database.t ->
  Algebra.View.t ->
  is_old:(Relational.Tuple.t -> bool) ->
  t

(** Route one source change: root-table changes go to the partition chosen by
    [is_old]; dimension changes go to both engines.
    @raise Maintenance.Engine.Invariant if a deletion/update targets the old
    partition, or if an update would move a tuple across partitions. *)
val apply : t -> Relational.Delta.t -> unit

(** Process a batch. With [?parallel], deltas are pre-routed per partition
    (dimension changes to both) and each engine applies its sub-batch via
    the compacted shard-parallel fast path ({!Engine.apply_batch}). *)
val apply_batch : ?parallel:Shard.pool -> t -> Relational.Delta.t list -> unit

(** Deep copy of both partition engines (the partition predicate is
    shared). Snapshot-grade; batches run in place under {!begin_txn}. *)
val copy : t -> t

(** Structural equality of both partition engines' mutable state. *)
val equal_state : t -> t -> bool

(** Open / close undo journals in both partition engines (see
    {!Engine.begin_txn}). *)

val in_txn : t -> bool
val begin_txn : t -> unit
val commit : t -> unit
val rollback : t -> unit

(** [age_out t facts] moves the given current-partition fact tuples into the
    old partition (delete from current, insert into old). A warehouse-internal
    operation: the sources are not involved and the merged view is unchanged.

    [is_old] decides routing for {e future} deltas, so it must stay
    consistent with the actual partition contents: age out exactly the facts
    a new boundary selects and let the predicate read that boundary through
    mutable state (see [examples/old_detail_aging.ml], which advances a
    boundary ref right after aging). *)
val age_out : t -> Relational.Tuple.t list -> unit

(** The merged view contents. *)
val view_contents : t -> Relational.Relation.t

(** (name, rows, fields) across both partitions' detail data, with
    "old/"- and "current/"-prefixed object names. *)
val detail_profile : t -> (string * int * int) list

(** Measured resident bytes across both partitions' stored objects (views
    included), with "old/"- and "current/"-prefixed names — see
    {!Engine.measured_bytes}. *)
val measured_bytes : t -> (string * int) list

(** Off-heap (Bigarray) bytes across both partitions — see
    {!Engine.offheap_bytes}. *)
val offheap_bytes : t -> int
