(** The three warehouse configurations the evaluation compares.

    - [minimal] — the paper's contribution: Algorithm 3.2 auxiliary views,
      incrementally maintained.
    - [psj] — Quass et al. tuple-level auxiliary views (no duplicate
      compression), incrementally maintained by the same engine.
    - [recompute] — a full replica of the sources; the view is recomputed
      from scratch whenever it is read.

    All three expose the same interface so benchmarks and tests can treat
    them uniformly. *)

type t

val name : t -> string

val minimal : Relational.Database.t -> Algebra.View.t -> t
val psj : Relational.Database.t -> Algebra.View.t -> t
val recompute : Relational.Database.t -> Algebra.View.t -> t

(** Incremental configuration with explicit derivation options — used by the
    ablation experiments (each reduction technique switchable) and by the
    append-only old-detail mode of Section 4. *)
val with_options :
  name:string ->
  Mindetail.Derive.options ->
  Relational.Database.t ->
  Algebra.View.t ->
  t

(** Incremental configuration for append-only (old) detail data: MIN/MAX are
    pre-aggregated in the auxiliary views; deletions/updates of the root
    (fact) table are rejected, while dimension tables stay mutable. *)
val append_only : Relational.Database.t -> Algebra.View.t -> t

(** Current/old split with an append-only old partition (Figure 1 +
    Section 4); see {!Partitioned} for the restrictions and [age_out]. *)
val partitioned :
  Relational.Database.t ->
  Algebra.View.t ->
  is_old:(Relational.Tuple.t -> bool) ->
  t

(** The partitioned engine behind an [partitioned] configuration, for
    warehouse-internal aging. *)
val as_partitioned : t -> Partitioned.t option

(** Deep copy of the configuration's mutable state. Snapshot-grade
    (O(state)): used for checkpoints and tests, never on the batch path —
    the warehouse applies batches in place under {!begin_txn} and rolls
    back only the touched groups on failure. *)
val copy : t -> t

(** Structural equality of the mutable state of two same-shaped
    configurations (auxiliary views, view groups, replica contents). *)
val equal_state : t -> t -> bool

(** {2 Batch transactions}

    O(delta) all-or-nothing batches: {!begin_txn} opens undo journals
    across the configuration's state, {!apply_batch} records before-images
    of exactly the groups (or replica rows) it touches, and {!rollback}
    restores them; {!commit} discards the journals. A failure mid-batch can
    therefore never leave views disagreeing about which deltas they have
    seen, without cloning untouched state. *)

(** Whether a batch transaction is currently open. *)
val in_txn : t -> bool

(** @raise Invalid_argument if a transaction is already open. *)
val begin_txn : t -> unit

(** @raise Invalid_argument if no transaction is open. *)
val commit : t -> unit

(** @raise Invalid_argument if no transaction is open. *)
val rollback : t -> unit

(** Process a batch of source changes. [?parallel] selects the compacted
    shard-parallel fast path on incremental (and partitioned) engines — see
    {!Engine.apply_batch}; the recompute baseline ignores it. *)
val apply_batch : ?parallel:Shard.pool -> t -> Relational.Delta.t list -> unit

(** Current contents of the materialized view.

    The returned relation is freshly built on every call and never aliases
    the engine's mutable internals. Its hash-iteration order
    ({!Relational.Relation.fold}/[iter]) depends on insertion history —
    serial and shard-parallel application of the same batches can differ —
    so any consumer that needs a deterministic row order must use the
    canonical order, {!Relational.Relation.to_sorted_list}
    ([Tuple.compare] ascending). *)
val view_contents : t -> Relational.Relation.t

(** [capture t] is {!view_contents} for read-epoch publication: the fresh,
    never-aliased relation is safe to share with concurrent readers for as
    long as they like. Guarded — capturing under an open batch transaction
    would publish uncommitted state.
    @raise Invalid_argument if a transaction is open. *)
val capture : t -> Relational.Relation.t

(** (object name, rows, fields per row) of all detail data this
    configuration stores besides the view itself. *)
val detail_profile : t -> (string * int * int) list

(** Measured resident bytes per stored object (view first, then auxiliary
    views), from the columnar segments' byte accounting. [None] for the
    recompute baseline, whose boxed replica has no measured size — callers
    fall back to the bytes-per-field estimate. *)
val measured_bytes : t -> (string * int) list option

(** Off-heap (Bigarray) bytes held by this configuration's columnar
    storage; [0] for the recompute baseline. *)
val offheap_bytes : t -> int

(** The derivation backing an incremental configuration, if any. *)
val derivation : t -> Mindetail.Derive.t option

(** Lineage flow of the most recent batch — see {!Engine.last_flow}.
    [None] for the recompute baseline and partitioned configurations. *)
val last_flow : t -> Telemetry.Lineage.view_flow option

(** Sampled drift audit against retained detail — see {!Engine.audit}.
    [None] when the configuration cannot recompute from retained detail
    (recompute baseline, partitioned, or an eliminated root auxview). *)
val self_audit : sample:int -> t -> (int * int) option
