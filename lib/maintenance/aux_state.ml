module Auxview = Mindetail.Auxview
module Schema = Relational.Schema
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type group = {
  mutable cnt : int;
  sums : Value.t array;
  exts : Value.t array;
}

(* First-touch before-image of one group, taken when an open transaction
   first mutates it. [Absent] marks a group the batch created. *)
type saved_group =
  | Absent
  | Present of { cnt : int; sums : Value.t array; exts : Value.t array }

type txn = { saved : saved_group TH.t; total0 : int }

type t = {
  spec : Auxview.t;
  plain_src : int array;  (** base-schema index of each Plain column *)
  sum_src : int array;  (** base-schema index of each Sum_of column *)
  ext_src : (int * bool) array;
      (** base-schema index and is-MIN flag of each extremum column *)
  groups : group TH.t;
  by_key : Tuple.t VH.t option;  (** base key value -> group key *)
  key_plain_pos : int;  (** position of the base key among plains, or -1 *)
  indexes : (int * unit TH.t VH.t) list;
      (** per indexed column: its position among plains, and value -> set of
          group keys *)
  mutable total : int;
  mutable txn : txn option;
}

type row = { plains : Tuple.t; cnt : int; sums : Value.t array; exts : Value.t array }

let create ?(indexed_columns = []) spec schema =
  let idx c = Schema.index_of schema c in
  let key_plain_pos =
    match Auxview.plain_position spec schema.Schema.key with
    | Some i -> i
    | None -> -1
  in
  let indexes =
    List.map
      (fun col ->
        match Auxview.plain_position spec col with
        | Some pos -> (pos, VH.create 256)
        | None ->
          (* a misspelled index column must not degrade to a silent full
             scan on every probe *)
          invalid_arg
            (Printf.sprintf
               "Aux_state.create(%s): indexed column %s is not a plain \
                column of the view"
               spec.Auxview.name col))
      (List.sort_uniq String.compare indexed_columns)
  in
  {
    spec;
    plain_src = Array.of_list (List.map idx (Auxview.group_columns spec));
    sum_src = Array.of_list (List.map idx (Auxview.summed_columns spec));
    ext_src =
      Array.of_list
        (List.map
           (fun (c, is_min) -> (idx c, is_min))
           (Auxview.ext_columns spec));
    groups = TH.create 256;
    by_key = (if key_plain_pos >= 0 then Some (VH.create 256) else None);
    key_plain_pos;
    indexes;
    total = 0;
    txn = None;
  }

let spec s = s.spec

let group_key_of_base s tup = Tuple.project tup s.plain_src

let index_add s key =
  List.iter
    (fun (pos, index) ->
      let v = key.(pos) in
      let bucket =
        match VH.find_opt index v with
        | Some b -> b
        | None ->
          let b = TH.create 4 in
          VH.add index v b;
          b
      in
      TH.replace bucket key ())
    s.indexes

let index_remove s key =
  List.iter
    (fun (pos, index) ->
      match VH.find_opt index key.(pos) with
      | None -> ()
      | Some bucket ->
        TH.remove bucket key;
        if TH.length bucket = 0 then VH.remove index key.(pos))
    s.indexes

let combine_ext ~is_min cur v =
  let c = Value.compare v cur in
  if (is_min && c < 0) || ((not is_min) && c > 0) then v else cur

(* --- transactions ------------------------------------------------------- *)

let begin_txn s =
  if s.txn <> None then
    invalid_arg
      (Printf.sprintf "Aux_state.begin_txn(%s): transaction already open"
         s.spec.Auxview.name);
  s.txn <- Some { saved = TH.create 64; total0 = s.total }

(* Journal [key]'s before-image, once per transaction. Must run before any
   mutation of the group (or its creation). *)
let note s key =
  match s.txn with
  | None -> ()
  | Some { saved; _ } ->
    if not (TH.mem saved key) then
      TH.add saved key
        (match TH.find_opt s.groups key with
        | None -> Absent
        | Some g ->
          Present
            { cnt = g.cnt; sums = Array.copy g.sums; exts = Array.copy g.exts })

let commit s =
  if s.txn = None then
    invalid_arg
      (Printf.sprintf "Aux_state.commit(%s): no open transaction"
         s.spec.Auxview.name);
  s.txn <- None

let rollback s =
  match s.txn with
  | None ->
    invalid_arg
      (Printf.sprintf "Aux_state.rollback(%s): no open transaction"
         s.spec.Auxview.name)
  | Some { saved; total0 } ->
    (* by_key and index membership are pure functions of the group key, so
       restoring group presence restores them too. Two phases: first drop
       every group created inside the transaction, then restore the
       pre-existing ones — a created and a restored group can share a base
       key value (e.g. a root-tuple update rewrote an aggregated column),
       and removal must not clobber the restored by_key mapping. *)
    TH.iter
      (fun key before ->
        match before, TH.find_opt s.groups key with
        | Absent, Some _ ->
          TH.remove s.groups key;
          Option.iter
            (fun by_key -> VH.remove by_key key.(s.key_plain_pos))
            s.by_key;
          index_remove s key
        | Absent, None | Present _, _ -> ())
      saved;
    TH.iter
      (fun key before ->
        match before, TH.find_opt s.groups key with
        | Absent, _ -> ()
        | Present p, Some g ->
          g.cnt <- p.cnt;
          Array.blit p.sums 0 g.sums 0 (Array.length p.sums);
          Array.blit p.exts 0 g.exts 0 (Array.length p.exts);
          (* the mapping may have been stolen by a since-removed group *)
          Option.iter
            (fun by_key -> VH.replace by_key key.(s.key_plain_pos) key)
            s.by_key
        | Present p, None ->
          TH.add s.groups key { cnt = p.cnt; sums = p.sums; exts = p.exts };
          Option.iter
            (fun by_key -> VH.replace by_key key.(s.key_plain_pos) key)
            s.by_key;
          index_add s key)
      saved;
    s.total <- total0;
    s.txn <- None

(* Reject NULL (and any other non-aggregatable value) in aggregated columns
   before mutating anything, so a poisoned tuple cannot leave a group with
   its count bumped but its sums untouched. *)
let check_aggregands s op tup =
  Array.iter
    (fun src ->
      if not (Value.is_numeric tup.(src)) then
        invalid_arg
          (Printf.sprintf
             "Aux_state.%s(%s): %s value in summed column (index %d)" op
             s.spec.Auxview.name
             (Value.type_name tup.(src))
             src))
    s.sum_src;
  Array.iter
    (fun (src, _) ->
      if Value.is_null tup.(src) then
        invalid_arg
          (Printf.sprintf
             "Aux_state.%s(%s): NULL value in MIN/MAX column (index %d)" op
             s.spec.Auxview.name src))
    s.ext_src

let insert_base s tup =
  check_aggregands s "insert_base" tup;
  let key = group_key_of_base s tup in
  note s key;
  (match TH.find_opt s.groups key with
  | Some g ->
    g.cnt <- g.cnt + 1;
    Array.iteri
      (fun i src -> g.sums.(i) <- Value.add g.sums.(i) tup.(src))
      s.sum_src;
    Array.iteri
      (fun i (src, is_min) ->
        g.exts.(i) <- combine_ext ~is_min g.exts.(i) tup.(src))
      s.ext_src
  | None ->
    TH.add s.groups key
      {
        cnt = 1;
        sums = Array.map (fun src -> tup.(src)) s.sum_src;
        exts = Array.map (fun (src, _) -> tup.(src)) s.ext_src;
      };
    Option.iter
      (fun by_key -> VH.replace by_key key.(s.key_plain_pos) key)
      s.by_key;
    index_add s key);
  s.total <- s.total + 1

let delete_base s tup =
  if Array.length s.ext_src > 0 then
    invalid_arg
      (Printf.sprintf
         "Aux_state.delete_base(%s): append-only view holds MIN/MAX columns"
         s.spec.Auxview.name);
  check_aggregands s "delete_base" tup;
  let key = group_key_of_base s tup in
  match TH.find_opt s.groups key with
  | None ->
    invalid_arg
      (Printf.sprintf "Aux_state.delete_base(%s): group %s absent"
         s.spec.Auxview.name (Tuple.to_string key))
  | Some g ->
    if g.cnt <= 0 then
      invalid_arg
        (Printf.sprintf "Aux_state.delete_base(%s): count underflow"
           s.spec.Auxview.name);
    note s key;
    g.cnt <- g.cnt - 1;
    Array.iteri
      (fun i src -> g.sums.(i) <- Value.sub g.sums.(i) tup.(src))
      s.sum_src;
    s.total <- s.total - 1;
    if g.cnt = 0 then begin
      TH.remove s.groups key;
      Option.iter
        (fun by_key -> VH.remove by_key key.(s.key_plain_pos))
        s.by_key;
      index_remove s key
    end

let copy s =
  let groups = TH.create (max 16 (TH.length s.groups)) in
  TH.iter
    (fun key (g : group) ->
      TH.add groups key
        { cnt = g.cnt; sums = Array.copy g.sums; exts = Array.copy g.exts })
    s.groups;
  {
    s with
    groups;
    by_key = Option.map VH.copy s.by_key;
    indexes =
      List.map
        (fun (pos, index) ->
          let index' = VH.create (max 16 (VH.length index)) in
          VH.iter (fun v bucket -> VH.add index' v (TH.copy bucket)) index;
          (pos, index'))
        s.indexes;
    txn = None;
  }

let array_equal eq a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (eq x b.(i)) then ok := false) a;
  !ok

let th_equal eq a b =
  TH.length a = TH.length b
  && TH.fold
       (fun key x acc ->
         acc
         && match TH.find_opt b key with Some y -> eq x y | None -> false)
       a true

let vh_equal eq a b =
  VH.length a = VH.length b
  && VH.fold
       (fun v x acc ->
         acc && match VH.find_opt b v with Some y -> eq x y | None -> false)
       a true

let group_equal (g : group) (g' : group) =
  g.cnt = g'.cnt
  && array_equal Value.equal g.sums g'.sums
  && array_equal Value.equal g.exts g'.exts

(* Structural equality of the full resident state: groups (counts, sums,
   extrema), the by-key map, every secondary index (positions and bucket
   membership), and the base-row total. Open transactions are ignored. *)
let equal a b =
  a.total = b.total
  && th_equal group_equal a.groups b.groups
  && (match a.by_key, b.by_key with
     | None, None -> true
     | Some x, Some y -> vh_equal Tuple.equal x y
     | Some _, None | None, Some _ -> false)
  && List.length a.indexes = List.length b.indexes
  && List.for_all2
       (fun (pos, ix) (pos', ix') ->
         pos = pos' && vh_equal (th_equal (fun () () -> true)) ix ix')
       a.indexes b.indexes

let row_count s = TH.length s.groups
let base_count s = s.total

let row_of key (g : group) =
  { plains = key; cnt = g.cnt; sums = Array.copy g.sums; exts = Array.copy g.exts }

let find_by_key s k =
  match s.by_key with
  | None ->
    invalid_arg
      (Printf.sprintf "Aux_state.find_by_key(%s): key not kept"
         s.spec.Auxview.name)
  | Some by_key -> (
    match VH.find_opt by_key k with
    | None -> None
    | Some key -> Some (row_of key (TH.find s.groups key)))

let mem_key s k = find_by_key s k <> None

let iter s f = TH.iter (fun key (g : group) -> f (row_of key g)) s.groups

let rows_with s ~column v =
  match
    List.find_opt
      (fun (pos, _) ->
        match Auxview.plain_position s.spec column with
        | Some p -> p = pos
        | None -> false)
      s.indexes
  with
  | Some (_, index) -> (
    match VH.find_opt index v with
    | None -> []
    | Some bucket ->
      TH.fold (fun key () acc -> row_of key (TH.find s.groups key) :: acc)
        bucket [])
  | None -> (
    (* unindexed fallback: scan *)
    match Auxview.plain_position s.spec column with
    | None -> raise Not_found
    | Some pos ->
      TH.fold
        (fun key (g : group) acc ->
          if Value.equal key.(pos) v then row_of key g :: acc else acc)
        s.groups [])

let plain_of s row col =
  match Auxview.plain_position s.spec col with
  | Some i -> row.plains.(i)
  | None -> raise Not_found

let sum_of s row col =
  match Auxview.sum_position s.spec col with
  | Some i -> row.sums.(i)
  | None -> raise Not_found

let min_of s row col =
  match Auxview.min_position s.spec col with
  | Some i -> row.exts.(i)
  | None -> raise Not_found

let max_of s row col =
  match Auxview.max_position s.spec col with
  | Some i -> row.exts.(i)
  | None -> raise Not_found

let to_relation s =
  let rel = Relation.create ~size_hint:(TH.length s.groups) () in
  TH.iter
    (fun key (g : group) ->
      let gi = ref 0 and si = ref 0 and ei = ref 0 in
      let cell (_, def) =
        match def with
        | Auxview.Plain _ ->
          let v = key.(!gi) in
          incr gi;
          v
        | Auxview.Sum_of _ ->
          let v = g.sums.(!si) in
          incr si;
          v
        | Auxview.Min_of _ | Auxview.Max_of _ ->
          let v = g.exts.(!ei) in
          incr ei;
          v
        | Auxview.Count_star -> Value.Int g.cnt
      in
      let row = Array.of_list (List.map cell s.spec.Auxview.columns) in
      if s.spec.Auxview.compressed then Relation.insert rel row
      else Relation.insert ~count:g.cnt rel row)
    s.groups;
  rel
