module Auxview = Mindetail.Auxview
module Schema = Relational.Schema
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type group = {
  mutable cnt : int;
  sums : Value.t array;
  exts : Value.t array;
}

type t = {
  spec : Auxview.t;
  plain_src : int array;  (** base-schema index of each Plain column *)
  sum_src : int array;  (** base-schema index of each Sum_of column *)
  ext_src : (int * bool) array;
      (** base-schema index and is-MIN flag of each extremum column *)
  groups : group TH.t;
  by_key : Tuple.t VH.t option;  (** base key value -> group key *)
  key_plain_pos : int;  (** position of the base key among plains, or -1 *)
  indexes : (int * unit TH.t VH.t) list;
      (** per indexed column: its position among plains, and value -> set of
          group keys *)
  mutable total : int;
}

type row = { plains : Tuple.t; cnt : int; sums : Value.t array; exts : Value.t array }

let create ?(indexed_columns = []) spec schema =
  let idx c = Schema.index_of schema c in
  let key_plain_pos =
    match Auxview.plain_position spec schema.Schema.key with
    | Some i -> i
    | None -> -1
  in
  let indexes =
    List.filter_map
      (fun col ->
        match Auxview.plain_position spec col with
        | Some pos -> Some (pos, VH.create 256)
        | None -> None)
      (List.sort_uniq String.compare indexed_columns)
  in
  {
    spec;
    plain_src = Array.of_list (List.map idx (Auxview.group_columns spec));
    sum_src = Array.of_list (List.map idx (Auxview.summed_columns spec));
    ext_src =
      Array.of_list
        (List.map
           (fun (c, is_min) -> (idx c, is_min))
           (Auxview.ext_columns spec));
    groups = TH.create 256;
    by_key = (if key_plain_pos >= 0 then Some (VH.create 256) else None);
    key_plain_pos;
    indexes;
    total = 0;
  }

let spec s = s.spec

let group_key_of_base s tup = Tuple.project tup s.plain_src

let index_add s key =
  List.iter
    (fun (pos, index) ->
      let v = key.(pos) in
      let bucket =
        match VH.find_opt index v with
        | Some b -> b
        | None ->
          let b = TH.create 4 in
          VH.add index v b;
          b
      in
      TH.replace bucket key ())
    s.indexes

let index_remove s key =
  List.iter
    (fun (pos, index) ->
      match VH.find_opt index key.(pos) with
      | None -> ()
      | Some bucket ->
        TH.remove bucket key;
        if TH.length bucket = 0 then VH.remove index key.(pos))
    s.indexes

let combine_ext ~is_min cur v =
  let c = Value.compare v cur in
  if (is_min && c < 0) || ((not is_min) && c > 0) then v else cur

let insert_base s tup =
  let key = group_key_of_base s tup in
  (match TH.find_opt s.groups key with
  | Some g ->
    g.cnt <- g.cnt + 1;
    Array.iteri
      (fun i src -> g.sums.(i) <- Value.add g.sums.(i) tup.(src))
      s.sum_src;
    Array.iteri
      (fun i (src, is_min) ->
        g.exts.(i) <- combine_ext ~is_min g.exts.(i) tup.(src))
      s.ext_src
  | None ->
    TH.add s.groups key
      {
        cnt = 1;
        sums = Array.map (fun src -> tup.(src)) s.sum_src;
        exts = Array.map (fun (src, _) -> tup.(src)) s.ext_src;
      };
    Option.iter
      (fun by_key -> VH.replace by_key key.(s.key_plain_pos) key)
      s.by_key;
    index_add s key);
  s.total <- s.total + 1

let delete_base s tup =
  if Array.length s.ext_src > 0 then
    invalid_arg
      (Printf.sprintf
         "Aux_state.delete_base(%s): append-only view holds MIN/MAX columns"
         s.spec.Auxview.name);
  let key = group_key_of_base s tup in
  match TH.find_opt s.groups key with
  | None ->
    invalid_arg
      (Printf.sprintf "Aux_state.delete_base(%s): group %s absent"
         s.spec.Auxview.name (Tuple.to_string key))
  | Some g ->
    if g.cnt <= 0 then
      invalid_arg
        (Printf.sprintf "Aux_state.delete_base(%s): count underflow"
           s.spec.Auxview.name);
    g.cnt <- g.cnt - 1;
    Array.iteri
      (fun i src -> g.sums.(i) <- Value.sub g.sums.(i) tup.(src))
      s.sum_src;
    s.total <- s.total - 1;
    if g.cnt = 0 then begin
      TH.remove s.groups key;
      Option.iter
        (fun by_key -> VH.remove by_key key.(s.key_plain_pos))
        s.by_key;
      index_remove s key
    end

let copy s =
  let groups = TH.create (max 16 (TH.length s.groups)) in
  TH.iter
    (fun key (g : group) ->
      TH.add groups key
        { cnt = g.cnt; sums = Array.copy g.sums; exts = Array.copy g.exts })
    s.groups;
  {
    s with
    groups;
    by_key = Option.map VH.copy s.by_key;
    indexes =
      List.map
        (fun (pos, index) ->
          let index' = VH.create (max 16 (VH.length index)) in
          VH.iter (fun v bucket -> VH.add index' v (TH.copy bucket)) index;
          (pos, index'))
        s.indexes;
  }

let row_count s = TH.length s.groups
let base_count s = s.total

let row_of key (g : group) =
  { plains = key; cnt = g.cnt; sums = Array.copy g.sums; exts = Array.copy g.exts }

let find_by_key s k =
  match s.by_key with
  | None ->
    invalid_arg
      (Printf.sprintf "Aux_state.find_by_key(%s): key not kept"
         s.spec.Auxview.name)
  | Some by_key -> (
    match VH.find_opt by_key k with
    | None -> None
    | Some key -> Some (row_of key (TH.find s.groups key)))

let mem_key s k = find_by_key s k <> None

let iter s f = TH.iter (fun key (g : group) -> f (row_of key g)) s.groups

let rows_with s ~column v =
  match
    List.find_opt
      (fun (pos, _) ->
        match Auxview.plain_position s.spec column with
        | Some p -> p = pos
        | None -> false)
      s.indexes
  with
  | Some (_, index) -> (
    match VH.find_opt index v with
    | None -> []
    | Some bucket ->
      TH.fold (fun key () acc -> row_of key (TH.find s.groups key) :: acc)
        bucket [])
  | None -> (
    (* unindexed fallback: scan *)
    match Auxview.plain_position s.spec column with
    | None -> raise Not_found
    | Some pos ->
      TH.fold
        (fun key (g : group) acc ->
          if Value.equal key.(pos) v then row_of key g :: acc else acc)
        s.groups [])

let plain_of s row col =
  match Auxview.plain_position s.spec col with
  | Some i -> row.plains.(i)
  | None -> raise Not_found

let sum_of s row col =
  match Auxview.sum_position s.spec col with
  | Some i -> row.sums.(i)
  | None -> raise Not_found

let min_of s row col =
  match Auxview.min_position s.spec col with
  | Some i -> row.exts.(i)
  | None -> raise Not_found

let max_of s row col =
  match Auxview.max_position s.spec col with
  | Some i -> row.exts.(i)
  | None -> raise Not_found

let to_relation s =
  let rel = Relation.create ~size_hint:(TH.length s.groups) () in
  TH.iter
    (fun key (g : group) ->
      let gi = ref 0 and si = ref 0 and ei = ref 0 in
      let cell (_, def) =
        match def with
        | Auxview.Plain _ ->
          let v = key.(!gi) in
          incr gi;
          v
        | Auxview.Sum_of _ ->
          let v = g.sums.(!si) in
          incr si;
          v
        | Auxview.Min_of _ | Auxview.Max_of _ ->
          let v = g.exts.(!ei) in
          incr ei;
          v
        | Auxview.Count_star -> Value.Int g.cnt
      in
      let row = Array.of_list (List.map cell s.spec.Auxview.columns) in
      if s.spec.Auxview.compressed then Relation.insert rel row
      else Relation.insert ~count:g.cnt rel row)
    s.groups;
  rel
