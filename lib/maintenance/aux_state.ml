module Auxview = Mindetail.Auxview
module Schema = Relational.Schema
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Icol = Column.Icol

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

(* Physical layout: groups are row ids into parallel typed columns (see
   {!Column}) — one column per Plain / Sum_of / extremum attribute plus a
   dense count column. [map] indexes group keys (stored in the plain
   columns) to row ids; [by_key] and the secondary indexes likewise hold row
   ids only. Deletion swaps the last row into the hole, so row ids are
   internal and never escape: the public [row] record is materialized on
   demand. *)

(* First-touch before-image of one group, taken when an open transaction
   first mutates it. [Absent] marks a group the batch created. Before-images
   are boxed (keyed by group key, not row id): swap-with-last deletion
   renumbers rows, so only keys are stable across a batch. *)
type saved_group =
  | Absent
  | Present of { cnt : int; sums : Value.t array; exts : Value.t array }

type txn = { saved : saved_group TH.t; total0 : int }

(* One secondary index: per distinct column value, an [Icol] bucket of row
   ids; [pos] is row-parallel and holds each row's offset within its bucket
   so removal is O(1) swap-with-last on the bucket. *)
type index = { buckets : Icol.t VH.t; pos : Icol.t }

(* One hash-shard of the resident state. Every row-parallel structure lives
   per shard, so during a parallel apply each domain owns a disjoint set of
   shards and never touches another domain's columns or tables. *)
type shard = {
  plains : Column.t array;
  sums : Column.t array;
  exts : Column.t array;
  cnts : Icol.t;
  map : Rowmap.t;  (** group key (= plain cells) -> row id *)
  by_key : Rowmap.t option;  (** base key value -> row id *)
  indexes : (int * index) list;
      (** per indexed column: its position among plains, and its index *)
  mutable total : int;
  mutable txn : txn option;
  scratch : Tuple.t;
      (** reusable projection buffer for the journal path; copied only when
          a key must be retained *)
}

type t = {
  spec : Auxview.t;
  plain_src : int array;  (** base-schema index of each Plain column *)
  sum_src : int array;  (** base-schema index of each Sum_of column *)
  ext_src : (int * bool) array;
      (** base-schema index and is-MIN flag of each extremum column *)
  key_plain_pos : int;  (** position of the base key among plains, or -1 *)
  mask : int;  (** shard count - 1; shard of a key is [hash land mask] *)
  shards : shard array;
}

(* A row is a cursor into a shard's columns, not a materialized record: a
   count-only scan over a million groups allocates one 4-word handle per
   group and nothing else. Accessors fetch (and box) cells on demand. The
   snapshotted count keeps the handle meaningful for the engine's
   capture-then-mutate pattern; positional cells are invalidated by the
   next mutation of the owning state (swap-with-last moves rows). *)
type row = { sh_ : shard; r_ : int; cnt_ : int }

(* Row-key hash over the plain cells; must agree with [Tuple.hash] of the
   materialized group key (shard routing and probes hash boxed tuples on
   one side, stored cells on the other). *)
let key_hash_cols (plains : Column.t array) r =
  Array.fold_left (fun acc c -> (acc * 31) + Column.hash_cell c r) 17 plains

let nrows sh = Icol.length sh.cnts

let create ?(indexed_columns = []) ?(shards = 1) ?dict_pool spec schema =
  if shards < 1 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Aux_state.create(%s): shard count %d is not a power of two"
         spec.Auxview.name shards);
  let idx c = Schema.index_of schema c in
  let key_plain_pos =
    match Auxview.plain_position spec schema.Schema.key with
    | Some i -> i
    | None -> -1
  in
  let plain_cols = Auxview.group_columns spec in
  let plain_src = Array.of_list (List.map idx plain_cols) in
  let dict_for col =
    Option.map
      (fun pool -> Dict.shared pool ~table:spec.Auxview.base ~column:col)
      dict_pool
  in
  let mk_shard () =
    let plains =
      Array.of_list
        (List.map (fun col -> Column.create ?dict:(dict_for col) ()) plain_cols)
    in
    let indexes =
      List.map
        (fun col ->
          match Auxview.plain_position spec col with
          | Some pos -> (pos, { buckets = VH.create 64; pos = Icol.create () })
          | None ->
            (* a misspelled index column must not degrade to a silent full
               scan on every probe *)
            invalid_arg
              (Printf.sprintf
                 "Aux_state.create(%s): indexed column %s is not a plain \
                  column of the view"
                 spec.Auxview.name col))
        (List.sort_uniq String.compare indexed_columns)
    in
    {
      plains;
      sums =
        Array.of_list
          (List.map
             (fun col -> Column.create ?dict:(dict_for col) ())
             (Auxview.summed_columns spec));
      exts =
        Array.of_list
          (List.map
             (fun (col, _) -> Column.create ?dict:(dict_for col) ())
             (Auxview.ext_columns spec));
      cnts = Icol.create ();
      map = Rowmap.create ~hash:(fun r -> key_hash_cols plains r) ();
      by_key =
        (if key_plain_pos >= 0 then
           Some
             (Rowmap.create
                ~hash:(fun r -> Column.hash_cell plains.(key_plain_pos) r)
                ())
         else None);
      indexes;
      total = 0;
      txn = None;
      scratch = Array.make (Array.length plain_src) Value.Null;
    }
  in
  {
    spec;
    plain_src;
    sum_src = Array.of_list (List.map idx (Auxview.summed_columns spec));
    ext_src =
      Array.of_list
        (List.map
           (fun (c, is_min) -> (idx c, is_min))
           (Auxview.ext_columns spec));
    key_plain_pos;
    mask = shards - 1;
    shards = Array.init shards (fun _ -> mk_shard ());
  }

let spec s = s.spec
let shard_count s = Array.length s.shards

let group_key_of_base s tup = Tuple.project tup s.plain_src

(* Shard routing must agree with [Tuple.hash (group_key_of_base s tup)]
   without materializing the projection; this mirrors [Tuple.hash]'s fold. *)
let hash_base s tup =
  Array.fold_left (fun acc src -> (acc * 31) + Value.hash tup.(src)) 17 s.plain_src

let shard_of_base s tup = if s.mask = 0 then 0 else hash_base s tup land s.mask
let shard_of_key s key = if s.mask = 0 then 0 else Tuple.hash key land s.mask

(* --- probes -------------------------------------------------------------- *)

let row_matches_base s (sh : shard) r tup =
  let n = Array.length s.plain_src in
  let rec ok i =
    i >= n
    || Column.equal_cell sh.plains.(i) r tup.(s.plain_src.(i)) && ok (i + 1)
  in
  ok 0

let row_matches_key (sh : shard) r (key : Tuple.t) =
  let n = Array.length key in
  let rec ok i =
    i >= n || Column.equal_cell sh.plains.(i) r key.(i) && ok (i + 1)
  in
  ok 0

let find_row_base s sh ~hash tup =
  Rowmap.find sh.map ~hash ~eq:(fun r -> row_matches_base s sh r tup)

let find_row_key sh key =
  Rowmap.find sh.map ~hash:(Tuple.hash key) ~eq:(fun r -> row_matches_key sh r key)

let group_key_at (sh : shard) r =
  Array.init (Array.length sh.plains) (fun i -> Column.get sh.plains.(i) r)

(* --- secondary indexes --------------------------------------------------- *)

let index_add_row (sh : shard) r =
  List.iter
    (fun (pos, idx) ->
      let v = Column.get sh.plains.(pos) r in
      let bucket =
        match VH.find_opt idx.buckets v with
        | Some b -> b
        | None ->
          let b = Icol.create () in
          VH.add idx.buckets v b;
          b
      in
      Icol.append bucket r;
      Icol.append idx.pos (Icol.length bucket - 1))
    sh.indexes

(* Remove row [r] from every bucket (its [pos] slot is reclaimed by the
   caller's row-parallel swap-delete). *)
let index_remove_row (sh : shard) r =
  List.iter
    (fun (pos, idx) ->
      let v = Column.get sh.plains.(pos) r in
      let bucket = VH.find idx.buckets v in
      let p = Icol.get idx.pos r in
      let last = Icol.length bucket - 1 in
      let moved = Icol.get bucket last in
      Icol.set bucket p moved;
      Icol.set idx.pos moved p;
      Icol.swap_delete bucket last;
      if Icol.length bucket = 0 then VH.remove idx.buckets v)
    sh.indexes

(* --- row attach / detach ------------------------------------------------- *)

let by_key_attach s (sh : shard) r =
  Option.iter
    (fun bk ->
      let kp = s.key_plain_pos in
      let v = Column.get sh.plains.(kp) r in
      (* steal semantics: a new group with the same base key value takes
         over the mapping *)
      ignore
        (Rowmap.replace bk
           ~hash:(Column.hash_cell sh.plains.(kp) r)
           ~eq:(fun r' -> Column.equal_cell sh.plains.(kp) r' v)
           r))
    sh.by_key

let append_from_base s (sh : shard) ~hash tup count =
  let r = nrows sh in
  Array.iteri (fun i src -> Column.append sh.plains.(i) tup.(src)) s.plain_src;
  Array.iteri
    (fun i src -> Column.append sh.sums.(i) (Value.scale tup.(src) count))
    s.sum_src;
  Array.iteri (fun i (src, _) -> Column.append sh.exts.(i) tup.(src)) s.ext_src;
  Icol.append sh.cnts count;
  Rowmap.add sh.map ~hash r;
  by_key_attach s sh r;
  index_add_row sh r

let append_from_values s (sh : shard) key cnt (sums : Value.t array) (exts : Value.t array) =
  let r = nrows sh in
  Array.iteri (fun i v -> Column.append sh.plains.(i) v) key;
  Array.iteri (fun i v -> Column.append sh.sums.(i) v) sums;
  Array.iteri (fun i v -> Column.append sh.exts.(i) v) exts;
  Icol.append sh.cnts cnt;
  Rowmap.add sh.map ~hash:(Tuple.hash key) r;
  by_key_attach s sh r;
  index_add_row sh r

(* Swap-with-last removal of row [r], repairing every row-id holder: the
   key map, by_key (both the deleted row's entry, if it still points here,
   and the moved row's), and each secondary index. [hash] is row [r]'s
   group-key hash, which every caller already has in hand. *)
let delete_row s (sh : shard) ~hash r =
  let l = nrows sh - 1 in
  Option.iter
    (fun bk ->
      (* remove only if the mapping still points at this row — reordered
         replay (insertions before deletions) may have re-pointed this base
         key at the updated row's group, and that live mapping must not be
         clobbered *)
      ignore
        (Rowmap.remove_value bk
           ~hash:(Column.hash_cell sh.plains.(s.key_plain_pos) r)
           r))
    sh.by_key;
  index_remove_row sh r;
  ignore (Rowmap.remove_value sh.map ~hash r);
  if r <> l then begin
    (* row [l] is about to move into slot [r]; re-point its entries while
       its cells are still readable at [l] *)
    ignore
      (Rowmap.rename_value sh.map ~hash:(key_hash_cols sh.plains l) ~old_row:l
         ~new_row:r);
    Option.iter
      (fun bk ->
        ignore
          (Rowmap.rename_value bk
             ~hash:(Column.hash_cell sh.plains.(s.key_plain_pos) l)
             ~old_row:l ~new_row:r))
      sh.by_key;
    List.iter
      (fun (pos, idx) ->
        let v = Column.get sh.plains.(pos) l in
        let bucket = VH.find idx.buckets v in
        Icol.set bucket (Icol.get idx.pos l) r)
      sh.indexes
  end;
  Array.iter (fun c -> Column.swap_delete c r) sh.plains;
  Array.iter (fun c -> Column.swap_delete c r) sh.sums;
  Array.iter (fun c -> Column.swap_delete c r) sh.exts;
  Icol.swap_delete sh.cnts r;
  List.iter (fun (_, idx) -> Icol.swap_delete idx.pos r) sh.indexes

(* --- transactions -------------------------------------------------------- *)

let begin_txn s =
  if s.shards.(0).txn <> None then
    invalid_arg
      (Printf.sprintf "Aux_state.begin_txn(%s): transaction already open"
         s.spec.Auxview.name);
  Array.iter
    (fun sh -> sh.txn <- Some { saved = TH.create 64; total0 = sh.total })
    s.shards

(* Journal [key]'s before-image, once per transaction. Must run before any
   mutation of the group at [row] (or its creation). [key] may alias a
   scratch buffer; it is copied if retained. *)
let note_known (sh : shard) key row =
  match sh.txn with
  | None -> ()
  | Some { saved; _ } ->
    if not (TH.mem saved key) then
      TH.add saved (Array.copy key)
        (match row with
        | None -> Absent
        | Some r ->
          Present
            {
              cnt = Icol.get sh.cnts r;
              sums =
                Array.init (Array.length sh.sums) (fun i ->
                    Column.get sh.sums.(i) r);
              exts =
                Array.init (Array.length sh.exts) (fun i ->
                    Column.get sh.exts.(i) r);
            })

let commit s =
  if s.shards.(0).txn = None then
    invalid_arg
      (Printf.sprintf "Aux_state.commit(%s): no open transaction"
         s.spec.Auxview.name);
  Array.iter (fun sh -> sh.txn <- None) s.shards

let rollback_shard s sh =
  match sh.txn with
  | None -> ()
  | Some { saved; total0 } ->
    (* by_key and index membership are pure functions of the stored cells,
       so restoring group presence restores them too. Two phases: first
       drop every group created inside the transaction, then restore the
       pre-existing ones — a created and a restored group can share a base
       key value (e.g. a root-tuple update rewrote an aggregated column),
       and removal must not clobber the restored by_key mapping. *)
    TH.iter
      (fun key before ->
        match before, find_row_key sh key with
        | Absent, Some r -> delete_row s sh ~hash:(Tuple.hash key) r
        | Absent, None | Present _, _ -> ())
      saved;
    TH.iter
      (fun key before ->
        match before, find_row_key sh key with
        | Absent, _ -> ()
        | Present p, Some r ->
          Icol.set sh.cnts r p.cnt;
          Array.iteri (fun i v -> Column.set sh.sums.(i) r v) p.sums;
          Array.iteri (fun i v -> Column.set sh.exts.(i) r v) p.exts;
          (* the mapping may have been stolen by a since-removed group *)
          by_key_attach s sh r
        | Present p, None -> append_from_values s sh key p.cnt p.sums p.exts)
      saved;
    sh.total <- total0;
    sh.txn <- None

let rollback s =
  if s.shards.(0).txn = None then
    invalid_arg
      (Printf.sprintf "Aux_state.rollback(%s): no open transaction"
         s.spec.Auxview.name);
  Array.iter (rollback_shard s) s.shards

(* Reject NULL (and any other non-aggregatable value) in aggregated columns
   before mutating anything, so a poisoned tuple cannot leave a group with
   its count bumped but its sums untouched. *)
let check_aggregands s op tup =
  Array.iter
    (fun src ->
      if not (Value.is_numeric tup.(src)) then
        invalid_arg
          (Printf.sprintf
             "Aux_state.%s(%s): %s value in summed column (index %d)" op
             s.spec.Auxview.name
             (Value.type_name tup.(src))
             src))
    s.sum_src;
  Array.iter
    (fun (src, _) ->
      if Value.is_null tup.(src) then
        invalid_arg
          (Printf.sprintf
             "Aux_state.%s(%s): NULL value in MIN/MAX column (index %d)" op
             s.spec.Auxview.name src))
    s.ext_src

(* Project [tup]'s group key into the shard's scratch buffer — valid only
   until the next projection on the same shard, and only retained via
   copies (the journal path). *)
let scratch_key sh s tup =
  let key = sh.scratch in
  Array.iteri (fun i src -> key.(i) <- tup.(src)) s.plain_src;
  key

let insert_base ?(count = 1) s tup =
  if count < 1 then invalid_arg "Aux_state.insert_base: count must be >= 1";
  check_aggregands s "insert_base" tup;
  let sh = s.shards.(shard_of_base s tup) in
  let hash = hash_base s tup in
  let row = find_row_base s sh ~hash tup in
  if sh.txn <> None then note_known sh (scratch_key sh s tup) row;
  (match row with
  | Some r ->
    Icol.add sh.cnts r count;
    Array.iteri
      (fun i src -> Column.add_cell sh.sums.(i) r tup.(src) count)
      s.sum_src;
    Array.iteri
      (fun i (src, is_min) -> Column.combine_ext sh.exts.(i) r tup.(src) ~is_min)
      s.ext_src
  | None -> append_from_base s sh ~hash tup count);
  sh.total <- sh.total + count

let delete_base ?(count = 1) s tup =
  if count < 1 then invalid_arg "Aux_state.delete_base: count must be >= 1";
  if Array.length s.ext_src > 0 then
    invalid_arg
      (Printf.sprintf
         "Aux_state.delete_base(%s): append-only view holds MIN/MAX columns"
         s.spec.Auxview.name);
  check_aggregands s "delete_base" tup;
  let sh = s.shards.(shard_of_base s tup) in
  let hash = hash_base s tup in
  match find_row_base s sh ~hash tup with
  | None ->
    invalid_arg
      (Printf.sprintf "Aux_state.delete_base(%s): group %s absent"
         s.spec.Auxview.name
         (Tuple.to_string (scratch_key sh s tup)))
  | Some r ->
    let cnt = Icol.get sh.cnts r in
    if cnt < count then
      invalid_arg
        (Printf.sprintf "Aux_state.delete_base(%s): count underflow"
           s.spec.Auxview.name);
    if sh.txn <> None then note_known sh (scratch_key sh s tup) (Some r);
    Icol.set sh.cnts r (cnt - count);
    Array.iteri
      (fun i src -> Column.sub_cell sh.sums.(i) r tup.(src) count)
      s.sum_src;
    sh.total <- sh.total - count;
    if cnt = count then delete_row s sh ~hash r

let copy s =
  let copy_shard (sh : shard) =
    let plains = Array.map Column.copy sh.plains in
    {
      plains;
      sums = Array.map Column.copy sh.sums;
      exts = Array.map Column.copy sh.exts;
      cnts = Icol.copy sh.cnts;
      map = Rowmap.copy sh.map ~hash:(fun r -> key_hash_cols plains r);
      by_key =
        Option.map
          (fun bk ->
            Rowmap.copy bk ~hash:(fun r ->
                Column.hash_cell plains.(s.key_plain_pos) r))
          sh.by_key;
      indexes =
        List.map
          (fun (pos, idx) ->
            let buckets = VH.create (max 16 (VH.length idx.buckets)) in
            VH.iter (fun v b -> VH.add buckets v (Icol.copy b)) idx.buckets;
            (pos, { buckets; pos = Icol.copy idx.pos }))
          sh.indexes;
      total = sh.total;
      txn = None;
      scratch = Array.copy sh.scratch;
    }
  in
  { s with shards = Array.map copy_shard s.shards }

let sum_over_shards s f = Array.fold_left (fun acc sh -> acc + f sh) 0 s.shards
let group_count s = sum_over_shards s nrows

let by_key_size s =
  sum_over_shards s (fun sh ->
      match sh.by_key with Some bk -> Rowmap.length bk | None -> 0)

(* b's by_key mapping for a base key lives in the shard of its *group* key. *)
let by_key_mem b k gkey =
  let sh = b.shards.(shard_of_key b gkey) in
  match sh.by_key with
  | None -> false
  | Some bk -> (
    match
      Rowmap.find bk ~hash:(Value.hash k) ~eq:(fun r ->
          Column.equal_cell sh.plains.(b.key_plain_pos) r k)
    with
    | Some r -> row_matches_key sh r gkey
    | None -> false)

let index_positions s =
  match Array.to_list s.shards with
  | [] -> []
  | sh :: _ -> List.map fst sh.indexes

let index_size s pos =
  sum_over_shards s (fun sh ->
      match List.assoc_opt pos sh.indexes with
      | None -> 0
      | Some idx ->
        VH.fold (fun _ bucket acc -> acc + Icol.length bucket) idx.buckets 0)

let index_mem b pos v key =
  let sh = b.shards.(shard_of_key b key) in
  match List.assoc_opt pos sh.indexes with
  | None -> false
  | Some idx -> (
    match VH.find_opt idx.buckets v with
    | None -> false
    | Some bucket ->
      let n = Icol.length bucket in
      let rec scan i =
        i < n
        && (row_matches_key sh (Icol.get bucket i) key || scan (i + 1))
      in
      scan 0)

let group_cells_equal (sh : shard) r (cnt, (sums : Value.t array), (exts : Value.t array)) =
  Icol.get sh.cnts r = cnt
  && Array.length sums = Array.length sh.sums
  && Array.length exts = Array.length sh.exts
  && Array.for_all
       (fun i -> Column.equal_cell sh.sums.(i) r sums.(i))
       (Array.init (Array.length sums) Fun.id)
  && Array.for_all
       (fun i -> Column.equal_cell sh.exts.(i) r exts.(i))
       (Array.init (Array.length exts) Fun.id)

(* Structural equality of the full resident state: groups (counts, sums,
   extrema), the by-key map, every secondary index (positions and bucket
   membership), and the base-row total. Deliberately independent of the
   shard layout and of physical row order, so a 1-shard serial state
   compares equal to a 16-shard parallel one. Open transactions are
   ignored. *)
let equal a b =
  sum_over_shards a (fun sh -> sh.total) = sum_over_shards b (fun sh -> sh.total)
  && group_count a = group_count b
  && Array.for_all
       (fun sh ->
         let ok = ref true in
         for r = 0 to nrows sh - 1 do
           if !ok then begin
             let key = group_key_at sh r in
             let sh' = b.shards.(shard_of_key b key) in
             match find_row_key sh' key with
             | Some r' ->
               let cnt = Icol.get sh.cnts r in
               let sums =
                 Array.init (Array.length sh.sums) (fun i ->
                     Column.get sh.sums.(i) r)
               in
               let exts =
                 Array.init (Array.length sh.exts) (fun i ->
                     Column.get sh.exts.(i) r)
               in
               if not (group_cells_equal sh' r' (cnt, sums, exts)) then
                 ok := false
             | None -> ok := false
           end
         done;
         !ok)
       a.shards
  && by_key_size a = by_key_size b
  && Array.for_all
       (fun sh ->
         match sh.by_key with
         | None -> true
         | Some bk ->
           let ok = ref true in
           Rowmap.iter bk (fun r ->
               if !ok then begin
                 let k = Column.get sh.plains.(a.key_plain_pos) r in
                 let gkey = group_key_at sh r in
                 if not (by_key_mem b k gkey) then ok := false
               end);
           !ok)
       a.shards
  && (match a.shards.(0).by_key, b.shards.(0).by_key with
     | None, None | Some _, Some _ -> true
     | Some _, None | None, Some _ -> false)
  && index_positions a = index_positions b
  && List.for_all
       (fun pos ->
         index_size a pos = index_size b pos
         && Array.for_all
              (fun sh ->
                match List.assoc_opt pos sh.indexes with
                | None -> true
                | Some idx ->
                  VH.fold
                    (fun v bucket acc ->
                      acc
                      &&
                      let n = Icol.length bucket in
                      let rec scan i =
                        i >= n
                        || index_mem b pos v
                             (group_key_at sh (Icol.get bucket i))
                           && scan (i + 1)
                      in
                      scan 0)
                    idx.buckets true)
              a.shards)
       (index_positions a)

let row_count = group_count
let base_count s = sum_over_shards s (fun sh -> sh.total)

let row_of (sh : shard) r : row = { sh_ = sh; r_ = r; cnt_ = Icol.get sh.cnts r }
let cnt (row : row) = row.cnt_
let plains _s (row : row) = group_key_at row.sh_ row.r_

let sums _s (row : row) =
  Array.init (Array.length row.sh_.sums) (fun i ->
      Column.get row.sh_.sums.(i) row.r_)

let exts _s (row : row) =
  Array.init (Array.length row.sh_.exts) (fun i ->
      Column.get row.sh_.exts.(i) row.r_)

let find_by_key s k =
  if s.key_plain_pos < 0 then
    invalid_arg
      (Printf.sprintf "Aux_state.find_by_key(%s): key not kept"
         s.spec.Auxview.name);
  let n = Array.length s.shards in
  let rec scan i =
    if i >= n then None
    else
      let sh = s.shards.(i) in
      match sh.by_key with
      | None -> None
      | Some bk -> (
        match
          Rowmap.find bk ~hash:(Value.hash k) ~eq:(fun r ->
              Column.equal_cell sh.plains.(s.key_plain_pos) r k)
        with
        | Some r -> Some (row_of sh r)
        | None -> scan (i + 1))
  in
  scan 0

let mem_key s k = find_by_key s k <> None

let iter s f =
  Array.iter
    (fun sh ->
      for r = 0 to nrows sh - 1 do
        f (row_of sh r)
      done)
    s.shards

let rows_with s ~column v =
  match Auxview.plain_position s.spec column with
  | None -> raise Not_found
  | Some pos ->
    Array.fold_left
      (fun acc sh ->
        match List.assoc_opt pos sh.indexes with
        | Some idx -> (
          match VH.find_opt idx.buckets v with
          | None -> acc
          | Some bucket ->
            let acc = ref acc in
            for i = 0 to Icol.length bucket - 1 do
              acc := row_of sh (Icol.get bucket i) :: !acc
            done;
            !acc)
        | None ->
          (* unindexed fallback: scan *)
          let acc = ref acc in
          for r = 0 to nrows sh - 1 do
            if Column.equal_cell sh.plains.(pos) r v then
              acc := row_of sh r :: !acc
          done;
          !acc)
      [] s.shards

let plain_of s (row : row) col =
  match Auxview.plain_position s.spec col with
  | Some i -> Column.get row.sh_.plains.(i) row.r_
  | None -> raise Not_found

let sum_of s (row : row) col =
  match Auxview.sum_position s.spec col with
  | Some i -> Column.get row.sh_.sums.(i) row.r_
  | None -> raise Not_found

let min_of s (row : row) col =
  match Auxview.min_position s.spec col with
  | Some i -> Column.get row.sh_.exts.(i) row.r_
  | None -> raise Not_found

let max_of s (row : row) col =
  match Auxview.max_position s.spec col with
  | Some i -> Column.get row.sh_.exts.(i) row.r_
  | None -> raise Not_found

let to_relation s =
  let rel = Relation.create ~size_hint:(group_count s) () in
  Array.iter
    (fun (sh : shard) ->
      for r = 0 to nrows sh - 1 do
        let gi = ref 0 and si = ref 0 and ei = ref 0 in
        let cell (_, def) =
          match def with
          | Auxview.Plain _ ->
            let v = Column.get sh.plains.(!gi) r in
            incr gi;
            v
          | Auxview.Sum_of _ ->
            let v = Column.get sh.sums.(!si) r in
            incr si;
            v
          | Auxview.Min_of _ | Auxview.Max_of _ ->
            let v = Column.get sh.exts.(!ei) r in
            incr ei;
            v
          | Auxview.Count_star -> Value.Int (Icol.get sh.cnts r)
        in
        let row = Array.of_list (List.map cell s.spec.Auxview.columns) in
        if s.spec.Auxview.compressed then Relation.insert rel row
        else Relation.insert ~count:(Icol.get sh.cnts r) rel row
      done)
    s.shards;
  rel

(* --- byte accounting ----------------------------------------------------- *)

let fold_columns s f acc =
  Array.fold_left
    (fun acc (sh : shard) ->
      let acc = Array.fold_left f acc sh.plains in
      let acc = Array.fold_left f acc sh.sums in
      Array.fold_left f acc sh.exts)
    acc s.shards

let offheap_bytes s =
  fold_columns s (fun acc c -> acc + Column.offheap_bytes c) 0

(* Per-entry estimate for a stdlib Hashtbl bucket (Cons: 4 words). *)
let table_entry_bytes = 32

let byte_size s =
  let cells = fold_columns s (fun acc c -> acc + Column.byte_size c) 0 in
  let structures =
    Array.fold_left
      (fun acc (sh : shard) ->
        acc + Icol.byte_size sh.cnts + Rowmap.byte_size sh.map
        + (match sh.by_key with Some bk -> Rowmap.byte_size bk | None -> 0)
        + List.fold_left
            (fun acc (_, idx) ->
              VH.fold
                (fun _ bucket acc ->
                  acc + Icol.byte_size bucket + table_entry_bytes)
                idx.buckets
                (acc + Icol.byte_size idx.pos))
            0 sh.indexes)
      0 s.shards
  in
  (* dictionaries, deduplicated by physical identity: shards of one state
     share per-column dictionaries (and pooled states share across states —
     those are charged once per state here, which over-reports slightly) *)
  let dicts =
    fold_columns s
      (fun acc c ->
        match Column.dict c with
        | Some d when not (List.memq d acc) -> d :: acc
        | Some _ | None -> acc)
      []
  in
  cells + structures + List.fold_left (fun acc d -> acc + Dict.byte_size d) 0 dicts
