module Database = Relational.Database
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Delta = Relational.Delta
module View = Algebra.View
module Aggregate = Algebra.Aggregate
module Select_item = Algebra.Select_item
module Derive = Mindetail.Derive

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  view : View.t;
  root : string;
  is_old : Tuple.t -> bool;
  old_engine : Engine.t;
  current_engine : Engine.t;
  group_positions : int array;  (** select positions of the group items *)
}

exception Unsupported of string

let check_mergeable (v : View.t) =
  if v.View.having <> [] then
    raise
      (Unsupported
         "partitioned maintenance cannot filter partial views with HAVING");
  List.iter
    (fun (agg : Aggregate.t) ->
      if agg.Aggregate.distinct then
        raise
          (Unsupported
             (Printf.sprintf
                "partitioned maintenance cannot merge DISTINCT aggregate %s"
                agg.Aggregate.alias));
      if agg.Aggregate.func = Aggregate.Avg then
        raise
          (Unsupported
             (Printf.sprintf
                "partitioned maintenance cannot merge AVG %s: store SUM and \
                 COUNT columns instead"
                agg.Aggregate.alias)))
    (View.aggregates v)

(* A replica of [db] holding only the root tuples selected by [keep]. *)
let partition_db db root keep =
  let replica = Database.copy db in
  let victims =
    Database.fold replica root
      (fun tup acc -> if keep tup then acc else tup :: acc)
      []
  in
  List.iter (Database.delete replica root) victims;
  replica

let init db (v : View.t) ~is_old =
  View.validate db v;
  check_mergeable v;
  let root = View.root v in
  let old_db = partition_db db root is_old in
  let current_db = partition_db db root (fun tup -> not (is_old tup)) in
  {
    view = v;
    root;
    is_old;
    old_engine = Engine.init old_db (Derive.derive_with Derive.append_only_options old_db v);
    current_engine = Engine.init current_db (Derive.derive current_db v);
    group_positions =
      List.filteri
        (fun _ item ->
          match item with Select_item.Group _ -> true | Select_item.Agg _ -> false)
        v.View.select
      |> List.map (fun item ->
             let rec index i = function
               | [] -> assert false
               | x :: rest -> if x == item then i else index (i + 1) rest
             in
             index 0 v.View.select)
      |> Array.of_list;
  }

let apply t (d : Delta.t) =
  if String.equal d.Delta.table t.root then begin
    let target before_image =
      if t.is_old before_image then t.old_engine else t.current_engine
    in
    match d.Delta.change with
    | Delta.Insert tup -> Engine.apply (target tup) d
    | Delta.Delete tup -> Engine.apply (target tup) d
    | Delta.Update { before; after } ->
      if t.is_old before <> t.is_old after then
        raise
          (Engine.Invariant
             "partitioned maintenance: update moves a root tuple across the \
              old/current boundary")
      else Engine.apply (target before) d
  end
  else begin
    Engine.apply t.old_engine d;
    Engine.apply t.current_engine d
  end

let apply_batch ?parallel t deltas =
  match parallel with
  | None -> List.iter (apply t) deltas
  | Some pool ->
    (* pre-route every delta to its side (dimension changes go to both) so
       each engine sees one batch and can take the compacted parallel fast
       path; the boundary check keeps the serial path's verdict *)
    let olds = ref [] and currents = ref [] in
    List.iter
      (fun (d : Delta.t) ->
        if String.equal d.Delta.table t.root then begin
          match d.Delta.change with
          | Delta.Insert tup | Delta.Delete tup ->
            if t.is_old tup then olds := d :: !olds
            else currents := d :: !currents
          | Delta.Update { before; after } ->
            if t.is_old before <> t.is_old after then
              raise
                (Engine.Invariant
                   "partitioned maintenance: update moves a root tuple \
                    across the old/current boundary")
            else if t.is_old before then olds := d :: !olds
            else currents := d :: !currents
        end
        else begin
          olds := d :: !olds;
          currents := d :: !currents
        end)
      deltas;
    Engine.apply_batch ~parallel:pool t.old_engine (List.rev !olds);
    Engine.apply_batch ~parallel:pool t.current_engine (List.rev !currents)

let copy t =
  {
    t with
    old_engine = Engine.copy t.old_engine;
    current_engine = Engine.copy t.current_engine;
  }

let equal_state a b =
  Engine.equal_state a.old_engine b.old_engine
  && Engine.equal_state a.current_engine b.current_engine

let in_txn t = Engine.in_txn t.current_engine

let begin_txn t =
  Engine.begin_txn t.old_engine;
  Engine.begin_txn t.current_engine

let commit t =
  Engine.commit t.old_engine;
  Engine.commit t.current_engine

let rollback t =
  Engine.rollback t.old_engine;
  Engine.rollback t.current_engine

let age_out t facts =
  List.iter
    (fun tup ->
      Engine.apply t.current_engine (Delta.delete t.root tup);
      Engine.apply t.old_engine (Delta.insert t.root tup))
    facts

(* Distributive merge of two partial view results. *)
let merge_rows (v : View.t) group_positions a b =
  let key tup = Tuple.project tup group_positions in
  let acc : Tuple.t TH.t = TH.create 64 in
  let combine existing incoming =
    let out = Array.copy existing in
    List.iteri
      (fun idx item ->
        match item with
        | Select_item.Group _ -> ()
        | Select_item.Agg agg ->
          out.(idx) <-
            (match agg.Aggregate.func with
            | Aggregate.Count | Aggregate.Count_star | Aggregate.Sum ->
              Value.add existing.(idx) incoming.(idx)
            | Aggregate.Min ->
              if Value.compare incoming.(idx) existing.(idx) < 0 then
                incoming.(idx)
              else existing.(idx)
            | Aggregate.Max ->
              if Value.compare incoming.(idx) existing.(idx) > 0 then
                incoming.(idx)
              else existing.(idx)
            | Aggregate.Avg -> assert false (* rejected at init *)))
      v.View.select;
    out
  in
  let feed rel =
    Relation.iter
      (fun tup _ ->
        let k = key tup in
        match TH.find_opt acc k with
        | None -> TH.add acc k tup
        | Some existing -> TH.replace acc k (combine existing tup))
      rel
  in
  feed a;
  feed b;
  let out = Relation.create ~size_hint:(TH.length acc) () in
  TH.iter (fun _ tup -> Relation.insert out tup) acc;
  out

let view_contents t =
  merge_rows t.view t.group_positions
    (Engine.view_contents t.old_engine)
    (Engine.view_contents t.current_engine)

let detail_profile t =
  List.map
    (fun (n, r, f) -> ("old/" ^ n, r, f))
    (match Engine.storage_profile t.old_engine with _ :: aux -> aux | [] -> [])
  @ List.map
      (fun (n, r, f) -> ("current/" ^ n, r, f))
      (match Engine.storage_profile t.current_engine with
      | _ :: aux -> aux
      | [] -> [])

let measured_bytes t =
  List.map (fun (n, b) -> ("old/" ^ n, b)) (Engine.measured_bytes t.old_engine)
  @ List.map
      (fun (n, b) -> ("current/" ^ n, b))
      (Engine.measured_bytes t.current_engine)

let offheap_bytes t =
  Engine.offheap_bytes t.old_engine + Engine.offheap_bytes t.current_engine
