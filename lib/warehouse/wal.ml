(* Write-ahead log: length-prefixed, CRC-checksummed records (see wal.mli). *)

type record =
  | Batch of { seq : int; deltas : Relational.Delta.t list }
  | Abort of { seq : int }

let seq_of = function Batch { seq; _ } -> seq | Abort { seq } -> seq

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let magic = "minview-wal/1\n"

(* --- framing ----------------------------------------------------------- *)

let frame record =
  let payload = Marshal.to_string record [] in
  let buf = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_int32_le buf (Int32.of_int (Checksum.string payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

let u32 s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

(* Read one record; [None] marks a torn or corrupt tail (incomplete frame
   header, truncated payload, checksum mismatch, unparseable payload). *)
let read_record ic remaining =
  if remaining < 8 then None
  else
    let header = really_input_string ic 8 in
    let len = u32 header 0 and crc = u32 header 4 in
    if len > remaining - 8 then None
    else
      let payload = really_input_string ic len in
      if Checksum.string payload <> crc then None
      else
        match (Marshal.from_string payload 0 : record) with
        | r -> Some r
        | exception _ -> None

(* --- reading ----------------------------------------------------------- *)

let read_all path =
  if not (Sys.file_exists path) then ([], true)
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let total = in_channel_length ic in
        if total < String.length magic then corrupt "%s: missing header" path
        else begin
          let header = really_input_string ic (String.length magic) in
          if not (String.equal header magic) then
            corrupt "%s: not a WAL file" path;
          let rec loop acc =
            let remaining = total - pos_in ic in
            if remaining = 0 then (List.rev acc, true)
            else
              match read_record ic remaining with
              | Some r -> loop (r :: acc)
              | None -> (List.rev acc, false)
          in
          loop []
        end)

(* --- writing ----------------------------------------------------------- *)

module Obs = struct
  let appends =
    Telemetry.Counter.make ~help:"WAL records appended"
      "minview_wal_appends_total"

  let syncs =
    Telemetry.Counter.make ~help:"WAL durability barriers (fsync)"
      "minview_wal_syncs_total"

  let bytes =
    Telemetry.Counter.make ~help:"WAL frame bytes pushed to the OS"
      "minview_wal_bytes_written_total"

  let fsync_seconds =
    Telemetry.Histogram.make ~help:"fsync latency of WAL durability barriers"
      "minview_wal_fsync_seconds"

  let group_frames =
    Telemetry.Histogram.make ~lo:1. ~factor:2. ~buckets:12
      ~help:"Records made durable per group commit (burst size)"
      "minview_wal_group_commit_frames"
end

type writer = {
  path : string;
  mutable oc : out_channel;
  (* frames accepted with [append ~sync:false] but not yet written — a group
     commit pushes the whole buffer to the OS in one write and one fsync *)
  pending : Buffer.t;
  mutable staged : int;  (* records in [pending] — the group-commit burst *)
}

(* Make a rename inside [path]'s directory durable: without the directory
   fsync, a power cut can resurrect the replaced file. Best-effort — some
   filesystems refuse directory fds or directory fsync. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_file path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      List.iter (fun r -> output_string oc (frame r)) records;
      flush oc;
      (* the content must be on disk before the rename publishes it *)
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Sys.rename tmp path

let open_append path =
  let records, clean = read_all path in
  (* a torn tail (or a missing file) is repaired by atomically rewriting the
     valid prefix; appends then always start on a record boundary *)
  if not (clean && Sys.file_exists path) then begin
    write_file path records;
    fsync_dir path
  end;
  {
    path;
    oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path;
    pending = Buffer.create 256;
    staged = 0;
  }

let fsync_channel oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let sync w =
  if Buffer.length w.pending > 0 then begin
    let bytes = Buffer.contents w.pending in
    Buffer.clear w.pending;
    Telemetry.Histogram.observe Obs.group_frames (float_of_int w.staged);
    w.staged <- 0;
    Telemetry.Counter.inc Obs.bytes (String.length bytes);
    (* the crash point models a power cut mid-write: only a prefix of the
       group's frames reached the OS, so the log ends in a torn record that
       recovery must drop. Splitting the write in two halves (second half
       only after the crash point) makes that state reachable from tests. *)
    let half = String.length bytes / 2 in
    output_string w.oc (String.sub bytes 0 half);
    flush w.oc;
    Maintenance.Faults.hit Maintenance.Faults.Mid_group_commit;
    output_string w.oc (String.sub bytes half (String.length bytes - half));
    flush w.oc
  end;
  (* the commit point: the records must survive a power cut, not just the
     process, before any engine applies them *)
  Telemetry.Counter.one Obs.syncs;
  Telemetry.Histogram.time Obs.fsync_seconds (fun () -> fsync_channel w.oc)

let append ?sync:(do_sync = true) w record =
  Buffer.add_string w.pending (frame record);
  w.staged <- w.staged + 1;
  Telemetry.Counter.one Obs.appends;
  if do_sync then sync w

let truncate w =
  (* anything still buffered belongs to batches the snapshot already
     contains (the warehouse syncs before applying) — drop, don't replay *)
  Buffer.clear w.pending;
  w.staged <- 0;
  close_out_noerr w.oc;
  write_file w.path [];
  (* the empty log is renamed into place, but until the directory entry is
     synced a crash can bring the old log back — replay must converge then *)
  Maintenance.Faults.hit Maintenance.Faults.After_truncate_rename;
  fsync_dir w.path;
  w.oc <- open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 w.path

let close w =
  (* best-effort: push any un-synced frames out rather than losing them *)
  (try sync w with _ -> ());
  close_out_noerr w.oc
