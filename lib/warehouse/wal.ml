(* Write-ahead log: length-prefixed, CRC-checksummed records (see wal.mli). *)

type record =
  | Batch of { seq : int; deltas : Relational.Delta.t list }
  | Abort of { seq : int }

let seq_of = function Batch { seq; _ } -> seq | Abort { seq } -> seq

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let magic = "minview-wal/1\n"

(* --- framing ----------------------------------------------------------- *)

let frame record =
  let payload = Marshal.to_string record [] in
  let buf = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_int32_le buf (Int32.of_int (Checksum.string payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

let u32 s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

(* Read one record; [None] marks a torn or corrupt tail (incomplete frame
   header, truncated payload, checksum mismatch, unparseable payload). *)
let read_record ic remaining =
  if remaining < 8 then None
  else
    let header = really_input_string ic 8 in
    let len = u32 header 0 and crc = u32 header 4 in
    if len > remaining - 8 then None
    else
      let payload = really_input_string ic len in
      if Checksum.string payload <> crc then None
      else
        match (Marshal.from_string payload 0 : record) with
        | r -> Some r
        | exception _ -> None

(* --- reading ----------------------------------------------------------- *)

let read_all path =
  if not (Sys.file_exists path) then ([], true)
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let total = in_channel_length ic in
        if total < String.length magic then corrupt "%s: missing header" path
        else begin
          let header = really_input_string ic (String.length magic) in
          if not (String.equal header magic) then
            corrupt "%s: not a WAL file" path;
          let rec loop acc =
            let remaining = total - pos_in ic in
            if remaining = 0 then (List.rev acc, true)
            else
              match read_record ic remaining with
              | Some r -> loop (r :: acc)
              | None -> (List.rev acc, false)
          in
          loop []
        end)

(* --- writing ----------------------------------------------------------- *)

type writer = { path : string; mutable oc : out_channel }

(* Make a rename inside [path]'s directory durable: without the directory
   fsync, a power cut can resurrect the replaced file. Best-effort — some
   filesystems refuse directory fds or directory fsync. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_file path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      List.iter (fun r -> output_string oc (frame r)) records;
      flush oc;
      (* the content must be on disk before the rename publishes it *)
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Sys.rename tmp path

let open_append path =
  let records, clean = read_all path in
  (* a torn tail (or a missing file) is repaired by atomically rewriting the
     valid prefix; appends then always start on a record boundary *)
  if not (clean && Sys.file_exists path) then begin
    write_file path records;
    fsync_dir path
  end;
  { path; oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path }

let append w record =
  output_string w.oc (frame record);
  (* flush per record: the record must be durable before any engine applies
     it, and a stale buffered channel must never hold undurable bytes *)
  flush w.oc

let truncate w =
  close_out_noerr w.oc;
  write_file w.path [];
  (* the empty log is renamed into place, but until the directory entry is
     synced a crash can bring the old log back — replay must converge then *)
  Maintenance.Faults.hit Maintenance.Faults.After_truncate_rename;
  fsync_dir w.path;
  w.oc <- open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 w.path

let close w = close_out_noerr w.oc
