(* Write-ahead log: length-prefixed, CRC-checksummed records (see wal.mli). *)

type record =
  | Batch of { seq : int; deltas : Relational.Delta.t list }
  | Abort of { seq : int }

let seq_of = function Batch { seq; _ } -> seq | Abort { seq } -> seq

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt

let magic = "minview-wal/1\n"

(* --- framing ----------------------------------------------------------- *)

let frame record =
  let payload = Marshal.to_string record [] in
  let buf = Buffer.create (String.length payload + 8) in
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_int32_le buf (Int32.of_int (Checksum.string payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

let u32 s off = Int32.to_int (String.get_int32_le s off) land 0xffffffff

(* --- damage classification --------------------------------------------- *)

type damage_kind = Torn_write | Bit_flip

let damage_kind_label = function
  | Torn_write -> "torn-write"
  | Bit_flip -> "bit-flip"

type damage = {
  d_offset : int;  (** where the undecodable tail starts *)
  d_bytes : int;  (** bytes from there to end of file *)
  d_kind : damage_kind;
  d_reason : string;
}

type scan = {
  s_records : record list;
  s_valid_bytes : int;  (** header + every decodable record *)
  s_damage : damage option;
}

(* Read one record; [Error] describes why the tail starting at the current
   frame is undecodable. A file that simply ends mid-frame is a torn write
   (the crash artifact of an interrupted append); a full-length frame whose
   checksum or payload is wrong is mid-stream bit rot. Frame boundaries
   cannot be resynchronized past either (records carry no per-frame magic),
   so everything from the damage offset belongs to the quarantined tail. *)
let read_record ic remaining =
  if remaining < 8 then
    Error (Torn_write, Printf.sprintf "incomplete frame header (%d bytes)" remaining)
  else
    let header = really_input_string ic 8 in
    let len = u32 header 0 and crc = u32 header 4 in
    if len > remaining - 8 then
      Error
        ( Torn_write,
          Printf.sprintf "truncated payload (%d of %d bytes)" (remaining - 8)
            len )
    else
      let payload = really_input_string ic len in
      if Checksum.string payload <> crc then
        Error (Bit_flip, "payload checksum mismatch")
      else
        match (Marshal.from_string payload 0 : record) with
        | r -> Ok r
        | exception _ -> Error (Bit_flip, "checksummed payload is undecodable")

(* --- reading ----------------------------------------------------------- *)

let scan_channel path ic =
  let total = in_channel_length ic in
  if total < String.length magic then corrupt "%s: missing header" path
  else begin
    let header = really_input_string ic (String.length magic) in
    if not (String.equal header magic) then corrupt "%s: not a WAL file" path;
    let rec loop acc =
      let at = pos_in ic in
      let remaining = total - at in
      if remaining = 0 then
        { s_records = List.rev acc; s_valid_bytes = at; s_damage = None }
      else
        match read_record ic remaining with
        | Ok r -> loop (r :: acc)
        | Error (kind, reason) ->
          {
            s_records = List.rev acc;
            s_valid_bytes = at;
            s_damage =
              Some
                {
                  d_offset = at;
                  d_bytes = remaining;
                  d_kind = kind;
                  d_reason = reason;
                };
          }
    in
    loop []
  end

let scan path =
  if not (Sys.file_exists path) then
    { s_records = []; s_valid_bytes = 0; s_damage = None }
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> scan_channel path ic)

let read_all path =
  let s = scan path in
  (s.s_records, s.s_damage = None)

(* --- writing ----------------------------------------------------------- *)

module Obs = struct
  let appends =
    Telemetry.Counter.make ~help:"WAL records appended"
      "minview_wal_appends_total"

  let syncs =
    Telemetry.Counter.make ~help:"WAL durability barriers (fsync)"
      "minview_wal_syncs_total"

  let bytes =
    Telemetry.Counter.make ~help:"WAL frame bytes pushed to the OS"
      "minview_wal_bytes_written_total"

  let fsync_seconds =
    Telemetry.Histogram.make ~help:"fsync latency of WAL durability barriers"
      "minview_wal_fsync_seconds"

  let group_frames =
    Telemetry.Histogram.make ~lo:1. ~factor:2. ~buckets:12
      ~help:"Records made durable per group commit (burst size)"
      "minview_wal_group_commit_frames"

  (* registered lazily: salvage is a repair-path event *)
  let salvaged kind =
    Telemetry.Counter.make
      ~labels:[ ("kind", damage_kind_label kind) ]
      ~help:"WAL tails quarantined and salvaged, by damage kind"
      "minview_wal_salvage_total"
end

type writer = {
  path : string;
  mutable oc : out_channel;
  (* frames accepted with [append ~sync:false] but not yet written — a group
     commit pushes the whole buffer to the OS in one write and one fsync *)
  pending : Buffer.t;
  mutable staged : int;  (* records in [pending] — the group-commit burst *)
}

(* Make a rename inside [path]'s directory durable: without the directory
   fsync, a power cut can resurrect the replaced file. Best-effort — some
   filesystems refuse directory fds or directory fsync. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_file path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      List.iter (fun r -> output_string oc (frame r)) records;
      flush oc;
      (* the content must be on disk before the rename publishes it *)
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
  Sys.rename tmp path

(* --- salvage ------------------------------------------------------------ *)

let quarantine_path path = path ^ ".quarantine"

let read_span path ~offset ~bytes =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic offset;
      really_input_string ic bytes)

(* Quarantine the undecodable tail beside the log, then atomically rewrite
   the valid prefix. The quarantine file is written and fsynced before the
   prefix rewrite discards the bad bytes, so no evidence is ever lost; both
   renames are made durable with a directory fsync. *)
let salvage path =
  let s = scan path in
  match s.s_damage with
  | None -> (s, None)
  | Some d ->
    let tail = read_span path ~offset:d.d_offset ~bytes:d.d_bytes in
    let qpath = quarantine_path path in
    let qtmp = qpath ^ ".tmp" in
    let oc = open_out_bin qtmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc tail;
        flush oc;
        try Unix.fsync (Unix.descr_of_out_channel oc)
        with Unix.Unix_error _ -> ());
    Sys.rename qtmp qpath;
    fsync_dir qpath;
    write_file path s.s_records;
    fsync_dir path;
    Telemetry.Counter.one (Obs.salvaged d.d_kind);
    (s, Some qpath)

let reopen path =
  open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path

let open_append path =
  let s =
    if Sys.file_exists path then scan path
    else begin
      (* create the log so appends always start on a record boundary *)
      write_file path [];
      fsync_dir path;
      { s_records = []; s_valid_bytes = 0; s_damage = None }
    end
  in
  (* a damaged tail is repaired by quarantining the bad bytes and atomically
     rewriting the valid prefix — see [salvage] *)
  (match s.s_damage with Some _ -> ignore (salvage path) | None -> ());
  { path; oc = reopen path; pending = Buffer.create 256; staged = 0 }

let fsync_channel oc =
  try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ()

let sync w =
  if Buffer.length w.pending > 0 then begin
    let bytes = Buffer.contents w.pending in
    Buffer.clear w.pending;
    Telemetry.Histogram.observe Obs.group_frames (float_of_int w.staged);
    w.staged <- 0;
    Telemetry.Counter.inc Obs.bytes (String.length bytes);
    (* the crash point models a power cut mid-write: only a prefix of the
       group's frames reached the OS, so the log ends in a torn record that
       recovery must drop. Splitting the write in two halves (second half
       only after the crash point) makes that state reachable from tests. *)
    let half = String.length bytes / 2 in
    output_string w.oc (String.sub bytes 0 half);
    flush w.oc;
    Maintenance.Faults.hit Maintenance.Faults.Mid_group_commit;
    output_string w.oc (String.sub bytes half (String.length bytes - half));
    flush w.oc
  end;
  (* the commit point: the records must survive a power cut, not just the
     process, before any engine applies them. Wal_fsync sits right at the
     barrier — in [Fail] mode the frames have reached the OS but the
     durability acknowledgement is lost, the transient state the ingest
     retry policy must absorb by issuing the barrier again. *)
  Maintenance.Faults.hit Maintenance.Faults.Wal_fsync;
  Telemetry.Counter.one Obs.syncs;
  Telemetry.Histogram.time Obs.fsync_seconds (fun () -> fsync_channel w.oc)

let append ?sync:(do_sync = true) w record =
  Buffer.add_string w.pending (frame record);
  w.staged <- w.staged + 1;
  Telemetry.Counter.one Obs.appends;
  if do_sync then sync w

let truncate w =
  (* anything still buffered belongs to batches the snapshot already
     contains (the warehouse syncs before applying) — drop, don't replay *)
  Buffer.clear w.pending;
  w.staged <- 0;
  close_out_noerr w.oc;
  write_file w.path [];
  (* the empty log is renamed into place, but until the directory entry is
     synced a crash can bring the old log back — replay must converge then *)
  Maintenance.Faults.hit Maintenance.Faults.After_truncate_rename;
  fsync_dir w.path;
  w.oc <- reopen w.path

let rotate w ~to_path =
  (* like [truncate], buffered-but-unsynced frames describe batches the
     just-taken checkpoint already contains — drop them *)
  Buffer.clear w.pending;
  w.staged <- 0;
  close_out_noerr w.oc;
  Sys.rename w.path to_path;
  fsync_dir to_path;
  if Filename.dirname to_path <> Filename.dirname w.path then
    fsync_dir w.path;
  write_file w.path [];
  (* same exposure as a truncate: the fresh log was renamed into place but
     a crash before the directory fsync may resurrect the old state *)
  Maintenance.Faults.hit Maintenance.Faults.After_truncate_rename;
  fsync_dir w.path;
  w.oc <- reopen w.path

let close w =
  (* best-effort: push any un-synced frames out rather than losing them *)
  (try sync w with _ -> ());
  close_out_noerr w.oc
