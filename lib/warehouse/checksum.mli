(** CRC-32 (IEEE, as in zip/png) integrity checksums for the durability
    layer: WAL records and snapshot payloads are checksum-gated before they
    are unmarshalled. *)

(** [string s] is the CRC-32 of [s], in [0, 0xffffffff]. *)
val string : string -> int
