(** The warehouse's write-ahead log.

    Accepted delta batches are appended (and flushed) here {e before} any
    maintenance engine applies them; the append is the commit point. After a
    crash, {!read_all} recovers the committed batches and {!Warehouse.recover}
    replays the ones newer than the latest snapshot.

    On-disk format: a ["minview-wal/1\n"] header followed by records, each
    framed as [u32-le payload length], [u32-le CRC-32 of payload], payload
    ([Marshal]ed {!record}). A torn final record — short frame, truncated
    payload, checksum mismatch — is detected and dropped; {!open_append}
    repairs the file by atomically rewriting the valid prefix. *)

type record =
  | Batch of { seq : int; deltas : Relational.Delta.t list }
      (** batch [seq] was validated and committed *)
  | Abort of { seq : int }
      (** batch [seq] failed mid-apply after commit and was rolled back;
          replay must skip its [Batch] record *)

val seq_of : record -> int

(** A structurally damaged log (bad header) — distinct from a torn tail,
    which is tolerated. *)
exception Corrupt of string

(** [read_all path] returns the decodable records in order and whether the
    file ended cleanly ([false] = torn tail dropped). A missing file reads
    as [([], true)].
    @raise Corrupt if the file exists but is not a WAL. *)
val read_all : string -> record list * bool

type writer

(** Open for appending, creating the file (or repairing a torn tail) as
    needed. @raise Corrupt as {!read_all}. *)
val open_append : string -> writer

(** [append ?sync w r] stages one record. With [~sync:true] (the default)
    the record — and anything staged before it — is immediately written and
    fsynced: once [append] returns, the record survives a power cut. With
    [~sync:false] the record only joins the writer's in-memory buffer;
    nothing is durable (or even visible to {!read_all}) until the next
    {!sync}. Group commit: stage every batch of an ingest burst with
    [~sync:false], then pay one write and one fsync in a single {!sync}. *)
val append : ?sync:bool -> writer -> record -> unit

(** Write all buffered records to the OS in one write and fsync the log.
    The durability barrier of a group commit (crash point:
    [Maintenance.Faults.Mid_group_commit] — a power cut mid-write leaves a
    torn tail that {!read_all} drops). A no-op buffer still fsyncs, so
    [sync] is also a plain durability barrier. *)
val sync : writer -> unit

(** Atomically reset the log to empty (after a checkpoint made its records
    redundant). Buffered-but-unsynced records are dropped — they describe
    batches the checkpoint already contains. The replacement file is fsynced
    before the rename and the containing directory after it, so the reset
    cannot be undone by a crash (crash point:
    [Maintenance.Faults.After_truncate_rename]). *)
val truncate : writer -> unit

(** Flushes buffered records (best-effort) and closes the file. *)
val close : writer -> unit

(** [fsync_dir path] fsyncs the directory containing [path], making a
    completed rename within it durable. Best-effort: errors from filesystems
    that refuse directory fsync are swallowed. *)
val fsync_dir : string -> unit
