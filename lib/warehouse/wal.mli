(** The warehouse's write-ahead log.

    Accepted delta batches are appended (and flushed) here {e before} any
    maintenance engine applies them; the append is the commit point. After a
    crash, {!read_all} recovers the committed batches and {!Warehouse.recover}
    replays the ones newer than the latest snapshot.

    On-disk format: a ["minview-wal/1\n"] header followed by records, each
    framed as [u32-le payload length], [u32-le CRC-32 of payload], payload
    ([Marshal]ed {!record}). An undecodable tail is detected, classified
    ({!damage_kind}) and — on the repair paths — quarantined next to the log
    ({!salvage}); {!open_append} repairs the file by atomically rewriting the
    valid prefix. *)

type record =
  | Batch of { seq : int; deltas : Relational.Delta.t list }
      (** batch [seq] was validated and committed *)
  | Abort of { seq : int }
      (** batch [seq] failed mid-apply after commit and was rolled back;
          replay must skip its [Batch] record *)

val seq_of : record -> int

(** A structurally damaged log (bad header) — distinct from a damaged tail,
    which is tolerated and salvageable. *)
exception Corrupt of string

(** {2 Damage classification}

    Record frames carry no per-frame magic, so boundaries cannot be
    resynchronized past a bad frame: everything from the first undecodable
    byte is one quarantined tail. What distinguishes the two kinds is {e how}
    that tail fails to decode. *)

type damage_kind =
  | Torn_write
      (** the file simply ends mid-frame (incomplete header or truncated
          payload) — the artifact of a crash during an append; the expected
          state after a power cut, repaired automatically on reopen *)
  | Bit_flip
      (** a full-length frame whose checksum or payload is wrong — mid-stream
          bit rot, which can hide committed batches after it; surfaced to the
          operator ([minview fsck] / [minview repair]) rather than silently
          dropped on the recovery path *)

(** Stable kebab-case labels ("torn-write", "bit-flip"). *)
val damage_kind_label : damage_kind -> string

type damage = {
  d_offset : int;  (** where the undecodable tail starts *)
  d_bytes : int;  (** bytes from there to end of file *)
  d_kind : damage_kind;
  d_reason : string;  (** human-readable: what failed to decode *)
}

type scan = {
  s_records : record list;  (** the decodable prefix, in order *)
  s_valid_bytes : int;  (** header plus every decodable record *)
  s_damage : damage option;  (** [None] = the file ended cleanly *)
}

(** [scan path] reads the decodable prefix and classifies whatever follows
    it. A missing file scans as empty and clean.
    @raise Corrupt if the file exists but is not a WAL. *)
val scan : string -> scan

(** [read_all path] returns the decodable records in order and whether the
    file ended cleanly ([false] = damaged tail present). A missing file reads
    as [([], true)].
    @raise Corrupt as {!scan}. *)
val read_all : string -> record list * bool

(** [quarantine_path path] is where {!salvage} puts the bad tail
    ([path ^ ".quarantine"]). *)
val quarantine_path : string -> string

(** [salvage path] repairs a damaged log: the undecodable tail is copied to
    {!quarantine_path} (fsynced before the log is touched, so the evidence
    survives), the valid prefix is atomically rewritten in place, and both
    renames are made durable with directory fsyncs. Returns the scan and the
    quarantine path ([None] if the log was already clean and nothing was
    written). Counted as [minview_wal_salvage_total{kind}].
    @raise Corrupt as {!scan}. *)
val salvage : string -> scan * string option

type writer

(** Open for appending, creating the file (or salvaging a damaged tail, with
    quarantine) as needed. @raise Corrupt as {!scan}. *)
val open_append : string -> writer

(** [append ?sync w r] stages one record. With [~sync:true] (the default)
    the record — and anything staged before it — is immediately written and
    fsynced: once [append] returns, the record survives a power cut. With
    [~sync:false] the record only joins the writer's in-memory buffer;
    nothing is durable (or even visible to {!read_all}) until the next
    {!sync}. Group commit: stage every batch of an ingest burst with
    [~sync:false], then pay one write and one fsync in a single {!sync}. *)
val append : ?sync:bool -> writer -> record -> unit

(** Write all buffered records to the OS in one write and fsync the log.
    The durability barrier of a group commit (crash points:
    [Maintenance.Faults.Mid_group_commit] — a power cut mid-write leaves a
    torn tail that recovery salvages — and [Maintenance.Faults.Wal_fsync] —
    in [Fail] mode, a transient fsync failure the ingest retry policy
    absorbs by calling [sync] again). A no-op buffer still fsyncs, so [sync]
    is also a plain durability barrier. *)
val sync : writer -> unit

(** Atomically reset the log to empty (after a checkpoint made its records
    redundant). Buffered-but-unsynced records are dropped — they describe
    batches the checkpoint already contains. The replacement file is fsynced
    before the rename and the containing directory after it, so the reset
    cannot be undone by a crash (crash point:
    [Maintenance.Faults.After_truncate_rename]). *)
val truncate : writer -> unit

(** [rotate w ~to_path] archives the live log: the current file is renamed
    to [to_path] (directory-fsynced), a fresh empty log is atomically
    created in its place, and the writer continues on it. The checkpoint
    generation chain uses this instead of {!truncate} so the replaced log's
    records stay replayable from the archive. Buffered-but-unsynced records
    are dropped as in {!truncate}; the same
    [Maintenance.Faults.After_truncate_rename] crash point covers the fresh
    log's publication. *)
val rotate : writer -> to_path:string -> unit

(** Flushes buffered records (best-effort) and closes the file. *)
val close : writer -> unit

(** [fsync_dir path] fsyncs the directory containing [path], making a
    completed rename within it durable. Best-effort: errors from filesystems
    that refuse directory fsync are swallowed. *)
val fsync_dir : string -> unit
