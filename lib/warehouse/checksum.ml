(* CRC-32 (IEEE 802.3, reflected, polynomial 0xedb88320) over strings.
   Used to detect torn writes and bit rot in WAL records and snapshots
   before any byte reaches [Marshal.from_string] — unmarshalling corrupt
   input is undefined behaviour, so every payload is checksum-gated. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let string s =
  let table = Lazy.force table in
  let crc = ref 0xffffffff in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xffffffff
