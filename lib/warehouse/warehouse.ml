module Storage = struct
  type model = { bytes_per_field : int }

  let paper_model = { bytes_per_field = 4 }

  let bytes m ~rows ~fields = rows * fields * m.bytes_per_field

  let show_bytes n =
    let f = float_of_int n in
    let kib = 1024. in
    if f >= kib ** 3. then Printf.sprintf "%.1f GB" (f /. (kib ** 3.))
    else if f >= kib ** 2. then Printf.sprintf "%.1f MB" (f /. (kib ** 2.))
    else if f >= kib then Printf.sprintf "%.1f KB" (f /. kib)
    else Printf.sprintf "%d B" n

  let profile_bytes m profile =
    List.fold_left
      (fun acc (_, rows, fields) -> acc + bytes m ~rows ~fields)
      0 profile

  let render_profile m profile =
    let rows =
      List.map
        (fun (name, rows, fields) ->
          [
            name; string_of_int rows; string_of_int fields;
            show_bytes (bytes m ~rows ~fields);
          ])
        profile
      @ [ [ "TOTAL"; ""; ""; show_bytes (profile_bytes m profile) ] ]
    in
    Relational.Table_printer.render
      ~header:[ "object"; "rows"; "fields"; "size" ]
      rows
end

module Database = Relational.Database
module Relation = Relational.Relation
module Delta = Relational.Delta
module Validator = Relational.Validator
module View = Algebra.View
module Engines = Maintenance.Engines
module Faults = Maintenance.Faults

let log_src =
  Logs.Src.create "minview.warehouse" ~doc:"warehouse durability & ingestion"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Obs = struct
  let commits =
    Telemetry.Counter.make ~help:"Batches committed across all engines"
      "minview_warehouse_txn_commits_total"

  let rollbacks =
    Telemetry.Counter.make
      ~help:"Batches rolled back after a mid-batch engine failure"
      "minview_warehouse_txn_rollbacks_total"

  let recoveries =
    Telemetry.Counter.make ~help:"Successful crash recoveries"
      "minview_warehouse_recoveries_total"

  let replayed =
    Telemetry.Counter.make ~help:"WAL batches replayed during recovery"
      "minview_warehouse_replayed_batches_total"

  let quarantined =
    Telemetry.Counter.make ~help:"Deltas quarantined to the dead-letter queue"
      "minview_warehouse_quarantined_deltas_total"

  let parallel_resets =
    Telemetry.Counter.make
      ~help:
        "Snapshot loads that dropped a saved parallel pool (pools are \
         runtime-only)"
      "minview_warehouse_parallel_resets_total"

  let snapshot_fallbacks =
    Telemetry.Counter.make
      ~help:
        "Recoveries that fell back past an unverifiable snapshot to an \
         older generation"
      "minview_warehouse_snapshot_fallbacks_total"

  let degradations =
    Telemetry.Counter.make
      ~help:
        "Parallel-apply failures that rolled back and degraded ingestion \
         to serial"
      "minview_warehouse_parallel_degradations_total"

  let promotions =
    Telemetry.Counter.make
      ~help:"Re-promotions from degraded serial apply back to parallel"
      "minview_warehouse_parallel_promotions_total"

  let degraded =
    Telemetry.Gauge.make
      ~help:"1 while ingestion is degraded to serial apply, else 0"
      "minview_warehouse_parallel_degraded"

  let ingest_retries =
    Telemetry.Counter.make
      ~help:"Transient ingest faults absorbed by the retry policy"
      "minview_warehouse_ingest_retries_total"

  let dead_letters_dropped =
    Telemetry.Counter.make
      ~help:"Oldest dead letters dropped past the dead-letter cap"
      "minview_warehouse_dead_letters_dropped_total"

  let checkpoint_seconds =
    Telemetry.Histogram.make ~help:"Snapshot checkpoint latency"
      "minview_warehouse_checkpoint_seconds"

  let ingest_seconds =
    Telemetry.Histogram.make ~help:"End-to-end latency of one ingested batch"
      "minview_warehouse_ingest_seconds"

  let ingest_alloc =
    Telemetry.Histogram.make
      ~help:"Bytes allocated on the ingesting domain during one batch"
      ~lo:4096. ~factor:4. ~buckets:24 "minview_warehouse_ingest_alloc_bytes"

  let reads =
    Telemetry.Counter.make ~help:"Epoch-served view reads"
      "minview_warehouse_reads_total"

  let read_seconds =
    Telemetry.Histogram.make ~help:"Latency of one epoch-served view read"
      "minview_warehouse_read_seconds"

  let epoch_publications =
    Telemetry.Counter.make
      ~help:
        "Read epochs published (one per committed batch, registration and \
         recovery)"
      "minview_warehouse_epoch_publications_total"

  let epoch_lag =
    Telemetry.Gauge.make
      ~help:
        "WAL-recorded batches (committed or aborted) ahead of the published \
         read epoch, as of the most recent read"
      "minview_warehouse_epoch_lag_batches"
end

(* --- errors ------------------------------------------------------------ *)

type error_kind =
  | Duplicate_view
  | Unknown_view
  | Not_aged
  | Not_persistable
  | Corrupt_state
  | Incompatible_state
  | Not_durable
  | Io_error
  | Invalid_request

exception Error of { kind : error_kind; detail : string }

let kind_label = function
  | Duplicate_view -> "duplicate-view"
  | Unknown_view -> "unknown-view"
  | Not_aged -> "not-aged"
  | Not_persistable -> "not-persistable"
  | Corrupt_state -> "corrupt-state"
  | Incompatible_state -> "incompatible-state"
  | Not_durable -> "not-durable"
  | Io_error -> "io-error"
  | Invalid_request -> "invalid-request"

let err kind fmt =
  Format.kasprintf (fun detail -> raise (Error { kind; detail })) fmt

(* --- state ------------------------------------------------------------- *)

type strategy =
  | Minimal
  | Psj
  | Replicate
  | Aged of (Relational.Tuple.t -> bool)

type registered = {
  view : View.t;
  strategy : strategy;
  engine : Engines.t;
}

(* --- read epochs -------------------------------------------------------- *)

(* One view's state frozen into an epoch: the output columns and a relation
   that is never mutated after publication ([Engines.capture] builds it
   fresh, aliasing nothing the engines will touch again). *)
type view_snap = {
  snap_view : View.t;
  snap_columns : string list;
  snap_rows : Relation.t;
}

(* An immutable read epoch. Readers obtain the current one with a single
   [Atomic.get] and then work entirely on frozen data: the writer can
   commit, roll back, rebuild engines or crash without ever perturbing a
   snapshot a reader holds. *)
type snapshot = {
  epoch : int;  (** monotonic publication counter, 0 before any publish *)
  epoch_seq : int;  (** WAL sequence number the epoch reflects *)
  epoch_views : view_snap list;  (** registration order *)
}

(* Jittered exponential backoff for transient ingest faults (a failed WAL
   durability barrier). The jitter keeps concurrent recovering writers from
   hammering a struggling disk in lockstep. *)
type retry = { attempts : int; base_delay : float; max_delay : float }

let default_retry = { attempts = 4; base_delay = 0.002; max_delay = 0.25 }

(* Supervision policy for parallel apply: after a worker failure the
   warehouse runs serially for [backoff] clean batches (starting at
   [initial_backoff], doubling per repeated failure up to [max_backoff]);
   a failure arriving after [stable_parallel] clean parallel batches is
   treated as fresh bad luck and the backoff resets. *)
let initial_backoff = 4

let max_backoff = 256
let stable_parallel = 16

(* Archived checkpoint generations kept beside the live snapshot. *)
let default_keep_generations = 2

type t = {
  source : Database.t;
  mutable views : registered list;  (** newest first *)
  validator : Validator.t;
  mutable dead : Delta.rejection list;  (** newest first *)
  mutable seq : int;  (** WAL-recorded batches (committed or aborted) *)
  mutable wal : Wal.writer option;
  mutable dir : string option;
  mutable checkpoint_every : int option;
  mutable keep_generations : int;
  (* runtime-only (like [wal]): never marshaled, so snapshots stay portable
     to hosts with different core counts; [load]/[recover] reset it *)
  mutable parallel : Maintenance.Shard.pool option;
  mutable retry : retry;
  mutable dead_cap : int option;
  (* supervision state: [degraded_until] counts the serial batches left
     before parallel apply is retried; [backoff] is the next degradation
     period; [clean_parallel] the parallel batches since the last failure *)
  mutable degraded_until : int;
  mutable backoff : int;
  mutable clean_parallel : int;
  (* wall-clock time of the last committed batch, 0. before the first:
     feeds the health endpoint's commit-age check; runtime-only *)
  mutable last_commit_s : float;
  (* the published read epoch: runtime-only (readers may be concurrent
     domains, so the cell must be an [Atomic.t]); never marshaled —
     [load]/[recover] republish from the restored engines *)
  published : snapshot Atomic.t;
}

let empty_snapshot = { epoch = 0; epoch_seq = 0; epoch_views = [] }

let create source =
  {
    source;
    views = [];
    validator = Validator.of_database source;
    dead = [];
    seq = 0;
    wal = None;
    dir = None;
    checkpoint_every = None;
    keep_generations = default_keep_generations;
    parallel = None;
    retry = default_retry;
    dead_cap = None;
    degraded_until = 0;
    backoff = initial_backoff;
    clean_parallel = 0;
    last_commit_s = 0.;
    published = Atomic.make empty_snapshot;
  }

(* Publish a fresh read epoch from the current committed engine state.
   Must only run with every engine transaction closed ([Engines.capture]
   enforces it): at the commit point of ingestion, at registration, and
   after load/recovery. The single [Atomic.set] is the publication point —
   a reader sees the previous epoch in full or the new one in full, never a
   mix.

   [?touched] is the set of base tables the triggering batch wrote; a view
   referencing none of them kept its contents, so its previous capture is
   re-used instead of re-rendered (the common case for wide warehouses
   where a batch hits one fact table). Omitting [touched] re-captures
   everything. *)
let publish_epoch ?touched t =
  let prev = Atomic.get t.published in
  let reused r =
    match touched with
    | None -> None
    | Some tables ->
      if List.exists (fun tbl -> List.mem tbl r.view.View.tables) tables then
        None
      else
        List.find_opt
          (fun vs -> String.equal vs.snap_view.View.name r.view.View.name)
          prev.epoch_views
  in
  let epoch_views =
    (* [t.views] is newest-first; rev_map restores registration order *)
    List.rev_map
      (fun r ->
        match reused r with
        | Some vs -> vs
        | None ->
          {
            snap_view = r.view;
            snap_columns = Algebra.Eval.output_columns r.view;
            snap_rows = Engines.capture r.engine;
          })
      t.views
  in
  Atomic.set t.published
    { epoch = prev.epoch + 1; epoch_seq = t.seq; epoch_views };
  Telemetry.Counter.one Obs.epoch_publications;
  (* the per-commit runtime sample (GC + off-heap gauges): a no-op unless
     [Runtime.set_auto_sample true] armed it (serve --metrics-port) *)
  Telemetry.Runtime.tick ()

let set_parallel t pool =
  t.parallel <- pool;
  (* a fresh pool starts with a clean supervision slate *)
  t.degraded_until <- 0;
  t.backoff <- initial_backoff;
  t.clean_parallel <- 0;
  Telemetry.Gauge.set Obs.degraded 0.

type apply_mode =
  | Serial
  | Parallel
  | Degraded of { remaining : int; next_backoff : int }

let apply_mode t =
  match t.parallel with
  | None -> Serial
  | Some _ when t.degraded_until > 0 ->
    Degraded { remaining = t.degraded_until; next_backoff = t.backoff }
  | Some _ -> Parallel

(* --- health and runtime profiling hooks --------------------------------- *)

let wal_attached t = t.wal <> None

let last_commit_age_s t =
  if t.last_commit_s = 0. then None
  else Some (Unix.gettimeofday () -. t.last_commit_s)

let offheap_bytes t =
  List.fold_left (fun acc r -> acc + Engines.offheap_bytes r.engine) 0 t.views

let publish_offheap t =
  Telemetry.Runtime.set_offheap_source (Some (fun () -> offheap_bytes t))

(* Health checks for the /healthz endpoint. Exporter-domain reads of the
   writer's mutable fields are racy by design: a stale answer is at most
   one batch old, and every read is a single word (no torn state). *)
let health ?(require_wal = false) ?max_commit_age_s ?max_epoch_lag t =
  let open Telemetry.Http_exporter in
  let wal_check =
    let attached = wal_attached t in
    {
      check_name = "wal";
      check_ok = attached || not require_wal;
      check_detail = (if attached then "attached" else "not attached");
    }
  in
  let apply_check =
    match apply_mode t with
    | Serial ->
      { check_name = "apply"; check_ok = true; check_detail = "serial" }
    | Parallel ->
      { check_name = "apply"; check_ok = true; check_detail = "parallel" }
    | Degraded { remaining; next_backoff } ->
      {
        check_name = "apply";
        check_ok = false;
        check_detail =
          Printf.sprintf
            "degraded to serial (%d clean batches before retry, next backoff \
             %d)"
            remaining next_backoff;
      }
  in
  let age_check =
    match last_commit_age_s t with
    | None ->
      {
        check_name = "last_commit";
        check_ok = true;
        check_detail = "no commits yet";
      }
    | Some age ->
      {
        check_name = "last_commit";
        check_ok =
          (match max_commit_age_s with
          | Some limit -> age <= limit
          | None -> true);
        check_detail = Printf.sprintf "%.1fs ago" age;
      }
  in
  let lag_check =
    let lag = t.seq - (Atomic.get t.published).epoch_seq in
    {
      check_name = "epoch_lag";
      check_ok =
        (match max_epoch_lag with Some limit -> lag <= limit | None -> true);
      check_detail = Printf.sprintf "%d batch(es)" lag;
    }
  in
  [ wal_check; apply_check; age_check; lag_check ]

let set_retry t retry =
  if retry.attempts < 0 || retry.base_delay < 0. || retry.max_delay < 0. then
    err Invalid_request "set_retry: attempts and delays must be non-negative";
  t.retry <- retry

let add_view ?(strategy = Minimal) t view =
  if
    List.exists
      (fun r -> String.equal r.view.View.name view.View.name)
      t.views
  then err Duplicate_view "a view named %s is already registered" view.View.name;
  let engine =
    match strategy with
    | Minimal -> Engines.minimal t.source view
    | Psj -> Engines.psj t.source view
    | Replicate -> Engines.recompute t.source view
    | Aged is_old -> Engines.partitioned t.source view ~is_old
  in
  t.views <- { view; strategy; engine } :: t.views;
  (* immediately visible to readers; previously registered views kept their
     contents, so their captures carry over ([touched = []]) *)
  publish_epoch ~touched:[] t

let add_view_sql ?strategy t sql =
  match Sqlfront.Parser.statement sql with
  | Sqlfront.Ast.Create_view { name; select } ->
    add_view ?strategy t (Sqlfront.Elaborate.view_of_select t.source ~name select)
  | _ -> err Invalid_request "add_view_sql: expected CREATE VIEW"

let view_names t = List.rev_map (fun r -> r.view.View.name) t.views
let views t = List.rev_map (fun r -> r.view) t.views

let find t name =
  match
    List.find_opt (fun r -> String.equal r.view.View.name name) t.views
  with
  | Some r -> r
  | None -> err Unknown_view "no view named %s is registered" name

(* --- epoch-served reads -------------------------------------------------- *)

let current_snapshot t = Atomic.get t.published
let with_snapshot t f = f (Atomic.get t.published)
let snapshot_epoch s = s.epoch
let snapshot_seq s = s.epoch_seq
let snapshot_views s = List.map (fun vs -> vs.snap_view) s.epoch_views

let find_snap s name =
  match
    List.find_opt
      (fun vs -> String.equal vs.snap_view.View.name name)
      s.epoch_views
  with
  | Some vs -> vs
  | None -> err Unknown_view "no view named %s is registered" name

(* [t.seq] is a plain mutable int written by the writer domain; the
   unsynchronized read here is a benign race (the lag gauge is advisory,
   and OCaml's memory model keeps single-word reads untorn). *)
let observe_read t s dt =
  Telemetry.Counter.one Obs.reads;
  Telemetry.Histogram.observe Obs.read_seconds dt;
  Telemetry.Gauge.set Obs.epoch_lag (float_of_int (t.seq - s.epoch_seq))

let read_view ?snapshot t name =
  let t0 = Unix.gettimeofday () in
  let s =
    match snapshot with Some s -> s | None -> Atomic.get t.published
  in
  let vs = find_snap s name in
  observe_read t s (Unix.gettimeofday () -. t0);
  (vs.snap_columns, vs.snap_rows)

let query t name = read_view t name

let query_sorted t name =
  let columns, rows = read_view t name in
  (columns, Relation.to_sorted_list rows)

let derivation_of t name = Engines.derivation (find t name).engine

let age_out t name facts =
  let r = find t name in
  match Engines.as_partitioned r.engine with
  | Some p -> Maintenance.Partitioned.age_out p facts
  | None -> err Not_aged "view %s is not registered with the Aged strategy" name

let detail_profile t =
  let qualify view_name (name, rows, fields) =
    ((if List.length t.views > 1 then view_name ^ "/" ^ name else name),
      rows, fields)
  in
  List.concat_map
    (fun r ->
      List.map (qualify r.view.View.name) (Engines.detail_profile r.engine))
    (List.rev t.views)

(* Measured resident bytes per view: every stored object of the view's
   engine (the view state first, then its auxiliary views), from the
   columnar byte accounting. Views without measured state (the recompute
   baseline) are omitted — their footprint only exists as an estimate. *)
let measured_bytes t =
  List.filter_map
    (fun r ->
      Option.map
        (fun objs -> (r.view.View.name, objs))
        (Engines.measured_bytes r.engine))
    (List.rev t.views)

let strategy_name = function
  | Minimal -> "minimal (Algorithm 3.2)"
  | Psj -> "PSJ (Quass et al.)"
  | Replicate -> "full replication"
  | Aged _ -> "aged (current + append-only old partition)"

(* --- persistence ------------------------------------------------------- *)

let snapshot_magic = "minview-warehouse-state/4\n"
let v3_magic = "minview-warehouse-state/3\n"
let v2_magic = "minview-warehouse-state/2\n"
let legacy_magic = "minview-warehouse-state/1\n"

let save t path =
  List.iter
    (fun r ->
      match r.strategy with
      | Aged _ ->
        err Not_persistable
          "view %s uses an Aged partition predicate and cannot be persisted"
          r.view.View.name
      | Minimal | Psj | Replicate -> ())
    t.views;
  (* the pool itself is runtime-only and never marshaled, but its size is
     recorded so a later load can warn that it was not restored *)
  let parallel_domains =
    match t.parallel with
    | Some pool -> Maintenance.Shard.domains pool
    | None -> 0
  in
  (* The version-4 payload never marshals engine state: the columnar
     storage layer holds closures and Bigarray segments that [Marshal]
     rejects, and snapshots are taken between batches, when every engine is
     a pure function of the validator's committed shadow (the audit verb
     checks exactly this). [load] rebuilds the engines from that shadow,
     which also keeps snapshots portable across storage-layout changes. *)
  let payload =
    Marshal.to_string
      ( List.map (fun r -> (r.view, r.strategy)) t.views,
        t.source,
        t.validator,
        t.dead,
        t.seq,
        parallel_domains )
      []
  in
  let header = Buffer.create 8 in
  Buffer.add_int32_le header (Int32.of_int (String.length payload));
  Buffer.add_int32_le header (Int32.of_int (Checksum.string payload));
  let tmp = path ^ ".tmp" in
  let oc = try open_out_bin tmp with Sys_error m -> err Io_error "%s" m in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc snapshot_magic;
      Buffer.output_buffer oc header;
      (* crash point: half a payload behind a valid header — the torn temp
         file must stay invisible to recovery (the rename never happens) *)
      let half = String.length payload / 2 in
      output_substring oc payload 0 half;
      Faults.hit Faults.Mid_checkpoint;
      output_substring oc payload half (String.length payload - half);
      flush oc;
      (* the snapshot must be on disk before the rename publishes it *)
      (try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error _ -> ()));
  Sys.rename tmp path;
  Wal.fsync_dir path

(* The version-3 payload stored the [registered] list with each engine's
   state marshaled inline. Its engine field is decoded as an opaque value
   that is never touched — engines are rebuilt from the validator either
   way — so pre-columnar snapshots stay loadable across the storage
   change. *)
type v3_registered = {
  v3_view : View.t;
  v3_strategy : strategy;
  v3_engine : Obj.t;
}
[@@warning "-69"]

(* Rebuild every engine from the validator's committed shadow, exactly like
   [rebuild_engines] (below): registration-time initialization from the
   believed source. Valid because [save] only runs between batches, when
   engine state is derivable from the committed source. *)
let engines_of_persisted validator persisted =
  let source = Validator.believed_source validator in
  List.map
    (fun (view, strategy) ->
      let engine =
        match strategy with
        | Minimal -> Engines.minimal source view
        | Psj -> Engines.psj source view
        | Replicate -> Engines.recompute source view
        | Aged _ ->
          (* [save] refuses aged views; only a crafted file gets here *)
          err Corrupt_state "view %s: aged views cannot appear in a snapshot"
            view.View.name
      in
      { view; strategy; engine })
    persisted

(* Load a snapshot; also returns the saved pool size so callers can warn
   about the reset (the pool is never restored — see [warn_parallel_reset]). *)
let rec load_with path =
  let ic = try open_in_bin path with Sys_error m -> err Io_error "%s" m in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (* an OS-level read failure (EISDIR, EIO, ...) is operational, not
         verification: it must surface as Io_error, never Corrupt_state *)
      try load_channel path ic with Sys_error m -> err Io_error "%s" m)

and load_channel path ic =
      let total = in_channel_length ic in
      let magic_len = String.length snapshot_magic in
      if total < magic_len then
        err Corrupt_state "%s: truncated header (%d bytes)" path total;
      let header = really_input_string ic magic_len in
      if String.equal header legacy_magic then
        err Incompatible_state
          "%s uses the unchecksummed version-1 format; re-save it with this \
           build"
          path;
      if String.equal header v2_magic then
        err Incompatible_state
          "%s uses the version-2 format without the parallel-pool record; \
           re-save it with this build"
          path;
      let version =
        if String.equal header snapshot_magic then `V4
        else if String.equal header v3_magic then `V3
        else err Corrupt_state "%s is not a warehouse state file" path
      in
      if total - magic_len < 8 then
        err Corrupt_state "%s: truncated frame header" path;
      let frame = really_input_string ic 8 in
      let u32 off =
        Int32.to_int (String.get_int32_le frame off) land 0xffffffff
      in
      let len = u32 0 and crc = u32 4 in
      if len > total - magic_len - 8 then
        err Corrupt_state "%s: truncated payload (%d of %d bytes)" path
          (total - magic_len - 8) len;
      let payload = really_input_string ic len in
      if Checksum.string payload <> crc then
        err Corrupt_state "%s: checksum mismatch" path;
      let decoded =
        match version with
        | `V4 -> (
          match
            (Marshal.from_string payload 0
              : (View.t * strategy) list * Database.t * Validator.t
                * Delta.rejection list * int * int)
          with
          | persisted -> Some persisted
          | exception _ -> None)
        | `V3 -> (
          match
            (Marshal.from_string payload 0
              : v3_registered list * Database.t * Validator.t
                * Delta.rejection list * int * int)
          with
          | olds, source, validator, dead, seq, domains ->
            Some
              ( List.map (fun o -> (o.v3_view, o.v3_strategy)) olds,
                source,
                validator,
                dead,
                seq,
                domains )
          | exception _ -> None)
      in
      match decoded with
      | None ->
        err Corrupt_state "%s: undecodable payload (incompatible build?)" path
      | Some (persisted, source, validator, dead, seq, parallel_domains) ->
        let views = engines_of_persisted validator persisted in
        ( {
            source;
            views;
            validator;
            dead;
            seq;
            wal = None;
            dir = None;
            checkpoint_every = None;
            keep_generations = default_keep_generations;
            parallel = None;
            retry = default_retry;
            dead_cap = None;
            degraded_until = 0;
            backoff = initial_backoff;
            clean_parallel = 0;
            last_commit_s = 0.;
            published = Atomic.make empty_snapshot;
          },
          parallel_domains )

(* The structured warning for the set_parallel/recover interaction: the
   snapshot was taken by a warehouse with a domain pool, but pools are
   runtime-only, so the loaded warehouse is serial until [set_parallel] is
   called again. *)
let warn_parallel_reset path domains =
  if domains > 0 then begin
    Log.warn (fun m ->
        m
          "%s was saved with a %d-domain parallel pool; pools are \
           runtime-only and are not restored — call set_parallel again"
          path domains);
    Telemetry.Counter.one Obs.parallel_resets;
    Telemetry.Trace.event "warehouse.parallel-reset"
      ~attrs:[ ("path", path); ("domains", string_of_int domains) ]
  end

let load path =
  let t, parallel_domains = load_with path in
  warn_parallel_reset path parallel_domains;
  publish_epoch t;
  t

(* --- durability: attach / checkpoint ----------------------------------- *)

let wal_path dir = Filename.concat dir "wal.bin"
let snapshot_path dir = Filename.concat dir "snapshot.bin"
let lineage_path dir = Filename.concat dir "lineage.jsonl"
let workload_profile_path dir = Filename.concat dir "workload_profile.json"

(* --- checkpoint generation chain ---------------------------------------- *)

(* Instead of truncate-on-checkpoint, the warehouse archives the outgoing
   snapshot and its WAL segment under [dir/generations/] with a monotonic
   chain index: [snapshot-<n>.bin] is the state before the checkpoint and
   [wal-<n>.bin] the batches between it and the next snapshot in the chain.
   Recovery can then fall back past an unverifiable snapshot to the newest
   generation that still verifies and replay a longer WAL tail. The index
   is allocated by scanning (max existing + 1), never reused, so a fallback
   recovery can keep checkpointing without clobbering the chain. *)

let generations_dir dir = Filename.concat dir "generations"

let gen_snapshot_path dir n =
  Filename.concat (generations_dir dir) (Printf.sprintf "snapshot-%08d.bin" n)

let gen_wal_path dir n =
  Filename.concat (generations_dir dir) (Printf.sprintf "wal-%08d.bin" n)

(* "snapshot-<n>.bin" / "wal-<n>.bin", nothing else — quarantined copies and
   temp files never parse as chain members. *)
let parse_generation name =
  let indexed prefix =
    let plen = String.length prefix in
    if String.length name > plen && String.equal (String.sub name 0 plen) prefix
    then
      Scanf.sscanf_opt
        (String.sub name plen (String.length name - plen))
        "%d.bin%!" Fun.id
    else None
  in
  match indexed "snapshot-" with
  | Some n -> Some (`Snapshot, n)
  | None -> (
    match indexed "wal-" with Some n -> Some (`Wal, n) | None -> None)

let list_generations dir =
  match Sys.readdir (generations_dir dir) with
  | exception Sys_error _ -> []
  | names -> List.filter_map parse_generation (Array.to_list names)

(* (index, path), ascending chain order *)
let generation_snapshots dir =
  List.filter_map
    (function `Snapshot, n -> Some (n, gen_snapshot_path dir n) | _ -> None)
    (list_generations dir)
  |> List.sort compare

let generation_wals dir =
  List.filter_map
    (function `Wal, n -> Some (n, gen_wal_path dir n) | _ -> None)
    (list_generations dir)
  |> List.sort compare

(* The next chain index: one past the highest index embedded in {e any}
   file of the generations directory — including quarantined copies
   ("snapshot-<n>.bin.quarantine"), which [parse_generation] rejects as
   chain members. A quarantined index must never be reallocated: the
   re-used generation would pair a fresh snapshot with the old index's
   archived [wal-<n>] segment, and the next WAL rotation would clobber
   that segment's committed records. *)
let generation_file_index name =
  let num prefix =
    let plen = String.length prefix in
    if String.length name > plen && String.equal (String.sub name 0 plen) prefix
    then
      Scanf.sscanf_opt
        (String.sub name plen (String.length name - plen))
        "%d" Fun.id
    else None
  in
  match num "snapshot-" with Some n -> Some n | None -> num "wal-"

let next_generation_index dir =
  match Sys.readdir (generations_dir dir) with
  | exception Sys_error _ -> 1
  | names ->
    1
    + Array.fold_left
        (fun acc name ->
          match generation_file_index name with
          | Some n -> max acc n
          | None -> acc)
        0 names

(* Retire everything older than the [keep]-th newest archived snapshot.
   Safe by the chain invariant: sequence numbers grow along the chain, so a
   WAL segment older than the oldest kept snapshot only holds batches that
   snapshot already contains. *)
let prune_generations dir ~keep =
  if keep >= 1 then
    match List.nth_opt (List.rev (generation_snapshots dir)) (keep - 1) with
    | None -> ()
    | Some (cutoff, _) ->
      let stale =
        List.filter (fun (n, _) -> n < cutoff)
          (generation_snapshots dir @ generation_wals dir)
      in
      if stale <> [] then begin
        List.iter
          (fun (_, p) -> try Sys.remove p with Sys_error _ -> ())
          stale;
        Wal.fsync_dir (gen_snapshot_path dir 0)
      end

(* --- lineage ----------------------------------------------------------- *)

let delta_table_counts deltas =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (d : Delta.t) ->
      let n =
        Option.value (Hashtbl.find_opt counts d.Delta.table) ~default:0
      in
      Hashtbl.replace counts d.Delta.table (n + 1))
    deltas;
  Hashtbl.fold (fun tbl n acc -> (tbl, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* One lineage record per committed batch, keyed by its WAL sequence
   number. Called only after [commit_engines] (never on the rollback or
   quarantine paths), so every emitted record describes durable state. *)
let emit_lineage t ~seq deltas =
  if Telemetry.enabled () then
    Telemetry.Lineage.emit
      {
        Telemetry.Lineage.txn = seq;
        tables = delta_table_counts deltas;
        flows =
          List.filter_map
            (fun r -> Engines.last_flow r.engine)
            (List.rev t.views);
      }

let checkpoint t =
  match (t.dir, t.wal) with
  | Some dir, Some wal ->
    Telemetry.with_phase Obs.checkpoint_seconds "warehouse.checkpoint"
      ~attrs:[ ("dir", dir) ]
      (fun () ->
        let snap = snapshot_path dir in
        let fresh = snap ^ ".new" in
        (* build the new snapshot off to the side: a crash while it is
           written leaves the previous generation fully intact *)
        save t fresh;
        let n =
          if not (t.keep_generations > 0 && Sys.file_exists snap) then None
          else begin
            (try Sys.mkdir (generations_dir dir) 0o755
             with Sys_error _ -> ());
            let n = next_generation_index dir in
            (* the outgoing snapshot becomes generation [n]; its WAL segment
               — the batches between it and the new snapshot — is archived
               under the same index below *)
            Sys.rename snap (gen_snapshot_path dir n);
            Wal.fsync_dir (gen_snapshot_path dir n);
            Wal.fsync_dir snap;
            Some n
          end
        in
        Sys.rename fresh snap;
        (* crash point: the new snapshot is renamed into place but the
           directory entry is not yet durable — a power cut can leave the
           directory without snapshot.bin, which recovery must serve from
           the generation chain plus the still-unrotated WAL *)
        Faults.hit Faults.After_checkpoint_rename;
        Wal.fsync_dir snap;
        (* crash point: new snapshot in place, WAL not yet rotated — replay
           must recognize the WAL's batches as already checkpointed *)
        Faults.hit Faults.Before_wal_truncate;
        (match n with
        | Some n -> Wal.rotate wal ~to_path:(gen_wal_path dir n)
        | None ->
          (* nothing was archived (first checkpoint, or the chain is
             disabled): no older generation needs the replaced records *)
          Wal.truncate wal);
        prune_generations dir ~keep:t.keep_generations;
        (* the workload profile is advisory state: write it beside the WAL
           at every checkpoint, but never fail the checkpoint over it *)
        (try
           Telemetry.Workload.write_profile
             ~path:(workload_profile_path dir)
         with Sys_error _ | Unix.Unix_error _ -> ()))
  | _ ->
    err Not_durable "checkpoint: attach the warehouse to a state directory first"

(* On-demand profile write (the CLI's [minview profile --state] and the
   serve PROFILE verb persist through this). *)
let write_workload_profile t =
  match t.dir with
  | Some dir ->
    let path = workload_profile_path dir in
    Telemetry.Workload.write_profile ~path;
    path
  | None ->
    err Not_durable
      "workload profile: attach the warehouse to a state directory first"

let attach ?checkpoint_every ?keep_generations t ~dir =
  if t.wal <> None then
    err Invalid_request "warehouse is already attached to %s"
      (Option.value t.dir ~default:"a state directory");
  (match Sys.is_directory dir with
  | true -> ()
  | false -> err Io_error "%s exists and is not a directory" dir
  | exception Sys_error _ -> (
    try Sys.mkdir dir 0o755 with Sys_error m -> err Io_error "%s" m));
  t.dir <- Some dir;
  t.checkpoint_every <- checkpoint_every;
  (match keep_generations with
  | Some k when k < 0 ->
    err Invalid_request "attach: keep_generations must be >= 0"
  | Some k -> t.keep_generations <- k
  | None -> ());
  (match Wal.open_append (wal_path dir) with
  | w -> t.wal <- Some w
  | exception Wal.Corrupt m -> err Corrupt_state "%s" m);
  (* lineage records persist next to the WAL commit markers they mirror *)
  Telemetry.Lineage.set_sink (Some (lineage_path dir));
  (* durable from the start: a crash right after attach recovers to here *)
  checkpoint t

let close t =
  Option.iter Wal.close t.wal;
  if t.dir <> None then Telemetry.Lineage.set_sink None;
  t.wal <- None;
  t.dir <- None

(* --- ingestion --------------------------------------------------------- *)

type report = { batch : int; applied : int; rejected : Delta.rejection list }

let dead_letters t = List.rev t.dead
let clear_dead_letters t = t.dead <- []

let set_dead_letter_cap t cap =
  (match cap with
  | Some n when n < 1 ->
    err Invalid_request "set_dead_letter_cap: cap must be >= 1"
  | Some _ | None -> ());
  t.dead_cap <- cap

let quarantine t rejections =
  Telemetry.Counter.inc Obs.quarantined (List.length rejections);
  t.dead <- List.rev_append rejections t.dead;
  match t.dead_cap with
  | Some cap when List.length t.dead > cap ->
    (* graceful overflow: drop the oldest letters (the tail of the
       newest-first list) rather than failing ingestion *)
    let dropped = List.length t.dead - cap in
    t.dead <- List.filteri (fun i _ -> i < cap) t.dead;
    Telemetry.Counter.inc Obs.dead_letters_dropped dropped;
    Log.warn (fun m ->
        m "dead-letter queue over its cap (%d): dropped the %d oldest \
           rejection(s)"
          cap dropped)
  | Some _ | None -> ()

let believed_source t = Validator.believed_source t.validator
let ingested_batches t = t.seq

(* --- transient-fault retry ----------------------------------------------- *)

let jitter_state = lazy (Random.State.make [| 0x6d76; 0x7265 |])

(* Retry a transient durability barrier with jittered exponential backoff.
   Only the barrier itself is ever retried — the WAL frames are already
   staged (or written to the OS), so re-appending would duplicate records.
   Transient faults surface as [Faults.Injected]; anything else, including
   a simulated [Faults.Crash], propagates untouched. *)
let with_retry t ~what f =
  let rec go attempt =
    match f () with
    | () -> ()
    | exception Faults.Injected point ->
      if attempt >= t.retry.attempts then
        err Io_error "%s: transient fault (%s) persisted after %d attempt(s)"
          what (Faults.to_string point) t.retry.attempts;
      Telemetry.Counter.one Obs.ingest_retries;
      let cap =
        Float.min t.retry.max_delay
          (t.retry.base_delay *. (2. ** float_of_int attempt))
      in
      let delay =
        cap *. (0.5 +. Random.State.float (Lazy.force jitter_state) 0.5)
      in
      Log.warn (fun m ->
          m "%s: transient fault (%s); retry %d/%d in %.1f ms" what
            (Faults.to_string point) (attempt + 1) t.retry.attempts
            (delay *. 1000.));
      if delay > 0. then (try Unix.sleepf delay with Unix.Unix_error _ -> ());
      go (attempt + 1)
  in
  go 0

let sync_wal t ~what =
  Option.iter (fun w -> with_retry t ~what (fun () -> Wal.sync w)) t.wal

(* Transactional apply, in place: every engine opens an undo journal and
   absorbs the batch directly; a mid-batch failure rolls back only the
   touched groups, so the registered views can never disagree about which
   deltas they have seen — at O(delta) cost. The hot path never deep-copies
   engine state ([Engines.copy] is reserved for snapshot checkpoints). *)
let apply_in_place t ~pool deltas =
  List.iter (fun r -> Engines.begin_txn r.engine) t.views;
  List.iteri
    (fun i r ->
      Engines.apply_batch ?parallel:pool r.engine deltas;
      if i = 0 then Faults.hit Faults.Mid_engine_apply)
    t.views

let commit_engines t = List.iter (fun r -> Engines.commit r.engine) t.views

let rollback_engines t = List.iter (fun r -> Engines.rollback r.engine) t.views

let engine_error_detail = function
  | Maintenance.Engine.Invariant m -> m
  | Maintenance.Shard.Wedged { worker; waited } ->
    Printf.sprintf "shard worker %d wedged after %.3f s" worker waited
  | Faults.Injected p -> "injected fault at " ^ Faults.to_string p
  | Failure m | Invalid_argument m -> m
  | e -> Printexc.to_string e

(* The wedge remedy. After [Shard.Wedged] the abandoned worker domain may
   still be executing the batch against the engines its job closes over —
   OCaml domains cannot be cancelled — so nothing that touches the current
   engine state (rollback, serial re-apply) can run without racing it.
   Instead the old engines are abandoned to the stray domain and every
   registered view gets a fresh engine initialized from the validator's
   committed shadow, exactly like registration: O(state), but paid only on
   a wedge. Call with no validator transaction open (the shadow must be the
   committed source). [Aged] views revert their current/old split to the
   registration predicate — [age_out] placement is not derivable from
   contents alone. *)
let rebuild_engines t =
  let source = Validator.believed_source t.validator in
  t.views <-
    List.map
      (fun r ->
        let engine =
          match r.strategy with
          | Minimal -> Engines.minimal source r.view
          | Psj -> Engines.psj source r.view
          | Replicate -> Engines.recompute source r.view
          | Aged is_old -> Engines.partitioned source r.view ~is_old
        in
        { r with engine })
      t.views

(* --- supervised apply ---------------------------------------------------- *)

let note_parallel_failure t detail =
  Telemetry.Counter.one Obs.degradations;
  Telemetry.Gauge.set Obs.degraded 1.;
  (* a failure after a long clean parallel streak is fresh bad luck, not a
     recurring problem: forgive the accumulated backoff *)
  if t.clean_parallel >= stable_parallel then t.backoff <- initial_backoff;
  t.degraded_until <- t.backoff;
  t.backoff <- min (t.backoff * 2) max_backoff;
  t.clean_parallel <- 0;
  Log.warn (fun m ->
      m "parallel apply failed (%s): rolled back, degrading to serial for %d \
         batch(es)"
        detail t.degraded_until)

(* Apply one accepted batch under supervision. A parallel attempt whose
   worker raised is rolled back and the batch is re-applied serially; a
   *wedged* worker (deadline blown) re-raises instead — the batch is
   aborted and quarantined by the ingest path and the engines are rebuilt,
   because the stray domain forbids touching them in place. Either way
   ingestion then stays serial until [t.degraded_until] clean batches have
   passed ([note_apply_outcome]). Returns how the batch was finally
   applied. *)
let apply_supervised t deltas =
  match t.parallel with
  | Some pool when t.degraded_until = 0 -> (
    match apply_in_place t ~pool:(Some pool) deltas with
    | () -> `Parallel
    | exception (Faults.Crash _ as crash) -> raise crash
    | exception (Maintenance.Shard.Wedged _ as wedge) ->
      (* the wedged domain may still be executing the batch against the
         engines, so neither an in-place rollback nor a serial re-apply is
         safe here — degrade, and re-raise so ingest routes the batch to
         the quarantine path, which rebuilds the engines instead of
         touching them *)
      note_parallel_failure t (engine_error_detail wedge);
      raise wedge
    | exception e ->
      (* a worker *raised*: the pool drained every worker before
         re-raising, so the engines are quiescent. The failed attempt left
         undo journals open on every engine; close them before the serial
         retry opens fresh ones *)
      rollback_engines t;
      note_parallel_failure t (engine_error_detail e);
      apply_in_place t ~pool:None deltas;
      `Degraded)
  | Some _ ->
    apply_in_place t ~pool:None deltas;
    `Degraded
  | None ->
    apply_in_place t ~pool:None deltas;
    `Serial

(* Post-commit bookkeeping for the degradation clock: every committed
   serial-degraded batch brings re-promotion one step closer. *)
let note_apply_outcome t = function
  | `Serial -> ()
  | `Parallel -> t.clean_parallel <- t.clean_parallel + 1
  | `Degraded ->
    if t.degraded_until > 0 then begin
      t.degraded_until <- t.degraded_until - 1;
      if t.degraded_until = 0 then begin
        Telemetry.Counter.one Obs.promotions;
        Telemetry.Gauge.set Obs.degraded 0.;
        Log.info (fun m ->
            m "degradation period over: re-promoting to parallel apply (next \
               backoff %d batches)"
              t.backoff)
      end
    end

(* [~sync:false] stages the WAL records in the writer's buffer instead of
   fsyncing per batch — the group-commit path of {!ingest_all}, which pays
   one durability barrier for the whole burst. *)
let ingest_report_inner ~sync t deltas =
  Validator.begin_txn t.validator;
  let accepted, rejected =
    List.fold_left
      (fun (acc, rej) d ->
        match Validator.admit t.validator d with
        | Ok d -> (d :: acc, rej)
        | Error r -> (acc, r :: rej))
      ([], []) deltas
  in
  let accepted = List.rev accepted and rejected = List.rev rejected in
  quarantine t rejected;
  if accepted = [] then begin
    Validator.commit t.validator;
    { batch = t.seq; applied = 0; rejected }
  end
  else begin
    let seq = t.seq + 1 in
    (try
       Option.iter
         (fun w ->
           Wal.append ~sync:false w (Wal.Batch { seq; deltas = accepted });
           (* synced: the record is durable and this is the commit point
              (transient fsync faults are absorbed by the retry policy);
              unsynced: the group's final {!Wal.sync} is *)
           if sync then with_retry t ~what:"wal-commit" (fun () -> Wal.sync w);
           Faults.hit Faults.After_wal_append)
         t.wal
     with
    | Faults.Crash _ as crash ->
      (* simulated process death: no cleanup, recovery reloads from disk *)
      raise crash
    | e ->
      (* retry exhaustion (or a Fail-mode injected fault): no engine has
         seen the batch, only the validator transaction is open — close it
         so the next ingest starts clean. The batch frame may already have
         reached the OS even though the barrier failed, so consume the
         sequence number under a best-effort abort marker rather than
         letting replay resurrect a batch the caller was told failed. *)
      Validator.rollback t.validator;
      Option.iter
        (fun w ->
          try
            Wal.append ~sync:false w (Wal.Abort { seq });
            Wal.sync w
          with _ -> ())
        t.wal;
      t.seq <- seq;
      raise e);
    match apply_supervised t accepted with
    | mode ->
      commit_engines t;
      Validator.commit t.validator;
      Telemetry.Counter.one Obs.commits;
      t.seq <- seq;
      t.last_commit_s <- Unix.gettimeofday ();
      note_apply_outcome t mode;
      (* the read-side commit point: concurrent readers switch to the new
         epoch here, atomically; until this set they keep serving the
         previous committed state. Views whose tables the batch did not
         touch carry their captures over. *)
      publish_epoch ~touched:(List.map fst (delta_table_counts accepted)) t;
      emit_lineage t ~seq accepted;
      (match t.checkpoint_every with
      | Some n when n > 0 && t.seq mod n = 0 && t.wal <> None -> checkpoint t
      | Some _ | None -> ());
      { batch = seq; applied = List.length accepted; rejected }
    | exception (Faults.Crash _ as crash) ->
      (* a simulated process death: unwind without any cleanup (the open
         journals die with the process; recovery reloads from disk) *)
      raise crash
    | exception e ->
      (* an engine failed mid-batch even after supervision's serial retry:
         roll every engine back to its before-image (engines past the
         failure have empty journals), roll the shadow back, mark the WAL
         record aborted and quarantine the whole batch. A wedged pool is
         the exception: the stray domain may still be mutating the engines,
         so they cannot even be rolled back — abandon them and rebuild
         from the committed shadow instead. *)
      (match e with
      | Maintenance.Shard.Wedged _ ->
        Validator.rollback t.validator;
        Log.warn (fun m ->
            m
              "wedged shard worker: abandoning the live engines to the \
               stray domain and rebuilding them from the believed source");
        rebuild_engines t
      | _ ->
        rollback_engines t;
        Validator.rollback t.validator);
      Telemetry.Counter.one Obs.rollbacks;
      Option.iter
        (fun w ->
          Wal.append ~sync:false w (Wal.Abort { seq });
          if sync then with_retry t ~what:"wal-abort" (fun () -> Wal.sync w))
        t.wal;
      t.seq <- seq;
      let detail = engine_error_detail e in
      let aborted =
        List.map
          (fun d -> { Delta.delta = d; reason = Delta.Engine_failure; detail })
          accepted
      in
      quarantine t aborted;
      { batch = seq; applied = 0; rejected = rejected @ aborted }
  end

let ingest_report_with ~sync t deltas =
  Telemetry.with_phase Obs.ingest_seconds ~alloc:Obs.ingest_alloc
    "warehouse.ingest" (fun () -> ingest_report_inner ~sync t deltas)

let ingest_report t deltas = ingest_report_with ~sync:true t deltas
let ingest t deltas = ignore (ingest_report t deltas)

(* Group commit: every batch of the burst stages its WAL record in the
   writer's buffer; one [Wal.sync] then makes the whole burst durable with a
   single write and fsync. Deferred acknowledgement — a crash inside the
   burst can lose a suffix of the staged batches, but recovery always comes
   back at a batch boundary of the durable prefix, so the resume cursor
   ({!ingested_batches}) stays valid. [in_flight] bounds the exposure: an
   intermediate durability barrier is issued before more than that many
   batches ride on un-fsynced WAL frames. *)
let ingest_all ?(in_flight = 64) t batches =
  if in_flight < 1 then
    err Invalid_request "ingest_all: in_flight must be >= 1";
  let pending = ref 0 in
  let reports =
    List.map
      (fun batch ->
        let r = ingest_report_with ~sync:false t batch in
        incr pending;
        if !pending >= in_flight then begin
          sync_wal t ~what:"wal-group-commit";
          pending := 0
        end;
        r)
      batches
  in
  if !pending > 0 || batches = [] then sync_wal t ~what:"wal-group-commit";
  reports

(* --- recovery ----------------------------------------------------------- *)

(* Replay one committed batch during recovery. The batch was validated when
   first ingested; a failure here (diverged shadow, deterministic engine
   bug) quarantines it instead of making recovery itself fail. *)
let replay_batch t ~seq deltas =
  Telemetry.Counter.one Obs.replayed;
  Validator.begin_txn t.validator;
  let abandon detail =
    (* undoes the admitted prefix of a batch whose validation failed midway *)
    Validator.rollback t.validator;
    quarantine t
      (List.map
         (fun d -> { Delta.delta = d; reason = Delta.Engine_failure; detail })
         deltas)
  in
  (match
     List.find_map
       (fun d ->
         match Validator.admit t.validator d with
         | Ok _ -> None
         | Error r -> Some r)
       deltas
   with
  | Some r -> abandon ("replay validation failed: " ^ r.Delta.detail)
  | None -> (
    match apply_in_place t ~pool:None deltas with
    | () ->
      commit_engines t;
      Validator.commit t.validator;
      emit_lineage t ~seq deltas
    | exception (Faults.Crash _ as crash) -> raise crash
    | exception e ->
      rollback_engines t;
      abandon (engine_error_detail e)));
  t.seq <- seq

(* Candidate snapshots, newest first: the live snapshot (if present), then
   the archived generations in descending chain order. The paired index
   decides which WAL segments the snapshot covers ([max_int]: the live
   snapshot is newer than every archived segment). *)
let snapshot_candidates dir =
  let live = snapshot_path dir in
  (if Sys.file_exists live then [ (max_int, live) ] else [])
  @ List.rev (generation_snapshots dir)

(* Quarantine names are never reused: if [path ^ ".quarantine"] already
   holds earlier evidence (a previous fallback of the same path, or of a
   reallocated generation index), a numbered suffix is chosen instead of
   clobbering it — quarantining must never destroy bytes, including bytes
   a previous quarantine preserved. *)
let quarantine_snapshot path =
  let rec fresh n =
    let q =
      if n = 0 then path ^ ".quarantine"
      else Printf.sprintf "%s.quarantine.%d" path n
    in
    if Sys.file_exists q then fresh (n + 1) else q
  in
  let q = fresh 0 in
  (try Sys.rename path q with Sys_error _ -> ());
  Wal.fsync_dir path;
  q

(* Read one WAL segment for replay under the damage policy:
   - a torn tail on the live log is the expected artifact of a crash during
     an append — salvage it (quarantining the tail) and keep the prefix;
   - damage on a segment the restored snapshot does not cover may hide
     committed batches — refuse, directing the operator to [minview repair];
   - damage on a segment fully covered by the restored snapshot is harmless:
     every record the segment could hold is skipped by replay anyway. *)
let read_segment ~live ~needed path =
  match Wal.scan path with
  | { Wal.s_records; s_damage = None; _ } -> s_records
  | { Wal.s_records; s_damage = Some d; _ } -> (
    match d.Wal.d_kind with
    | Wal.Torn_write when live ->
      Log.warn (fun m ->
          m "%s: torn tail (%s): salvaging, %d byte(s) quarantined to %s" path
            d.Wal.d_reason d.Wal.d_bytes
            (Wal.quarantine_path path));
      ignore (Wal.salvage path);
      s_records
    | _ when not needed -> s_records
    | kind ->
      err Corrupt_state
        "%s: %s at offset %d (%s) may hide committed batches — run `minview \
         repair` to quarantine the damage, accepting the loss"
        path (Wal.damage_kind_label kind) d.Wal.d_offset d.Wal.d_reason)
  | exception Wal.Corrupt m ->
    if needed then
      err Corrupt_state "%s — run `minview repair` to quarantine the file" m
    else []

(* Forward declaration break: [recover] needs [attach] (empty-directory
   initialization), which is defined above; nothing else is cyclic. *)

let recover ~dir =
  Telemetry.Trace.with_span "warehouse.recover"
    ~attrs:[ ("dir", dir) ]
    (fun () ->
      let dir_exists =
        try Sys.is_directory dir with Sys_error _ -> false
      in
      (* a missing (or non-directory) state dir keeps the original error
         shape: attempting the load surfaces the OS-level Io_error *)
      if not dir_exists then ignore (load_with (snapshot_path dir));
      let candidates = snapshot_candidates dir in
      if
        candidates = []
        && (not (Sys.file_exists (wal_path dir)))
        && generation_wals dir = []
      then begin
        (* an existing-but-empty state directory is a valid cold start, not
           corruption: initialize it in place *)
        Log.info (fun m ->
            m "%s: empty state directory — initializing a fresh warehouse"
              dir);
        let t = create (Database.create ()) in
        attach t ~dir;
        Telemetry.Counter.one Obs.recoveries;
        t
      end
      else begin
        (* walk the chain newest-first to the first snapshot that verifies;
           remember the first failure so a chain with no survivors reports
           the newest (most relevant) error *)
        let first_failure = ref None in
        let failed = ref [] in
        let rec choose = function
          | [] -> (
            match !first_failure with
            | Some exn -> raise exn
            | None ->
              err Corrupt_state
                "%s holds WAL records but no snapshot to replay them onto"
                dir)
          | (gen, path) :: rest -> (
            match load_with path with
            | t, parallel_domains ->
              warn_parallel_reset path parallel_domains;
              (t, gen, path)
            (* only failed *verification* falls back down the chain: an
               operational failure (EACCES, EMFILE, ...) says nothing about
               the snapshot's integrity, so quarantining it and demoting to
               an older generation would discard good live state — re-raise
               and let the operator retry *)
            | exception
                (Error { kind = Corrupt_state | Incompatible_state; _ } as exn)
              ->
              if Option.is_none !first_failure then first_failure := Some exn;
              failed := path :: !failed;
              choose rest)
        in
        let t, chosen_gen, chosen_path = choose candidates in
        (* only once a fallback has succeeded: move the unverifiable newer
           snapshots aside, so the next checkpoint cannot archive them and
           the next recovery skips them *)
        List.iter
          (fun path ->
            Telemetry.Counter.one Obs.snapshot_fallbacks;
            let q = quarantine_snapshot path in
            Log.warn (fun m ->
                m
                  "%s failed verification: quarantined to %s; falling back \
                   to %s"
                  path q chosen_path))
          !failed;
        (* replay every archived segment in chain order, live log last;
           replay is sequence-guarded, so segments older than the restored
           snapshot contribute nothing *)
        let segments =
          List.map
            (fun (n, p) -> (false, n >= chosen_gen, p))
            (generation_wals dir)
          @ [ (true, true, wal_path dir) ]
        in
        let records =
          List.concat_map
            (fun (live, needed, path) -> read_segment ~live ~needed path)
            segments
        in
        let aborted =
          List.filter_map
            (function Wal.Abort { seq } -> Some seq | Wal.Batch _ -> None)
            records
        in
        (* restore the persisted workload profile before replay — the same
           snapshot + WAL discipline as the data: replay re-feeds the
           sketches with post-checkpoint batches on top of the restored
           counts. (After a generation fallback the profile may predate the
           chosen snapshot and over-count the replayed span; the sketches'
           estimates remain upper bounds, so that is acceptable drift.) *)
        (try
           ignore
             (Telemetry.Workload.load_profile
                ~path:(workload_profile_path dir))
         with Sys_error _ -> ());
        (* open the sink before replay so replayed batches leave their
           lineage records in the same file as live ingestion *)
        Telemetry.Lineage.set_sink (Some (lineage_path dir));
        List.iter
          (function
            | Wal.Abort { seq } -> t.seq <- max t.seq seq
            | Wal.Batch { seq; deltas } ->
              if seq > t.seq && not (List.mem seq aborted) then
                replay_batch t ~seq deltas
              else t.seq <- max t.seq seq)
          records;
        t.dir <- Some dir;
        (match Wal.open_append (wal_path dir) with
        | w -> t.wal <- Some w
        | exception Wal.Corrupt m -> err Corrupt_state "%s" m);
        (* one publication for the whole recovery, not one per replayed
           batch: readers only ever see the fully recovered state *)
        publish_epoch t;
        Telemetry.Counter.one Obs.recoveries;
        t
      end)

(* --- fsck / repair ------------------------------------------------------- *)

type fsck_entry = {
  f_file : string;  (** relative to the state directory *)
  f_ok : bool;
  f_detail : string;
}

type fsck_report = {
  fsck_entries : fsck_entry list;
  fsck_recoverable : bool;
  fsck_clean : bool;
}

let rel dir path =
  let prefix = dir ^ Filename.dir_sep in
  if String.starts_with ~prefix path then
    String.sub path (String.length prefix)
      (String.length path - String.length prefix)
  else path

let verify_snapshot path =
  match load_with path with
  | t, _ -> Ok t.seq
  | exception Error { detail; _ } -> Error detail

let describe_wal path =
  match Wal.scan path with
  | { Wal.s_records; s_damage = None; _ } ->
    Ok
      (Printf.sprintf "%d record(s)%s" (List.length s_records)
         (match List.rev s_records with
         | last :: _ -> Printf.sprintf ", through batch %d" (Wal.seq_of last)
         | [] -> ""))
  | { Wal.s_records; s_damage = Some d; _ } ->
    Error
      (Printf.sprintf "%s at offset %d: %s (%d intact record(s) before it)"
         (Wal.damage_kind_label d.Wal.d_kind)
         d.Wal.d_offset d.Wal.d_reason (List.length s_records))
  | exception Wal.Corrupt m -> Error m

let require_state_dir dir =
  if not (try Sys.is_directory dir with Sys_error _ -> false) then
    err Io_error "%s: not a state directory" dir

let fsck ~dir =
  require_state_dir dir;
  let entry file = function
    | Ok detail -> { f_file = file; f_ok = true; f_detail = detail }
    | Error detail -> { f_file = file; f_ok = false; f_detail = detail }
  in
  let snap = snapshot_path dir in
  let verified path =
    entry (rel dir path)
      (Result.map (Printf.sprintf "verified, batch %d") (verify_snapshot path))
  in
  let snap_entries =
    if Sys.file_exists snap then
      verified snap :: List.rev_map (fun (_, p) -> verified p)
                         (generation_snapshots dir)
    else if
      Sys.file_exists (wal_path dir)
      || generation_snapshots dir <> []
      || generation_wals dir <> []
    then
      {
        f_file = rel dir snap;
        f_ok = false;
        f_detail = "missing (recovery falls back to the generation chain)";
      }
      :: List.rev_map (fun (_, p) -> verified p) (generation_snapshots dir)
    else []
  in
  let wal_entries =
    List.map
      (fun (_, p) -> entry (rel dir p) (describe_wal p))
      (generation_wals dir)
    @
    if Sys.file_exists (wal_path dir) then
      [ entry (rel dir (wal_path dir)) (describe_wal (wal_path dir)) ]
    else []
  in
  let entries = snap_entries @ wal_entries in
  let have_snapshot = List.exists (fun e -> e.f_ok) snap_entries in
  {
    fsck_entries = entries;
    fsck_recoverable = have_snapshot || entries = [];
    fsck_clean =
      List.for_all (fun e -> e.f_ok) entries
      && (have_snapshot || entries = []);
  }

type repair_report = {
  repair_actions : (string * string) list;
      (** (file relative to the state dir, what was done) *)
  repair_recoverable : bool;
}

let repair ~dir =
  require_state_dir dir;
  let actions = ref [] in
  let act file what = actions := (rel dir file, what) :: !actions in
  (* WAL segments first: salvage damaged tails (quarantining the bad bytes),
     quarantine wholly unreadable files *)
  let heal_wal path =
    if Sys.file_exists path then
      match Wal.scan path with
      | { Wal.s_damage = None; _ } -> ()
      | { Wal.s_damage = Some d; _ } ->
        ignore (Wal.salvage path);
        act path
          (Printf.sprintf "salvaged: %d byte(s) of %s tail quarantined to %s"
             d.Wal.d_bytes
             (Wal.damage_kind_label d.Wal.d_kind)
             (rel dir (Wal.quarantine_path path)))
      | exception Wal.Corrupt _ ->
        let q = path ^ ".quarantine" in
        (try Sys.rename path q with Sys_error _ -> ());
        Wal.fsync_dir path;
        act path ("unreadable: quarantined to " ^ rel dir q)
  in
  List.iter (fun (_, p) -> heal_wal p) (generation_wals dir);
  heal_wal (wal_path dir);
  (* snapshots: quarantine the unverifiable ones; at least one must survive
     (or the directory must end up empty) for the store to be recoverable *)
  let heal_snapshot path =
    match verify_snapshot path with
    | Ok _ -> true
    | Error detail ->
      let q = quarantine_snapshot path in
      act path
        (Printf.sprintf "unverifiable (%s): quarantined to %s" detail
           (rel dir q));
      false
  in
  let survivors =
    List.filter heal_snapshot
      ((if Sys.file_exists (snapshot_path dir) then [ snapshot_path dir ]
        else [])
      @ List.map snd (generation_snapshots dir))
  in
  let empty =
    survivors = []
    && (not (Sys.file_exists (wal_path dir)))
    && generation_wals dir = []
  in
  {
    repair_actions = List.rev !actions;
    repair_recoverable = survivors <> [] || empty;
  }

(* --- audit ------------------------------------------------------------- *)

let full_audit reference r =
  let got = Engines.view_contents r.engine in
  let expected = Algebra.Eval.eval reference r.view in
  Relation.equal got expected

let audit ?sample t ~reference =
  List.rev_map
    (fun r ->
      let ok =
        match sample with
        | Some k -> (
          (* the continuous drift auditor: recompute [k] sampled group
             keys from the retained detail and cross-check the maintained
             view; engines without retained detail (full replicas,
             partitioned views) fall back to the full comparison *)
          match Engines.self_audit ~sample:k r.engine with
          | Some (_checked, divergences) -> divergences = 0
          | None -> full_audit reference r)
        | None -> full_audit reference r
      in
      (r.view.View.name, ok))
    t.views

let self_audit t ~sample =
  List.rev
    (List.filter_map
       (fun r ->
         Option.map
           (fun (checked, divergences) ->
             (r.view.View.name, checked, divergences))
           (Engines.self_audit ~sample r.engine))
       t.views)

(* --- attribution ------------------------------------------------------- *)

type reconciliation = {
  rec_view : string;
  rec_aux : string;
  rec_base : string;
  measured_resident : int;
  gauge_resident : int;
  measured_detail : int;
  gauge_detail : int;
  consistent : bool;  (** both deltas within the +-1 row tolerance *)
}

let attribution t =
  let source = believed_source t in
  List.filter_map
    (fun r ->
      Option.map
        (fun d ->
          let attrs = Mindetail.Attribution.measure source d in
          Mindetail.Attribution.set_gauges ~view:r.view.View.name attrs;
          (r.view.View.name, attrs))
        (Engines.derivation r.engine))
    (List.rev t.views)

(* Reconcile the recomputed attribution against the live aux gauges the
   maintenance engines publish: the waterfall's survivor counts must land
   within one row of what incremental maintenance actually stores.
   Meaningful only while telemetry is enabled (the gauges self-gate). *)
let reconcile_attribution t =
  if not (Telemetry.enabled ()) then []
  else
    List.concat_map
      (fun (view_name, attrs) ->
        List.filter_map
          (fun (a : Mindetail.Attribution.t) ->
            if not a.Mindetail.Attribution.retained then None
            else begin
              let labels =
                [
                  ("view", view_name);
                  ("aux", a.Mindetail.Attribution.aux);
                  ("base", a.Mindetail.Attribution.table);
                ]
              in
              let gauge name =
                int_of_float
                  (Float.round
                     (Telemetry.Gauge.value (Telemetry.Gauge.make ~labels name)))
              in
              let gauge_resident = gauge "minview_aux_resident_rows" in
              let gauge_detail = gauge "minview_aux_detail_rows" in
              let measured_resident = a.Mindetail.Attribution.resident_rows in
              let measured_detail = a.Mindetail.Attribution.rows_after_join in
              Some
                {
                  rec_view = view_name;
                  rec_aux = a.Mindetail.Attribution.aux;
                  rec_base = a.Mindetail.Attribution.table;
                  measured_resident;
                  gauge_resident;
                  measured_detail;
                  gauge_detail;
                  consistent =
                    abs (measured_resident - gauge_resident) <= 1
                    && abs (measured_detail - gauge_detail) <= 1;
                }
            end)
          attrs)
      (attribution t)

(* --- report ------------------------------------------------------------ *)

let report t =
  let buf = Buffer.create 1024 in
  let named =
    List.filter_map
      (fun r ->
        Option.map
          (fun d -> (r.view.View.name, d))
          (Engines.derivation r.engine))
      (List.rev t.views)
  in
  if List.length named > 1 then begin
    Buffer.add_string buf "#### sharing across summary tables\n";
    Buffer.add_string buf (Mindetail.Sharing.report named);
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "#### view %s [%s]\n" r.view.View.name
           (strategy_name r.strategy));
      (match Engines.derivation r.engine with
      | Some d -> Buffer.add_string buf (Mindetail.Explain.report d)
      | None -> Buffer.add_string buf "(full replica of referenced tables)\n");
      Buffer.add_string buf "detail storage:\n";
      Buffer.add_string buf
        (Storage.render_profile Storage.paper_model
           (Engines.detail_profile r.engine));
      Buffer.add_char buf '\n')
    (List.rev t.views);
  Buffer.contents buf
