module Storage = struct
  type model = { bytes_per_field : int }

  let paper_model = { bytes_per_field = 4 }

  let bytes m ~rows ~fields = rows * fields * m.bytes_per_field

  let show_bytes n =
    let f = float_of_int n in
    let kib = 1024. in
    if f >= kib ** 3. then Printf.sprintf "%.1f GB" (f /. (kib ** 3.))
    else if f >= kib ** 2. then Printf.sprintf "%.1f MB" (f /. (kib ** 2.))
    else if f >= kib then Printf.sprintf "%.1f KB" (f /. kib)
    else Printf.sprintf "%d B" n

  let profile_bytes m profile =
    List.fold_left
      (fun acc (_, rows, fields) -> acc + bytes m ~rows ~fields)
      0 profile

  let render_profile m profile =
    let rows =
      List.map
        (fun (name, rows, fields) ->
          [
            name; string_of_int rows; string_of_int fields;
            show_bytes (bytes m ~rows ~fields);
          ])
        profile
      @ [ [ "TOTAL"; ""; ""; show_bytes (profile_bytes m profile) ] ]
    in
    Relational.Table_printer.render
      ~header:[ "object"; "rows"; "fields"; "size" ]
      rows
end

module Database = Relational.Database
module Relation = Relational.Relation
module Delta = Relational.Delta
module Validator = Relational.Validator
module View = Algebra.View
module Engines = Maintenance.Engines
module Faults = Maintenance.Faults

let log_src =
  Logs.Src.create "minview.warehouse" ~doc:"warehouse durability & ingestion"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Obs = struct
  let commits =
    Telemetry.Counter.make ~help:"Batches committed across all engines"
      "minview_warehouse_txn_commits_total"

  let rollbacks =
    Telemetry.Counter.make
      ~help:"Batches rolled back after a mid-batch engine failure"
      "minview_warehouse_txn_rollbacks_total"

  let recoveries =
    Telemetry.Counter.make ~help:"Successful crash recoveries"
      "minview_warehouse_recoveries_total"

  let replayed =
    Telemetry.Counter.make ~help:"WAL batches replayed during recovery"
      "minview_warehouse_replayed_batches_total"

  let quarantined =
    Telemetry.Counter.make ~help:"Deltas quarantined to the dead-letter queue"
      "minview_warehouse_quarantined_deltas_total"

  let parallel_resets =
    Telemetry.Counter.make
      ~help:
        "Snapshot loads that dropped a saved parallel pool (pools are \
         runtime-only)"
      "minview_warehouse_parallel_resets_total"

  let checkpoint_seconds =
    Telemetry.Histogram.make ~help:"Snapshot checkpoint latency"
      "minview_warehouse_checkpoint_seconds"

  let ingest_seconds =
    Telemetry.Histogram.make ~help:"End-to-end latency of one ingested batch"
      "minview_warehouse_ingest_seconds"
end

(* --- errors ------------------------------------------------------------ *)

type error_kind =
  | Duplicate_view
  | Unknown_view
  | Not_aged
  | Not_persistable
  | Corrupt_state
  | Incompatible_state
  | Not_durable
  | Io_error
  | Invalid_request

exception Error of { kind : error_kind; detail : string }

let kind_label = function
  | Duplicate_view -> "duplicate-view"
  | Unknown_view -> "unknown-view"
  | Not_aged -> "not-aged"
  | Not_persistable -> "not-persistable"
  | Corrupt_state -> "corrupt-state"
  | Incompatible_state -> "incompatible-state"
  | Not_durable -> "not-durable"
  | Io_error -> "io-error"
  | Invalid_request -> "invalid-request"

let err kind fmt =
  Format.kasprintf (fun detail -> raise (Error { kind; detail })) fmt

(* --- state ------------------------------------------------------------- *)

type strategy =
  | Minimal
  | Psj
  | Replicate
  | Aged of (Relational.Tuple.t -> bool)

type registered = {
  view : View.t;
  strategy : strategy;
  engine : Engines.t;
}

type t = {
  source : Database.t;
  mutable views : registered list;  (** newest first *)
  validator : Validator.t;
  mutable dead : Delta.rejection list;  (** newest first *)
  mutable seq : int;  (** WAL-recorded batches (committed or aborted) *)
  mutable wal : Wal.writer option;
  mutable dir : string option;
  mutable checkpoint_every : int option;
  (* runtime-only (like [wal]): never marshaled, so snapshots stay portable
     to hosts with different core counts; [load]/[recover] reset it *)
  mutable parallel : Maintenance.Shard.pool option;
}

let create source =
  {
    source;
    views = [];
    validator = Validator.of_database source;
    dead = [];
    seq = 0;
    wal = None;
    dir = None;
    checkpoint_every = None;
    parallel = None;
  }

let set_parallel t pool = t.parallel <- pool

let add_view ?(strategy = Minimal) t view =
  if
    List.exists
      (fun r -> String.equal r.view.View.name view.View.name)
      t.views
  then err Duplicate_view "a view named %s is already registered" view.View.name;
  let engine =
    match strategy with
    | Minimal -> Engines.minimal t.source view
    | Psj -> Engines.psj t.source view
    | Replicate -> Engines.recompute t.source view
    | Aged is_old -> Engines.partitioned t.source view ~is_old
  in
  t.views <- { view; strategy; engine } :: t.views

let add_view_sql ?strategy t sql =
  match Sqlfront.Parser.statement sql with
  | Sqlfront.Ast.Create_view { name; select } ->
    add_view ?strategy t (Sqlfront.Elaborate.view_of_select t.source ~name select)
  | _ -> err Invalid_request "add_view_sql: expected CREATE VIEW"

let view_names t = List.rev_map (fun r -> r.view.View.name) t.views
let views t = List.rev_map (fun r -> r.view) t.views

let find t name =
  match
    List.find_opt (fun r -> String.equal r.view.View.name name) t.views
  with
  | Some r -> r
  | None -> err Unknown_view "no view named %s is registered" name

let query t name =
  let r = find t name in
  (Algebra.Eval.output_columns r.view, Engines.view_contents r.engine)

let derivation_of t name = Engines.derivation (find t name).engine

let age_out t name facts =
  let r = find t name in
  match Engines.as_partitioned r.engine with
  | Some p -> Maintenance.Partitioned.age_out p facts
  | None -> err Not_aged "view %s is not registered with the Aged strategy" name

let detail_profile t =
  let qualify view_name (name, rows, fields) =
    ((if List.length t.views > 1 then view_name ^ "/" ^ name else name),
      rows, fields)
  in
  List.concat_map
    (fun r ->
      List.map (qualify r.view.View.name) (Engines.detail_profile r.engine))
    (List.rev t.views)

let strategy_name = function
  | Minimal -> "minimal (Algorithm 3.2)"
  | Psj -> "PSJ (Quass et al.)"
  | Replicate -> "full replication"
  | Aged _ -> "aged (current + append-only old partition)"

(* --- persistence ------------------------------------------------------- *)

let snapshot_magic = "minview-warehouse-state/3\n"
let v2_magic = "minview-warehouse-state/2\n"
let legacy_magic = "minview-warehouse-state/1\n"

let save t path =
  List.iter
    (fun r ->
      match r.strategy with
      | Aged _ ->
        err Not_persistable
          "view %s uses an Aged partition predicate and cannot be persisted"
          r.view.View.name
      | Minimal | Psj | Replicate -> ())
    t.views;
  (* the pool itself is runtime-only and never marshaled, but its size is
     recorded so a later load can warn that it was not restored *)
  let parallel_domains =
    match t.parallel with
    | Some pool -> Maintenance.Shard.domains pool
    | None -> 0
  in
  let payload =
    Marshal.to_string
      (t.views, t.source, t.validator, t.dead, t.seq, parallel_domains)
      []
  in
  let header = Buffer.create 8 in
  Buffer.add_int32_le header (Int32.of_int (String.length payload));
  Buffer.add_int32_le header (Int32.of_int (Checksum.string payload));
  let tmp = path ^ ".tmp" in
  let oc = try open_out_bin tmp with Sys_error m -> err Io_error "%s" m in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc snapshot_magic;
      Buffer.output_buffer oc header;
      (* crash point: half a payload behind a valid header — the torn temp
         file must stay invisible to recovery (the rename never happens) *)
      let half = String.length payload / 2 in
      output_substring oc payload 0 half;
      Faults.hit Faults.Mid_checkpoint;
      output_substring oc payload half (String.length payload - half);
      flush oc;
      (* the snapshot must be on disk before the rename publishes it *)
      (try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error _ -> ()));
  Sys.rename tmp path;
  Wal.fsync_dir path

(* Load a snapshot; also returns the saved pool size so callers can warn
   about the reset (the pool is never restored — see [warn_parallel_reset]). *)
let load_with path =
  let ic = try open_in_bin path with Sys_error m -> err Io_error "%s" m in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let total = in_channel_length ic in
      let magic_len = String.length snapshot_magic in
      if total < magic_len then
        err Corrupt_state "%s: truncated header (%d bytes)" path total;
      let header = really_input_string ic magic_len in
      if String.equal header legacy_magic then
        err Incompatible_state
          "%s uses the unchecksummed version-1 format; re-save it with this \
           build"
          path;
      if String.equal header v2_magic then
        err Incompatible_state
          "%s uses the version-2 format without the parallel-pool record; \
           re-save it with this build"
          path;
      if not (String.equal header snapshot_magic) then
        err Corrupt_state "%s is not a warehouse state file" path;
      if total - magic_len < 8 then
        err Corrupt_state "%s: truncated frame header" path;
      let frame = really_input_string ic 8 in
      let u32 off =
        Int32.to_int (String.get_int32_le frame off) land 0xffffffff
      in
      let len = u32 0 and crc = u32 4 in
      if len > total - magic_len - 8 then
        err Corrupt_state "%s: truncated payload (%d of %d bytes)" path
          (total - magic_len - 8) len;
      let payload = really_input_string ic len in
      if Checksum.string payload <> crc then
        err Corrupt_state "%s: checksum mismatch" path;
      match
        (Marshal.from_string payload 0
          : registered list * Database.t * Validator.t * Delta.rejection list
            * int * int)
      with
      | views, source, validator, dead, seq, parallel_domains ->
        ( {
            source;
            views;
            validator;
            dead;
            seq;
            wal = None;
            dir = None;
            checkpoint_every = None;
            parallel = None;
          },
          parallel_domains )
      | exception _ ->
        err Corrupt_state "%s: undecodable payload (incompatible build?)" path)

(* The structured warning for the set_parallel/recover interaction: the
   snapshot was taken by a warehouse with a domain pool, but pools are
   runtime-only, so the loaded warehouse is serial until [set_parallel] is
   called again. *)
let warn_parallel_reset path domains =
  if domains > 0 then begin
    Log.warn (fun m ->
        m
          "%s was saved with a %d-domain parallel pool; pools are \
           runtime-only and are not restored — call set_parallel again"
          path domains);
    Telemetry.Counter.one Obs.parallel_resets;
    Telemetry.Trace.event "warehouse.parallel-reset"
      ~attrs:[ ("path", path); ("domains", string_of_int domains) ]
  end

let load path =
  let t, parallel_domains = load_with path in
  warn_parallel_reset path parallel_domains;
  t

(* --- durability: attach / checkpoint ----------------------------------- *)

let wal_path dir = Filename.concat dir "wal.bin"
let snapshot_path dir = Filename.concat dir "snapshot.bin"
let lineage_path dir = Filename.concat dir "lineage.jsonl"

(* --- lineage ----------------------------------------------------------- *)

let delta_table_counts deltas =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (d : Delta.t) ->
      let n =
        Option.value (Hashtbl.find_opt counts d.Delta.table) ~default:0
      in
      Hashtbl.replace counts d.Delta.table (n + 1))
    deltas;
  Hashtbl.fold (fun tbl n acc -> (tbl, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* One lineage record per committed batch, keyed by its WAL sequence
   number. Called only after [commit_engines] (never on the rollback or
   quarantine paths), so every emitted record describes durable state. *)
let emit_lineage t ~seq deltas =
  if Telemetry.enabled () then
    Telemetry.Lineage.emit
      {
        Telemetry.Lineage.txn = seq;
        tables = delta_table_counts deltas;
        flows =
          List.filter_map
            (fun r -> Engines.last_flow r.engine)
            (List.rev t.views);
      }

let checkpoint t =
  match (t.dir, t.wal) with
  | Some dir, Some wal ->
    Telemetry.with_phase Obs.checkpoint_seconds "warehouse.checkpoint"
      ~attrs:[ ("dir", dir) ]
      (fun () ->
        save t (snapshot_path dir);
        (* crash point: new snapshot in place, WAL not yet truncated — replay
           must recognize the WAL's batches as already checkpointed *)
        Faults.hit Faults.Before_wal_truncate;
        Wal.truncate wal)
  | _ ->
    err Not_durable "checkpoint: attach the warehouse to a state directory first"

let attach ?checkpoint_every t ~dir =
  if t.wal <> None then
    err Invalid_request "warehouse is already attached to %s"
      (Option.value t.dir ~default:"a state directory");
  (match Sys.is_directory dir with
  | true -> ()
  | false -> err Io_error "%s exists and is not a directory" dir
  | exception Sys_error _ -> (
    try Sys.mkdir dir 0o755 with Sys_error m -> err Io_error "%s" m));
  t.dir <- Some dir;
  t.checkpoint_every <- checkpoint_every;
  (match Wal.open_append (wal_path dir) with
  | w -> t.wal <- Some w
  | exception Wal.Corrupt m -> err Corrupt_state "%s" m);
  (* lineage records persist next to the WAL commit markers they mirror *)
  Telemetry.Lineage.set_sink (Some (lineage_path dir));
  (* durable from the start: a crash right after attach recovers to here *)
  checkpoint t

let close t =
  Option.iter Wal.close t.wal;
  if t.dir <> None then Telemetry.Lineage.set_sink None;
  t.wal <- None;
  t.dir <- None

(* --- ingestion --------------------------------------------------------- *)

type report = { batch : int; applied : int; rejected : Delta.rejection list }

let dead_letters t = List.rev t.dead
let clear_dead_letters t = t.dead <- []

let quarantine t rejections =
  Telemetry.Counter.inc Obs.quarantined (List.length rejections);
  t.dead <- List.rev_append rejections t.dead
let believed_source t = Validator.believed_source t.validator
let ingested_batches t = t.seq

(* Transactional apply, in place: every engine opens an undo journal and
   absorbs the batch directly; a mid-batch failure rolls back only the
   touched groups, so the registered views can never disagree about which
   deltas they have seen — at O(delta) cost. The hot path never deep-copies
   engine state ([Engines.copy] is reserved for snapshot checkpoints). *)
let apply_in_place t deltas =
  List.iter (fun r -> Engines.begin_txn r.engine) t.views;
  List.iteri
    (fun i r ->
      Engines.apply_batch ?parallel:t.parallel r.engine deltas;
      if i = 0 then Faults.hit Faults.Mid_engine_apply)
    t.views

let commit_engines t = List.iter (fun r -> Engines.commit r.engine) t.views

let rollback_engines t = List.iter (fun r -> Engines.rollback r.engine) t.views

let engine_error_detail = function
  | Maintenance.Engine.Invariant m -> m
  | Failure m | Invalid_argument m -> m
  | e -> Printexc.to_string e

(* [~sync:false] stages the WAL records in the writer's buffer instead of
   fsyncing per batch — the group-commit path of {!ingest_all}, which pays
   one durability barrier for the whole burst. *)
let ingest_report_inner ~sync t deltas =
  Validator.begin_txn t.validator;
  let accepted, rejected =
    List.fold_left
      (fun (acc, rej) d ->
        match Validator.admit t.validator d with
        | Ok d -> (d :: acc, rej)
        | Error r -> (acc, r :: rej))
      ([], []) deltas
  in
  let accepted = List.rev accepted and rejected = List.rev rejected in
  quarantine t rejected;
  if accepted = [] then begin
    Validator.commit t.validator;
    { batch = t.seq; applied = 0; rejected }
  end
  else begin
    let seq = t.seq + 1 in
    Option.iter
      (fun w ->
        Wal.append ~sync w (Wal.Batch { seq; deltas = accepted });
        (* synced: the record is durable and this is the commit point;
           unsynced: the group's final {!Wal.sync} is *)
        Faults.hit Faults.After_wal_append)
      t.wal;
    match apply_in_place t accepted with
    | () ->
      commit_engines t;
      Validator.commit t.validator;
      Telemetry.Counter.one Obs.commits;
      t.seq <- seq;
      emit_lineage t ~seq accepted;
      (match t.checkpoint_every with
      | Some n when n > 0 && t.seq mod n = 0 && t.wal <> None -> checkpoint t
      | Some _ | None -> ());
      { batch = seq; applied = List.length accepted; rejected }
    | exception (Faults.Crash _ as crash) ->
      (* a simulated process death: unwind without any cleanup (the open
         journals die with the process; recovery reloads from disk) *)
      raise crash
    | exception e ->
      (* an engine failed mid-batch: roll every engine back to its
         before-image (engines past the failure have empty journals), roll
         the shadow back, mark the WAL record aborted and quarantine the
         whole batch *)
      rollback_engines t;
      Validator.rollback t.validator;
      Telemetry.Counter.one Obs.rollbacks;
      Option.iter (fun w -> Wal.append ~sync w (Wal.Abort { seq })) t.wal;
      t.seq <- seq;
      let detail = engine_error_detail e in
      let aborted =
        List.map
          (fun d -> { Delta.delta = d; reason = Delta.Engine_failure; detail })
          accepted
      in
      quarantine t aborted;
      { batch = seq; applied = 0; rejected = rejected @ aborted }
  end

let ingest_report_with ~sync t deltas =
  Telemetry.with_phase Obs.ingest_seconds "warehouse.ingest" (fun () ->
      ingest_report_inner ~sync t deltas)

let ingest_report t deltas = ingest_report_with ~sync:true t deltas
let ingest t deltas = ignore (ingest_report t deltas)

(* Group commit: every batch of the burst stages its WAL record in the
   writer's buffer; one [Wal.sync] then makes the whole burst durable with a
   single write and fsync. Deferred acknowledgement — a crash inside the
   burst can lose a suffix of the staged batches, but recovery always comes
   back at a batch boundary of the durable prefix, so the resume cursor
   ({!ingested_batches}) stays valid. *)
let ingest_all t batches =
  let reports = List.map (ingest_report_with ~sync:false t) batches in
  Option.iter Wal.sync t.wal;
  reports

(* --- recovery ----------------------------------------------------------- *)

(* Replay one committed batch during recovery. The batch was validated when
   first ingested; a failure here (diverged shadow, deterministic engine
   bug) quarantines it instead of making recovery itself fail. *)
let replay_batch t ~seq deltas =
  Telemetry.Counter.one Obs.replayed;
  Validator.begin_txn t.validator;
  let abandon detail =
    (* undoes the admitted prefix of a batch whose validation failed midway *)
    Validator.rollback t.validator;
    quarantine t
      (List.map
         (fun d -> { Delta.delta = d; reason = Delta.Engine_failure; detail })
         deltas)
  in
  (match
     List.find_map
       (fun d ->
         match Validator.admit t.validator d with
         | Ok _ -> None
         | Error r -> Some r)
       deltas
   with
  | Some r -> abandon ("replay validation failed: " ^ r.Delta.detail)
  | None -> (
    match apply_in_place t deltas with
    | () ->
      commit_engines t;
      Validator.commit t.validator;
      emit_lineage t ~seq deltas
    | exception (Faults.Crash _ as crash) -> raise crash
    | exception e ->
      rollback_engines t;
      abandon (engine_error_detail e)));
  t.seq <- seq

let recover ~dir =
  Telemetry.Trace.with_span "warehouse.recover"
    ~attrs:[ ("dir", dir) ]
    (fun () ->
      let snapshot = snapshot_path dir in
      let t, parallel_domains = load_with snapshot in
      warn_parallel_reset snapshot parallel_domains;
      let records =
        match Wal.read_all (wal_path dir) with
        | records, _clean -> records
        | exception Wal.Corrupt m -> err Corrupt_state "%s" m
      in
      let aborted =
        List.filter_map
          (function Wal.Abort { seq } -> Some seq | Wal.Batch _ -> None)
          records
      in
      (* open the sink before replay so replayed batches leave their
         lineage records in the same file as live ingestion *)
      Telemetry.Lineage.set_sink (Some (lineage_path dir));
      List.iter
        (function
          | Wal.Abort { seq } -> t.seq <- max t.seq seq
          | Wal.Batch { seq; deltas } ->
            if seq > t.seq && not (List.mem seq aborted) then
              replay_batch t ~seq deltas
            else t.seq <- max t.seq seq)
        records;
      t.dir <- Some dir;
      (match Wal.open_append (wal_path dir) with
      | w -> t.wal <- Some w
      | exception Wal.Corrupt m -> err Corrupt_state "%s" m);
      Telemetry.Counter.one Obs.recoveries;
      t)

(* --- audit ------------------------------------------------------------- *)

let full_audit reference r =
  let got = Engines.view_contents r.engine in
  let expected = Algebra.Eval.eval reference r.view in
  Relation.equal got expected

let audit ?sample t ~reference =
  List.rev_map
    (fun r ->
      let ok =
        match sample with
        | Some k -> (
          (* the continuous drift auditor: recompute [k] sampled group
             keys from the retained detail and cross-check the maintained
             view; engines without retained detail (full replicas,
             partitioned views) fall back to the full comparison *)
          match Engines.self_audit ~sample:k r.engine with
          | Some (_checked, divergences) -> divergences = 0
          | None -> full_audit reference r)
        | None -> full_audit reference r
      in
      (r.view.View.name, ok))
    t.views

let self_audit t ~sample =
  List.rev
    (List.filter_map
       (fun r ->
         Option.map
           (fun (checked, divergences) ->
             (r.view.View.name, checked, divergences))
           (Engines.self_audit ~sample r.engine))
       t.views)

(* --- attribution ------------------------------------------------------- *)

type reconciliation = {
  rec_view : string;
  rec_aux : string;
  rec_base : string;
  measured_resident : int;
  gauge_resident : int;
  measured_detail : int;
  gauge_detail : int;
  consistent : bool;  (** both deltas within the +-1 row tolerance *)
}

let attribution t =
  let source = believed_source t in
  List.filter_map
    (fun r ->
      Option.map
        (fun d ->
          let attrs = Mindetail.Attribution.measure source d in
          Mindetail.Attribution.set_gauges ~view:r.view.View.name attrs;
          (r.view.View.name, attrs))
        (Engines.derivation r.engine))
    (List.rev t.views)

(* Reconcile the recomputed attribution against the live aux gauges the
   maintenance engines publish: the waterfall's survivor counts must land
   within one row of what incremental maintenance actually stores.
   Meaningful only while telemetry is enabled (the gauges self-gate). *)
let reconcile_attribution t =
  if not (Telemetry.enabled ()) then []
  else
    List.concat_map
      (fun (view_name, attrs) ->
        List.filter_map
          (fun (a : Mindetail.Attribution.t) ->
            if not a.Mindetail.Attribution.retained then None
            else begin
              let labels =
                [
                  ("view", view_name);
                  ("aux", a.Mindetail.Attribution.aux);
                  ("base", a.Mindetail.Attribution.table);
                ]
              in
              let gauge name =
                int_of_float
                  (Float.round
                     (Telemetry.Gauge.value (Telemetry.Gauge.make ~labels name)))
              in
              let gauge_resident = gauge "minview_aux_resident_rows" in
              let gauge_detail = gauge "minview_aux_detail_rows" in
              let measured_resident = a.Mindetail.Attribution.resident_rows in
              let measured_detail = a.Mindetail.Attribution.rows_after_join in
              Some
                {
                  rec_view = view_name;
                  rec_aux = a.Mindetail.Attribution.aux;
                  rec_base = a.Mindetail.Attribution.table;
                  measured_resident;
                  gauge_resident;
                  measured_detail;
                  gauge_detail;
                  consistent =
                    abs (measured_resident - gauge_resident) <= 1
                    && abs (measured_detail - gauge_detail) <= 1;
                }
            end)
          attrs)
      (attribution t)

(* --- report ------------------------------------------------------------ *)

let report t =
  let buf = Buffer.create 1024 in
  let named =
    List.filter_map
      (fun r ->
        Option.map
          (fun d -> (r.view.View.name, d))
          (Engines.derivation r.engine))
      (List.rev t.views)
  in
  if List.length named > 1 then begin
    Buffer.add_string buf "#### sharing across summary tables\n";
    Buffer.add_string buf (Mindetail.Sharing.report named);
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "#### view %s [%s]\n" r.view.View.name
           (strategy_name r.strategy));
      (match Engines.derivation r.engine with
      | Some d -> Buffer.add_string buf (Mindetail.Explain.report d)
      | None -> Buffer.add_string buf "(full replica of referenced tables)\n");
      Buffer.add_string buf "detail storage:\n";
      Buffer.add_string buf
        (Storage.render_profile Storage.paper_model
           (Engines.detail_profile r.engine));
      Buffer.add_char buf '\n')
    (List.rev t.views);
  Buffer.contents buf
