(** The data warehouse of Figure 1 — see the facade functions below — and
    the storage accounting model. *)

(** The paper's storage accounting (Section 1.1): size = rows x fields x
    bytes-per-field, reported in binary units. *)
module Storage : sig
  (** The paper's storage accounting (Section 1.1): size = rows × fields ×
      bytes-per-field, reported in binary units (the paper's "245 GBytes" is
      13.14e9 tuples × 5 fields × 4 bytes ≈ 244.7 GiB). *)

  type model = { bytes_per_field : int }

  (** 4 bytes per field, as in the paper's case study. *)
  val paper_model : model

  val bytes : model -> rows:int -> fields:int -> int

  (** Human-readable binary-unit rendering ("244.7 GB", "167.1 MB" — the paper
      writes GBytes/MBytes for GiB/MiB). *)
  val show_bytes : int -> string

  (** Total bytes of a (name, rows, fields) profile. *)
  val profile_bytes : model -> (string * int * int) list -> int

  (** Render a profile as an ASCII table with per-object and total sizes. *)
  val render_profile : model -> (string * int * int) list -> string
end

(** {2 Errors} *)

type error_kind =
  | Duplicate_view  (** a view with that name is already registered *)
  | Unknown_view  (** no view with that name is registered *)
  | Not_aged  (** age-out requested on a non-[Aged] view *)
  | Not_persistable  (** an [Aged] view (closure predicate) blocks [save] *)
  | Corrupt_state  (** a state/WAL file failed integrity checks *)
  | Incompatible_state  (** a state file from an unsupported format version *)
  | Not_durable  (** a durability operation on an unattached warehouse *)
  | Io_error  (** the underlying filesystem operation failed *)
  | Invalid_request  (** a malformed request (bad SQL, double attach, ...) *)

(** Every failure of the warehouse API. [detail] is a human-readable
    message; [kind] is the machine-readable class (see {!kind_label}). *)
exception Error of { kind : error_kind; detail : string }

(** Stable kebab-case label of an {!error_kind} ("corrupt-state", ...). *)
val kind_label : error_kind -> string

(** {2 The warehouse}

    The data warehouse of Figure 1: summarized data (materialized GPSJ views)
    over current detail data (the minimal auxiliary views), fed by the source
    delta stream.

    The warehouse reads the operational store exactly once per registered
    view — at registration, mirroring the initial extract — and afterwards
    maintains everything from {!ingest}ed deltas alone. Ingestion is
    {e validated} (deltas are checked against the believed source state
    before any engine sees them; rejects land in a dead-letter queue) and
    {e transactional} (a batch is applied to every registered view or to
    none). Attach a state directory ({!attach}) to make it durable:
    accepted batches are written ahead to a log and {!recover} replays the
    tail after a crash. *)

type strategy =
  | Minimal  (** Algorithm 3.2 auxiliary views (the paper) *)
  | Psj  (** Quass et al. tuple-level auxiliary views *)
  | Replicate  (** full base replica + recomputation *)
  | Aged of (Relational.Tuple.t -> bool)
      (** current/old split of the fact table: the predicate selects the
          append-only old partition (Figure 1 + Section 4); the view must be
          distributively mergeable (no AVG/DISTINCT) *)

type t

(** [create source] prepares a warehouse attached to an operational store. *)
val create : Relational.Database.t -> t

(** Register a summary table. Performs the initial load.
    @raise Algebra.View.Invalid on malformed views, {!Error}
    ([Duplicate_view]) on duplicate names. *)
val add_view : ?strategy:strategy -> t -> Algebra.View.t -> unit

(** Register a view given as SQL text ([CREATE VIEW ... AS SELECT ...;]).
    @raise Error ([Invalid_request]) if the statement is not CREATE VIEW. *)
val add_view_sql : ?strategy:strategy -> t -> string -> unit

(** {2 Ingestion}

    Deltas are validated against the warehouse's {e believed} source state —
    the initial extract advanced by every previously accepted delta — before
    any maintenance engine sees them: schema conformance, key constraints,
    and referential integrity. Rejected deltas are quarantined in the
    dead-letter queue with machine-readable reasons; valid deltas of the
    same batch still apply (graceful degradation).

    Accepted deltas apply {e atomically} across every registered view:
    engines absorb the batch on private copies that are swapped in only once
    all of them succeeded, so a mid-batch engine failure leaves every view
    at its pre-batch state (and quarantines the batch). *)

(** Outcome of one {!ingest_report} call: [batch] is the WAL sequence number
    (unchanged if nothing was accepted), [applied] the number of deltas
    applied to the views, [rejected] the quarantined deltas. *)
type report = {
  batch : int;
  applied : int;
  rejected : Relational.Delta.rejection list;
}

(** Feed source changes to every registered view (see above for the
    validation and atomicity contract). *)
val ingest : t -> Relational.Delta.t list -> unit

(** As {!ingest}, returning what happened. *)
val ingest_report : t -> Relational.Delta.t list -> report

(** [ingest_all t batches] ingests a burst of batches under {e group
    commit}: each batch stages its WAL record in the writer's buffer and a
    single {!Wal.sync} — one write, one fsync — makes the whole burst
    durable before the reports are returned. Durability acknowledgement is
    deferred to that final sync: a crash inside the burst can lose staged
    batches, but recovery still comes back at a batch boundary of the
    durable prefix and {!ingested_batches} remains a valid resume cursor.
    [?in_flight] (default 64) bounds the exposure: an intermediate
    durability barrier is issued before more than that many batches ride on
    un-fsynced WAL frames. Validation, atomicity and quarantine behave
    exactly as [List.map (ingest_report t) batches]. On an unattached
    warehouse the two are indistinguishable.
    @raise Error ([Invalid_request] if [in_flight < 1]). *)
val ingest_all : ?in_flight:int -> t -> Relational.Delta.t list list -> report list

(** {2 Fault tolerance}

    Two layers keep ingestion going through recoverable trouble:

    {e Transient faults} — a failed WAL durability barrier
    ([Maintenance.Faults.Wal_fsync] in [Fail] mode models a transient fsync
    failure) — are retried with jittered exponential backoff under the
    warehouse's {!retry} policy. Only the barrier is retried, never the
    append (the frames are already staged, so a re-append would duplicate
    records); retries are counted as
    [minview_warehouse_ingest_retries_total]. Exhaustion surfaces as
    {!Error} ([Io_error]) after rolling the validator transaction back
    (no engine has seen the batch at that point) and consuming the batch's
    sequence number under a best-effort WAL abort marker, so a replay
    cannot resurrect a batch the caller was told failed and the next
    ingest starts clean.

    {e Parallel-apply failures} — a shard worker that {e raises}
    ([Maintenance.Faults.In_shard_worker] in [Fail] mode) leaves a
    quiescent pool (every worker is awaited first), so the transaction is
    rolled back and the batch re-applied serially. A worker that {e
    wedges} past a supervised pool's deadline ({!Maintenance.Shard.Wedged})
    may still be executing against the engines — the abandoned domain
    cannot be cancelled — so the batch is aborted and quarantined instead
    (reported as [Engine_failure] rejections, never re-applied in place)
    and every registered engine is rebuilt from the validator's committed
    shadow. Either way ingestion then stays serial until a backoff period
    of clean batches has passed, after which parallel apply is retried
    (exponential period growth on repeated failures, reset after a long
    clean streak). Counted as
    [minview_warehouse_parallel_degradations_total] /
    [..._promotions_total], with the [minview_warehouse_parallel_degraded]
    gauge up while degraded. *)

(** Retry policy for transient ingest faults: up to [attempts] retries, the
    [k]-th delayed by [base_delay * 2^k] seconds (capped at [max_delay],
    jittered). *)
type retry = { attempts : int; base_delay : float; max_delay : float }

val default_retry : retry

(** @raise Error ([Invalid_request] on negative fields). *)
val set_retry : t -> retry -> unit

(** How the next batch will be applied (see the supervision contract
    above). *)
type apply_mode =
  | Serial  (** no parallel pool configured *)
  | Parallel
  | Degraded of { remaining : int; next_backoff : int }
      (** serial fallback: [remaining] clean batches until re-promotion *)

val apply_mode : t -> apply_mode

(** {2 Health and runtime profiling}

    Hooks for the performance observatory: the HTTP exporter's [/healthz]
    checks and the [minview_runtime_offheap_bytes] gauge. *)

(** Whether a durability directory is attached (see {!attach}). *)
val wal_attached : t -> bool

(** Seconds since the last committed batch; [None] before the first
    commit in this process (loads and recoveries start fresh). *)
val last_commit_age_s : t -> float option

(** Off-heap (Bigarray) bytes across every registered view's columnar
    storage — see {!Maintenance.Engines.offheap_bytes}. Walks live engine
    state: call it from the ingesting domain (or while no ingest runs). *)
val offheap_bytes : t -> int

(** Register this warehouse as the {!Telemetry.Runtime} off-heap source,
    so runtime samples publish its {!offheap_bytes}. Process-global, last
    registration wins. *)
val publish_offheap : t -> unit

(** Health checks for {!Telemetry.Http_exporter}. Always four checks:
    [wal] (fails only with [~require_wal:true] and no directory attached),
    [apply] (fails while ingestion is degraded to serial), [last_commit]
    (fails when [?max_commit_age_s] is given and exceeded; "no commits
    yet" passes) and [epoch_lag] (fails when [?max_epoch_lag] batches is
    given and exceeded). Safe to call from another domain: every read is
    one word, at worst one batch stale. *)
val health :
  ?require_wal:bool ->
  ?max_commit_age_s:float ->
  ?max_epoch_lag:int ->
  t ->
  Telemetry.Http_exporter.check list

(** [set_dead_letter_cap t (Some n)] bounds the dead-letter queue to the [n]
    newest rejections: quarantining past the cap drops the oldest letters
    (counted as [minview_warehouse_dead_letters_dropped_total] and warned
    about) instead of growing without bound. [None] (the default) removes
    the cap. @raise Error ([Invalid_request] if [n < 1]). *)
val set_dead_letter_cap : t -> int option -> unit

(** [set_parallel t (Some pool)] makes every subsequent batch apply through
    the compacted shard-parallel fast path ({!Maintenance.Engine.apply_batch}
    with [?parallel]) on engines that support it; [None] (the initial state)
    restores plain serial application. Runtime configuration, not state: the
    pool is never persisted, and {!load}/{!recover} reset it to [None] — a
    recovered warehouse runs serially until [set_parallel] is called again.
    Snapshots record the pool {e size}, so a load that drops a pool emits a
    [minview.warehouse] warning, a [warehouse.parallel-reset] trace event and
    bumps the [minview_warehouse_parallel_resets_total] counter instead of
    resetting silently. *)
val set_parallel : t -> Maintenance.Shard.pool option -> unit

(** The dead-letter queue, oldest first. *)
val dead_letters : t -> Relational.Delta.rejection list

val clear_dead_letters : t -> unit

(** The source state the warehouse believes in: the initial extract advanced
    by every accepted delta. Audits compare view contents against views
    evaluated over this. *)
val believed_source : t -> Relational.Database.t

(** Number of batches recorded so far (committed or aborted); after a
    {!recover}, tells the ingestion driver where to resume. *)
val ingested_batches : t -> int

(** {2 Queries: the epoch read path}

    Reads are served from immutable {e read epochs}, never from the live
    maintenance engines. Every commit — and every registration, load and
    recovery — captures each view's output into a frozen snapshot and
    publishes it with a single atomic pointer swap; {!query},
    {!read_view} and {!with_snapshot} then work entirely on frozen data.
    The contract this buys:

    {ul
    {- {e No torn reads.} A reader racing {!ingest} sees the state before
       the batch or after it, never between: the publication swap at the
       commit point is the only transition. Rollback, quarantine, engine
       rebuild after a wedged shard worker, and crash recovery publish
       nothing partial — an aborted batch is invisible to readers.}
    {- {e Readers never block the writer} (and vice versa). A read is one
       [Atomic.get] plus traversal of immutable data; readers may run on
       any number of concurrent domains while ingestion commits continue.
       Relations handed out by the read API are shared frozen state:
       treat them as read-only.}
    {- {e Bounded staleness, measured.} A snapshot pinned with
       {!current_snapshot} serves the same bytes forever; the gap between
       the WAL head and the epoch a read was served from is published as
       the [minview_warehouse_epoch_lag_batches] gauge (0 on the default
       path, since every commit publishes). Reads are counted as
       [minview_warehouse_reads_total] and timed as
       [minview_warehouse_read_seconds]; publications as
       [minview_warehouse_epoch_publications_total].}}

    {e Row order.} Relations iterate in hashtable order, which depends on
    insertion history — serial and shard-parallel maintenance of identical
    batches may iterate differently. The canonical order of a view's rows
    is [Relational.Relation.to_sorted_list] ([Tuple.compare] ascending);
    {!query_sorted} serves it directly, and the table printer and the
    [minview serve] protocol always emit it, so their output is stable
    across apply modes.

    {e Aged views.} {!query} on a view registered with the {!Aged}
    strategy returns the {e merged} contents: old-partition rows are
    included, aggregated distributively with the current partition
    (Section 4's reader sees one seamless summary). {!age_out} only moves
    detail between partitions and is invisible to readers — the merged
    contents, and therefore the published epoch, are unchanged. *)

val view_names : t -> string list

(** Registered view definitions, in registration order. *)
val views : t -> Algebra.View.t list

(** Contents of a view as of the latest published epoch: output column
    names and frozen rows (see the epoch contract above; treat the
    relation as read-only).
    @raise Error ([Unknown_view]) for unknown names. *)
val query : t -> string -> string list * Relational.Relation.t

(** As {!query}, with the rows in canonical order ((tuple, multiplicity),
    [Tuple.compare] ascending) — stable across serial and parallel apply. *)
val query_sorted :
  t -> string -> string list * (Relational.Tuple.t * int) list

(** An immutable read epoch: the per-view output state captured at one
    commit point. Snapshots are plain frozen values — hold one as long as
    you like (a pinned snapshot is immune to later commits), share it
    across domains, read it repeatedly for identical results. *)
type snapshot

(** The latest published epoch (one atomic load; never blocks). *)
val current_snapshot : t -> snapshot

(** [with_snapshot t f] runs [f] against the latest published epoch — all
    reads inside [f] see one consistent commit point even while ingestion
    continues concurrently. *)
val with_snapshot : t -> (snapshot -> 'a) -> 'a

(** [read_view t name] serves a view from the latest published epoch;
    [read_view ~snapshot t name] from a pinned one. Counted and timed as
    described above.
    @raise Error ([Unknown_view]) if the view is not in the epoch. *)
val read_view :
  ?snapshot:snapshot -> t -> string -> string list * Relational.Relation.t

(** Monotonic publication counter of an epoch (0 = nothing published). *)
val snapshot_epoch : snapshot -> int

(** The WAL sequence number ({!ingested_batches}) the epoch reflects. *)
val snapshot_seq : snapshot -> int

(** The view definitions frozen in an epoch, in registration order. *)
val snapshot_views : snapshot -> Algebra.View.t list

(** The derivation behind a view (None for [Replicate]). *)
val derivation_of : t -> string -> Mindetail.Derive.t option

(** Detail-data storage profile across all views: (object, rows, fields). *)
val detail_profile : t -> (string * int * int) list

(** Measured resident bytes per view: [(view, (object, bytes) list)] with
    the view state first and its auxiliary views after, from the columnar
    segments' per-column byte accounting (see {!Maintenance.Engine
    .measured_bytes}). Views without measured state (the [Replicate]
    baseline stores a boxed replica) are omitted. *)
val measured_bytes : t -> (string * (string * int) list) list

(** [age_out t view facts] moves the given fact tuples of an [Aged] view's
    current partition into its append-only old partition (see
    {!Maintenance.Partitioned.age_out} for the boundary-consistency
    contract). Invisible to readers: {!query} merges both partitions, so
    the view's contents — and the published epoch — are unchanged.
    @raise Error ([Unknown_view] / [Not_aged]). *)
val age_out : t -> string -> Relational.Tuple.t list -> unit

(** [audit t ~reference] recomputes every registered view from scratch over
    [reference] (typically {!believed_source} or the true operational store)
    and reports, per view, whether the maintained contents match.

    With [?sample:k] the audit runs in {e continuous drift} mode instead:
    each incremental engine recomputes [k] evenly sampled group keys from
    its own retained detail (the auxiliary views) and cross-checks the
    maintained groups — [reference] is only consulted for engines without
    retained detail (full replicas, partitioned views). Divergences also
    surface as [minview_lineage_audit_divergences_total] counters and
    [lineage.audit] trace events (see {!Telemetry.Lineage.audit}). *)
val audit :
  ?sample:int -> t -> reference:Relational.Database.t -> (string * bool) list

(** [self_audit t ~sample] is the reference-free drift check alone:
    for every view whose engine retains detail data, recompute [sample]
    sampled groups from it and return [(view, checked, divergences)].
    Views without retained detail are skipped. *)
val self_audit : t -> sample:int -> (string * int * int) list

(** {2 Savings attribution}

    The paper's byte accounting, measured live: how much of the raw
    detail each minimization technique (local selection, local
    projection, join reduction, duplicate compression, auxview
    elimination) is currently saving, per auxiliary view. *)

(** [attribution t] measures every derivation-backed view against the
    believed source ({!Mindetail.Attribution.measure}) and refreshes the
    [minview_attr_*] gauges. Views without a derivation ([Replicate],
    [Aged]) are skipped. *)
val attribution : t -> (string * Mindetail.Attribution.t list) list

(** One reconciliation check: the attribution waterfall's survivor counts
    for a retained auxview versus the live [minview_aux_resident_rows] /
    [minview_aux_detail_rows] gauges maintained incrementally by the
    engine. [consistent] tolerates a difference of at most one row. *)
type reconciliation = {
  rec_view : string;
  rec_aux : string;
  rec_base : string;
  measured_resident : int;
  gauge_resident : int;
  measured_detail : int;
  gauge_detail : int;
  consistent : bool;  (** both deltas within the +-1 row tolerance *)
}

(** Cross-check {!attribution} against the engines' live gauges, one
    record per retained auxview. Empty while telemetry is disabled (the
    gauges are never set then, so there is nothing to reconcile). *)
val reconcile_attribution : t -> reconciliation list

(** Full textual report: per-view derivation and storage. *)
val report : t -> string

(** {2 Persistence}

    A warehouse survives restarts: [save] writes the complete maintained
    state — every view's groups and auxiliary views, the replicas of
    [Replicate] views, the validator's believed source, the dead-letter
    queue and the batch sequence number — and [load] restores it without
    touching any source.

    The format is OCaml's [Marshal] behind a versioned, CRC-32-checksummed
    header: portable across runs of the same binary, not across incompatible
    builds. Truncated or bit-rotted files are detected before unmarshalling
    and reported as {!Error} ([Corrupt_state]). [Aged] views carry a
    partition predicate (a closure) and cannot be persisted; [save] raises
    {!Error} ([Not_persistable]) if one is registered. *)

(** [save t path] snapshots the warehouse atomically (temp file + rename).
    @raise Error ([Not_persistable] / [Io_error]). *)
val save : t -> string -> unit

(** [load path] restores a saved warehouse (not attached to a state
    directory — see {!attach} / {!recover}).
    @raise Error ([Io_error] on unreadable files, [Corrupt_state] on
    truncated/garbage/checksum-mismatched ones, [Incompatible_state] on old
    format versions). *)
val load : string -> t

(** {2 Durability}

    An {e attached} warehouse writes every accepted batch to a write-ahead
    log under its state directory before any engine applies it; the flushed
    append is the commit point. {!checkpoint} snapshots the full state and
    {e rotates} the log into a checkpoint generation chain: the outgoing
    snapshot and its WAL segment are archived under [dir/generations/]
    (as [snapshot-<n>.bin] / [wal-<n>.bin], the last [keep_generations]
    retained) instead of being destroyed. After a crash, {!recover} loads
    the newest snapshot that passes its CRC check — falling back along the
    chain past unverifiable ones — and replays the committed WAL records
    newer than it (archived segments in chain order, then the live log,
    skipping aborted batches and tolerating a torn tail on the live log),
    so the warehouse comes back at the last committed batch even when the
    latest snapshot is damaged. *)

(** [attach t ~dir] makes [t] durable: creates [dir] if needed, opens (or
    repairs) its WAL, and takes an initial checkpoint. With
    [?checkpoint_every:n], every [n]-th batch checkpoints automatically.
    [?keep_generations] (default 2) sets how many archived checkpoint
    generations survive pruning; [0] disables the chain (truncate on
    checkpoint, the pre-chain behaviour). Also points the lineage sink at
    [dir/lineage.jsonl], so every committed batch leaves a lineage record
    next to its WAL commit marker (see {!Telemetry.Lineage}).
    @raise Error ([Invalid_request] if already attached or
    [keep_generations < 0], [Io_error], [Corrupt_state],
    [Not_persistable]). *)
val attach : ?checkpoint_every:int -> ?keep_generations:int -> t -> dir:string -> unit

(** Snapshot the state directory, archive the previous generation and
    rotate the WAL (see the chain contract above). Also writes the current
    workload profile beside the WAL (best-effort — a failed profile write
    never fails the checkpoint).
    @raise Error ([Not_durable] if not attached). *)
val checkpoint : t -> unit

(** Where {!checkpoint} persists the workload profile
    ([dir/workload_profile.json]). *)
val workload_profile_path : string -> string

(** Write the current workload profile to the attached state directory on
    demand and return its path.
    @raise Error ([Not_durable] if not attached). *)
val write_workload_profile : t -> string

(** [recover ~dir] rebuilds the warehouse from [dir] (see the chain
    contract above) and attaches the result to it. An unverifiable
    snapshot is quarantined (renamed aside with a [.quarantine] suffix,
    counted as [minview_warehouse_snapshot_fallbacks_total]) once an older
    generation has verified. An existing-but-empty state directory is a
    valid cold start: it is initialized in place instead of reported as
    corruption. A parallel pool active when the snapshot was taken is
    {e not} restored (see {!set_parallel}); the reset is reported through
    the warning event and counter described there.
    @raise Error as {!load}; also [Corrupt_state] when WAL damage (a
    mid-stream bit flip, or any damage on an archived segment the restored
    snapshot does not cover) may hide committed batches — {!repair}
    quarantines the damage explicitly, accepting the loss. *)
val recover : dir:string -> t

(** Detach from the state directory, closing the WAL (no checkpoint). *)
val close : t -> unit

(** {2 Integrity: fsck and repair}

    Offline integrity checking of a state directory, exposed as
    [minview fsck] / [minview repair]. {!fsck} only reads; {!repair}
    quarantines whatever does not verify (WAL tails via {!Wal.salvage},
    snapshots by renaming them aside) so that a subsequent {!recover}
    succeeds from what remains. Neither ever deletes data: every damaged
    byte ends up in a [.quarantine] file beside its source. *)

type fsck_entry = {
  f_file : string;  (** relative to the state directory *)
  f_ok : bool;
  f_detail : string;  (** verification result, human-readable *)
}

type fsck_report = {
  fsck_entries : fsck_entry list;
  fsck_recoverable : bool;
      (** at least one snapshot verifies (or the directory is empty) *)
  fsck_clean : bool;  (** every file verifies; nothing to repair *)
}

(** Read-only integrity check of every snapshot (live and archived, full
    CRC + decode) and WAL segment (frame scan with damage classification).
    @raise Error ([Io_error] if [dir] is not a directory). *)
val fsck : dir:string -> fsck_report

type repair_report = {
  repair_actions : (string * string) list;
      (** (file relative to the state dir, what was done) *)
  repair_recoverable : bool;
      (** a verifiable snapshot survived (or the directory is now empty) *)
}

(** Quarantine everything {!fsck} would flag: damaged WAL tails are
    salvaged ({!Wal.salvage}), unreadable WAL files and unverifiable
    snapshots renamed to [.quarantine]. Returns what was done;
    [repair_recoverable = false] means no snapshot survived and the
    directory cannot be recovered (beyond re-initializing).
    @raise Error ([Io_error] if [dir] is not a directory). *)
val repair : dir:string -> repair_report
