module Database = Relational.Database
module Schema = Relational.Schema
module Value = Relational.Value
module Datatype = Relational.Datatype
module Delta = Relational.Delta
module Integrity = Relational.Integrity

type forgery = { delta : Delta.t; reason : Delta.reason }

let pick_table rng db = Prng.pick rng (Database.table_names db)

let wrong_typed = function
  (* any value of a different type: validators must flag the column *)
  | Datatype.TString -> Value.Int 0
  | TInt | TFloat | TBool -> Value.String "corrupt"

(* A conforming tuple whose column values sit outside every pool delta_gen
   draws from, so the forgery cannot collide with legitimately generated
   data. *)
let alien_value rng = function
  | Datatype.TInt -> Value.Int (-(Prng.int rng 1_000_000) - 1)
  | Datatype.TFloat -> Value.Float (float_of_int (-(Prng.int rng 1_000_000) - 1))
  | Datatype.TString -> Value.String (Printf.sprintf "corrupt-%d" (Prng.int rng 1_000_000))
  | Datatype.TBool -> Value.Bool (Prng.int rng 2 = 0)

let unknown_table rng =
  {
    delta =
      Delta.insert
        (Printf.sprintf "no_such_table_%d" (Prng.int rng 1000))
        [| Value.Int 0 |];
    reason = Delta.Unknown_table;
  }

let schema_mismatch rng db =
  let table = pick_table rng db in
  let schema = Database.schema_of db table in
  let delta =
    if Prng.chance rng 0.5 then
      (* wrong arity *)
      Delta.insert table
        (Array.make (Schema.arity schema + 1) (Value.Int 0))
    else begin
      (* right arity, one wrongly-typed column *)
      let bad_col = Prng.int rng (Schema.arity schema) in
      Delta.insert table
        (Array.mapi
           (fun i (c : Schema.column) ->
             if i = bad_col then wrong_typed c.Schema.col_type
             else alien_value rng c.Schema.col_type)
           schema.Schema.columns)
    end
  in
  { delta; reason = Delta.Schema_mismatch }

let some_row rng db table =
  let rows = Database.fold db table (fun tup acc -> tup :: acc) [] in
  match rows with [] -> None | rows -> Some (Prng.pick rng rows)

let duplicate_key rng db =
  let candidates =
    List.filter (fun t -> Database.row_count db t > 0) (Database.table_names db)
  in
  match candidates with
  | [] -> None
  | _ ->
    let table = Prng.pick rng candidates in
    Option.map
      (fun row -> { delta = Delta.insert table row; reason = Delta.Duplicate_key })
      (some_row rng db table)

let missing_row rng db =
  (* bool keys cannot be made provably fresh *)
  let keyed_fresh t =
    let schema = Database.schema_of db t in
    match (schema.Schema.columns.(Schema.key_index schema)).Schema.col_type with
    | Datatype.TBool -> false
    | TInt | TFloat | TString -> true
  in
  match List.filter keyed_fresh (Database.table_names db) with
  | [] -> None
  | candidates ->
    let table = Prng.pick rng candidates in
    let schema = Database.schema_of db table in
    let tup =
      Array.map
        (fun (c : Schema.column) -> alien_value rng c.Schema.col_type)
        schema.Schema.columns
    in
    Some { delta = Delta.delete table tup; reason = Delta.Missing_row }

let dangling_reference rng db =
  match Database.references db with
  | [] -> None
  | refs ->
    let r = Prng.pick rng refs in
    let table = r.Integrity.src_table in
    let schema = Database.schema_of db table in
    (* every column is alien: the key cannot collide, and the foreign-key
       value never appears as a key of a legitimate referent *)
    let tup =
      Array.map
        (fun (c : Schema.column) -> alien_value rng c.Schema.col_type)
        schema.Schema.columns
    in
    Some { delta = Delta.insert table tup; reason = Delta.Dangling_reference }

let forge rng db =
  let fallback () =
    if Prng.chance rng 0.5 then unknown_table rng else schema_mismatch rng db
  in
  match Prng.int rng 5 with
  | 0 -> unknown_table rng
  | 1 -> schema_mismatch rng db
  | 2 -> Option.value (duplicate_key rng db) ~default:(fallback ())
  | 3 -> Option.value (missing_row rng db) ~default:(fallback ())
  | _ -> Option.value (dangling_reference rng db) ~default:(fallback ())

let sprinkle rng db ~rate deltas =
  let injected = ref 0 in
  let out =
    List.concat_map
      (fun d ->
        if Prng.chance rng rate then begin
          incr injected;
          let f =
            if Prng.chance rng 0.5 then unknown_table rng
            else schema_mismatch rng db
          in
          [ f.delta; d ]
        end
        else [ d ])
      deltas
  in
  (out, !injected)
