(** Forged invalid deltas, for exercising the warehouse's validation layer
    and dead-letter queue.

    Each forgery pairs a delta with the {!Relational.Delta.reason} the
    validator is expected to reject it for. The state-dependent forgeries
    ([duplicate_key], [missing_row], [dangling_reference]) are built against
    the given store snapshot and are only guaranteed invalid at that point
    of the stream; the position-independent ones ([unknown_table],
    [schema_mismatch]) are invalid anywhere, which is what {!sprinkle}
    relies on. *)

type forgery = {
  delta : Relational.Delta.t;
  reason : Relational.Delta.reason;  (** expected rejection reason *)
}

(** A change to a table the store has never heard of. *)
val unknown_table : Prng.t -> forgery

(** An insert with the wrong arity or a wrongly-typed column. *)
val schema_mismatch : Prng.t -> Relational.Database.t -> forgery

(** Re-insert of an existing row ([None] if the store is empty). *)
val duplicate_key : Prng.t -> Relational.Database.t -> forgery option

(** Delete of a conforming tuple whose key is not present ([None] if no
    table supports forging a provably fresh key). *)
val missing_row : Prng.t -> Relational.Database.t -> forgery option

(** Insert whose foreign key points at no referent ([None] if no reference
    constraints are declared). *)
val dangling_reference : Prng.t -> Relational.Database.t -> forgery option

(** A random forgery of any kind above (falls back to the
    position-independent kinds when a state-dependent one is unavailable). *)
val forge : Prng.t -> Relational.Database.t -> forgery

(** [sprinkle rng db ~rate deltas] interleaves position-independent
    forgeries into a valid stream — roughly [rate] forgeries per valid
    delta — and returns the polluted stream plus the number injected. The
    injected deltas are invalid at {e any} position, so a validating
    consumer must reject exactly those and accept the rest. *)
val sprinkle :
  Prng.t ->
  Relational.Database.t ->
  rate:float ->
  Relational.Delta.t list ->
  Relational.Delta.t list * int
