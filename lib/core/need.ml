let rec need0 g ri =
  match Join_graph.annotation g ri with
  | Join_graph.Keyed -> []
  | Join_graph.Grouped | Join_graph.Plain ->
    List.concat_map
      (fun rj ->
        let annotated t =
          match Join_graph.annotation g t with
          | Join_graph.Keyed | Join_graph.Grouped -> true
          | Join_graph.Plain -> false
        in
        if List.exists annotated (Join_graph.subtree g rj) then
          rj :: need0 g rj
        else [])
      (Join_graph.children g ri)

let need g ri =
  let rec raw t =
    match Join_graph.annotation g t with
    | Join_graph.Keyed -> []
    | Join_graph.Grouped | Join_graph.Plain -> (
      match Join_graph.parent g t with
      | Some rj -> rj :: raw rj
      | None -> need0 g (Join_graph.root g))
  in
  raw ri
  |> List.filter (fun t -> not (String.equal t ri))
  |> List.sort_uniq String.compare

let members_counter =
  Telemetry.Counter.make
    ~help:"Need-set memberships computed during derivation (Definition 3)"
    "minview_need_members_total"

let all g =
  let needs = List.map (fun t -> (t, need g t)) (Join_graph.tables g) in
  Telemetry.Counter.inc members_counter
    (List.fold_left (fun acc (_, n) -> acc + List.length n) 0 needs);
  needs
