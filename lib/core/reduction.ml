module View = Algebra.View
module Attr = Algebra.Attr
module Database = Relational.Database
module Schema = Relational.Schema
module Integrity = Relational.Integrity

type t = {
  table : string;
  kept_columns : string list;
  locals : Algebra.Predicate.t list;
  depends_on : string list;
}

(* Derivation-time attribution counters: how much work each minimization
   technique was given, before any data is touched. *)
module Obs = struct
  module Counter = Telemetry.Counter

  let columns_dropped =
    Counter.make
      ~help:"Base-table columns dropped by local projection during derivation"
      "minview_reduction_columns_dropped_total"

  let conditions_pushed =
    Counter.make
      ~help:"View conditions pushed down into auxiliary views (local selection)"
      "minview_reduction_conditions_pushed_total"

  let semijoins_planned =
    Counter.make
      ~help:"Semijoin (join reduction) edges planned during derivation"
      "minview_reduction_semijoins_planned_total"
end

let exposed_updates db (v : View.t) table =
  let updatable = Database.updatable_columns db table in
  let condition_cols =
    View.local_columns v ~table @ View.join_columns v ~table
  in
  List.exists (fun c -> List.mem c condition_cols) updatable

let depends_on db (v : View.t) table =
  View.joins_from v table
  |> List.filter_map (fun (j : View.join) ->
         let target = j.View.dst.Attr.table in
         let has_ri =
           Integrity.covers (Database.references db) ~src:table
             ~src_col:j.View.src.Attr.column ~dst:target
         in
         if has_ri && not (exposed_updates db v target) then Some target
         else None)

let transitively_depends_on_all db (v : View.t) table =
  let reached = Hashtbl.create 8 in
  let rec walk t =
    if not (Hashtbl.mem reached t) then begin
      Hashtbl.add reached t ();
      List.iter walk (depends_on db v t)
    end
  in
  walk table;
  List.for_all (Hashtbl.mem reached) v.View.tables

let local ?(push_locals = true) ?(join_reductions = true) db (v : View.t)
    table =
  let preserved = View.preserved_columns db v ~table in
  let joins = View.join_columns v ~table in
  (* without pushed-down selections the condition columns must be stored so
     they remain evaluable downstream *)
  let conditions = if push_locals then [] else View.local_columns v ~table in
  let schema = Database.schema_of db table in
  let kept_columns =
    List.filter
      (fun c ->
        List.mem c preserved || List.mem c joins || List.mem c conditions)
      (Schema.column_names schema)
  in
  let locals = if push_locals then View.locals_of v ~table else [] in
  let depends_on = if join_reductions then depends_on db v table else [] in
  Obs.Counter.inc Obs.columns_dropped
    (List.length (Schema.column_names schema) - List.length kept_columns);
  Obs.Counter.inc Obs.conditions_pushed (List.length locals);
  Obs.Counter.inc Obs.semijoins_planned (List.length depends_on);
  { table; kept_columns; locals; depends_on }
