(** Human-readable reports of a derivation: the extended join graph
    (Figure 2), the Need sets, the per-table decision and the auxiliary-view
    SQL. Used by the CLI and the bench harness. *)

(** ASCII tree rendering of the extended join graph, with g/k annotations. *)
val join_graph_ascii : Join_graph.t -> string

(** Graphviz DOT rendering. *)
val join_graph_dot : Join_graph.t -> string

(** Full derivation report: view SQL, join graph, exposed updates, depends-on
    relation, Need sets, per-table decision, and CREATE VIEW statements for
    the retained auxiliary views. *)
val report : Derive.t -> string

(** Human rendering of one per-transaction lineage record (see
    {!Telemetry.Lineage}): the base tables touched, then per view
    [deltas -> netted -> applied] and the per-auxview resident/detail/fold
    flow. Used by [minview lineage]. *)
val lineage_record : Telemetry.Lineage.record -> string
