(** Savings attribution: decompose each auxiliary view's footprint versus
    raw detail into the paper's four minimization techniques.

    {!measure} replays the derivation's decisions against an actual
    database and counts, per base table, how many rows survive each stage
    of the reduction waterfall:

    {v raw rows -> local selection -> join reduction -> duplicate
       compression (resident groups) v}

    and how many fields per row survive local projection. {!bytes} turns
    the counts into a per-technique byte decomposition with the exact
    telescoping invariant

    {v raw = local selection + local projection + join reduction
           + duplicate compression + elimination + stored v}

    (the projection term may be negative when compression adds more
    bookkeeping columns — [SUM]s, [COUNT( * )] — than projection drops).
    Omitted tables are measured against the spec they {e would} have had,
    and their entire would-be footprint is attributed to elimination.

    [minview attribute] renders this as the paper's Table-style
    breakdown; the warehouse reconciles the measured survivor counts
    against the live [minview_aux_resident_rows] /
    [minview_aux_detail_rows] gauges (±1 row). *)

type t = {
  table : string;
  aux : string;  (** auxview name (the would-be name when omitted) *)
  retained : bool;  (** [false] when eliminated (Section 3.3) *)
  compressed : bool;  (** duplicate compression applied (vs. tuple-level) *)
  raw_rows : int;
  raw_fields : int;  (** base-table arity *)
  kept_fields : int;  (** distinct base columns surviving local projection *)
  stored_fields : int;  (** aux output arity (incl. SUM/COUNT bookkeeping) *)
  rows_after_local : int;  (** rows passing the pushed-down conditions *)
  rows_after_join : int;  (** ... also passing the semijoin reductions *)
  resident_rows : int;  (** distinct groups after duplicate compression *)
}

val fold_factor : t -> float
(** Detail rows per resident row, [rows_after_join / resident_rows];
    [1.0] for empty tables. *)

type bytes_breakdown = {
  raw_bytes : int;
  local_selection : int;  (** saved by pushed-down local conditions *)
  local_projection : int;  (** saved by dropped columns (may be < 0) *)
  join_reduction : int;  (** saved by semijoin reductions *)
  compression : int;  (** saved by duplicate folding *)
  elimination : int;  (** saved by omitting the whole auxview *)
  stored_bytes : int;
}

val bytes : ?bytes_per_field:int -> t -> bytes_breakdown
(** Byte decomposition at [bytes_per_field] (default 8) per stored
    field. Satisfies the telescoping invariant above exactly. *)

val measure : Relational.Database.t -> Derive.t -> t list
(** Measure every base table of the derivation against [db], in view
    table order. Survivor sets are computed bottom-up over the join tree
    so each semijoin tests against the target's {e reduced} auxview
    contents, exactly as the maintenance engine stores them. *)

val set_gauges : view:string -> t list -> unit
(** Publish the decomposition as live gauges labelled
    [{view; aux; base}]: [minview_attr_raw_bytes],
    [minview_attr_stored_bytes], [minview_attr_fold_factor],
    [minview_attr_saved_bytes{technique=...}] and
    [minview_attr_rows_dropped{technique=...}]. No-op while telemetry is
    disabled. *)

val render :
  ?show_bytes:(int -> string) ->
  ?measured:(string -> int option) ->
  view:string ->
  t list ->
  string
(** The paper's Table-style breakdown: one row per auxview with
    per-technique byte savings, a TOTAL row, and the row-flow waterfall.
    [show_bytes] formats byte counts (default [string_of_int]).

    [measured] maps an auxview name to its measured resident bytes (the
    columnar segments' byte accounting, via
    [Warehouse.measured_bytes]); when given, a "measured" column is
    appended, falling back to the bytes-per-field estimate for auxviews
    the lookup does not know (omitted, or stored boxed). *)

val to_json : ?measured:(string -> int option) -> view:string -> t -> string
(** One JSON object (single line) for one table's attribution. [measured]
    as in {!render}: adds a ["measured_stored"] byte count. *)
