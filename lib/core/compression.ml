module View = Algebra.View
module Attr = Algebra.Attr
module Aggregate = Algebra.Aggregate
module Database = Relational.Database
module Schema = Relational.Schema

type usage = {
  in_group_by : bool;
  in_join : bool;
  in_non_csmas : bool;
  csmas_funcs : Aggregate.func list;
}

(* Attribution counter: specs that actually got duplicate compression vs.
   the tuple-level degenerate cases (key in the grouping columns, or
   compression disabled). Both label values are registered eagerly so the
   metric listing is stable. *)
let specs_counter compressed =
  Telemetry.Counter.make
    ~help:"Auxview specs produced, by duplicate-compression outcome"
    ~labels:[ ("compressed", string_of_bool compressed) ]
    "minview_compression_specs_total"

let specs_compressed = specs_counter true
let specs_tuple_level = specs_counter false

let count_spec (spec : Auxview.t) =
  Telemetry.Counter.one
    (if spec.Auxview.compressed then specs_compressed else specs_tuple_level);
  spec

let usage_of ?(append_only = false) (v : View.t) ~table ~column =
  let attr = Attr.make table column in
  let aggs_over =
    View.aggregates v
    |> List.filter (fun (a : Aggregate.t) ->
           match Aggregate.attr a with
           | Some x -> Attr.equal x attr
           | None -> false)
  in
  {
    in_group_by = List.exists (Attr.equal attr) (View.group_attrs v);
    in_join = List.mem column (View.join_columns v ~table);
    in_non_csmas =
      List.exists (fun a -> not (Classify.is_csmas ~append_only a)) aggs_over;
    csmas_funcs =
      List.filter_map
        (fun (a : Aggregate.t) ->
          if Classify.is_csmas ~append_only a then Some a.Aggregate.func
          else None)
        aggs_over;
  }

(* Fresh output-column names: aggregate columns must not collide with kept
   base columns or each other. *)
let fresh taken candidate =
  let rec loop name = if List.mem name !taken then loop (name ^ "_") else name in
  let name = loop candidate in
  taken := name :: !taken;
  name

let semijoins_of (v : View.t) (red : Reduction.t) =
  List.map
    (fun target ->
      let j =
        match
          List.find_opt
            (fun (j : View.join) ->
              String.equal j.View.dst.Attr.table target)
            (View.joins_from v red.Reduction.table)
        with
        | Some j -> j
        | None -> assert false (* depends_on only yields join targets *)
      in
      {
        Auxview.fk = j.View.src.Attr.column;
        target;
        target_key = j.View.dst.Attr.column;
      })
    red.Reduction.depends_on

(* Tuple-level spec (no duplicate compression): kept columns plus the base
   key, all plain. Used when compression is disabled and as the degenerate
   case of Algorithm 3.1. *)
let tuple_level ~with_key db (red : Reduction.t) semijoins =
  let table = red.Reduction.table in
  let schema = Database.schema_of db table in
  let kept =
    List.filter
      (fun c ->
        List.mem c red.Reduction.kept_columns
        || (with_key && String.equal c schema.Schema.key))
      (Schema.column_names schema)
  in
  {
    Auxview.base = table;
    name = Auxview.default_name table;
    locals = red.Reduction.locals;
    columns = List.map (fun c -> (c, Auxview.Plain c)) kept;
    semijoins;
    compressed = false;
  }

let compress ?(enabled = true) ?(append_only = false) db (v : View.t)
    (red : Reduction.t) =
  let table = red.Reduction.table in
  let schema = Database.schema_of db table in
  let key = schema.Schema.key in
  let semijoins = semijoins_of v red in
  if not enabled then count_spec (tuple_level ~with_key:true db red semijoins)
  else begin
    let usages =
      List.map
        (fun c -> (c, usage_of ~append_only v ~table ~column:c))
        red.Reduction.kept_columns
    in
    (* columns of view conditions that were NOT pushed into this view (the
       no-pushdown ablation) must stay plainly available so readers can still
       evaluate the residual conditions *)
    let residual_cols =
      View.locals_of v ~table
      |> List.filter (fun p ->
             not
               (List.exists (Algebra.Predicate.equal p) red.Reduction.locals))
      |> List.concat_map Algebra.Predicate.attrs
      |> List.map (fun (a : Attr.t) -> a.Attr.column)
    in
    let plain_cols =
      List.filter_map
        (fun (c, u) ->
          if
            u.in_group_by || u.in_join || u.in_non_csmas
            || List.mem c residual_cols
          then Some c
          else None)
        usages
    in
    if List.mem key plain_cols then
      (* Degenerate case: the grouping attributes include the key, so every
         group holds exactly one tuple; COUNT( * ) and the replacements are
         superfluous (Algorithm 3.1, step 2 note). *)
      count_spec (tuple_level ~with_key:false db red semijoins)
    else begin
      let taken = ref plain_cols in
      let agg_cols =
        List.concat_map
          (fun (c, u) ->
            if u.in_group_by || u.in_join || u.in_non_csmas then []
            else begin
              let has f = List.mem f u.csmas_funcs in
              let sum =
                if has Aggregate.Sum || has Aggregate.Avg then
                  [ (fresh taken ("sum_" ^ c), Auxview.Sum_of c) ]
                else []
              in
              let mn =
                if has Aggregate.Min then
                  [ (fresh taken ("min_" ^ c), Auxview.Min_of c) ]
                else []
              in
              let mx =
                if has Aggregate.Max then
                  [ (fresh taken ("max_" ^ c), Auxview.Max_of c) ]
                else []
              in
              sum @ mn @ mx
            end)
          usages
      in
      let columns =
        List.map (fun c -> (c, Auxview.Plain c)) plain_cols
        @ agg_cols
        @ [ (fresh taken "cnt", Auxview.Count_star) ]
      in
      count_spec
        {
          Auxview.base = table;
          name = Auxview.default_name table;
          locals = red.Reduction.locals;
          columns;
          semijoins;
          compressed = true;
        }
    end
  end
