let annot_suffix g table =
  match Join_graph.annotation g table with
  | Join_graph.Plain -> ""
  | Join_graph.Grouped -> " [g]"
  | Join_graph.Keyed -> " [k]"

let join_graph_ascii g =
  let buf = Buffer.create 128 in
  let rec walk prefix is_last table =
    Buffer.add_string buf prefix;
    if prefix <> "" then Buffer.add_string buf (if is_last then "`-- " else "|-- ");
    Buffer.add_string buf (table ^ annot_suffix g table);
    Buffer.add_char buf '\n';
    let children = Join_graph.children g table in
    let n = List.length children in
    List.iteri
      (fun i c ->
        let child_prefix =
          if prefix = "" then "  "
          else prefix ^ (if is_last then "    " else "|   ")
        in
        walk child_prefix (i = n - 1) c)
      children
  in
  walk "" true (Join_graph.root g);
  Buffer.contents buf

let join_graph_dot g =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "digraph join_graph {\n  rankdir=TB;\n";
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s%s\"];\n" t t (annot_suffix g t)))
    (Join_graph.tables g);
  List.iter
    (fun t ->
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" t c))
        (Join_graph.children g t))
    (Join_graph.tables g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let options_note (o : Derive.options) =
  let flags =
    (if o.Derive.push_locals then [] else [ "no local pushdown" ])
    @ (if o.Derive.join_reductions then [] else [ "no semijoin reductions" ])
    @ (if o.Derive.compression then [] else [ "no duplicate compression" ])
    @ (if o.Derive.elimination then [] else [ "no elimination" ])
    @ if o.Derive.append_only then [ "append-only (Section 4)" ] else []
  in
  match flags with [] -> None | fs -> Some (String.concat ", " fs)

let report (d : Derive.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== view ==\n%s\n\n" (Algebra.View.to_sql d.Derive.view);
  (match options_note d.Derive.options with
  | Some note -> add "derivation options: %s\n\n" note
  | None -> ());
  add "== extended join graph (root: %s) ==\n%s\n" (Derive.root d)
    (join_graph_ascii d.Derive.graph);
  (match d.Derive.exposed with
  | [] -> add "exposed updates: none\n"
  | ts -> add "exposed updates: %s\n" (String.concat ", " ts));
  List.iter
    (fun (t, deps) ->
      if deps <> [] then add "%s depends on %s\n" t (String.concat ", " deps))
    d.Derive.depends;
  add "\n== Need sets ==\n";
  List.iter
    (fun (t, need) ->
      add "Need(%s) = {%s}\n" t (String.concat ", " need))
    d.Derive.needs;
  add "\n== auxiliary views ==\n";
  List.iter
    (fun (t, decision) ->
      match decision with
      | Derive.Omitted why -> add "X_%s omitted: %s\n\n" t why
      | Derive.Retained spec -> add "%s\n\n" (Auxview.to_sql spec))
    d.Derive.decisions;
  (match Reconstruct.to_sql d with
  | sql -> add "== reconstruction of V from X ==\n%s\n" sql
  | exception Reconstruct.Not_reconstructible _ ->
    add
      "== reconstruction ==\nthe root auxiliary view is omitted: V is its \
       own record and is maintained directly\n");
  Buffer.contents buf

(* Human rendering of one per-transaction lineage record: the batch's flow
   through the pipeline, indented view-then-auxview. *)
let lineage_record (r : Telemetry.Lineage.record) =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "txn %d (%s)\n" r.Telemetry.Lineage.txn
    (String.concat ", "
       (List.map
          (fun (t, n) -> Printf.sprintf "%s:%d" t n)
          r.Telemetry.Lineage.tables));
  List.iter
    (fun (f : Telemetry.Lineage.view_flow) ->
      add "  view %s [%s]: %d deltas -> %d netted -> %d applied, groups %+d\n"
        f.Telemetry.Lineage.view f.Telemetry.Lineage.mode
        f.Telemetry.Lineage.deltas_in f.Telemetry.Lineage.netted
        f.Telemetry.Lineage.applied f.Telemetry.Lineage.group_delta;
      List.iter
        (fun (a : Telemetry.Lineage.aux_flow) ->
          add "    %s <- %s: resident %+d, detail %+d, folded %d\n"
            a.Telemetry.Lineage.aux a.Telemetry.Lineage.base
            a.Telemetry.Lineage.resident_delta a.Telemetry.Lineage.detail_delta
            a.Telemetry.Lineage.folded)
        f.Telemetry.Lineage.aux_flows)
    r.Telemetry.Lineage.flows;
  Buffer.contents buf
