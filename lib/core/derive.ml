module View = Algebra.View
module Attr = Algebra.Attr
module Aggregate = Algebra.Aggregate
module Predicate = Algebra.Predicate
module Database = Relational.Database

type decision = Retained of Auxview.t | Omitted of string

type agg_source =
  | From_plain of { table : string; column : string }
  | From_sum of { table : string; column : string }
  | From_min of { table : string; column : string }
  | From_max of { table : string; column : string }
  | From_count

type options = {
  push_locals : bool;
  join_reductions : bool;
  compression : bool;
  elimination : bool;
  append_only : bool;
}

let default_options =
  {
    push_locals = true;
    join_reductions = true;
    compression = true;
    elimination = true;
    append_only = false;
  }

let append_only_options = { default_options with append_only = true }

type t = {
  view : View.t;
  graph : Join_graph.t;
  needs : (string * string list) list;
  exposed : string list;
  depends : (string * string list) list;
  decisions : (string * decision) list;
  options : options;
}

let non_csmas_tables ~append_only (v : View.t) =
  View.aggregates v
  |> List.filter_map (fun (a : Aggregate.t) ->
         if Classify.is_csmas ~append_only a then None
         else
           Option.map (fun (x : Attr.t) -> x.Attr.table) (Aggregate.attr a))
  |> List.sort_uniq String.compare

let decisions_counter outcome =
  Telemetry.Counter.make
    ~help:"Auxview retention decisions made during derivation"
    ~labels:[ ("decision", outcome) ]
    "minview_derive_decisions_total"

let decisions_retained = decisions_counter "retained"
let decisions_omitted = decisions_counter "omitted"

let derive_with options db (v : View.t) =
  View.validate db v;
  let graph = Join_graph.build db v in
  let needs = Need.all graph in
  let exposed =
    List.filter (fun tbl -> Reduction.exposed_updates db v tbl) v.View.tables
  in
  let depends =
    List.map (fun tbl -> (tbl, Reduction.depends_on db v tbl)) v.View.tables
  in
  let blocked_by_non_csmas =
    non_csmas_tables ~append_only:options.append_only v
  in
  let retain table =
    Retained
      (Compression.compress ~enabled:options.compression
         ~append_only:options.append_only db v
         (Reduction.local ~push_locals:options.push_locals
            ~join_reductions:options.join_reductions db v table))
  in
  let decide table =
    let needed_by =
      List.filter_map
        (fun (rj, need_rj) ->
          if (not (String.equal rj table)) && List.mem table need_rj then
            Some rj
          else None)
        needs
    in
    let depends_all = Reduction.transitively_depends_on_all db v table in
    let in_non_csmas = List.mem table blocked_by_non_csmas in
    if
      options.elimination && depends_all && needed_by = []
      && not in_non_csmas
    then
      Omitted
        (Printf.sprintf
           "%s transitively depends on all other base tables, is in no Need \
            set, and feeds no non-CSMAS aggregate"
           table)
    else retain table
  in
  let decisions = List.map (fun tbl -> (tbl, decide tbl)) v.View.tables in
  List.iter
    (fun (_, dec) ->
      Telemetry.Counter.one
        (match dec with
        | Retained _ -> decisions_retained
        | Omitted _ -> decisions_omitted))
    decisions;
  { view = v; graph; needs; exposed; depends; decisions; options }

let derive db v = derive_with default_options db v

let specs d =
  List.filter_map
    (fun (_, dec) -> match dec with Retained s -> Some s | Omitted _ -> None)
    d.decisions

let omitted_tables d =
  List.filter_map
    (fun (tbl, dec) ->
      match dec with Omitted _ -> Some tbl | Retained _ -> None)
    d.decisions

let spec_for d table =
  match List.assoc_opt table d.decisions with
  | Some (Retained s) -> Some s
  | Some (Omitted _) | None -> None

let residual_locals d table =
  let view_locals = View.locals_of d.view ~table in
  match spec_for d table with
  | None -> view_locals
  | Some spec ->
    List.filter
      (fun p ->
        not (List.exists (Predicate.equal p) spec.Auxview.locals))
      view_locals

let root d = Join_graph.root d.graph

let agg_source d (agg : Aggregate.t) =
  if not (List.exists (Aggregate.equal agg) (View.aggregates d.view)) then
    invalid_arg "Derive.agg_source: aggregate not in view";
  match Aggregate.attr agg with
  | None -> Some From_count
  | Some _
    when agg.Aggregate.func = Aggregate.Count && not agg.Aggregate.distinct ->
    (* no nulls: COUNT(a) ≡ COUNT( * ), reads only the root count *)
    Some From_count
  | Some (a : Attr.t) -> (
    match spec_for d a.Attr.table with
    | None -> None
    | Some spec ->
      let stored =
        if agg.Aggregate.distinct then None
        else
          match agg.Aggregate.func with
          | Aggregate.Sum | Aggregate.Avg
            when Auxview.sum_position spec a.Attr.column <> None ->
            Some (From_sum { table = a.Attr.table; column = a.Attr.column })
          | Aggregate.Min
            when Auxview.min_position spec a.Attr.column <> None ->
            Some (From_min { table = a.Attr.table; column = a.Attr.column })
          | Aggregate.Max
            when Auxview.max_position spec a.Attr.column <> None ->
            Some (From_max { table = a.Attr.table; column = a.Attr.column })
          | _ -> None
      in
      (match stored with
      | Some s -> Some s
      | None ->
        (* non-CSMAS aggregates and CSMASs over a column that stayed plain
           (because of joins, group-bys or non-CSMAS co-usage) read the plain
           projection, which Algorithm 3.1 guarantees is present *)
        assert (Auxview.plain_index spec a.Attr.column <> None);
        Some (From_plain { table = a.Attr.table; column = a.Attr.column })))
