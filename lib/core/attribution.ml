(* Savings attribution (the paper's Tables 4-6, measured live): replay the
   derivation's reduction waterfall against an actual database and count
   the rows/fields each technique removes. Survivor key sets are built
   bottom-up over the join tree so semijoin tests see exactly what the
   target's auxview would store. *)

module View = Algebra.View
module Attr = Algebra.Attr
module Predicate = Algebra.Predicate
module Database = Relational.Database
module Schema = Relational.Schema

type t = {
  table : string;
  aux : string;
  retained : bool;
  compressed : bool;
  raw_rows : int;
  raw_fields : int;
  kept_fields : int;
  stored_fields : int;
  rows_after_local : int;
  rows_after_join : int;
  resident_rows : int;
}

let fold_factor a =
  if a.resident_rows = 0 then 1.0
  else float_of_int a.rows_after_join /. float_of_int a.resident_rows

type bytes_breakdown = {
  raw_bytes : int;
  local_selection : int;
  local_projection : int;
  join_reduction : int;
  compression : int;
  elimination : int;
  stored_bytes : int;
}

(* Waterfall stages in bytes; consecutive differences attribute the savings
   so the decomposition telescopes exactly: raw = sum of savings + stored. *)
let bytes ?(bytes_per_field = 8) a =
  let b = bytes_per_field in
  let s0 = a.raw_rows * a.raw_fields * b in
  let s1 = a.rows_after_local * a.raw_fields * b in
  let s2 = a.rows_after_local * a.stored_fields * b in
  let s3 = a.rows_after_join * a.stored_fields * b in
  let s4 = a.resident_rows * a.stored_fields * b in
  let s5 = if a.retained then s4 else 0 in
  {
    raw_bytes = s0;
    local_selection = s0 - s1;
    local_projection = s1 - s2;
    join_reduction = s2 - s3;
    compression = s3 - s4;
    elimination = s4 - s5;
    stored_bytes = s5;
  }

let rec post_order g t =
  List.concat_map (post_order g) (Join_graph.children g t) @ [ t ]

(* The spec an omitted table would have had, so elimination savings can be
   priced against the footprint the other techniques would have left. *)
let ghost_spec (d : Derive.t) db table =
  let o = d.Derive.options in
  Compression.compress ~enabled:o.Derive.compression
    ~append_only:o.Derive.append_only db d.Derive.view
    (Reduction.local ~push_locals:o.Derive.push_locals
       ~join_reductions:o.Derive.join_reductions db d.Derive.view table)

let measure db (d : Derive.t) =
  let survivors :
      (string, (Relational.Value.t, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let measure_one table =
    let retained, spec =
      match List.assoc table d.Derive.decisions with
      | Derive.Retained s -> (true, s)
      | Derive.Omitted _ -> (false, ghost_spec d db table)
    in
    let schema = Database.schema_of db table in
    let raw_fields = Schema.arity schema in
    let key_idx = Schema.key_index schema in
    let sj_checks =
      List.map
        (fun (sj : Auxview.semijoin) ->
          let fk_idx = Schema.index_of schema sj.Auxview.fk in
          let keys =
            match Hashtbl.find_opt survivors sj.Auxview.target with
            | Some h -> h
            | None -> Hashtbl.create 0
          in
          fun (tup : Relational.Tuple.t) -> Hashtbl.mem keys tup.(fk_idx))
        spec.Auxview.semijoins
    in
    let group_idxs =
      Auxview.group_columns spec |> List.map (Schema.index_of schema)
    in
    let my_survivors = Hashtbl.create 64 in
    Hashtbl.replace survivors table my_survivors;
    let groups = Hashtbl.create 64 in
    let raw_rows = ref 0 and after_local = ref 0 and after_join = ref 0 in
    Database.fold db table
      (fun tup () ->
        incr raw_rows;
        let lookup (a : Attr.t) = tup.(Schema.index_of schema a.Attr.column) in
        if List.for_all (fun p -> Predicate.holds p lookup) spec.Auxview.locals
        then begin
          incr after_local;
          if List.for_all (fun check -> check tup) sj_checks then begin
            incr after_join;
            Hashtbl.replace my_survivors tup.(key_idx) ();
            Hashtbl.replace groups (List.map (fun i -> tup.(i)) group_idxs) ()
          end
        end)
      ();
    let resident_rows =
      if spec.Auxview.compressed then Hashtbl.length groups else !after_join
    in
    let kept_fields =
      spec.Auxview.columns
      |> List.filter_map (fun (_, c) ->
             match c with
             | Auxview.Plain b
             | Auxview.Sum_of b
             | Auxview.Min_of b
             | Auxview.Max_of b -> Some b
             | Auxview.Count_star -> None)
      |> List.sort_uniq String.compare
      |> List.length
    in
    {
      table;
      aux = spec.Auxview.name;
      retained;
      compressed = spec.Auxview.compressed;
      raw_rows = !raw_rows;
      raw_fields;
      kept_fields;
      stored_fields = List.length spec.Auxview.columns;
      rows_after_local = !after_local;
      rows_after_join = !after_join;
      resident_rows;
    }
  in
  (* children before parents, so semijoin targets are measured first *)
  let order = post_order d.Derive.graph (Join_graph.root d.Derive.graph) in
  let measured = List.map (fun tbl -> (tbl, measure_one tbl)) order in
  List.map (fun tbl -> List.assoc tbl measured) d.Derive.view.View.tables

(* --- live gauges --------------------------------------------------------- *)

let set_gauges ~view attrs =
  if Telemetry.enabled () then
    List.iter
      (fun a ->
        let labels = [ ("view", view); ("aux", a.aux); ("base", a.table) ] in
        let gauge ?(extra = []) name help v =
          Telemetry.Gauge.set
            (Telemetry.Gauge.make ~help ~labels:(labels @ extra) name)
            v
        in
        let b = bytes a in
        gauge "minview_attr_raw_bytes"
          "Raw detail footprint of the base table (bytes)"
          (float_of_int b.raw_bytes);
        gauge "minview_attr_stored_bytes"
          "Auxview footprint actually stored (bytes)"
          (float_of_int b.stored_bytes);
        gauge "minview_attr_fold_factor"
          "Detail rows per resident row after duplicate compression"
          (fold_factor a);
        let saved technique v =
          gauge
            ~extra:[ ("technique", technique) ]
            "minview_attr_saved_bytes"
            "Bytes saved by one minimization technique" (float_of_int v)
        in
        saved "local-selection" b.local_selection;
        saved "local-projection" b.local_projection;
        saved "join-reduction" b.join_reduction;
        saved "duplicate-compression" b.compression;
        saved "elimination" b.elimination;
        let dropped technique v =
          gauge
            ~extra:[ ("technique", technique) ]
            "minview_attr_rows_dropped"
            "Detail rows dropped by one minimization technique"
            (float_of_int v)
        in
        dropped "local-selection" (a.raw_rows - a.rows_after_local);
        dropped "join-reduction" (a.rows_after_local - a.rows_after_join);
        gauge "minview_attr_columns_dropped"
          "Base columns dropped by local projection"
          (float_of_int (a.raw_fields - a.kept_fields)))
      attrs

(* --- rendering ----------------------------------------------------------- *)

let render ?(show_bytes = string_of_int) ?measured ~view attrs =
  (* the measured column is an actual byte count from the columnar
     segments; an auxview without one (omitted, or kept by an engine with
     boxed state) falls back to the waterfall's bytes-per-field estimate *)
  let measured_of a =
    match measured with
    | None -> None
    | Some f ->
      Some (match f a.aux with Some b -> b | None -> (bytes a).stored_bytes)
  in
  let headers =
    [
      "table"; "aux view"; "raw"; "local sel"; "local proj"; "join red";
      "dup comp"; "eliminated"; "stored";
    ]
    @ (if Option.is_some measured then [ "measured" ] else [])
  in
  let row_of a =
    let b = bytes a in
    [
      a.table;
      (if a.retained then a.aux else a.aux ^ " (omitted)");
      show_bytes b.raw_bytes;
      show_bytes b.local_selection;
      show_bytes b.local_projection;
      show_bytes b.join_reduction;
      show_bytes b.compression;
      show_bytes b.elimination;
      show_bytes b.stored_bytes;
    ]
    @ (match measured_of a with None -> [] | Some m -> [ show_bytes m ])
  in
  let total =
    List.fold_left
      (fun acc a ->
        let b = bytes a in
        List.map2 ( + ) acc
          ([
             b.raw_bytes; b.local_selection; b.local_projection;
             b.join_reduction; b.compression; b.elimination; b.stored_bytes;
           ]
          @ match measured_of a with None -> [] | Some m -> [ m ]))
      (if Option.is_some measured then [ 0; 0; 0; 0; 0; 0; 0; 0 ]
       else [ 0; 0; 0; 0; 0; 0; 0 ])
      attrs
  in
  let total_row = "TOTAL" :: "" :: List.map show_bytes total in
  let rows = List.map row_of attrs @ [ total_row ] in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length headers)
      rows
  in
  let line =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let render_row row =
    "|"
    ^ String.concat "|"
        (List.map2
           (fun w c -> Printf.sprintf " %s%s " c (String.make (w - String.length c) ' '))
           widths row)
    ^ "|"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== savings attribution (view %s, bytes) ==\n" view);
  Buffer.add_string buf (line ^ "\n");
  Buffer.add_string buf (render_row headers ^ "\n");
  Buffer.add_string buf (line ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.add_string buf (line ^ "\n");
  Buffer.add_string buf "row flow:\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %s: %d rows -> local %d -> join %d -> resident %d (fold %.3gx, \
            %d of %d columns kept)%s\n"
           a.table a.raw_rows a.rows_after_local a.rows_after_join
           a.resident_rows (fold_factor a) a.kept_fields a.raw_fields
           (if a.retained then "" else " [eliminated]")))
    attrs;
  Buffer.contents buf

let to_json ?measured ~view a =
  let esc = Telemetry.Trace.json_escape in
  let b = bytes a in
  let measured_field =
    match measured with
    | None -> ""
    | Some f ->
      Printf.sprintf ",\"measured_stored\":%d"
        (match f a.aux with Some m -> m | None -> b.stored_bytes)
  in
  Printf.sprintf
    "{\"view\":\"%s\",\"table\":\"%s\",\"aux\":\"%s\",\"retained\":%b,\"compressed\":%b,\"raw_rows\":%d,\"raw_fields\":%d,\"kept_fields\":%d,\"stored_fields\":%d,\"rows_after_local\":%d,\"rows_after_join\":%d,\"resident_rows\":%d,\"fold_factor\":%.6g,\"bytes\":{\"raw\":%d,\"local_selection\":%d,\"local_projection\":%d,\"join_reduction\":%d,\"compression\":%d,\"elimination\":%d,\"stored\":%d%s}}"
    (esc view) (esc a.table) (esc a.aux) a.retained a.compressed a.raw_rows
    a.raw_fields a.kept_fields a.stored_fields a.rows_after_local
    a.rows_after_join a.resident_rows (fold_factor a) b.raw_bytes
    b.local_selection b.local_projection b.join_reduction b.compression
    b.elimination b.stored_bytes measured_field
