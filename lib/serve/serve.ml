module Relation = Relational.Relation
module Value = Relational.Value
module View = Algebra.View

let log_src = Logs.Src.create "minview.serve" ~doc:"warehouse query front-end"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Registered at [create], not at module load: binaries that link the
   warehouse library but never serve should not grow serve metrics in
   their dumps. Registration is idempotent, so repeated [create]s share
   the handles. *)
type obs = {
  o_requests : Telemetry.Counter.t;
  o_request_seconds : Telemetry.Histogram.t;
  o_connections : Telemetry.Gauge.t;
  o_slow_queries : Telemetry.Counter.t;
  o_reads : (string, Telemetry.Counter.t) Hashtbl.t;
      (** per-(verb,view) read counters, keyed ["verb\x00view"]; the view
          label is bounded — see [read_counter] *)
  o_read_views : (string, unit) Hashtbl.t;
      (** views granted their own label so far *)
}

(* Label-cardinality cap for minview_serve_reads_total: verbs are a closed
   set, and at most this many distinct views get their own label — later
   ones share view="_other" (same bounding rule as the workload registry). *)
let max_read_views = 32

let make_obs () =
  {
    o_requests =
      Telemetry.Counter.make ~help:"Requests served by minview serve"
        "minview_serve_requests_total";
    o_request_seconds =
      Telemetry.Histogram.make ~help:"Latency of one minview serve request"
        "minview_serve_request_seconds";
    o_connections =
      Telemetry.Gauge.make ~help:"Open minview serve connections"
        "minview_serve_connections";
    o_slow_queries =
      Telemetry.Counter.make
        ~help:"QUERY/RECONSTRUCT requests at or above the slow threshold"
        "minview_serve_slow_queries_total";
    o_reads = Hashtbl.create 16;
    o_read_views = Hashtbl.create 16;
  }

(* The serve loop is single-domain, so the caches need no lock. *)
let read_counter obs ~verb ~view =
  let view =
    if Hashtbl.mem obs.o_read_views view then view
    else if Hashtbl.length obs.o_read_views < max_read_views then begin
      Hashtbl.replace obs.o_read_views view ();
      view
    end
    else "_other"
  in
  let key = verb ^ "\x00" ^ view in
  match Hashtbl.find_opt obs.o_reads key with
  | Some c -> c
  | None ->
    let c =
      Telemetry.Counter.make
        ~labels:[ ("verb", verb); ("view", view) ]
        ~help:
          "Serve reads by verb and view (bounded: overflow views land in \
           _other)"
        "minview_serve_reads_total"
    in
    Hashtbl.replace obs.o_reads key c;
    c

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes received ahead of the last complete line *)
  mutable pinned : Warehouse.snapshot;
  mutable closing : bool;
}

type t = {
  wh : Warehouse.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  obs : obs;
  stop : bool Atomic.t;
  slowlog : Telemetry.Jsonl_sink.t option;
  slow_threshold_s : float;
  mutable conns : conn list;
  mutable served : int;
}

let port t = t.bound_port
let requests t = t.served
let request_stop t = Atomic.set t.stop true

let create ?(backlog = 16) ?slowlog ?(slow_threshold_s = 0.1) ~port wh =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd backlog
   with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Warehouse.(
      raise
        (Error
           {
             kind = Io_error;
             detail =
               Printf.sprintf "serve: cannot listen on 127.0.0.1:%d: %s" port
                 (Unix.error_message e);
           })));
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  {
    wh;
    listen_fd = fd;
    bound_port;
    obs = make_obs ();
    stop = Atomic.make false;
    slowlog;
    slow_threshold_s;
    conns = [];
    served = 0;
  }

(* --- responses ----------------------------------------------------------- *)

(* Small responses to loopback clients: a blocking [write] is fine (the
   kernel buffer absorbs them); a peer that vanished surfaces as EPIPE /
   ECONNRESET and marks the connection for closing. *)
let send conn s =
  if not conn.closing then
    match
      let b = Bytes.of_string s in
      let rec go off =
        if off < Bytes.length b then
          go (off + Unix.write conn.fd b off (Bytes.length b - off))
      in
      go 0
    with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      conn.closing <- true

let line conn fmt = Printf.ksprintf (fun s -> send conn (s ^ "\n")) fmt

(* A multi-line body sent as one write: the line count up front, the body,
   and the [.] terminator. *)
let body conn head lines =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %d\n" head (List.length lines));
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    lines;
  Buffer.add_string b ".\n";
  send conn (Buffer.contents b)

let err_line conn kind detail =
  line conn "-ERR %s: %s" (Warehouse.kind_label kind) detail

let epoch_line conn s =
  line conn "+EPOCH %d %d" (Warehouse.snapshot_epoch s)
    (Warehouse.snapshot_seq s)

let render_row (tup, mult) =
  String.concat "\t"
    (string_of_int mult :: List.map Value.to_string (Array.to_list tup))

let query_response conn t name =
  let s = conn.pinned in
  let columns, rows = Warehouse.read_view ~snapshot:s t.wh name in
  let sorted = Relation.to_sorted_list rows in
  let n = List.length sorted in
  let head =
    Printf.sprintf "+ROWS %d %d %d" n (Warehouse.snapshot_epoch s)
      (Warehouse.snapshot_seq s)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b (head ^ "\n");
  Buffer.add_string b ("#\t" ^ String.concat "\t" columns ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string b (render_row row);
      Buffer.add_char b '\n')
    sorted;
  Buffer.add_string b ".\n";
  send conn (Buffer.contents b);
  n

let split_lines s = String.split_on_char '\n' (String.trim s)

(* Per-query observability: a span per QUERY/RECONSTRUCT, plus a slowlog
   line when the request crossed the threshold and a sink is configured.
   Slowlog writes must never take the connection down with them. *)
let note_query t conn ~span ~verb ~view ~rows ~start_s =
  let dur_s = Telemetry.now_s () -. start_s in
  let epoch = Warehouse.snapshot_epoch conn.pinned in
  let seq = Warehouse.snapshot_seq conn.pinned in
  if Telemetry.enabled () then begin
    Telemetry.Counter.one
      (read_counter t.obs ~verb:(String.lowercase_ascii verb) ~view);
    (* read-epoch lag: commits published since this connection pinned *)
    let head = Warehouse.snapshot_seq (Warehouse.current_snapshot t.wh) in
    Telemetry.Workload.note_read
      (Telemetry.Workload.view view)
      ~verb:(if String.equal verb "QUERY" then `Query else `Reconstruct)
      ~lag:(head - seq)
  end;
  if Telemetry.enabled () then
    Telemetry.Trace.record
      {
        Telemetry.Trace.name = span;
        start_s;
        dur_s;
        attrs =
          [
            ("verb", verb);
            ("view", view);
            ("epoch", string_of_int epoch);
            ("seq", string_of_int seq);
            ("rows", string_of_int rows);
          ];
      };
  if dur_s >= t.slow_threshold_s then begin
    Telemetry.Counter.one t.obs.o_slow_queries;
    Option.iter
      (fun sink ->
        try
          Telemetry.Jsonl_sink.write_line sink
            (Printf.sprintf
               "{\"ts\":%.6f,\"verb\":\"%s\",\"view\":\"%s\",\"epoch\":%d,\"seq\":%d,\"rows\":%d,\"dur_s\":%.6f}"
               start_s verb
               (Telemetry.Trace.json_escape view)
               epoch seq rows dur_s)
        with Sys_error _ -> ())
      t.slowlog
  end

(* --- request dispatch ---------------------------------------------------- *)

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let handle_request t conn raw =
  let req = strip_cr raw in
  let verb, arg =
    match String.index_opt req ' ' with
    | Some i ->
      ( String.uppercase_ascii (String.sub req 0 i),
        String.trim (String.sub req i (String.length req - i)) )
    | None -> (String.uppercase_ascii (String.trim req), "")
  in
  if verb <> "" then begin
    t.served <- t.served + 1;
    Telemetry.Counter.one t.obs.o_requests;
    Telemetry.Histogram.time t.obs.o_request_seconds @@ fun () ->
    match verb with
    | "PING" -> line conn "+PONG"
    | "EPOCH" -> epoch_line conn conn.pinned
    | "PIN" ->
      conn.pinned <- Warehouse.current_snapshot t.wh;
      epoch_line conn conn.pinned
    | "VIEWS" ->
      body conn "+VIEWS"
        (List.map
           (fun v -> v.View.name)
           (Warehouse.snapshot_views conn.pinned))
    | "QUERY" -> (
      let start_s = Telemetry.now_s () in
      match query_response conn t arg with
      | rows ->
        note_query t conn ~span:"serve.query" ~verb:"QUERY" ~view:arg ~rows
          ~start_s
      | exception Warehouse.Error { kind; detail } -> err_line conn kind detail)
    | "RECONSTRUCT" -> (
      let start_s = Telemetry.now_s () in
      match Warehouse.derivation_of t.wh arg with
      | Some d -> (
        match Mindetail.Reconstruct.to_sql d with
        | sql ->
          let lines = split_lines sql in
          body conn "+SQL" lines;
          note_query t conn ~span:"serve.reconstruct" ~verb:"RECONSTRUCT"
            ~view:arg ~rows:(List.length lines) ~start_s
        | exception Mindetail.Reconstruct.Not_reconstructible m ->
          err_line conn Warehouse.Invalid_request ("not reconstructible: " ^ m))
      | None ->
        err_line conn Warehouse.Invalid_request
          (Printf.sprintf
             "view %s has no derivation (Replicate/Aged strategies cannot \
              reconstruct)"
             arg)
      | exception Warehouse.Error { kind; detail } -> err_line conn kind detail)
    | "METRICS" -> body conn "+METRICS" (split_lines (Telemetry.dump_json ()))
    | "PROFILE" ->
      body conn "+PROFILE" [ Telemetry.Workload.profile_json () ]
    | "QUIT" ->
      line conn "+BYE";
      conn.closing <- true
    | "SHUTDOWN" ->
      line conn "+BYE";
      Atomic.set t.stop true
    | _ -> err_line conn Warehouse.Invalid_request ("unknown verb " ^ verb)
  end

(* --- the serving loop ---------------------------------------------------- *)

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Telemetry.Gauge.set t.obs.o_connections (float_of_int (List.length t.conns))

let accept_conn t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _addr ->
    (* pinned at accept: the connection reads one consistent commit point
       until it sends PIN *)
    let conn =
      {
        fd;
        buf = Buffer.create 256;
        pinned = Warehouse.current_snapshot t.wh;
        closing = false;
      }
    in
    t.conns <- conn :: t.conns;
    Telemetry.Gauge.set t.obs.o_connections
      (float_of_int (List.length t.conns))
  | exception Unix.Unix_error _ -> ()

let drain_conn t conn =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> conn.closing <- true
  | n ->
    Buffer.add_subbytes conn.buf chunk 0 n;
    (* consume every complete line in the buffer *)
    let data = Buffer.contents conn.buf in
    let rec consume start =
      match String.index_from_opt data start '\n' with
      | Some i when not (Atomic.get t.stop) ->
        handle_request t conn (String.sub data start (i - start));
        consume (i + 1)
      | Some _ | None ->
        Buffer.clear conn.buf;
        Buffer.add_substring conn.buf data start (String.length data - start)
    in
    consume 0
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> conn.closing <- true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let run ?tick ?(tick_period = 0.05) t =
  (* a client that disconnects mid-response must surface as EPIPE on the
     write, not kill the process *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  let timeout = if tick = None then 0.25 else tick_period in
  let last_tick = ref (Unix.gettimeofday ()) in
  Log.info (fun m -> m "listening on 127.0.0.1:%d" t.bound_port);
  while not (Atomic.get t.stop) do
    let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
    (match Unix.select fds [] [] timeout with
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd = t.listen_fd then accept_conn t
          else
            match List.find_opt (fun c -> c.fd = fd) t.conns with
            | Some conn -> drain_conn t conn
            | None -> ())
        ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    List.iter (fun c -> if c.closing then close_conn t c) t.conns;
    match tick with
    | Some f when Unix.gettimeofday () -. !last_tick >= tick_period ->
      last_tick := Unix.gettimeofday ();
      f ()
    | Some _ | None -> ()
  done;
  List.iter (fun c -> close_conn t c) t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Log.info (fun m ->
      m "shutdown: %d request(s) served on port %d" t.served t.bound_port)
