(** The warehouse query front-end: a line-protocol TCP server over the
    epoch read path.

    One server owns one {!Warehouse.t} and serves any number of client
    connections from a single-domain [select] loop. Every read is served
    from a published read epoch ({!Warehouse.read_view}), so the serving
    loop — and every client — runs safely concurrent with a writer domain
    ingesting into the same warehouse: readers never block the writer and
    never observe torn state.

    {2 Protocol}

    Requests are single lines, [VERB [argument]], case-insensitive verbs.
    Responses start with [+] (success) or [-ERR kind: detail] (failure,
    one line). Multi-line response bodies are terminated by a line holding
    a single [.].

    {ul
    {- [PING] → [+PONG]}
    {- [EPOCH] → [+EPOCH <epoch> <seq>] — the connection's pinned epoch.}
    {- [PIN] → [+EPOCH <epoch> <seq>] — re-pin to the latest published
       epoch. A connection is pinned at accept time: all its queries read
       one consistent commit point until it asks to advance.}
    {- [VIEWS] → [+VIEWS <n>], one view name per line, [.].}
    {- [QUERY <view>] → [+ROWS <n> <epoch> <seq>], a header line
       [#<TAB><col>...], then [n] rows in canonical order
       ([Tuple.compare] ascending), each [<multiplicity><TAB><val>...],
       then [.]. Served from the connection's pinned epoch.}
    {- [RECONSTRUCT <view>] → [+SQL <n>], the reconstruction query of
       Section 3.2 ({!Mindetail.Reconstruct.to_sql}) as [n] lines, [.].}
    {- [METRICS] → [+METRICS <n>], the telemetry dump as [n] JSON lines,
       [.].}
    {- [QUIT] → [+BYE], connection closed.}
    {- [SHUTDOWN] → [+BYE], then the whole server shuts down gracefully
       (every connection closed, {!run} returns).}} *)

type t

(** [create ~port wh] binds and listens on [127.0.0.1:port] ([port = 0]
    picks an ephemeral port — read it back with {!port}). Registers the
    [minview_serve_*] metrics.

    Every [QUERY]/[RECONSTRUCT] records a [serve.query] /
    [serve.reconstruct] span (attrs: verb, view, epoch, seq, rows). A
    request taking at least [?slow_threshold_s] seconds (default 0.1)
    additionally bumps [minview_serve_slow_queries_total] and — when
    [?slowlog] is given — appends one JSON line
    [{"ts","verb","view","epoch","seq","rows","dur_s"}] to the sink,
    whose size cap/rotation the caller controls
    ({!Telemetry.Jsonl_sink.open_}). The sink is written from the serving
    domain only; the caller remains its owner and closes it after {!run}
    returns.
    @raise Warehouse.Error ([Io_error]) when binding fails. *)
val create :
  ?backlog:int ->
  ?slowlog:Telemetry.Jsonl_sink.t ->
  ?slow_threshold_s:float ->
  port:int ->
  Warehouse.t ->
  t

(** The bound port (the actual one when created with [port = 0]). *)
val port : t -> int

(** [run t] accepts and serves connections until {!request_stop} is called
    or a client sends [SHUTDOWN]; then closes every connection and the
    listening socket and returns. [?tick] is invoked between polls, at
    most every [?tick_period] seconds (default 0.05) — the hook used by
    [minview serve --simulate] to ingest batches on the serving domain,
    and by tests to interleave writes. *)
val run : ?tick:(unit -> unit) -> ?tick_period:float -> t -> unit

(** Ask a running {!run} to stop after the current poll. Async-signal-safe
    (one atomic store): wire it to SIGINT/SIGTERM for graceful shutdown. *)
val request_stop : t -> unit

(** Requests served so far (across all connections). *)
val requests : t -> int
