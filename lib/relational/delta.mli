(** Changes to base tables, as emitted by the (simulated) data sources.

    Updates carry both the old and new tuple: the maintenance algorithms of
    the paper propagate {e exposed} updates as a deletion followed by an
    insertion (Section 2.1), and need the before-image to do so. *)

type change =
  | Insert of Tuple.t
  | Delete of Tuple.t
  | Update of { before : Tuple.t; after : Tuple.t }

(** A change to one named base table. *)
type t = { table : string; change : change }

val insert : string -> Tuple.t -> t
val delete : string -> Tuple.t -> t
val update : string -> before:Tuple.t -> after:Tuple.t -> t

(** [invert d] is the change that undoes [d]: inserts become deletes and
    vice versa, updates swap their before and after images. Applying the
    inverses of a history in reverse order restores the original state. *)
val invert : t -> t

(** [as_delete_insert c] splits an update into its deletion and insertion
    parts; inserts/deletes are returned unchanged (singleton list). *)
val as_delete_insert : change -> change list

(** Columns (by index) whose value differs between before and after image.
    Empty for inserts/deletes. *)
val changed_indices : change -> int list

val pp : Format.formatter -> t -> unit

(** {2 Rejections}

    A change the warehouse refuses to ingest, with a machine-readable
    reason. Produced by {!Validator} (constraint checks against the shadow
    source) and by the warehouse's transactional apply ([Engine_failure]);
    rejected changes land in the warehouse's dead-letter queue. *)

type reason =
  | Unknown_table  (** the named base table does not exist *)
  | Schema_mismatch  (** wrong arity or column type *)
  | Duplicate_key  (** insert (or key update) collides with an existing key *)
  | Missing_row  (** delete/update of a tuple that is not present *)
  | Dangling_reference  (** a foreign key has no referent *)
  | Referenced_key  (** delete/key-update of a still-referenced key *)
  | Not_updatable  (** update touches a column not declared UPDATABLE *)
  | Engine_failure
      (** the batch was valid but an engine failed mid-apply; the whole
          batch was rolled back and quarantined *)

type rejection = { delta : t; reason : reason; detail : string }

(** Stable kebab-case tag of a reason (for logs and machine consumption). *)
val reason_label : reason -> string

val pp_rejection : Format.formatter -> rejection -> unit
