(* Delta validation against a shadow of the source (see validator.mli). *)

type t = {
  mutable shadow : Database.t;
  (* open undo journal: deltas admitted since [begin_txn], newest first.
     [None] when no transaction is active. *)
  mutable txn : Delta.t list option;
}

let of_database db = { shadow = Database.copy db; txn = None }
let copy v = { shadow = Database.copy v.shadow; txn = None }
let restore v ~from = v.shadow <- from.shadow
let believed_source v = Database.copy v.shadow

let begin_txn v =
  if v.txn <> None then invalid_arg "Validator.begin_txn: transaction open";
  v.txn <- Some []

let commit v =
  if v.txn = None then invalid_arg "Validator.commit: no open transaction";
  v.txn <- None

let rollback v =
  match v.txn with
  | None -> invalid_arg "Validator.rollback: no open transaction"
  | Some journal ->
    (* the journal is newest-first, so applying each inverse in list order
       replays the history backwards; every inverse is legal against the
       shadow because the original made it so *)
    List.iter (fun d -> Database.apply v.shadow (Delta.invert d)) journal;
    v.txn <- None

let reject delta reason fmt =
  Format.kasprintf
    (fun detail -> Error { Delta.delta; reason; detail })
    fmt

let outgoing_refs db table =
  List.filter
    (fun (r : Integrity.reference) -> String.equal r.Integrity.src_table table)
    (Database.references db)

(* The unique stored tuple matching [tup]'s key, when it is [tup] itself. *)
let stored_image db table schema tup =
  match Database.find_by_key db table tup.(Schema.key_index schema) with
  | Some stored when Tuple.equal stored tup -> Some stored
  | Some _ | None -> None

let check_refs d db table schema tup =
  List.fold_left
    (fun acc (r : Integrity.reference) ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        let v = tup.(Schema.index_of schema r.Integrity.src_col) in
        if Database.find_by_key db r.Integrity.dst_table v = None then
          reject d Delta.Dangling_reference "%a = %a has no referent"
            Integrity.pp r Value.pp v
        else Ok ())
    (Ok ()) (outgoing_refs db table)

let check_insert d db table schema tup =
  if not (Schema.conforms schema tup) then
    reject d Delta.Schema_mismatch "tuple %a does not conform to %a" Tuple.pp
      tup Schema.pp schema
  else
    let key = tup.(Schema.key_index schema) in
    if Database.find_by_key db table key <> None then
      reject d Delta.Duplicate_key "key %a already present in %s" Value.pp key
        table
    else check_refs d db table schema tup

let check_delete d db table schema tup =
  if not (Schema.conforms schema tup) then
    reject d Delta.Schema_mismatch "tuple %a does not conform to %a" Tuple.pp
      tup Schema.pp schema
  else
    match stored_image db table schema tup with
    | None ->
      reject d Delta.Missing_row "tuple %a is not stored in %s" Tuple.pp tup
        table
    | Some _ ->
      let key = tup.(Schema.key_index schema) in
      let n = Database.reference_count db table key in
      if n > 0 then
        reject d Delta.Referenced_key "key %a is referenced by %d row(s)"
          Value.pp key n
      else Ok ()

let check_update d db table schema ~before ~after =
  if not (Schema.conforms schema before && Schema.conforms schema after) then
    reject d Delta.Schema_mismatch "before/after image does not conform to %a"
      Schema.pp schema
  else
    match stored_image db table schema before with
    | None ->
      reject d Delta.Missing_row "before-image %a is not stored in %s"
        Tuple.pp before table
    | Some _ -> (
      let updatable = Database.updatable_columns db table in
      let frozen =
        List.filteri
          (fun _ i ->
            let col = schema.Schema.columns.(i).Schema.col_name in
            not (List.mem col updatable))
          (Delta.changed_indices (Delta.Update { before; after }))
      in
      match frozen with
      | i :: _ ->
        reject d Delta.Not_updatable "column %s is not declared updatable"
          schema.Schema.columns.(i).Schema.col_name
      | [] ->
        let ki = Schema.key_index schema in
        let key_check =
          if Value.equal before.(ki) after.(ki) then Ok ()
          else
            let n = Database.reference_count db table before.(ki) in
            if n > 0 then
              reject d Delta.Referenced_key
                "cannot change key %a: referenced by %d row(s)" Value.pp
                before.(ki) n
            else if Database.find_by_key db table after.(ki) <> None then
              reject d Delta.Duplicate_key "new key %a already present"
                Value.pp after.(ki)
            else Ok ()
        in
        (match key_check with
        | Error _ as e -> e
        | Ok () -> check_refs d db table schema after))

let check v (d : Delta.t) =
  let db = v.shadow in
  if not (Database.mem_table db d.Delta.table) then
    reject d Delta.Unknown_table "no base table named %s" d.Delta.table
  else
    let schema = Database.schema_of db d.Delta.table in
    match
      match d.Delta.change with
      | Delta.Insert tup -> check_insert d db d.Delta.table schema tup
      | Delta.Delete tup -> check_delete d db d.Delta.table schema tup
      | Delta.Update { before; after } ->
        check_update d db d.Delta.table schema ~before ~after
    with
    | Ok () -> Ok d
    | Error _ as e -> e

let admit v d =
  match check v d with
  | Error _ as e -> e
  | Ok d -> (
    (* the checks above mirror the store's constraints exactly; a Violation
       here means they drifted apart — surface it rather than crash *)
    match Database.apply v.shadow d with
    | () ->
      (match v.txn with
      | Some journal -> v.txn <- Some (d :: journal)
      | None -> ());
      Ok d
    | exception Database.Violation msg ->
      reject d Delta.Engine_failure "shadow store refused the change: %s" msg)
