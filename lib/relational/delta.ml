type change =
  | Insert of Tuple.t
  | Delete of Tuple.t
  | Update of { before : Tuple.t; after : Tuple.t }

type t = { table : string; change : change }

let insert table tup = { table; change = Insert tup }
let delete table tup = { table; change = Delete tup }
let update table ~before ~after = { table; change = Update { before; after } }

let invert { table; change } =
  let change =
    match change with
    | Insert tup -> Delete tup
    | Delete tup -> Insert tup
    | Update { before; after } -> Update { before = after; after = before }
  in
  { table; change }

let as_delete_insert = function
  | Update { before; after } -> [ Delete before; Insert after ]
  | (Insert _ | Delete _) as c -> [ c ]

let changed_indices = function
  | Insert _ | Delete _ -> []
  | Update { before; after } ->
    let acc = ref [] in
    for i = Array.length before - 1 downto 0 do
      if not (Value.equal before.(i) after.(i)) then acc := i :: !acc
    done;
    !acc

let pp ppf { table; change } =
  match change with
  | Insert t -> Format.fprintf ppf "+%s%a" table Tuple.pp t
  | Delete t -> Format.fprintf ppf "-%s%a" table Tuple.pp t
  | Update { before; after } ->
    Format.fprintf ppf "%s%a->%a" table Tuple.pp before Tuple.pp after

(* --- rejections -------------------------------------------------------- *)

type reason =
  | Unknown_table
  | Schema_mismatch
  | Duplicate_key
  | Missing_row
  | Dangling_reference
  | Referenced_key
  | Not_updatable
  | Engine_failure

type rejection = { delta : t; reason : reason; detail : string }

let reason_label = function
  | Unknown_table -> "unknown-table"
  | Schema_mismatch -> "schema-mismatch"
  | Duplicate_key -> "duplicate-key"
  | Missing_row -> "missing-row"
  | Dangling_reference -> "dangling-reference"
  | Referenced_key -> "referenced-key"
  | Not_updatable -> "not-updatable"
  | Engine_failure -> "engine-failure"

let pp_rejection ppf r =
  Format.fprintf ppf "[%s] %a: %s" (reason_label r.reason) pp r.delta r.detail
