(** Delta validation against a shadow of the source.

    The warehouse never re-reads the operational store after the initial
    extract, so it cannot ask the store whether an incoming change is legal.
    The validator therefore keeps a {e shadow}: a private replica of the
    source, captured at warehouse creation and advanced one accepted change
    at a time. Every incoming delta is checked against the shadow — schema
    conformance, key uniqueness, referential integrity, declared updatable
    columns, presence of before-images — {e before} any maintenance engine
    sees it, turning would-be mid-apply exceptions into structured
    {!Delta.rejection}s that the warehouse can quarantine. *)

type t

(** [of_database db] snapshots [db] as the shadow. The copy is private:
    later mutations of [db] are invisible to the validator. *)
val of_database : Database.t -> t

(** Deep copy (snapshot-grade; O(shadow)). The copy has no open
    transaction. The hot batch path uses {!begin_txn}/{!rollback} instead. *)
val copy : t -> t

(** [restore v ~from] rolls [v] back to the state captured by [copy]. *)
val restore : t -> from:t -> unit

(** {2 Batch transactions}

    O(delta) alternative to [copy]/[restore]: [begin_txn] opens an undo
    journal, {!admit} records every accepted delta in it, and [rollback]
    replays their inverses (newest first) against the shadow — undoing
    exactly the admitted prefix of the batch without copying the shadow. *)

(** Opens a journal. Raises [Invalid_argument] if one is already open. *)
val begin_txn : t -> unit

(** Discards the journal, keeping the admitted changes. Raises
    [Invalid_argument] if no transaction is open. *)
val commit : t -> unit

(** Undoes every delta admitted since [begin_txn] and closes the journal.
    Raises [Invalid_argument] if no transaction is open. *)
val rollback : t -> unit

(** A private copy of the shadow: the warehouse's belief of the current
    source contents (initial snapshot + every accepted delta). *)
val believed_source : t -> Database.t

(** [check v d] validates [d] against the shadow without advancing it. *)
val check : t -> Delta.t -> (Delta.t, Delta.rejection) result

(** [admit v d] validates [d] and, on success, applies it to the shadow so
    subsequent changes are checked against the advanced state. *)
val admit : t -> Delta.t -> (Delta.t, Delta.rejection) result
