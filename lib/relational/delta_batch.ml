(* Net-effect compaction of a delta batch.

   The paper compresses the *stored* detail data by aggregating duplicates
   (Section 3, Table 2); the same idea applies to the delta stream before it
   ever reaches a maintenance engine.  Within one batch, successive changes
   to the same (table, primary key) slot collapse to their net effect:

     insert ; delete            -> nothing
     insert ; update            -> insert of the final image
     update ; update            -> one update (dropped if it round-trips)
     update ; delete            -> delete of the original image
     delete ; insert            -> update (dropped if the row is unchanged)

   Updates that move a row to a new primary key are first decomposed into a
   delete of the old slot and an insert of the new one, so each slot's
   history is a straight line.  Emission preserves first-touch order of both
   tables and keys, which keeps replay deterministic. *)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type stats = { input : int; output : int }

type t = { tables : (string * Delta.t list) list; stats : stats }

(* A netted-out slot still constrains later changes, and in two different
   ways: after insert;delete the row is [Absent] (only a fresh insert is
   legal), while after an update round-trip or delete;identical-reinsert the
   row is live and [Unchanged] (updates and deletes of it stay legal, a
   second insert does not). Both emit nothing. *)
type net = Absent | Unchanged of Tuple.t | Net of Delta.change

type slot = { mutable net : net }

type table_acc = {
  ki : int;  (* key position in the tuple layout *)
  mutable ds : Delta.t list;  (* reversed batch order *)
  mutable n : int;
  mutable mixed : bool;  (* saw a delete or an update *)
}

let illegal table what =
  invalid_arg (Printf.sprintf "Delta_batch.net: %s for table %s" what table)

let compose table prev (change : Delta.change) =
  match (prev, change) with
  | None, c -> Net c
  | Some { net = Absent }, Insert t -> Net (Insert t)
  | Some { net = Absent }, Delete _ -> illegal table "delete of a netted-out row"
  | Some { net = Absent }, Update _ -> illegal table "update of a netted-out row"
  | Some { net = Unchanged _ }, Insert _ -> illegal table "insert over a live row"
  | Some { net = Unchanged img }, Delete _ -> Net (Delete img)
  | Some { net = Unchanged img }, Update { after; _ } ->
    if Tuple.equal img after then Unchanged img
    else Net (Update { before = img; after })
  | Some { net = Net (Insert _) }, Insert _ -> illegal table "duplicate insert"
  | Some { net = Net (Insert _) }, Delete _ -> Absent
  | Some { net = Net (Insert _) }, Update { after; _ } -> Net (Insert after)
  | Some { net = Net (Delete before) }, Insert after ->
    if Tuple.equal before after then Unchanged before
    else Net (Update { before; after })
  | Some { net = Net (Delete _) }, Delete _ -> illegal table "double delete"
  | Some { net = Net (Delete _) }, Update _ -> illegal table "update of a deleted row"
  | Some { net = Net (Update _) }, Insert _ -> illegal table "insert over a live row"
  | Some { net = Net (Update { before; _ }) }, Delete _ -> Net (Delete before)
  | Some { net = Net (Update { before; _ }) }, Update { after; _ } ->
    if Tuple.equal before after then Unchanged before
    else Net (Update { before; after })

(* Collapse one table's changes through per-key slots. Only reached when the
   table saw at least one delete or update; pure-insert tables skip it. *)
let net_table table acc changes =
  let slots = VH.create (max 64 acc.n) in
  let slot_order = ref [] in
  let feed (change : Delta.change) =
    let key =
      match change with
      | Insert t | Delete t -> t.(acc.ki)
      | Update { before; _ } -> before.(acc.ki)
    in
    match VH.find_opt slots key with
    | Some slot -> slot.net <- compose table (Some slot) change
    | None ->
      let slot = { net = compose table None change } in
      VH.add slots key slot;
      slot_order := slot :: !slot_order
  in
  List.iter
    (fun (change : Delta.change) ->
      match change with
      | Update { before; after }
        when not (Value.equal before.(acc.ki) after.(acc.ki)) ->
        (* key-changing update: the old slot dies, the new one is born *)
        feed (Delete before);
        feed (Insert after)
      | c -> feed c)
    changes;
  (* slot_order is reversed first-touch order, so a left fold that prepends
     restores it *)
  List.fold_left
    (fun ds slot ->
      match slot.net with
      | Absent | Unchanged _ -> ds
      | Net change -> { Delta.table; change } :: ds)
    [] !slot_order

let net ~key_index (deltas : Delta.t list) =
  let tables : (string, table_acc) Hashtbl.t = Hashtbl.create 7 in
  let table_order = ref [] in
  let input = ref 0 in
  List.iter
    (fun (d : Delta.t) ->
      incr input;
      let acc =
        match Hashtbl.find_opt tables d.table with
        | Some acc -> acc
        | None ->
          let acc =
            { ki = key_index d.table; ds = []; n = 0; mixed = false }
          in
          Hashtbl.add tables d.table acc;
          table_order := d.table :: !table_order;
          acc
      in
      acc.ds <- d :: acc.ds;
      acc.n <- acc.n + 1;
      match d.change with
      | Insert _ -> ()
      | Delete _ | Update _ -> acc.mixed <- true)
    deltas;
  let output = ref 0 in
  let tables =
    List.rev_map
      (fun table ->
        let acc = Hashtbl.find tables table in
        let ds =
          if not acc.mixed then
            (* inserts can't interact with each other: each targets a fresh
               key (validation rejects duplicates upstream, exactly as the
               serial path assumes), so netting is the identity — skip the
               per-key hashing entirely *)
            List.rev acc.ds
          else
            net_table table acc (List.rev_map (fun d -> d.Delta.change) acc.ds)
        in
        output := !output + List.length ds;
        (table, ds))
      !table_order
  in
  { tables; stats = { input = !input; output = !output } }

let deltas t = List.concat_map snd t.tables
