type t = TInt | TFloat | TString | TBool

let equal (a : t) b = a = b

let to_string = function
  | TInt -> "INT"
  | TFloat -> "FLOAT"
  | TString -> "TEXT"
  | TBool -> "BOOL"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_sql_name s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" -> Some TInt
  | "FLOAT" | "REAL" | "DOUBLE" | "DECIMAL" | "NUMERIC" -> Some TFloat
  | "TEXT" | "VARCHAR" | "CHAR" | "STRING" -> Some TString
  | "BOOL" | "BOOLEAN" -> Some TBool
  | _ -> None

let of_value = function
  | Value.Int _ -> TInt
  | Value.Float _ -> TFloat
  | Value.String _ -> TString
  | Value.Bool _ -> TBool
  | Value.Null -> invalid_arg "Datatype.of_value: NULL has no datatype"

(* NULL inhabits no column type: the schema check is where the no-null
   assumption (paper Section 2.1) is enforced at the ingestion boundary. *)
let check t v = (not (Value.is_null v)) && equal t (of_value v)
let is_numeric = function TInt | TFloat -> true | TString | TBool -> false
