(** Net-effect compaction of a delta batch.

    Collapses successive changes to the same (table, primary key) slot into
    their net effect before the batch reaches a maintenance engine — the
    delta-stream analogue of the paper's smart duplicate compression of the
    stored detail data (Section 3).  Key-changing updates are decomposed
    into delete + insert so every slot's history is linear. *)

type stats = { input : int  (** deltas fed in *); output : int  (** net deltas out *) }

type t = {
  tables : (string * Delta.t list) list;
      (** net deltas grouped by table; tables and keys both appear in
          first-touch order of the original batch *)
  stats : stats;
}

(** [net ~key_index deltas] compacts a batch.  [key_index tbl] must give the
    primary-key position in [tbl]'s tuple layout for every table that occurs
    in the batch.

    @raise Invalid_argument if the batch is not replayable against any
    starting state (duplicate insert, double delete, change to a row the
    batch itself netted out). *)
val net : key_index:(string -> int) -> Delta.t list -> t

(** Flattened net deltas, tables concatenated in first-touch order. *)
val deltas : t -> Delta.t list
