type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | (Null | Int _ | Float _ | String _ | Bool _), _ -> false

let tag = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 2
  | String _ -> 3
  | Bool _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Null | Int _ | Float _ | String _ | Bool _), _ ->
    Int.compare (tag a) (tag b)

let hash = function
  | Null -> Hashtbl.hash (-1)
  | Int x -> Hashtbl.hash (0, x)
  | Float x -> Hashtbl.hash (1, x)
  | String x -> Hashtbl.hash (2, x)
  | Bool x -> Hashtbl.hash (3, x)

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | String x -> Format.fprintf ppf "%s" x
  | Bool x -> Format.pp_print_bool ppf x

let to_string v = Format.asprintf "%a" pp v

let type_name = function
  | Null -> "null"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Bool _ -> "bool"

let is_null = function Null -> true | Int _ | Float _ | String _ | Bool _ -> false

let numeric_error op a b =
  invalid_arg
    (Printf.sprintf "Value.%s: non-numeric operands (%s, %s)" op (to_string a)
       (to_string b))

let add a b =
  match a, b with
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Int x, Float y -> Float (float_of_int x +. y)
  | Float x, Int y -> Float (x +. float_of_int y)
  | _ -> numeric_error "add" a b

let sub a b =
  match a, b with
  | Int x, Int y -> Int (x - y)
  | Float x, Float y -> Float (x -. y)
  | Int x, Float y -> Float (float_of_int x -. y)
  | Float x, Int y -> Float (x -. float_of_int y)
  | _ -> numeric_error "sub" a b

let mul a b =
  match a, b with
  | Int x, Int y -> Int (x * y)
  | Float x, Float y -> Float (x *. y)
  | Int x, Float y -> Float (float_of_int x *. y)
  | Float x, Int y -> Float (x *. float_of_int y)
  | _ -> numeric_error "mul" a b

let zero_like = function
  | Float _ -> Float 0.
  | Int _ -> Int 0
  | (Null | String _ | Bool _) as v ->
    invalid_arg ("Value.zero_like: non-numeric value " ^ to_string v)

let is_numeric = function
  | Int _ | Float _ -> true
  | Null | String _ | Bool _ -> false

let scale v n =
  match v with
  | Int x -> Int (x * n)
  | Float x -> Float (x *. float_of_int n)
  | Null | String _ | Bool _ ->
    invalid_arg ("Value.scale: non-numeric value " ^ to_string v)

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | (Null | String _ | Bool _) as v ->
    invalid_arg ("Value.div_as_float: non-numeric value " ^ to_string v)

let div_as_float a b = Float (to_float a /. to_float b)
