(** Atomic attribute values.

    The paper assumes base tables contain no null values (Section 2.1).
    [Null] is representable only so that the ingestion boundary can express —
    and reject — incoming source rows that carry one: [Datatype.check] fails
    on it, so {!Validator} refuses any delta containing a [Null] before it
    reaches a maintenance engine. No value at rest inside the warehouse is
    ever [Null]. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

val equal : t -> t -> bool

(** Total order. Values of distinct types are ordered by type tag; within a
    type the natural order is used. [Int] and [Float] do not compare
    numerically equal: schemas are typed, so cross-type comparison only occurs
    between values of different columns, where any consistent order works. *)
val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {2 Arithmetic}

    Used by aggregate evaluation. [Int] and [Float] operands may be mixed; the
    result is [Float] as soon as either operand is. Raises
    [Invalid_argument] on non-numeric operands. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [zero_like v] is the additive identity of [v]'s numeric type. *)
val zero_like : t -> t

val is_numeric : t -> bool
val is_null : t -> bool

(** [scale v n] is [v] added to itself [n] times ([mul v (Int n)], but total
    on numeric values and kept separate for readability at call sites that
    weight a value by a duplicate count). *)
val scale : t -> int -> t

(** [div_as_float a b] is the float quotient, used for AVG. *)
val div_as_float : t -> t -> t

(** Name of the value's type ("null", "int", "float", "string", "bool"), for
    diagnostics. *)
val type_name : t -> string
