(* Workload intelligence: the streaming sketch error bounds (Space-Saving
   guaranteed heavy hitters, count-min one-sided error), multi-domain cell
   merging against a single-domain oracle, and the persisted workload
   profile round-trip — standalone and through a warehouse
   checkpoint/recover cycle. *)

open Helpers
module Gen = QCheck2.Gen
module Metrics = Telemetry.Metrics
module Json = Telemetry.Json
module Sketch = Telemetry.Sketch
module Wk = Telemetry.Workload

let test case fn = Alcotest.test_case case `Quick fn
let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir name =
  let dir = tmp name in
  if Sys.file_exists dir then rm_rf dir;
  dir

let tiny =
  {
    Workload.Retail.days = 6;
    stores = 2;
    products = 10;
    sold_per_store_day = 3;
    tx_per_product = 2;
    brands = 3;
    seed = 31;
  }

(* streams are (key, weight) lists over a small key universe; the key
   itself serves as the hash, so distinct keys never collide *)
let stream_gen =
  Gen.(
    list_size (int_range 1 400)
      (pair (int_range 0 40) (int_range 1 9)))

let true_counts stream =
  let h = Hashtbl.create 64 in
  List.iter
    (fun (key, w) ->
      Hashtbl.replace h key (w + Option.value ~default:0 (Hashtbl.find_opt h key)))
    stream;
  h

let feed_ss ss stream =
  List.iter
    (fun (key, w) ->
      Sketch.Space_saving.touch ~weight:w ss ~hash:key
        ~label:(fun () -> string_of_int key))
    stream

let feed_cms cms stream =
  List.iter (fun (key, w) -> Sketch.Count_min.add ~weight:w cms ~hash:key) stream

(* check est >= true and est - err <= true for every merged entry, plus the
   guaranteed-hitter property: true count > total/k implies tracked *)
let check_ss_bounds ~k ss truth =
  let entries = Sketch.Space_saving.top ~n:max_int ss in
  let total = Sketch.Space_saving.total ss in
  List.iter
    (fun e ->
      let t =
        Option.value ~default:0
          (Hashtbl.find_opt truth e.Sketch.Space_saving.e_hash)
      in
      if e.Sketch.Space_saving.e_est < t then
        Alcotest.failf "key %d: est %d < true %d" e.Sketch.Space_saving.e_hash
          e.Sketch.Space_saving.e_est t;
      if e.Sketch.Space_saving.e_est - e.Sketch.Space_saving.e_err > t then
        Alcotest.failf "key %d: est %d - err %d > true %d"
          e.Sketch.Space_saving.e_hash e.Sketch.Space_saving.e_est
          e.Sketch.Space_saving.e_err t)
    entries;
  let tracked = List.map (fun e -> e.Sketch.Space_saving.e_hash) entries in
  Hashtbl.iter
    (fun key t ->
      if t * k > total && not (List.mem key tracked) then
        Alcotest.failf "guaranteed hitter %d (true %d > %d/%d) missing" key t
          total k)
    truth;
  true

let sketch_props =
  [
    QCheck2.Test.make ~count:200
      ~name:"space-saving: bounds hold and guaranteed hitters are tracked"
      stream_gen
      (fun stream ->
        Metrics.reset ();
        let k = 8 in
        let ss = Sketch.Space_saving.create ~k in
        feed_ss ss stream;
        check_ss_bounds ~k ss (true_counts stream));
    QCheck2.Test.make ~count:200 ~name:"count-min never under-estimates"
      stream_gen
      (fun stream ->
        Metrics.reset ();
        let cms = Sketch.Count_min.create ~depth:3 ~width:32 () in
        feed_cms cms stream;
        let truth = true_counts stream in
        Hashtbl.iter
          (fun key t ->
            let est = Sketch.Count_min.estimate cms ~hash:key in
            if est < t then
              Alcotest.failf "key %d: cms estimate %d < true %d" key est t)
          truth;
        true);
    QCheck2.Test.make ~count:60
      ~name:"space-saving totals and restore are additive" stream_gen
      (fun stream ->
        Metrics.reset ();
        let ss = Sketch.Space_saving.create ~k:8 in
        feed_ss ss stream;
        let total = Sketch.Space_saving.total ss in
        let expect = List.fold_left (fun acc (_, w) -> acc + w) 0 stream in
        if total <> expect then
          Alcotest.failf "total %d <> stream weight %d" total expect;
        let entries = Sketch.Space_saving.top ~n:max_int ss in
        let ss2 = Sketch.Space_saving.create ~k:8 in
        Sketch.Space_saving.restore ss2 entries ~total;
        if Sketch.Space_saving.total ss2 <> total then
          Alcotest.failf "restored total %d <> %d"
            (Sketch.Space_saving.total ss2)
            total;
        (* the restored summary keeps every entry's upper bound *)
        check_ss_bounds ~k:8 ss2 (true_counts stream));
  ]

(* --- multi-domain cells vs a single-domain oracle ------------------------ *)

let split4 stream =
  let parts = [| []; []; []; [] |] in
  List.iteri (fun i x -> parts.(i land 3) <- x :: parts.(i land 3)) stream;
  parts

let domain_props =
  [
    QCheck2.Test.make ~count:30
      ~name:"count-min: 4-domain split stream equals the serial oracle"
      stream_gen
      (fun stream ->
        Metrics.reset ();
        let par = Sketch.Count_min.create ~depth:3 ~width:32 () in
        let ser = Sketch.Count_min.create ~depth:3 ~width:32 () in
        feed_cms ser stream;
        let parts = split4 stream in
        Array.to_list parts
        |> List.map (fun part -> Domain.spawn (fun () -> feed_cms par part))
        |> List.iter Domain.join;
        (* cell sums are additive, so the merged matrix is independent of
           which domain's cell received each update *)
        if Sketch.Count_min.total par <> Sketch.Count_min.total ser then
          Alcotest.failf "totals differ: %d vs %d"
            (Sketch.Count_min.total par)
            (Sketch.Count_min.total ser);
        Hashtbl.iter
          (fun key _ ->
            let a = Sketch.Count_min.estimate par ~hash:key in
            let b = Sketch.Count_min.estimate ser ~hash:key in
            if a <> b then
              Alcotest.failf "key %d: parallel %d <> serial %d" key a b)
          (true_counts stream);
        true);
    QCheck2.Test.make ~count:30
      ~name:"space-saving: 4-domain merge keeps bounds and guaranteed hitters"
      stream_gen
      (fun stream ->
        Metrics.reset ();
        let k = 8 in
        let ss = Sketch.Space_saving.create ~k in
        let parts = split4 stream in
        Array.to_list parts
        |> List.map (fun part -> Domain.spawn (fun () -> feed_ss ss part))
        |> List.iter Domain.join;
        check_ss_bounds ~k ss (true_counts stream));
  ]

(* --- the persisted workload profile -------------------------------------- *)

let jget path j =
  match Json.path path j with
  | Some v -> v
  | None -> Alcotest.failf "profile is missing %s" (String.concat "." path)

let jnum path j =
  match Json.to_float (jget path j) with
  | Some f -> f
  | None -> Alcotest.failf "profile field %s is not a number"
              (String.concat "." path)

let view_obj name j =
  match
    List.find_opt
      (fun v -> Json.member "view" v = Some (Json.Str name))
      (Json.to_list (jget [ "views" ] j))
  with
  | Some v -> v
  | None -> Alcotest.failf "profile has no view %S" name

let parsed_profile () = Json.parse_exn (Wk.profile_json ())

let feed_view name =
  let vs = Wk.view name in
  (* a producer's local accounting, the engine's discipline: sample the
     sketch feeds, flush the exact totals once *)
  let events = ref 0 and writes = ref 0 in
  for round = 1 to 100 do
    (* zipf-ish: key 1 dominates *)
    let key = if round mod 10 = 0 then round / 10 else 1 in
    if !events land Wk.sample_mask = 0 then
      Wk.note_hot_key ~weight:2 vs ~hash:key ~label:(fun () ->
          "k" ^ string_of_int key);
    incr events;
    writes := !writes + 2
  done;
  Wk.flush_writes vs ~writes:!writes ~events:!events;
  Wk.note_batch vs ~deltas_in:200 ~netted:110 ~applied:110;
  Wk.note_read vs ~verb:`Query ~lag:0;
  Wk.note_read vs ~verb:`Reconstruct ~lag:3;
  vs

let profile_tests =
  [
    test "profile_json reports counters, skew and hot keys" (fun () ->
        Metrics.reset ();
        Wk.reset ();
        let _ = feed_view "wkp_basic" in
        Wk.note_shard_run ~workers:2 ~busy:[| 0.3; 0.1 |];
        Wk.note_shard_ops [| 5; 7 |];
        let j = parsed_profile () in
        Alcotest.(check (float 1e-9))
          "schema" (float_of_int Wk.profile_schema) (jnum [ "schema" ] j);
        let v = view_obj "wkp_basic" j in
        Alcotest.(check (float 1e-9)) "writes" 200. (jnum [ "writes" ] v);
        Alcotest.(check (float 1e-9))
          "write events" 100. (jnum [ "write_events" ] v);
        Alcotest.(check (float 1e-9)) "query reads" 1.
          (jnum [ "reads"; "query" ] v);
        Alcotest.(check (float 1e-9))
          "reconstruct reads" 1.
          (jnum [ "reads"; "reconstruct" ] v);
        Alcotest.(check (float 1e-9))
          "compaction ratio" 0.55
          (jnum [ "skew"; "compaction_ratio" ] v);
        (* 90% of the weight is on one key *)
        Alcotest.(check bool)
          "hot-key share is skewed" true
          (jnum [ "skew"; "hot_key_share" ] v > 0.8);
        let hot = Json.to_list (jget [ "hot_keys" ] v) in
        Alcotest.(check bool) "hot keys non-empty" true (hot <> []);
        let first = List.hd hot in
        Alcotest.(check (option string))
          "hottest key label" (Some "k1")
          (Option.bind (Json.member "key" first) Json.to_string);
        (* epoch lag: two reads observed *)
        Alcotest.(check (float 1e-9))
          "lag count" 2.
          (jnum [ "epoch_lag"; "count" ] j);
        Alcotest.(check (float 1e-9))
          "shard runs" 1.
          (jnum [ "shards"; "runs" ] j));
    test "write/reset/load round-trips additively" (fun () ->
        Metrics.reset ();
        Wk.reset ();
        let _ = feed_view "wkp_round" in
        let before = parsed_profile () in
        let path = tmp "wkp_round_profile.json" in
        Wk.write_profile ~path;
        Wk.reset ();
        Alcotest.(check bool) "load succeeds" true (Wk.load_profile ~path);
        let after = parsed_profile () in
        let v0 = view_obj "wkp_round" before
        and v1 = view_obj "wkp_round" after in
        List.iter
          (fun field ->
            Alcotest.(check (float 1e-9))
              field
              (jnum [ field ] v0)
              (jnum [ field ] v1))
          [ "writes"; "write_events"; "batches"; "deltas_in"; "netted" ];
        Alcotest.(check (float 1e-9))
          "hottest estimate survives"
          (jnum [ "est" ] (List.hd (Json.to_list (jget [ "hot_keys" ] v0))))
          (jnum [ "est" ] (List.hd (Json.to_list (jget [ "hot_keys" ] v1))));
        (* loading the same file again doubles the counters: the merge is
           additive by design (restore + WAL replay discipline) *)
        Alcotest.(check bool) "second load" true (Wk.load_profile ~path);
        let twice = view_obj "wkp_round" (parsed_profile ()) in
        Alcotest.(check (float 1e-9))
          "additive merge" (2. *. jnum [ "writes" ] v0)
          (jnum [ "writes" ] twice));
    test "load_profile is false on a missing file" (fun () ->
        Metrics.reset ();
        Wk.reset ();
        Alcotest.(check bool)
          "missing" false
          (Wk.load_profile ~path:(tmp "wkp_no_such_profile.json")));
  ]

(* --- through the warehouse: checkpoint persists, recover restores -------- *)

let fresh_id = ref 7_000_000

let skewed_sales n =
  (* product 1 takes most of the stream: a hot group key for product_sales.
     timeid 4+ lands in the 1997 half of the tiny calendar, which the view's
     year predicate requires *)
  List.init n (fun idx ->
      incr fresh_id;
      let product = if idx mod 10 = 0 then 1 + (idx mod 5) else 1 in
      Delta.insert "sale"
        (row
           [ i !fresh_id; i (4 + (idx mod 3)); i product; i 1;
             i (10 + (idx mod 7)) ]))

let warehouse_tests =
  [
    test "checkpoint writes the profile; recover restores the sketches"
      (fun () ->
        Metrics.reset ();
        Wk.reset ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        let dir = fresh_dir "wkp_wh_dir" in
        Warehouse.attach wh ~dir;
        Warehouse.ingest wh (skewed_sales 60);
        Warehouse.checkpoint wh;
        let path = Warehouse.workload_profile_path dir in
        Alcotest.(check bool)
          "profile file exists" true (Sys.file_exists path);
        let saved = parsed_profile () in
        let writes_before = jnum [ "writes" ] (view_obj "product_sales" saved) in
        Alcotest.(check bool) "writes recorded" true (writes_before > 0.);
        Wk.reset ();
        let wh2 = Warehouse.recover ~dir in
        let restored = parsed_profile () in
        let v = view_obj "product_sales" restored in
        Alcotest.(check bool)
          "writes restored" true
          (jnum [ "writes" ] v >= writes_before);
        let hot = Json.to_list (jget [ "hot_keys" ] v) in
        Alcotest.(check bool) "hot keys restored" true (hot <> []);
        (* the dominant product-1 key must still lead the restored top-k *)
        Alcotest.(check bool)
          "top key has the bulk of the weight" true
          (jnum [ "est" ] (List.hd hot) > 0.5 *. jnum [ "sketch_total" ] v);
        Warehouse.close wh2);
    test "write_workload_profile needs an attached directory" (fun () ->
        Metrics.reset ();
        Wk.reset ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        (match Warehouse.write_workload_profile wh with
        | _ -> Alcotest.fail "expected Not_durable on a detached warehouse"
        | exception _ -> ());
        let dir = fresh_dir "wkp_wh_ondemand" in
        Warehouse.attach wh ~dir;
        let path = Warehouse.write_workload_profile wh in
        Alcotest.(check bool) "written on demand" true (Sys.file_exists path));
  ]

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload_profile"
    [
      ("sketch bounds", List.map to_alcotest sketch_props);
      ("multi-domain merge", List.map to_alcotest domain_props);
      ("profile round-trip", profile_tests);
      ("warehouse round-trip", warehouse_tests);
    ]
