(* Tests for the ingestion validation layer: invalid deltas land in the
   dead-letter queue with the right machine-readable reason, valid deltas of
   the same batch still apply, and an engine failure aborts the whole batch
   atomically. *)

open Helpers

let test case fn = Alcotest.test_case case `Quick fn

let setup () =
  let db = paper_example_db () in
  let wh = Warehouse.create db in
  Warehouse.add_view wh Workload.Retail.product_sales;
  Warehouse.add_view ~strategy:Warehouse.Psj wh Workload.Retail.monthly_revenue;
  (db, wh)

let reasons wh =
  List.map (fun r -> r.Delta.reason) (Warehouse.dead_letters wh)

let reason : Delta.reason Alcotest.testable =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Delta.reason_label r))
    ( = )

(* every maintained view must agree with recomputation over the state the
   warehouse believes the source is in *)
let check_consistent wh =
  let src = Warehouse.believed_source wh in
  List.iter
    (fun v ->
      Alcotest.check relation v.View.name (Algebra.Eval.eval src v)
        (snd (Warehouse.query wh v.View.name)))
    [ Workload.Retail.product_sales; Workload.Retail.monthly_revenue ]

let valid_sale id timeid price =
  Delta.insert "sale" (row [ i id; i timeid; i 1; i 1; i price ])

let tests =
  [
    test "mixed batch: invalid deltas quarantine, valid ones apply" (fun () ->
        let _db, wh = setup () in
        let batch =
          [
            valid_sale 100 1 42;
            Delta.insert "time" (row [ i 1; i 1; i 1; i 1997 ]);
            (* timeid 99 has no referent *)
            Delta.insert "sale" (row [ i 101; i 99; i 1; i 1; i 5 ]);
            Delta.insert "nonexistent" (row [ i 1 ]);
            Delta.insert "sale" (row [ i 102; i 1 ]);
            valid_sale 103 2 7;
          ]
        in
        let r = Warehouse.ingest_report wh batch in
        Alcotest.(check int) "applied" 2 r.Warehouse.applied;
        Alcotest.(check (list reason))
          "reasons"
          [
            Delta.Duplicate_key; Delta.Dangling_reference; Delta.Unknown_table;
            Delta.Schema_mismatch;
          ]
          (reasons wh);
        Alcotest.(check int) "sale rows"
          9
          (Database.row_count (Warehouse.believed_source wh) "sale");
        check_consistent wh);
    test "every constraint maps to its reason" (fun () ->
        let _db, wh = setup () in
        let cases =
          [
            (* delete of an absent tuple *)
            ( Delta.delete "sale" (row [ i 999; i 1; i 1; i 1; i 10 ]),
              Delta.Missing_row );
            (* time 1 is still referenced by sales *)
            ( Delta.delete "time" (row [ i 1; i 1; i 1; i 1997 ]),
              Delta.Referenced_key );
            (* time.day is not declared UPDATABLE *)
            ( Delta.update "time"
                ~before:(row [ i 1; i 1; i 1; i 1997 ])
                ~after:(row [ i 1; i 2; i 1; i 1997 ]),
              Delta.Not_updatable );
          ]
        in
        List.iter
          (fun (delta, expected) ->
            let before = Warehouse.dead_letters wh in
            let r = Warehouse.ingest_report wh [ delta ] in
            Alcotest.(check int) "nothing applied" 0 r.Warehouse.applied;
            match
              List.filteri
                (fun idx _ -> idx >= List.length before)
                (Warehouse.dead_letters wh)
            with
            | [ rej ] ->
              Alcotest.check reason
                (Delta.reason_label expected)
                expected rej.Delta.reason
            | other ->
              Alcotest.failf "expected one new dead letter, got %d"
                (List.length other))
          cases;
        check_consistent wh);
    test "engine failure aborts the whole batch atomically" (fun () ->
        let db = paper_example_db () in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        (* old partition = cheap sales; price is updatable, so a price update
           crossing the boundary passes validation and blows up the
           partitioned engine *)
        let is_old tup = match tup.(4) with Value.Int p -> p < 15 | _ -> false in
        let aged =
          { Workload.Retail.sales_by_time with View.name = "aged_sales" }
        in
        Warehouse.add_view ~strategy:(Warehouse.Aged is_old) wh aged;
        let before_ps = snd (Warehouse.query wh "product_sales") in
        let before_aged = snd (Warehouse.query wh "aged_sales") in
        let boundary_crossing =
          Delta.update "sale"
            ~before:(row [ i 1; i 1; i 1; i 1; i 10 ])
            ~after:(row [ i 1; i 1; i 1; i 1; i 50 ])
        in
        let r =
          Warehouse.ingest_report wh [ valid_sale 200 1 12; boundary_crossing ]
        in
        Alcotest.(check int) "nothing applied" 0 r.Warehouse.applied;
        Alcotest.(check (list reason))
          "whole batch quarantined"
          [ Delta.Engine_failure; Delta.Engine_failure ]
          (reasons wh);
        Alcotest.check relation "product_sales untouched" before_ps
          (snd (Warehouse.query wh "product_sales"));
        Alcotest.check relation "aged view untouched" before_aged
          (snd (Warehouse.query wh "aged_sales"));
        (* the validator rolled back too: the insert half of the batch is
           still fresh and can be re-ingested on its own *)
        let r2 = Warehouse.ingest_report wh [ valid_sale 200 1 12 ] in
        Alcotest.(check int) "re-ingest applies" 1 r2.Warehouse.applied;
        let src = Warehouse.believed_source wh in
        Alcotest.check relation "aged view maintained"
          (Algebra.Eval.eval src aged)
          (snd (Warehouse.query wh "aged_sales")));
    test "sprinkled stream: exactly the forged deltas are rejected" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        Warehouse.add_view ~strategy:Warehouse.Psj wh
          Workload.Retail.monthly_revenue;
        let rng = Workload.Prng.create 7 in
        let valid = Workload.Delta_gen.stream rng db ~n:120 in
        let polluted, injected =
          Workload.Corrupt.sprinkle rng db ~rate:0.2 valid
        in
        Alcotest.(check bool) "something injected" true (injected > 0);
        let r = Warehouse.ingest_report wh polluted in
        Alcotest.(check int) "all valid applied" (List.length valid)
          r.Warehouse.applied;
        Alcotest.(check int) "all forged quarantined" injected
          (List.length (Warehouse.dead_letters wh));
        List.iter
          (fun rej ->
            match rej.Delta.reason with
            | Delta.Unknown_table | Delta.Schema_mismatch -> ()
            | other ->
              Alcotest.failf "unexpected reason %s" (Delta.reason_label other))
          (Warehouse.dead_letters wh);
        (* the stream was applied to db as it was generated, so the evolved
           source is the ground truth *)
        List.iter
          (fun v ->
            Alcotest.check relation v.View.name (Algebra.Eval.eval db v)
              (snd (Warehouse.query wh v.View.name)))
          [ Workload.Retail.product_sales; Workload.Retail.monthly_revenue ]);
    test "forgeries are rejected for the advertised reason" (fun () ->
        let db = paper_example_db () in
        let validator = Relational.Validator.of_database db in
        let check_forgery (f : Workload.Corrupt.forgery) =
          match Relational.Validator.check validator f.Workload.Corrupt.delta with
          | Ok _ ->
            Alcotest.failf "forgery for %s was accepted"
              (Delta.reason_label f.Workload.Corrupt.reason)
          | Error rej ->
            Alcotest.check reason
              (Delta.reason_label f.Workload.Corrupt.reason)
              f.Workload.Corrupt.reason rej.Delta.reason
        in
        for seed = 1 to 20 do
          let rng = Workload.Prng.create seed in
          check_forgery (Workload.Corrupt.unknown_table rng);
          check_forgery (Workload.Corrupt.schema_mismatch rng db);
          List.iter
            (fun forge ->
              match forge rng db with
              | Some f -> check_forgery f
              | None -> Alcotest.fail "forgery unavailable on a populated db")
            [
              Workload.Corrupt.duplicate_key; Workload.Corrupt.missing_row;
              Workload.Corrupt.dangling_reference;
            ];
          check_forgery (Workload.Corrupt.forge rng db)
        done);
    test "dead letters come back oldest first and can be cleared" (fun () ->
        let _db, wh = setup () in
        Warehouse.ingest wh [ Delta.insert "nonexistent" (row [ i 1 ]) ];
        Warehouse.ingest wh [ Delta.insert "sale" (row [ i 50; i 1 ]) ];
        Alcotest.(check (list reason))
          "order" [ Delta.Unknown_table; Delta.Schema_mismatch ] (reasons wh);
        Warehouse.clear_dead_letters wh;
        Alcotest.(check (list reason)) "cleared" [] (reasons wh));
  ]

let () = Alcotest.run "validate" [ ("dead-letter-queue", tests) ]
