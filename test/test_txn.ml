(* Transactional-apply tests: rollback after a mid-batch failure restores
   state structurally identical to a pre-batch [Engines.copy] — groups,
   by-key maps, secondary indexes, totals and the dirty set all compared —
   for every engine configuration, across seeds and failure positions; plus
   the NULL-poisoning regression, strict index-column validation, and the
   warehouse-level all-or-nothing abort path. *)

open Helpers
module Engines = Maintenance.Engines
module Aux_state = Maintenance.Aux_state
module Derive = Mindetail.Derive
module Validator = Relational.Validator

let test case fn = Alcotest.test_case case `Quick fn

let tiny =
  {
    Workload.Retail.days = 6;
    stores = 2;
    products = 10;
    sold_per_store_day = 3;
    tx_per_product = 2;
    brands = 3;
    seed = 7;
  }

(* fabricated sale rows use ids far above anything the generator produces *)
let fresh_id = ref 1_000_000

let next_id () =
  incr fresh_id;
  !fresh_id

(* timeid 6 is in the 1997 half of the time dimension, so the tuple passes
   every view's semijoins and reaches the aggregation before raising *)
let null_price_insert () =
  Delta.insert "sale" (row [ i (next_id ()); i 6; i 1; i 1; Value.Null ])

let insert_only =
  { Workload.Delta_gen.insert = 1; delete = 0; update = 0 }

(* One engine configuration under test: how to build it, which view it
   maintains, and a poison delta guaranteed to raise mid-apply. *)
type case = {
  cname : string;
  build : Database.t -> Engines.t;
  cview : View.t;
  (* the old partition of [partitioned] is append-only, so its warm-up
     stream must not delete or update fact rows *)
  mix : Workload.Delta_gen.op_mix;
}

let cases =
  [
    {
      cname = "minimal";
      build = (fun db -> Engines.minimal db Workload.Retail.monthly_revenue);
      cview = Workload.Retail.monthly_revenue;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "minimal-distinct";
      build = (fun db -> Engines.minimal db Workload.Retail.product_sales);
      cview = Workload.Retail.product_sales;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "psj";
      build = (fun db -> Engines.psj db Workload.Retail.monthly_revenue);
      cview = Workload.Retail.monthly_revenue;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "recompute";
      build = (fun db -> Engines.recompute db Workload.Retail.monthly_revenue);
      cview = Workload.Retail.monthly_revenue;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "partitioned";
      build =
        (fun db ->
          Engines.partitioned db Workload.Retail.sales_by_time
            ~is_old:(fun tup -> Value.compare tup.(1) (i 3) <= 0));
      cview = Workload.Retail.sales_by_time;
      mix = insert_only;
    };
  ]

(* The property: warm the engine up, snapshot it, fail a batch after
   [pos] valid deltas — rollback must restore the snapshot exactly, and the
   engine must keep maintaining correctly afterwards. *)
let rollback_restores case seed pos () =
  let db = Workload.Retail.load { tiny with seed } in
  let eng = case.build db in
  let rng = Workload.Prng.create ((seed * 13) + 1) in
  Engines.apply_batch eng
    (Workload.Delta_gen.stream ~mix:case.mix rng db ~n:40);
  let snapshot = Engines.copy eng in
  Alcotest.(check bool)
    "snapshot equals live state" true
    (Engines.equal_state eng snapshot);
  let valid = Workload.Delta_gen.stream ~mix:case.mix rng db ~n:12 in
  let pos = min pos (List.length valid) in
  let poisoned =
    List.filteri (fun idx _ -> idx < pos) valid @ [ null_price_insert () ]
  in
  Engines.begin_txn eng;
  (match Engines.apply_batch eng poisoned with
  | () -> Alcotest.fail "the poisoned batch must raise"
  | exception _ -> ());
  Engines.rollback eng;
  Alcotest.(check bool)
    "rollback restores the pre-batch state" true
    (Engines.equal_state eng snapshot);
  (* the rolled-back engine stays fully usable *)
  Engines.begin_txn eng;
  Engines.apply_batch eng valid;
  Engines.commit eng;
  Alcotest.check relation "post-rollback maintenance tracks recomputation"
    (Algebra.Eval.eval db case.cview)
    (Engines.view_contents eng)

let rollback_tests =
  List.concat_map
    (fun case ->
      List.concat_map
        (fun seed ->
          List.map
            (fun pos ->
              test
                (Printf.sprintf "%s: rollback == snapshot (seed %d, fail at %d)"
                   case.cname seed pos)
                (rollback_restores case seed pos))
            [ 0; 6; 12 ])
        [ 41; 42 ])
    cases

(* --- NULL poisoning regression ----------------------------------------- *)

let null_tests =
  [
    test "NULL in a summed column is rejected atomically" (fun () ->
        let db = Workload.Retail.load tiny in
        let eng = Engines.minimal db Workload.Retail.monthly_revenue in
        let snapshot = Engines.copy eng in
        let null_tup = row [ i (next_id ()); i 1; i 1; i 1; Value.Null ] in
        (* the historic bug: the raise fired after cnt was bumped, leaving
           the group poisoned; both insert and delete must now reject the
           tuple before touching anything *)
        (match Engines.apply_batch eng [ Delta.insert "sale" null_tup ] with
        | () -> Alcotest.fail "NULL insert must be rejected"
        | exception Invalid_argument _ -> ());
        (match Engines.apply_batch eng [ Delta.delete "sale" null_tup ] with
        | () -> Alcotest.fail "NULL delete must be rejected"
        | exception Invalid_argument _ -> ());
        Alcotest.(check bool)
          "state untouched by the rejected NULL tuple" true
          (Engines.equal_state eng snapshot);
        (* a valid insert-then-delete still round-trips to the snapshot *)
        let tup = row [ i (next_id ()); i 1; i 1; i 1; i 42 ] in
        Engines.apply_batch eng [ Delta.insert "sale" tup ];
        Engines.apply_batch eng [ Delta.delete "sale" tup ];
        Alcotest.(check bool)
          "insert-then-delete returns to the snapshot" true
          (Engines.equal_state eng snapshot));
    test "warehouse quarantines NULL-valued deltas at validation" (fun () ->
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        let before = snd (Warehouse.query wh "monthly_revenue") in
        let report =
          Warehouse.ingest_report wh [ null_price_insert () ]
        in
        Alcotest.(check int) "nothing applied" 0 report.Warehouse.applied;
        (match Warehouse.dead_letters wh with
        | [ r ] ->
          Alcotest.(check string)
            "rejected as a schema mismatch" "schema-mismatch"
            (Delta.reason_label r.Delta.reason)
        | dlq ->
          Alcotest.fail
            (Printf.sprintf "expected 1 dead letter, got %d"
               (List.length dlq)));
        Alcotest.check relation "view unchanged" before
          (snd (Warehouse.query wh "monthly_revenue")));
  ]

(* --- strict indexed_columns -------------------------------------------- *)

let index_tests =
  [
    test "a misspelled index column is refused at create" (fun () ->
        let db = Workload.Retail.load tiny in
        let d = Derive.derive db Workload.Retail.monthly_revenue in
        let root = Derive.root d in
        match Derive.spec_for d root with
        | None -> Alcotest.fail "expected a root auxiliary view"
        | Some spec -> (
          let schema = Database.schema_of db root in
          match
            Aux_state.create ~indexed_columns:[ "no_such_column" ] spec schema
          with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

(* --- validator undo journal -------------------------------------------- *)

let db_relation db tbl =
  let r = Relation.create () in
  Database.fold db tbl (fun tup () -> Relation.insert r tup) ();
  r

let validator_tests =
  [
    test "rollback undoes the admitted prefix" (fun () ->
        let db = Workload.Retail.load tiny in
        let v = Validator.of_database db in
        let before = Validator.believed_source v in
        Validator.begin_txn v;
        let tup = row [ i (next_id ()); i 1; i 1; i 1; i 33 ] in
        (match Validator.admit v (Delta.insert "sale" tup) with
        | Ok _ -> ()
        | Error r ->
          Alcotest.fail (Format.asprintf "%a" Delta.pp_rejection r));
        (match Validator.admit v (Delta.delete "sale" tup) with
        | Ok _ -> ()
        | Error r ->
          Alcotest.fail (Format.asprintf "%a" Delta.pp_rejection r));
        (* a rejected delta must not land in the journal *)
        (match Validator.admit v (Delta.insert "sale" tup) with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "re-insert after delete should be legal");
        Validator.rollback v;
        let after = Validator.believed_source v in
        List.iter
          (fun tbl ->
            Alcotest.check relation
              (Printf.sprintf "table %s restored" tbl)
              (db_relation before tbl) (db_relation after tbl))
          (Database.table_names before));
    test "invert is an involution on every change shape" (fun () ->
        let t1 = row [ i 1; i 2 ] and t2 = row [ i 1; i 3 ] in
        List.iter
          (fun d ->
            Alcotest.(check bool)
              "invert twice is the identity" true
              (Delta.invert (Delta.invert d) = d))
          [
            Delta.insert "t" t1; Delta.delete "t" t1;
            Delta.update "t" ~before:t1 ~after:t2;
          ];
        Alcotest.(check bool)
          "insert inverts to delete" true
          (Delta.invert (Delta.insert "t" t1) = Delta.delete "t" t1));
  ]

(* --- warehouse-level abort: all-or-nothing without copies --------------- *)

let abort_tests =
  [
    test "a batch failing mid-apply rolls every view back" (fun () ->
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        (* partition the facts by price so a legal price update can cross
           the boundary — the validator accepts it (price is updatable) and
           the partitioned engine raises mid-batch *)
        Warehouse.add_view
          ~strategy:
            (Warehouse.Aged (fun tup -> Value.compare tup.(4) (i 50) <= 0))
          wh Workload.Retail.sales_by_time;
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        let victim =
          match
            Database.fold db "sale"
              (fun tup acc ->
                match acc with
                | Some _ -> acc
                | None ->
                  if Value.compare tup.(4) (i 50) <= 0 then Some tup else None)
              None
          with
          | Some tup -> tup
          | None -> Alcotest.fail "no sale under the price boundary"
        in
        let crossing =
          let after = Array.copy victim in
          after.(4) <- i 80;
          Delta.update "sale" ~before:victim ~after
        in
        let prelude =
          Delta.insert "sale" (row [ i (next_id ()); i 1; i 1; i 1; i 10 ])
        in
        let pre_sales = snd (Warehouse.query wh "sales_by_time") in
        let pre_monthly = snd (Warehouse.query wh "monthly_revenue") in
        let report = Warehouse.ingest_report wh [ prelude; crossing ] in
        Alcotest.(check int) "nothing applied" 0 report.Warehouse.applied;
        Alcotest.(check int) "whole batch quarantined" 2
          (List.length (Warehouse.dead_letters wh));
        List.iter
          (fun r ->
            Alcotest.(check string)
              "quarantined as engine failure" "engine-failure"
              (Delta.reason_label r.Delta.reason))
          (Warehouse.dead_letters wh);
        Alcotest.check relation "aged view rolled back" pre_sales
          (snd (Warehouse.query wh "sales_by_time"));
        Alcotest.check relation "sibling view rolled back" pre_monthly
          (snd (Warehouse.query wh "monthly_revenue"));
        (* the warehouse keeps working: a valid follow-up batch applies and
           the views agree with the believed source *)
        let follow =
          Delta.insert "sale" (row [ i (next_id ()); i 2; i 2; i 1; i 90 ])
        in
        let report = Warehouse.ingest_report wh [ follow ] in
        Alcotest.(check int) "follow-up applied" 1 report.Warehouse.applied;
        List.iter
          (fun (name, ok) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s consistent with believed source" name)
              true ok)
          (Warehouse.audit wh ~reference:(Warehouse.believed_source wh)));
  ]

let () =
  Alcotest.run "txn"
    [
      ("rollback-structural-equality", rollback_tests);
      ("null-poisoning", null_tests); ("index-strictness", index_tests);
      ("validator-journal", validator_tests);
      ("warehouse-abort", abort_tests);
    ]
