(* Tests for the warehouse facade and the storage accounting model,
   including the paper's Section 1.1 arithmetic. *)

open Helpers
module Storage = Warehouse.Storage

let test case fn = Alcotest.test_case case `Quick fn

let storage_tests =
  [
    test "bytes = rows x fields x 4 under the paper model" (fun () ->
        Alcotest.(check int) "bytes" 240
          (Storage.bytes Storage.paper_model ~rows:12 ~fields:5));
    test "Section 1.1 fact table is ~245 GB" (fun () ->
        let p = Workload.Retail.paper_params in
        Alcotest.(check int) "13.14e9 tuples" 13_140_000_000
          (Workload.Retail.fact_rows p);
        let size =
          Storage.bytes Storage.paper_model
            ~rows:(Workload.Retail.fact_rows p)
            ~fields:5
        in
        Alcotest.(check string) "245 GB" "244.8 GB" (Storage.show_bytes size));
    test "Section 1.1 auxiliary view is ~167 MB" (fun () ->
        (* 365 days of 1997 x 30,000 products = 10.95e6 rows x 4 fields *)
        let rows = 365 * 30_000 in
        Alcotest.(check int) "10.95e6" 10_950_000 rows;
        Alcotest.(check string) "167 MB" "167.1 MB"
          (Storage.show_bytes
             (Storage.bytes Storage.paper_model ~rows ~fields:4)));
    test "show_bytes unit boundaries" (fun () ->
        Alcotest.(check string) "B" "512 B" (Storage.show_bytes 512);
        Alcotest.(check string) "KB" "1.0 KB" (Storage.show_bytes 1024);
        Alcotest.(check string) "MB" "2.0 MB" (Storage.show_bytes (2 * 1024 * 1024)));
    test "profile_bytes sums objects" (fun () ->
        Alcotest.(check int) "sum" ((3 * 2 * 4) + (5 * 4 * 4))
          (Storage.profile_bytes Storage.paper_model
             [ ("a", 3, 2); ("b", 5, 4) ]));
    test "render_profile includes a TOTAL row" (fun () ->
        let out =
          Storage.render_profile Storage.paper_model [ ("a", 3, 2) ]
        in
        let contains needle = contains out needle in
        Alcotest.(check bool) "total" true (contains "TOTAL"));
  ]

let warehouse_tests =
  [
    test "multi-view ingestion keeps all views correct" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        Warehouse.add_view ~strategy:Warehouse.Psj wh Workload.Retail.monthly_revenue;
        Warehouse.add_view ~strategy:Warehouse.Replicate wh
          Workload.Retail.sales_by_time;
        let rng = Workload.Prng.create 8 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:300);
        List.iter
          (fun view ->
            let _, got = Warehouse.query wh view.View.name in
            Alcotest.check relation view.View.name
              (Algebra.Eval.eval db view)
              got)
          [ Workload.Retail.product_sales; Workload.Retail.monthly_revenue;
            Workload.Retail.sales_by_time ]);
    test "view_names preserves registration order" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        Warehouse.add_view wh Workload.Retail.months;
        Alcotest.(check (list string)) "names"
          [ "product_sales"; "months" ]
          (Warehouse.view_names wh));
    test "duplicate view name rejected" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.months;
        match Warehouse.add_view wh Workload.Retail.months with
        | exception Warehouse.Error { kind = Warehouse.Duplicate_view; _ } -> ()
        | _ -> Alcotest.fail "expected Duplicate_view");
    test "query of unknown view raises Unknown_view" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        match Warehouse.query wh "nosuch" with
        | exception Warehouse.Error { kind = Warehouse.Unknown_view; _ } -> ()
        | _ -> Alcotest.fail "expected Unknown_view");
    test "add_view_sql registers and maintains" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view_sql wh
          "CREATE VIEW rev AS SELECT month, SUM(price) AS r FROM sale, time \
           WHERE sale.timeid = time.id GROUP BY month;";
        let rng = Workload.Prng.create 12 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:100);
        let cols, _ = Warehouse.query wh "rev" in
        Alcotest.(check (list string)) "cols" [ "month"; "r" ] cols);
    test "derivation_of distinguishes strategies" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        Warehouse.add_view ~strategy:Warehouse.Replicate wh
          Workload.Retail.months;
        Alcotest.(check bool) "minimal has one" true
          (Warehouse.derivation_of wh "product_sales" <> None);
        Alcotest.(check bool) "replica has none" true
          (Warehouse.derivation_of wh "months" = None));
    test "report mentions every view" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        Warehouse.add_view wh Workload.Retail.sales_by_time;
        let out = Warehouse.report wh in
        let contains needle = contains out needle in
        Alcotest.(check bool) "ps" true (contains "product_sales");
        Alcotest.(check bool) "sbt" true (contains "sales_by_time");
        Alcotest.(check bool) "storage" true (contains "TOTAL"));
    test "detail profile shrinks when the fact view is eliminated" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh1 = Warehouse.create db in
        Warehouse.add_view wh1 Workload.Retail.product_sales;
        let wh2 = Warehouse.create db in
        Warehouse.add_view wh2 Workload.Retail.sales_by_time;
        let total wh =
          Storage.profile_bytes Storage.paper_model (Warehouse.detail_profile wh)
        in
        Alcotest.(check bool) "eliminated smaller" true (total wh2 < total wh1));
  ]

let aged_tests =
  [
    test "Aged strategy integrates with the facade" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let boundary = ref 10 in
        let is_old tup =
          match tup.(1) with Value.Int t -> t <= !boundary | _ -> false
        in
        let wh = Warehouse.create db in
        let view =
          { Workload.Retail.sales_by_time with View.name = "aged_sales" }
        in
        Warehouse.add_view ~strategy:(Warehouse.Aged is_old) wh view;
        let rng = Workload.Prng.create 40 in
        let inserts = { Workload.Delta_gen.insert = 1; delete = 0; update = 0 } in
        Warehouse.ingest wh
          (Workload.Delta_gen.stream_for ~mix:inserts rng db
             ~tables:[ "sale" ] ~n:200);
        let _, got = Warehouse.query wh "aged_sales" in
        Alcotest.check relation "maintained" (Algebra.Eval.eval db view) got;
        (* nightly aging through the facade *)
        let aged =
          Database.fold db "sale"
            (fun tup acc ->
              match tup.(1) with
              | Value.Int t when t > 10 && t <= 12 -> tup :: acc
              | _ -> acc)
            []
        in
        Warehouse.age_out wh "aged_sales" aged;
        boundary := 12;
        let _, after = Warehouse.query wh "aged_sales" in
        Alcotest.check relation "unchanged by aging"
          (Algebra.Eval.eval db view) after);
    test "age_out rejects non-Aged views" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.months;
        match Warehouse.age_out wh "months" [] with
        | exception Warehouse.Error { kind = Warehouse.Not_aged; _ } -> ()
        | () -> Alcotest.fail "expected Not_aged");
  ]

let () =
  Alcotest.run "warehouse"
    [ ("storage", storage_tests); ("facade", warehouse_tests);
      ("aged", aged_tests) ]
