Durable ingestion, crash recovery and auditing through the CLI.

  $ cat > schema.sql <<'SQL'
  > CREATE TABLE region (id INT PRIMARY KEY, name TEXT, zone TEXT);
  > CREATE TABLE shop (id INT PRIMARY KEY, regionid INT REFERENCES region,
  >                    kind TEXT);
  > CREATE TABLE txn (id INT PRIMARY KEY, shopid INT REFERENCES shop,
  >                   amount INT UPDATABLE);
  > INSERT INTO region VALUES (1, 'north', 'a');
  > INSERT INTO region VALUES (2, 'south', 'b');
  > INSERT INTO shop VALUES (1, 1, 'grocery');
  > INSERT INTO shop VALUES (2, 2, 'kiosk');
  > INSERT INTO txn VALUES (1, 1, 10);
  > INSERT INTO txn VALUES (2, 2, 30);
  > CREATE VIEW zone_revenue AS
  >   SELECT zone, SUM(amount) AS revenue, COUNT(*) AS txns
  >   FROM txn, shop, region
  >   WHERE txn.shopid = shop.id AND shop.regionid = region.id
  >   GROUP BY zone;
  > SQL

  $ cat > changes.sql <<'SQL'
  > INSERT INTO txn VALUES (3, 1, 5);
  > INSERT INTO txn VALUES (4, 2, 7);
  > UPDATE txn SET amount = 12 WHERE id = 1;
  > SQL

A simulate run attached to a state directory write-ahead logs the batch:

  $ ../../bin/minview.exe simulate schema.sql changes.sql --state state > /dev/null
  $ ls state
  lineage.jsonl
  snapshot.bin
  wal.bin
  workload_profile.json

The warehouse recovers from the directory alone, and the audit confirms the
maintained views equal from-scratch recomputation:

  $ ../../bin/minview.exe recover state
  recovered 1 view(s) at batch 1 from state
  -- zone_revenue --
  +------+---------+------+
  | zone | revenue | txns |
  +------+---------+------+
  | a    | 17      | 2    |
  | b    | 37      | 2    |
  +------+---------+------+

  $ ../../bin/minview.exe audit state
  zone_revenue             OK
  1 batch(es) ingested, 0 dead-letter(s), 0 failure(s)

A simulated crash right after the WAL append (the commit point) kills the
process before any engine applies the batch:

  $ rm -r state
  $ MINVIEW_FAULT=after-wal-append ../../bin/minview.exe simulate schema.sql changes.sql --state state
  fault injected: simulated crash at after-wal-append
  [3]

Recovery replays the committed batch from the log — nothing is lost:

  $ ../../bin/minview.exe recover state
  recovered 1 view(s) at batch 1 from state
  -- zone_revenue --
  +------+---------+------+
  | zone | revenue | txns |
  +------+---------+------+
  | a    | 17      | 2    |
  | b    | 37      | 2    |
  +------+---------+------+

  $ ../../bin/minview.exe audit state
  zone_revenue             OK
  1 batch(es) ingested, 0 dead-letter(s), 0 failure(s)

Error paths are structured, not stack traces. Bad SQL:

  $ echo "CREATE GARBAGE;" > bad.sql
  $ ../../bin/minview.exe derive bad.sql
  SQL error: expected TABLE, found GARBAGE
  [1]

A state directory that was never written:

  $ ../../bin/minview.exe audit no-such-dir
  warehouse error [io-error]: no-such-dir/snapshot.bin: No such file or directory
  [1]

A corrupted snapshot is refused before anything is unmarshalled:

  $ mkdir broken
  $ echo "minview-warehouse-state/2" > broken/snapshot.bin
  $ ../../bin/minview.exe audit broken
  warehouse error [incompatible-state]: broken/snapshot.bin uses the version-2 format without the parallel-pool record; re-save it with this build
  [1]

  $ echo "minview-warehouse-state/3" > broken/snapshot.bin
  $ ../../bin/minview.exe audit broken
  warehouse error [corrupt-state]: broken/snapshot.bin: truncated frame header
  [1]

  $ dd if=/dev/zero of=broken/snapshot.bin bs=1 count=100 2> /dev/null
  $ ../../bin/minview.exe audit broken
  warehouse error [corrupt-state]: broken/snapshot.bin is not a warehouse state file
  [1]

An unknown crash point is rejected up front:

  $ MINVIEW_FAULT=bogus ../../bin/minview.exe demo
  MINVIEW_FAULT: unknown crash point "bogus" (known: after-wal-append, mid-engine-apply, mid-checkpoint, before-wal-truncate, after-truncate-rename, after-checkpoint-rename, mid-group-commit, in-shard-worker, wal-fsync)
  [2]
