Lineage, savings attribution and the explain verb, on the same small
star schema as the other cram tests.

  $ cat > schema.sql <<'SQL'
  > CREATE TABLE region (id INT PRIMARY KEY, name TEXT, zone TEXT);
  > CREATE TABLE shop (id INT PRIMARY KEY, regionid INT REFERENCES region,
  >                    kind TEXT);
  > CREATE TABLE txn (id INT PRIMARY KEY, shopid INT REFERENCES shop,
  >                   amount INT UPDATABLE);
  > INSERT INTO region VALUES (1, 'north', 'a');
  > INSERT INTO region VALUES (2, 'south', 'b');
  > INSERT INTO shop VALUES (1, 1, 'grocery');
  > INSERT INTO shop VALUES (2, 2, 'kiosk');
  > INSERT INTO txn VALUES (1, 1, 10);
  > INSERT INTO txn VALUES (2, 2, 30);
  > CREATE VIEW zone_revenue AS
  >   SELECT zone, SUM(amount) AS revenue, COUNT(*) AS txns
  >   FROM txn, shop, region
  >   WHERE txn.shopid = shop.id AND shop.regionid = region.id
  >   GROUP BY zone;
  > SQL

  $ cat > changes.sql <<'SQL'
  > INSERT INTO txn VALUES (3, 1, 5);
  > INSERT INTO txn VALUES (4, 2, 7);
  > UPDATE txn SET amount = 12 WHERE id = 1;
  > SQL

Every committed batch leaves one lineage record: the base tables it
touched, then per view [deltas -> netted -> applied] and the per-auxview
resident/detail/fold flow. The two inserts and the update all fold into
already-resident (shopid) groups, so resident rows do not move while the
represented detail grows by two (the update nets out).

  $ ../../bin/minview.exe lineage schema.sql --changes changes.sql
  txn 1 (txn:3)
    view zone_revenue [serial]: 3 deltas -> 3 netted -> 3 applied, groups +0
      txnDTL <- txn: resident +0, detail +2, folded 2
      shopDTL <- shop: resident +0, detail +0, folded 0
      regionDTL <- region: resident +0, detail +0, folded 0

The same record as machine-readable JSON, and the filters:

  $ ../../bin/minview.exe lineage schema.sql --changes changes.sql --json
  {"txn":1,"tables":{"txn":3},"flows":[{"view":"zone_revenue","mode":"serial","deltas_in":3,"netted":3,"applied":3,"group_delta":0,"aux":[{"aux":"txnDTL","base":"txn","resident_delta":0,"detail_delta":2,"folded":2},{"aux":"shopDTL","base":"shop","resident_delta":0,"detail_delta":0,"folded":0},{"aux":"regionDTL","base":"region","resident_delta":0,"detail_delta":0,"folded":0}]}]}

  $ ../../bin/minview.exe lineage schema.sql --changes changes.sql --table region
  no lineage records (nothing ingested, filtered out, or TELEMETRY=off)

With TELEMETRY=off nothing is collected:

  $ TELEMETRY=off ../../bin/minview.exe lineage schema.sql --changes changes.sql
  no lineage records (nothing ingested, filtered out, or TELEMETRY=off)

The savings attribution decomposes each auxview's footprint versus raw
detail into the paper's techniques (8 bytes per field) and reconciles
the measured survivor counts against the live maintenance gauges:

  $ ../../bin/minview.exe attribute schema.sql --changes changes.sql
  == savings attribution (view zone_revenue, bytes) ==
  +--------+-----------+-----+-----------+------------+----------+----------+------------+--------+----------+
  | table  | aux view  | raw | local sel | local proj | join red | dup comp | eliminated | stored | measured |
  +--------+-----------+-----+-----------+------------+----------+----------+------------+--------+----------+
  | txn    | txnDTL    | 96  | 0         | 0          | 0        | 48       | 0          | 48     | 1856     |
  | shop   | shopDTL   | 48  | 0         | 16         | 0        | 0        | 0          | 32     | 896      |
  | region | regionDTL | 48  | 0         | 16         | 0        | 0        | 0          | 32     | 752      |
  | TOTAL  |           | 192 | 0         | 32         | 0        | 48       | 0          | 112    | 3504     |
  +--------+-----------+-----+-----------+------------+----------+----------+------------+--------+----------+
  row flow:
    txn: 4 rows -> local 4 -> join 4 -> resident 2 (fold 2x, 2 of 3 columns kept)
    shop: 2 rows -> local 2 -> join 2 -> resident 2 (fold 1x, 2 of 3 columns kept)
    region: 2 rows -> local 2 -> join 2 -> resident 2 (fold 1x, 2 of 3 columns kept)
  
  reconciliation against live maintenance gauges (+-1 row):
    zone_revenue/txnDTL: resident 2 vs 2, detail 4 vs 4  OK
    zone_revenue/shopDTL: resident 2 vs 2, detail 2 vs 2  OK
    zone_revenue/regionDTL: resident 2 vs 2, detail 2 vs 2  OK


  $ ../../bin/minview.exe attribute schema.sql --changes changes.sql --json
  {"view":"zone_revenue","table":"txn","aux":"txnDTL","retained":true,"compressed":true,"raw_rows":4,"raw_fields":3,"kept_fields":2,"stored_fields":3,"rows_after_local":4,"rows_after_join":4,"resident_rows":2,"fold_factor":2,"bytes":{"raw":96,"local_selection":0,"local_projection":0,"join_reduction":0,"compression":48,"elimination":0,"stored":48,"measured_stored":1856}}
  {"view":"zone_revenue","table":"shop","aux":"shopDTL","retained":true,"compressed":false,"raw_rows":2,"raw_fields":3,"kept_fields":2,"stored_fields":2,"rows_after_local":2,"rows_after_join":2,"resident_rows":2,"fold_factor":1,"bytes":{"raw":48,"local_selection":0,"local_projection":16,"join_reduction":0,"compression":0,"elimination":0,"stored":32,"measured_stored":896}}
  {"view":"zone_revenue","table":"region","aux":"regionDTL","retained":true,"compressed":false,"raw_rows":2,"raw_fields":3,"kept_fields":2,"stored_fields":2,"rows_after_local":2,"rows_after_join":2,"resident_rows":2,"fold_factor":1,"bytes":{"raw":48,"local_selection":0,"local_projection":16,"join_reduction":0,"compression":0,"elimination":0,"stored":32,"measured_stored":752}}

The explain verb: the derivation report, or the extended join graph in
Graphviz DOT form:

  $ ../../bin/minview.exe explain schema.sql --dot
  digraph join_graph {
    rankdir=TB;
    txn [label="txn"];
    shop [label="shop"];
    region [label="region [g]"];
    txn -> shop;
    shop -> region;
  }

A durable run persists the records next to the WAL commit markers:

  $ ../../bin/minview.exe simulate schema.sql changes.sql --state state > /dev/null
  $ cat state/lineage.jsonl
  {"txn":1,"tables":{"txn":3},"flows":[{"view":"zone_revenue","mode":"serial","deltas_in":3,"netted":3,"applied":3,"group_delta":0,"aux":[{"aux":"txnDTL","base":"txn","resident_delta":0,"detail_delta":2,"folded":2},{"aux":"shopDTL","base":"shop","resident_delta":0,"detail_delta":0,"folded":0},{"aux":"regionDTL","base":"region","resident_delta":0,"detail_delta":0,"folded":0}]}]}

A sampled drift audit recomputes groups from the retained detail and
cross-checks the maintained view:

  $ ../../bin/minview.exe audit state --sample 4
  zone_revenue             OK
  zone_revenue             checked 2 sampled group(s), 0 divergence(s)
  1 batch(es) ingested, 0 dead-letter(s), 0 failure(s)
