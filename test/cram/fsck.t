Self-healing storage through the CLI: the checkpoint generation chain,
fsck/repair with their documented exit codes (0 clean, 4 damaged but
recoverable / repaired, 5 unrecoverable), and snapshot-fallback recovery.

  $ cat > schema.sql <<'SQL'
  > CREATE TABLE region (id INT PRIMARY KEY, name TEXT, zone TEXT);
  > CREATE TABLE shop (id INT PRIMARY KEY, regionid INT REFERENCES region,
  >                    kind TEXT);
  > CREATE TABLE txn (id INT PRIMARY KEY, shopid INT REFERENCES shop,
  >                   amount INT UPDATABLE);
  > INSERT INTO region VALUES (1, 'north', 'a');
  > INSERT INTO region VALUES (2, 'south', 'b');
  > INSERT INTO shop VALUES (1, 1, 'grocery');
  > INSERT INTO shop VALUES (2, 2, 'kiosk');
  > INSERT INTO txn VALUES (1, 1, 10);
  > INSERT INTO txn VALUES (2, 2, 30);
  > CREATE VIEW zone_revenue AS
  >   SELECT zone, SUM(amount) AS revenue, COUNT(*) AS txns
  >   FROM txn, shop, region
  >   WHERE txn.shopid = shop.id AND shop.regionid = region.id
  >   GROUP BY zone;
  > SQL

  $ cat > changes.sql <<'SQL'
  > INSERT INTO txn VALUES (3, 1, 5);
  > INSERT INTO txn VALUES (4, 2, 7);
  > UPDATE txn SET amount = 12 WHERE id = 1;
  > SQL

Build a durable state directory, then checkpoint through recovery: the
outgoing snapshot and the replayed WAL segment are archived as generation 1
instead of being destroyed.

  $ ../../bin/minview.exe simulate schema.sql changes.sql --state state > /dev/null
  $ ../../bin/minview.exe recover state --checkpoint > /dev/null
  $ ls state
  generations
  lineage.jsonl
  snapshot.bin
  wal.bin
  workload_profile.json
  $ ls state/generations
  snapshot-00000001.bin
  wal-00000001.bin

A healthy directory is clean — exit code 0:

  $ ../../bin/minview.exe fsck state
  snapshot.bin                         ok       verified, batch 1
  generations/snapshot-00000001.bin    ok       verified, batch 0
  generations/wal-00000001.bin         ok       1 record(s), through batch 1
  wal.bin                              ok       0 record(s)
  state: clean

A torn WAL tail (a record that never finished hitting the disk) is detected
and classified — exit code 4, damaged but recoverable:

  $ printf 'torn frame, never completed' >> state/wal.bin
  $ ../../bin/minview.exe fsck state
  snapshot.bin                         ok       verified, batch 1
  generations/snapshot-00000001.bin    ok       verified, batch 0
  generations/wal-00000001.bin         ok       1 record(s), through batch 1
  wal.bin                              DAMAGED  torn-write at offset 14: truncated payload (19 of 1852993396 bytes) (0 intact record(s) before it)
  state: damaged but recoverable (run `minview repair` to quarantine the damage)
  [4]

Repair salvages the valid prefix and quarantines the bad bytes next to the
log — exit code 4, repairs made; a second fsck is clean again:

  $ ../../bin/minview.exe repair state
  wal.bin: salvaged: 27 byte(s) of torn-write tail quarantined to wal.bin.quarantine
  repaired: 1 file(s) quarantined; `minview recover` will proceed
  [4]
  $ ../../bin/minview.exe fsck state > /dev/null
  $ cat state/wal.bin.quarantine
  torn frame, never completed

Hand-corrupt the newest checkpoint: fsck flags it but the generation chain
still holds a verifiable snapshot:

  $ head -c 30 state/snapshot.bin > snap.tmp && mv snap.tmp state/snapshot.bin
  $ ../../bin/minview.exe fsck state
  snapshot.bin                         DAMAGED  state/snapshot.bin: truncated frame header
  generations/snapshot-00000001.bin    ok       verified, batch 0
  generations/wal-00000001.bin         ok       1 record(s), through batch 1
  wal.bin                              ok       0 record(s)
  state: damaged but recoverable (run `minview repair` to quarantine the damage)
  [4]

Recovery falls back to generation K-1 and replays its archived WAL segment:
nothing committed is lost, and the unverifiable snapshot is quarantined:

  $ ../../bin/minview.exe recover state --checkpoint
  minview.exe: [WARNING] state/snapshot.bin failed verification: quarantined to state/snapshot.bin.quarantine; falling back to state/generations/snapshot-00000001.bin
  recovered 1 view(s) at batch 1 from state
  -- zone_revenue --
  +------+---------+------+
  | zone | revenue | txns |
  +------+---------+------+
  | a    | 17      | 2    |
  | b    | 37      | 2    |
  +------+---------+------+
  $ ls state
  generations
  lineage.jsonl
  snapshot.bin
  snapshot.bin.quarantine
  wal.bin
  wal.bin.quarantine
  workload_profile.json
  $ ../../bin/minview.exe fsck state > /dev/null && echo clean
  clean

When no snapshot verifies at all, both verbs report the directory
unrecoverable — exit code 5:

  $ ../../bin/minview.exe simulate schema.sql changes.sql --state state2 > /dev/null
  $ head -c 30 state2/snapshot.bin > snap.tmp && mv snap.tmp state2/snapshot.bin
  $ ../../bin/minview.exe fsck state2
  snapshot.bin                         DAMAGED  state2/snapshot.bin: truncated frame header
  wal.bin                              ok       1 record(s), through batch 1
  state: unrecoverable (no snapshot verifies)
  [5]
  $ ../../bin/minview.exe repair state2
  snapshot.bin: unverifiable (state2/snapshot.bin: truncated frame header): quarantined to snapshot.bin.quarantine
  unrepairable: no verifiable snapshot remains
  [5]
