The telemetry verbs: the live compression dashboard and the span trace.

  $ cat > schema.sql <<'SQL'
  > CREATE TABLE region (id INT PRIMARY KEY, name TEXT, zone TEXT);
  > CREATE TABLE shop (id INT PRIMARY KEY, regionid INT REFERENCES region,
  >                    kind TEXT);
  > CREATE TABLE txn (id INT PRIMARY KEY, shopid INT REFERENCES shop,
  >                   amount INT UPDATABLE);
  > INSERT INTO region VALUES (1, 'north', 'a');
  > INSERT INTO region VALUES (2, 'south', 'b');
  > INSERT INTO shop VALUES (1, 1, 'grocery');
  > INSERT INTO shop VALUES (2, 2, 'kiosk');
  > INSERT INTO txn VALUES (1, 1, 10);
  > INSERT INTO txn VALUES (2, 2, 30);
  > CREATE VIEW zone_revenue AS
  >   SELECT zone, SUM(amount) AS revenue, COUNT(*) AS txns
  >   FROM txn, shop, region
  >   WHERE txn.shopid = shop.id AND shop.regionid = region.id
  >   GROUP BY zone;
  > SQL

  $ cat > changes.sql <<'SQL'
  > INSERT INTO txn VALUES (3, 1, 5);
  > INSERT INTO txn VALUES (4, 2, 7);
  > UPDATE txn SET amount = 12 WHERE id = 1;
  > SQL

The dashboard: per-auxview resident rows vs. the detail rows they stand
for (the paper's compression table, measured live), plus maintenance
counters. Timings are noise: the histogram section keeps only the
observation counts stable, so the p50/p95/p99 estimates are normalized
to `_` here (their math is covered by the telemetry unit tests).

  $ ../../bin/minview.exe metrics schema.sql --changes changes.sql \
  >   | sed -E 's/(p50|p95|p99)=[0-9e.+-]+/\1=_/g'
  == detail compression (live) ==
  +--------------+-----------+--------+---------------+-------------+-------+
  | view         | aux view  | base   | resident rows | detail rows | ratio |
  +--------------+-----------+--------+---------------+-------------+-------+
  | zone_revenue | regionDTL | region | 2             | 2           | 1     |
  | zone_revenue | shopDTL   | shop   | 2             | 2           | 1     |
  | zone_revenue | txnDTL    | txn    | 2             | 4           | 2     |
  +--------------+-----------+--------+---------------+-------------+-------+
  == counters ==
  minview_compression_specs_total{compressed=false} 2
  minview_compression_specs_total{compressed=true} 1
  minview_derive_decisions_total{decision=omitted} 0
  minview_derive_decisions_total{decision=retained} 3
  minview_engine_batches_total{mode=parallel} 0
  minview_engine_batches_total{mode=serial} 1
  minview_engine_deltas_netted_total 0
  minview_engine_deltas_total 3
  minview_engine_merge_folds_total 0
  minview_engine_ops_applied_total 0
  minview_lineage_records_total 1
  minview_need_members_total 6
  minview_reduction_columns_dropped_total 3
  minview_reduction_conditions_pushed_total 0
  minview_reduction_semijoins_planned_total 2
  minview_wal_appends_total 0
  minview_wal_bytes_written_total 0
  minview_wal_syncs_total 0
  minview_warehouse_dead_letters_dropped_total 0
  minview_warehouse_epoch_publications_total 2
  minview_warehouse_ingest_retries_total 0
  minview_warehouse_parallel_degradations_total 0
  minview_warehouse_parallel_promotions_total 0
  minview_warehouse_parallel_resets_total 0
  minview_warehouse_quarantined_deltas_total 0
  minview_warehouse_reads_total 0
  minview_warehouse_recoveries_total 0
  minview_warehouse_replayed_batches_total 0
  minview_warehouse_snapshot_fallbacks_total 0
  minview_warehouse_txn_commits_total 1
  minview_warehouse_txn_rollbacks_total 0
  == gauges ==
  minview_shard_imbalance_ratio 0
  minview_view_groups{view=zone_revenue} 2
  minview_warehouse_epoch_lag_batches 0
  minview_warehouse_parallel_degraded 0
  == histograms (observation counts) ==
  minview_engine_apply_seconds{mode=parallel} 0 p50=_ p95=_ p99=_
  minview_engine_apply_seconds{mode=serial} 1 p50=_ p95=_ p99=_
  minview_engine_phase_alloc_bytes{phase=compact} 0 p50=_ p95=_ p99=_
  minview_engine_phase_alloc_bytes{phase=dim-apply} 0 p50=_ p95=_ p99=_
  minview_engine_phase_alloc_bytes{phase=prepare} 0 p50=_ p95=_ p99=_
  minview_engine_phase_alloc_bytes{phase=shard-apply} 0 p50=_ p95=_ p99=_
  minview_engine_phase_alloc_bytes{phase=view-update} 1 p50=_ p95=_ p99=_
  minview_engine_phase_alloc_bytes{phase=weighted-merge} 0 p50=_ p95=_ p99=_
  minview_engine_phase_seconds{phase=compact} 0 p50=_ p95=_ p99=_
  minview_engine_phase_seconds{phase=dim-apply} 0 p50=_ p95=_ p99=_
  minview_engine_phase_seconds{phase=prepare} 0 p50=_ p95=_ p99=_
  minview_engine_phase_seconds{phase=shard-apply} 0 p50=_ p95=_ p99=_
  minview_engine_phase_seconds{phase=view-update} 1 p50=_ p95=_ p99=_
  minview_engine_phase_seconds{phase=weighted-merge} 0 p50=_ p95=_ p99=_
  minview_shard_run_seconds 0 p50=_ p95=_ p99=_
  minview_wal_fsync_seconds 0 p50=_ p95=_ p99=_
  minview_wal_group_commit_frames 0 p50=_ p95=_ p99=_
  minview_warehouse_checkpoint_seconds 0 p50=_ p95=_ p99=_
  minview_warehouse_ingest_alloc_bytes 1 p50=_ p95=_ p99=_
  minview_warehouse_ingest_seconds 1 p50=_ p95=_ p99=_
  minview_warehouse_read_seconds 0 p50=_ p95=_ p99=_

The machine-readable dump is one JSON object per line; counters and
gauges carry no timing noise, so their lines are stable verbatim.

  $ ../../bin/minview.exe metrics schema.sql --changes changes.sql --json \
  >   | grep -E '"type":"(counter|gauge)"' | grep -v phase_seconds
  {"name":"minview_aux_compression_ratio","labels":{"aux":"regionDTL","base":"region","view":"zone_revenue"},"type":"gauge","value":1.0}
  {"name":"minview_aux_compression_ratio","labels":{"aux":"shopDTL","base":"shop","view":"zone_revenue"},"type":"gauge","value":1.0}
  {"name":"minview_aux_compression_ratio","labels":{"aux":"txnDTL","base":"txn","view":"zone_revenue"},"type":"gauge","value":2.0}
  {"name":"minview_aux_detail_rows","labels":{"aux":"regionDTL","base":"region","view":"zone_revenue"},"type":"gauge","value":2.0}
  {"name":"minview_aux_detail_rows","labels":{"aux":"shopDTL","base":"shop","view":"zone_revenue"},"type":"gauge","value":2.0}
  {"name":"minview_aux_detail_rows","labels":{"aux":"txnDTL","base":"txn","view":"zone_revenue"},"type":"gauge","value":4.0}
  {"name":"minview_aux_resident_rows","labels":{"aux":"regionDTL","base":"region","view":"zone_revenue"},"type":"gauge","value":2.0}
  {"name":"minview_aux_resident_rows","labels":{"aux":"shopDTL","base":"shop","view":"zone_revenue"},"type":"gauge","value":2.0}
  {"name":"minview_aux_resident_rows","labels":{"aux":"txnDTL","base":"txn","view":"zone_revenue"},"type":"gauge","value":2.0}
  {"name":"minview_compression_specs_total","labels":{"compressed":"false"},"type":"counter","value":2}
  {"name":"minview_compression_specs_total","labels":{"compressed":"true"},"type":"counter","value":1}
  {"name":"minview_derive_decisions_total","labels":{"decision":"omitted"},"type":"counter","value":0}
  {"name":"minview_derive_decisions_total","labels":{"decision":"retained"},"type":"counter","value":3}
  {"name":"minview_engine_batches_total","labels":{"mode":"parallel"},"type":"counter","value":0}
  {"name":"minview_engine_batches_total","labels":{"mode":"serial"},"type":"counter","value":1}
  {"name":"minview_engine_deltas_netted_total","labels":{},"type":"counter","value":0}
  {"name":"minview_engine_deltas_total","labels":{},"type":"counter","value":3}
  {"name":"minview_engine_merge_folds_total","labels":{},"type":"counter","value":0}
  {"name":"minview_engine_ops_applied_total","labels":{},"type":"counter","value":0}
  {"name":"minview_lineage_records_total","labels":{},"type":"counter","value":1}
  {"name":"minview_need_members_total","labels":{},"type":"counter","value":6}
  {"name":"minview_reduction_columns_dropped_total","labels":{},"type":"counter","value":3}
  {"name":"minview_reduction_conditions_pushed_total","labels":{},"type":"counter","value":0}
  {"name":"minview_reduction_semijoins_planned_total","labels":{},"type":"counter","value":2}
  {"name":"minview_shard_imbalance_ratio","labels":{},"type":"gauge","value":0.0}
  {"name":"minview_view_groups","labels":{"view":"zone_revenue"},"type":"gauge","value":2.0}
  {"name":"minview_wal_appends_total","labels":{},"type":"counter","value":0}
  {"name":"minview_wal_bytes_written_total","labels":{},"type":"counter","value":0}
  {"name":"minview_wal_syncs_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_dead_letters_dropped_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_epoch_lag_batches","labels":{},"type":"gauge","value":0.0}
  {"name":"minview_warehouse_epoch_publications_total","labels":{},"type":"counter","value":2}
  {"name":"minview_warehouse_ingest_retries_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_parallel_degradations_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_parallel_degraded","labels":{},"type":"gauge","value":0.0}
  {"name":"minview_warehouse_parallel_promotions_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_parallel_resets_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_quarantined_deltas_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_reads_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_recoveries_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_replayed_batches_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_snapshot_fallbacks_total","labels":{},"type":"counter","value":0}
  {"name":"minview_warehouse_txn_commits_total","labels":{},"type":"counter","value":1}
  {"name":"minview_warehouse_txn_rollbacks_total","labels":{},"type":"counter","value":0}

Prometheus exposition carries the same gauges with HELP/TYPE headers:

  $ ../../bin/minview.exe metrics schema.sql --changes changes.sql --prometheus \
  >   | grep -A 4 'HELP minview_aux_compression'
  # HELP minview_aux_compression_ratio Detail rows per resident row (compression factor)
  # TYPE minview_aux_compression_ratio gauge
  minview_aux_compression_ratio{aux="regionDTL",base="region",view="zone_revenue"} 1
  minview_aux_compression_ratio{aux="shopDTL",base="shop",view="zone_revenue"} 1
  minview_aux_compression_ratio{aux="txnDTL",base="txn",view="zone_revenue"} 2

The span trace shows the phase sequence of the pipeline (names and
attributes only; --json adds the timings):

  $ ../../bin/minview.exe trace schema.sql --changes changes.sql
  engine.view-update
  engine.apply-batch {mode=serial,view=zone_revenue}
  lineage.record {txn=1,tables=1,deltas=3}
  warehouse.ingest

TELEMETRY=off disables collection — counters stay at zero and no spans
are recorded:

  $ TELEMETRY=off ../../bin/minview.exe metrics schema.sql --changes changes.sql \
  >   | grep txn_commits
  minview_warehouse_txn_commits_total 0

  $ TELEMETRY=off ../../bin/minview.exe trace schema.sql --changes changes.sql
