(* Crash-recovery tests: for every named crash point and several seeds, a
   simulated crash followed by recovery and a resumed delta stream leaves the
   warehouse exactly where an uninterrupted run would have — the WAL replay
   is idempotent and the views match from-scratch recomputation. Plus
   corruption tests for the snapshot format and the WAL tail. *)

open Helpers
module Faults = Maintenance.Faults

let test case fn = Alcotest.test_case case `Quick fn

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* a state directory emptied of any previous run's leftovers — recursively,
   because attached directories now grow a generations/ subdirectory whose
   stale archived segments would otherwise poison a rerun *)
let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir name =
  let dir = tmp name in
  if Sys.file_exists dir then rm_rf dir;
  dir

let tiny =
  {
    Workload.Retail.days = 8;
    stores = 2;
    products = 12;
    sold_per_store_day = 4;
    tx_per_product = 2;
    brands = 4;
    seed = 31;
  }

let all_views =
  [ Workload.Retail.product_sales; Workload.Retail.monthly_revenue;
    Workload.Retail.sales_by_time ]

let build () =
  let db = Workload.Retail.load tiny in
  let wh = Warehouse.create db in
  Warehouse.add_view wh Workload.Retail.product_sales;
  Warehouse.add_view ~strategy:Warehouse.Psj wh Workload.Retail.monthly_revenue;
  Warehouse.add_view ~strategy:Warehouse.Replicate wh
    Workload.Retail.sales_by_time;
  (db, wh)

let check_views wh db =
  List.iter
    (fun v ->
      Alcotest.check relation v.View.name (Algebra.Eval.eval db v)
        (snd (Warehouse.query wh v.View.name)))
    all_views

let reason_eq : Delta.reason Alcotest.testable =
  Alcotest.testable
    (fun ppf r -> Format.pp_print_string ppf (Delta.reason_label r))
    ( = )

(* The property: crash at [point] somewhere inside a batched ingestion run,
   recover from disk, resume the stream from the batch count the recovered
   warehouse reports — and end up indistinguishable from a run that never
   crashed. *)
let crash_and_recover point seed () =
  let db, wh = build () in
  let dir =
    fresh_dir (Printf.sprintf "wh_crash_%s_%d" (Faults.to_string point) seed)
  in
  Warehouse.attach ~checkpoint_every:3 wh ~dir;
  let rng = Workload.Prng.create seed in
  (* generate everything up front: the batches evolve db to its final state,
     which is the ground truth the recovered warehouse must reach *)
  let batches = List.init 8 (fun _ -> Workload.Delta_gen.stream rng db ~n:12) in
  let skip =
    match point with
    (* let attach's initial checkpoint through; crash on the first automatic
       one (after the third batch) *)
    | Faults.Mid_checkpoint | Faults.Before_wal_truncate
    | Faults.After_truncate_rename | Faults.After_checkpoint_rename ->
      1
    | Faults.After_wal_append | Faults.Mid_engine_apply
    (* every synced append passes the group-commit point; crash on the third
       batch's write, leaving its frame torn on disk *)
    | Faults.Mid_group_commit | Faults.Wal_fsync ->
      2
    | Faults.In_shard_worker -> 0
  in
  Faults.arm ~skip point;
  let crashed = ref false in
  (try List.iter (Warehouse.ingest wh) batches
   with Faults.Crash p ->
     crashed := true;
     Alcotest.check
       (Alcotest.testable
          (fun ppf p -> Format.pp_print_string ppf (Faults.to_string p))
          ( = ))
       "crashed at the armed point" point p);
  Faults.disarm ();
  Alcotest.(check bool) "the armed fault fired" true !crashed;
  Warehouse.close wh;
  let wh' = Warehouse.recover ~dir in
  Alcotest.(check (list reason_eq)) "no dead letters after replay" []
    (List.map (fun r -> r.Delta.reason) (Warehouse.dead_letters wh'));
  (* each batch bumps the count by exactly one, so it doubles as the resume
     cursor into the stream *)
  let already = Warehouse.ingested_batches wh' in
  Alcotest.(check bool) "made progress before crashing" true (already >= 2);
  List.iteri
    (fun idx batch -> if idx >= already then Warehouse.ingest wh' batch)
    batches;
  check_views wh' db;
  Warehouse.close wh'

let crash_tests =
  (* In_shard_worker only fires on the parallel apply path; the serial crash
     matrix here never reaches it (it is covered by the supervision tests in
     test_chaos.ml) *)
  let serial_points =
    List.filter (fun p -> p <> Faults.In_shard_worker) Faults.all
  in
  List.concat_map
    (fun point ->
      List.map
        (fun seed ->
          test
            (Printf.sprintf "crash at %s, seed %d (recover == no crash)"
               (Faults.to_string point) seed)
            (crash_and_recover point seed))
        [ 11; 12; 13 ])
    serial_points

let durability_tests =
  [
    test "attach / checkpoint / recover round-trips" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_roundtrip_dir" in
        Warehouse.attach wh ~dir;
        let rng = Workload.Prng.create 5 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:60);
        Warehouse.checkpoint wh;
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:60);
        Warehouse.close wh;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "batch count" 2 (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh');
    test "recovery tolerates a torn WAL tail" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_torn_dir" in
        Warehouse.attach wh ~dir;
        let rng = Workload.Prng.create 6 in
        for _ = 1 to 3 do
          Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:20)
        done;
        Warehouse.close wh;
        (* a record that never finished hitting the disk *)
        let oc =
          open_out_gen
            [ Open_wronly; Open_append; Open_binary ]
            0o644
            (Filename.concat dir "wal.bin")
        in
        output_string oc "garbage that is not a complete record";
        close_out oc;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "all full batches survive" 3
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh');
    test "group commit: one sync makes the whole burst durable" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_group_commit_dir" in
        Warehouse.attach wh ~dir;
        let rng = Workload.Prng.create 9 in
        let batches =
          List.init 4 (fun _ -> Workload.Delta_gen.stream rng db ~n:15)
        in
        let reports = Warehouse.ingest_all wh batches in
        Alcotest.(check (list int))
          "sequence numbers" [ 1; 2; 3; 4 ]
          (List.map (fun r -> r.Warehouse.batch) reports);
        Warehouse.close wh;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "all batches durable" 4
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh');
    test "crash mid group commit loses only a burst suffix" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_group_crash_dir" in
        Warehouse.attach wh ~dir;
        let rng = Workload.Prng.create 10 in
        let batches =
          List.init 6 (fun _ -> Workload.Delta_gen.stream rng db ~n:15)
        in
        (* the staged appends never sync; the burst's one durability barrier
           is the final Wal.sync, and the power cut hits mid-write there *)
        Faults.arm Faults.Mid_group_commit;
        (match Warehouse.ingest_all wh batches with
        | _ -> Alcotest.fail "expected a crash"
        | exception Faults.Crash p ->
          Alcotest.(check bool)
            "crashed at mid-group-commit" true
            (p = Faults.Mid_group_commit));
        Faults.disarm ();
        Warehouse.close wh;
        let wh' = Warehouse.recover ~dir in
        (* the torn tail is dropped; what survives is a batch-boundary
           prefix of the burst, and the resume cursor is exact *)
        let already = Warehouse.ingested_batches wh' in
        Alcotest.(check bool)
          "a proper prefix survived" true
          (already < 6);
        List.iteri
          (fun idx batch ->
            if idx >= already then Warehouse.ingest wh' batch)
          batches;
        check_views wh' db;
        Warehouse.close wh');
    test "checkpoint without attach is refused" (fun () ->
        let _db, wh = build () in
        match Warehouse.checkpoint wh with
        | exception Warehouse.Error { kind = Warehouse.Not_durable; _ } -> ()
        | () -> Alcotest.fail "expected Not_durable");
    test "double attach is refused" (fun () ->
        let _db, wh = build () in
        let dir = fresh_dir "wh_double_dir" in
        Warehouse.attach wh ~dir;
        (match Warehouse.attach wh ~dir with
        | exception Warehouse.Error { kind = Warehouse.Invalid_request; _ } ->
          ()
        | () -> Alcotest.fail "expected Invalid_request");
        Warehouse.close wh);
  ]

(* --- checkpoint generation chain ---------------------------------------- *)

let flip_last_byte path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Bytes.of_string (really_input_string ic (in_channel_length ic)))
  in
  let last = Bytes.length s - 1 in
  Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc s;
  close_out oc

let generation_files dir =
  match Sys.readdir (Filename.concat dir "generations") with
  | entries ->
    let l = Array.to_list entries in
    ( List.filter (String.starts_with ~prefix:"snapshot-") l,
      List.filter (String.starts_with ~prefix:"wal-") l )
  | exception Sys_error _ -> ([], [])

let chain_tests =
  [
    test "a corrupt newest checkpoint recovers from generation K-1" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_chain_fallback_dir" in
        Warehouse.attach ~keep_generations:2 wh ~dir;
        let rng = Workload.Prng.create 17 in
        (* three checkpoints deep: gen chain holds the two older snapshots
           with the WAL segments between them *)
        for _ = 1 to 3 do
          Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:20);
          Warehouse.checkpoint wh
        done;
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:20);
        Warehouse.close wh;
        flip_last_byte (Filename.concat dir "snapshot.bin");
        let wh' = Warehouse.recover ~dir in
        (* the unverifiable newest snapshot fell back to gen K-1; replaying
           its archived segment plus the live log reaches the full stream *)
        Alcotest.(check int) "no committed batch lost" 4
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Alcotest.(check bool) "the bad snapshot was quarantined" true
          (Sys.file_exists (Filename.concat dir "snapshot.bin.quarantine"));
        (* the healed warehouse checkpoints and keeps running *)
        Warehouse.checkpoint wh';
        Warehouse.ingest wh' (Workload.Delta_gen.stream rng db ~n:20);
        check_views wh' db;
        Warehouse.close wh');
    test "pruning keeps exactly keep_generations archived snapshots"
      (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_chain_prune_dir" in
        Warehouse.attach ~keep_generations:2 wh ~dir;
        let rng = Workload.Prng.create 18 in
        for _ = 1 to 5 do
          Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
          Warehouse.checkpoint wh
        done;
        let snaps, wals = generation_files dir in
        Alcotest.(check int) "two archived snapshots" 2 (List.length snaps);
        Alcotest.(check int) "two archived WAL segments" 2 (List.length wals);
        Warehouse.close wh;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "all batches present" 5
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh');
    test "keep_generations:0 disables the chain (truncate on checkpoint)"
      (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_chain_off_dir" in
        Warehouse.attach ~keep_generations:0 wh ~dir;
        let rng = Workload.Prng.create 19 in
        for _ = 1 to 3 do
          Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
          Warehouse.checkpoint wh
        done;
        let snaps, wals = generation_files dir in
        Alcotest.(check int) "no archived snapshots" 0 (List.length snaps);
        Alcotest.(check int) "no archived WAL segments" 0 (List.length wals);
        Warehouse.close wh;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "recovery unaffected" 3
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh');
    test "negative keep_generations is refused" (fun () ->
        let _db, wh = build () in
        let dir = fresh_dir "wh_chain_neg_dir" in
        match Warehouse.attach ~keep_generations:(-1) wh ~dir with
        | exception Warehouse.Error { kind = Warehouse.Invalid_request; _ } ->
          ()
        | () -> Alcotest.fail "expected Invalid_request");
    test "recover on an existing-but-empty directory is a cold start"
      (fun () ->
        let dir = fresh_dir "wh_empty_dir" in
        Sys.mkdir dir 0o755;
        let wh = Warehouse.recover ~dir in
        Alcotest.(check int) "nothing ingested" 0
          (Warehouse.ingested_batches wh);
        Warehouse.close wh;
        (* the cold start initialized the directory: a second recovery now
           finds a live snapshot *)
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "still nothing ingested" 0
          (Warehouse.ingested_batches wh');
        Warehouse.close wh');
  ]

(* --- snapshot corruption ------------------------------------------------ *)

let saved_snapshot path =
  let db = Workload.Retail.load tiny in
  let wh = Warehouse.create db in
  Warehouse.add_view wh Workload.Retail.product_sales;
  Warehouse.save wh path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let expect_corrupt path =
  match Warehouse.load path with
  | exception Warehouse.Error { kind = Warehouse.Corrupt_state; _ } -> ()
  | _ -> Alcotest.fail "expected Corrupt_state"

let corruption_tests =
  [
    test "a flipped payload byte fails the checksum" (fun () ->
        let path = tmp "wh_bitrot.bin" in
        saved_snapshot path;
        let s = Bytes.of_string (read_file path) in
        let last = Bytes.length s - 1 in
        Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 0xff));
        write_file path (Bytes.to_string s);
        expect_corrupt path;
        Sys.remove path);
    test "a truncated payload is detected before unmarshalling" (fun () ->
        let path = tmp "wh_truncated.bin" in
        saved_snapshot path;
        let s = read_file path in
        write_file path (String.sub s 0 (String.length s - 7));
        expect_corrupt path;
        Sys.remove path);
    test "the unchecksummed v1 format is refused as incompatible" (fun () ->
        let path = tmp "wh_v1.bin" in
        write_file path ("minview-warehouse-state/1\n" ^ "anything");
        (match Warehouse.load path with
        | exception Warehouse.Error { kind = Warehouse.Incompatible_state; _ }
          ->
          ()
        | _ -> Alcotest.fail "expected Incompatible_state");
        Sys.remove path);
    test "a garbage WAL header is refused" (fun () ->
        let dir = fresh_dir "wh_badwal_dir" in
        let path = tmp "wh_badwal_snap.bin" in
        saved_snapshot path;
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        write_file (Filename.concat dir "snapshot.bin") (read_file path);
        write_file (Filename.concat dir "wal.bin") "this is not a WAL file";
        (match Warehouse.recover ~dir with
        | exception Warehouse.Error { kind = Warehouse.Corrupt_state; _ } -> ()
        | _ -> Alcotest.fail "expected Corrupt_state");
        Sys.remove path);
  ]

(* --- version-3 snapshot compatibility ------------------------------------ *)

(* CRC-32 (IEEE, reflected), mirroring lib/warehouse/checksum.ml — needed to
   reframe a crafted legacy payload with a valid frame header. *)
let crc32 s =
  let table =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let crc = ref 0xffffffff in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xffffffff

(* Rewrite a version-4 snapshot into the version-3 format the boxed builds
   wrote: three-field registration records { view; strategy; engine } with
   the marshaled engine state in the last field. The v4 loader must ignore
   that field entirely, so a placeholder stands in for the engine graph. *)
let to_v3 path =
  let v4_magic = "minview-warehouse-state/4\n" in
  let v3_magic = "minview-warehouse-state/3\n" in
  let s = read_file path in
  let mlen = String.length v4_magic in
  if not (String.length s > mlen + 8 && String.sub s 0 mlen = v4_magic) then
    Alcotest.fail (path ^ ": not a version-4 snapshot");
  let payload = String.sub s (mlen + 8) (String.length s - mlen - 8) in
  let persisted, source, validator, dead, seq, domains =
    (Marshal.from_string payload 0
      : Obj.t list * Obj.t * Obj.t * Obj.t * Obj.t * Obj.t)
  in
  let olds =
    List.map
      (fun p ->
        let r = Obj.new_block 0 3 in
        Obj.set_field r 0 (Obj.field p 0);
        Obj.set_field r 1 (Obj.field p 1);
        Obj.set_field r 2 (Obj.repr "boxed engine state (ignored)");
        r)
      persisted
  in
  let payload' =
    Marshal.to_string (olds, source, validator, dead, seq, domains) []
  in
  let b = Buffer.create (String.length payload' + mlen + 8) in
  Buffer.add_string b v3_magic;
  Buffer.add_int32_le b (Int32.of_int (String.length payload'));
  Buffer.add_int32_le b (Int32.of_int (crc32 payload'));
  Buffer.add_string b payload';
  write_file path (Buffer.contents b)

let v3_tests =
  [
    test "a version-3 snapshot loads and rebuilds engines" (fun () ->
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        Warehouse.add_view ~strategy:Warehouse.Psj wh
          Workload.Retail.monthly_revenue;
        let rng = Workload.Prng.create 23 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:30);
        let path = tmp "wh_v3_compat.bin" in
        Warehouse.save wh path;
        to_v3 path;
        let wh' = Warehouse.load path in
        List.iter
          (fun (v : View.t) ->
            Alcotest.check relation v.View.name
              (snd (Warehouse.query wh v.View.name))
              (snd (Warehouse.query wh' v.View.name)))
          [ Workload.Retail.product_sales; Workload.Retail.monthly_revenue ];
        (* the rebuilt engines keep maintaining the views *)
        Warehouse.ingest wh' (Workload.Delta_gen.stream rng db ~n:20);
        Alcotest.check relation "still maintained"
          (Algebra.Eval.eval db Workload.Retail.product_sales)
          (snd (Warehouse.query wh' "product_sales"));
        Sys.remove path);
    test "recover replays a generation chain of version-3 snapshots"
      (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_v3_chain_dir" in
        Warehouse.attach ~keep_generations:2 wh ~dir;
        let rng = Workload.Prng.create 29 in
        for _ = 1 to 3 do
          Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:15);
          Warehouse.checkpoint wh
        done;
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:15);
        Warehouse.close wh;
        (* the deployment that wrote this chain ran a boxed build: every
           snapshot on disk — live and archived — is version-3 *)
        to_v3 (Filename.concat dir "snapshot.bin");
        let gens = Filename.concat dir "generations" in
        Array.iter
          (fun f_name ->
            if String.starts_with ~prefix:"snapshot-" f_name then
              to_v3 (Filename.concat gens f_name))
          (try Sys.readdir gens with Sys_error _ -> [||]);
        let report = Warehouse.fsck ~dir in
        Alcotest.(check bool) "v3 chain verifies" true
          report.Warehouse.fsck_clean;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "no committed batch lost" 4
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh';
        (* corrupt the (v3) newest snapshot: recovery must fall back to the
           v3 generation K-1 and replay its archived WAL segment *)
        flip_last_byte (Filename.concat dir "snapshot.bin");
        let wh'' = Warehouse.recover ~dir in
        Alcotest.(check int) "generation K-1 replayed" 4
          (Warehouse.ingested_batches wh'');
        check_views wh'' db;
        (* the healed warehouse checkpoints in the current format and keeps
           running *)
        Warehouse.checkpoint wh'';
        Warehouse.ingest wh'' (Workload.Delta_gen.stream rng db ~n:15);
        check_views wh'' db;
        Warehouse.close wh'');
  ]

let () =
  Alcotest.run "recovery"
    [
      ("crash-points", crash_tests); ("durability", durability_tests);
      ("generation-chain", chain_tests);
      ("snapshot-corruption", corruption_tests);
      ("v3-compat", v3_tests);
    ]
