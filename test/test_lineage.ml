(* The lineage & attribution layer: per-batch lineage records agree with
   the engine counters under serial and shard-parallel apply, rolled-back
   transactions never emit a record, the drift auditor and the savings
   attribution reconcile against live maintenance state, and the
   rotation/percentile satellites behave. *)

open Helpers
module Metrics = Telemetry.Metrics
module Counter = Telemetry.Counter
module Histogram = Telemetry.Histogram
module Lineage = Telemetry.Lineage
module Jsonl_sink = Telemetry.Jsonl_sink
module Attribution = Mindetail.Attribution
module Engine = Maintenance.Engine
module Shard = Maintenance.Shard

let test case fn = Alcotest.test_case case `Quick fn
let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name
let counter_value ?labels name = Counter.value (Counter.make ?labels name)

let tiny =
  {
    Workload.Retail.days = 6;
    stores = 2;
    products = 10;
    sold_per_store_day = 3;
    tx_per_product = 2;
    brands = 3;
    seed = 7;
  }

let fresh_id = ref 3_000_000

let next_id () =
  incr fresh_id;
  !fresh_id

let valid_sale () =
  Delta.insert "sale" (row [ i (next_id ()); i 1; i 1; i 1; i 12 ])

(* --- per-batch records vs. engine counters ------------------------------- *)

let record_tests =
  [
    test "a committed serial batch leaves one record matching the counters"
      (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        Metrics.reset ();
        Lineage.clear ();
        let rng = Workload.Prng.create 5 in
        let deltas = Workload.Delta_gen.stream rng db ~n:25 in
        let r = Warehouse.ingest_report wh deltas in
        Alcotest.(check int) "all applied" 25 r.Warehouse.applied;
        match Lineage.recent () with
        | [ rc ] -> (
          Alcotest.(check int) "keyed by WAL seq" r.Warehouse.batch rc.Lineage.txn;
          Alcotest.(check int)
            "table counts cover the batch" 25
            (List.fold_left (fun acc (_, n) -> acc + n) 0 rc.Lineage.tables);
          Alcotest.(check int)
            "records counter" 1
            (counter_value "minview_lineage_records_total");
          match rc.Lineage.flows with
          | [ flow ] ->
            Alcotest.(check string) "mode" "serial" flow.Lineage.mode;
            Alcotest.(check int)
              "deltas_in equals the engine counter"
              (counter_value "minview_engine_deltas_total")
              flow.Lineage.deltas_in;
            Alcotest.(check int)
              "serial netting is the identity" flow.Lineage.deltas_in
              flow.Lineage.netted;
            Alcotest.(check int)
              "serial apply is one op per delta" flow.Lineage.deltas_in
              flow.Lineage.applied
          | l -> Alcotest.fail (Printf.sprintf "got %d flows" (List.length l)))
        | l -> Alcotest.fail (Printf.sprintf "got %d records" (List.length l)));
    test "aux flow deltas track the storage gauges between batches" (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        let rng = Workload.Prng.create 11 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        let gauge_of base name =
          List.find_map
            (fun s ->
              match s.Metrics.s_value with
              | Metrics.Gauge_v v
                when String.equal s.Metrics.s_name name
                     && List.assoc_opt "base" s.Metrics.s_labels = Some base ->
                Some (int_of_float v)
              | _ -> None)
            (Metrics.snapshot ())
        in
        let flows_of_last () =
          match Lineage.recent () with
          | [] -> Alcotest.fail "no record"
          | l -> (
            match (List.nth l (List.length l - 1)).Lineage.flows with
            | [ flow ] -> flow.Lineage.aux_flows
            | _ -> Alcotest.fail "expected one flow")
        in
        let before =
          List.map
            (fun (a : Lineage.aux_flow) ->
              ( a.Lineage.base,
                gauge_of a.Lineage.base "minview_aux_resident_rows",
                gauge_of a.Lineage.base "minview_aux_detail_rows" ))
            (flows_of_last ())
        in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:30);
        List.iter
          (fun (a : Lineage.aux_flow) ->
            let _, res0, det0 =
              List.find (fun (b, _, _) -> String.equal b a.Lineage.base) before
            in
            let res1 = gauge_of a.Lineage.base "minview_aux_resident_rows" in
            let det1 = gauge_of a.Lineage.base "minview_aux_detail_rows" in
            Alcotest.(check (option int))
              (a.Lineage.base ^ " resident delta")
              (Option.map (fun v -> v + a.Lineage.resident_delta) res0)
              res1;
            Alcotest.(check (option int))
              (a.Lineage.base ^ " detail delta")
              (Option.map (fun v -> v + a.Lineage.detail_delta) det0)
              det1;
            Alcotest.(check int)
              (a.Lineage.base ^ " folded")
              (max 0 (a.Lineage.detail_delta - a.Lineage.resident_delta))
              a.Lineage.folded)
          (flows_of_last ()));
    test "parallel apply records the same flow as serial and the counters"
      (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let db = Workload.Retail.load tiny in
        let eng =
          Engine.init db
            (Mindetail.Derive.derive db Workload.Retail.monthly_revenue)
        in
        let rng = Workload.Prng.create 13 in
        Engine.apply_batch eng (Workload.Delta_gen.stream rng db ~n:40);
        let batch = Workload.Delta_gen.stream rng db ~n:120 in
        let profile = Engine.net_profile eng batch in
        let ser = Engine.copy eng and par = Engine.copy eng in
        Engine.apply_batch ser batch;
        let serial_flow = Option.get (Engine.last_flow ser) in
        Metrics.reset ();
        Engine.apply_batch ~parallel:(Shard.create ~domains:4) par batch;
        let flow = Option.get (Engine.last_flow par) in
        Alcotest.(check string) "mode" "parallel" flow.Lineage.mode;
        Alcotest.(check int)
          "deltas_in equals the engine counter"
          (counter_value "minview_engine_deltas_total")
          flow.Lineage.deltas_in;
        Alcotest.(check int)
          "netted equals the engine counter"
          (counter_value "minview_engine_deltas_netted_total")
          flow.Lineage.netted;
        Alcotest.(check int)
          "netted equals the compaction profile" profile.Engine.netted
          flow.Lineage.netted;
        Alcotest.(check int)
          "applied equals the engine counter"
          (counter_value "minview_engine_ops_applied_total")
          flow.Lineage.applied;
        Alcotest.(check int)
          "applied equals the compaction profile" profile.Engine.applied
          flow.Lineage.applied;
        (* the net flow through the auxviews and the view is mode-invariant *)
        Alcotest.(check int)
          "group delta agrees with serial" serial_flow.Lineage.group_delta
          flow.Lineage.group_delta;
        Alcotest.(check int)
          "deltas_in agrees with serial" serial_flow.Lineage.deltas_in
          flow.Lineage.deltas_in;
        List.iter2
          (fun (a : Lineage.aux_flow) (b : Lineage.aux_flow) ->
            Alcotest.(check string) "same aux" a.Lineage.aux b.Lineage.aux;
            Alcotest.(check int)
              (a.Lineage.base ^ " resident agrees") a.Lineage.resident_delta
              b.Lineage.resident_delta;
            Alcotest.(check int)
              (a.Lineage.base ^ " detail agrees") a.Lineage.detail_delta
              b.Lineage.detail_delta)
          serial_flow.Lineage.aux_flows flow.Lineage.aux_flows);
    test "a rolled-back transaction emits no record" (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let db = paper_example_db () in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        (* a price update crossing an Aged view's partition boundary passes
           validation and blows up the partitioned engine mid-batch *)
        let is_old tup =
          match tup.(4) with Value.Int p -> p < 15 | _ -> false
        in
        let aged =
          { Workload.Retail.sales_by_time with View.name = "aged_sales" }
        in
        Warehouse.add_view ~strategy:(Warehouse.Aged is_old) wh aged;
        Metrics.reset ();
        Lineage.clear ();
        let r1 = Warehouse.ingest_report wh [ valid_sale () ] in
        Alcotest.(check int) "clean batch applies" 1 r1.Warehouse.applied;
        Alcotest.(check int) "one record" 1 (List.length (Lineage.recent ()));
        let boundary_crossing =
          Delta.update "sale"
            ~before:(row [ i 1; i 1; i 1; i 1; i 10 ])
            ~after:(row [ i 1; i 1; i 1; i 1; i 50 ])
        in
        let r2 = Warehouse.ingest_report wh [ boundary_crossing ] in
        Alcotest.(check int) "poisoned batch aborts" 0 r2.Warehouse.applied;
        Alcotest.(check int)
          "one rollback" 1
          (counter_value "minview_warehouse_txn_rollbacks_total");
        (match Lineage.recent () with
        | [ rc ] ->
          Alcotest.(check int)
            "the surviving record is the committed txn" r1.Warehouse.batch
            rc.Lineage.txn
        | l -> Alcotest.fail (Printf.sprintf "got %d records" (List.length l)));
        Alcotest.(check int)
          "records counter untouched by the rollback" 1
          (counter_value "minview_lineage_records_total"));
    test "the ring filters by transaction and by table" (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let db = paper_example_db () in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        ignore (Warehouse.ingest_report wh [ valid_sale () ]);
        ignore
          (Warehouse.ingest_report wh
             [ Delta.insert "time" (row [ i 9; i 9; i 3; i 1997 ]) ]);
        ignore (Warehouse.ingest_report wh [ valid_sale (); valid_sale () ]);
        Alcotest.(check int) "all records" 3 (List.length (Lineage.recent ()));
        (match Lineage.recent ~txn:2 () with
        | [ rc ] ->
          Alcotest.(check (list (pair string int)))
            "txn 2 touched time" [ ("time", 1) ] rc.Lineage.tables
        | l -> Alcotest.fail (Printf.sprintf "got %d records" (List.length l)));
        Alcotest.(check int)
          "two batches touched sale" 2
          (List.length (Lineage.recent ~table:"sale" ()));
        Alcotest.(check int)
          "none touched product" 0
          (List.length (Lineage.recent ~table:"product" ())));
    test "records append to the sink as one JSON object per line" (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let path = tmp "tele_lineage_sink.jsonl" in
        if Sys.file_exists path then Sys.remove path;
        Lineage.set_sink (Some path);
        Alcotest.(check (option string))
          "sink path" (Some path) (Lineage.sink_path ());
        let rc =
          { Lineage.txn = 42; tables = [ ("t", 1) ]; flows = [] }
        in
        Lineage.emit rc;
        Lineage.emit { rc with Lineage.txn = 43 };
        Lineage.set_sink None;
        let ic = open_in path in
        let l1 = input_line ic in
        let l2 = input_line ic in
        close_in ic;
        Alcotest.(check string)
          "line 1" {|{"txn":42,"tables":{"t":1},"flows":[]}|} l1;
        Alcotest.(check bool) "line 2 is txn 43" true (contains l2 {|"txn":43|}));
    test "disabled telemetry emits nothing" (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        Telemetry.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Telemetry.set_enabled true)
          (fun () ->
            Lineage.emit { Lineage.txn = 1; tables = []; flows = [] });
        Alcotest.(check int) "ring empty" 0 (List.length (Lineage.recent ())));
  ]

(* --- drift auditor -------------------------------------------------------- *)

let audit_tests =
  [
    test "sample_indices is deterministic, evenly spaced and clamped" (fun () ->
        Alcotest.(check (list int))
          "3 of 9" [ 0; 3; 6 ]
          (Lineage.sample_indices ~sample:3 ~total:9);
        Alcotest.(check (list int))
          "oversampling takes everything" [ 0; 1; 2 ]
          (Lineage.sample_indices ~sample:10 ~total:3);
        Alcotest.(check (list int))
          "zero sample" []
          (Lineage.sample_indices ~sample:0 ~total:9);
        Alcotest.(check (list int))
          "empty population" []
          (Lineage.sample_indices ~sample:4 ~total:0));
    test "the harness counts checks and divergences per view" (fun () ->
        Metrics.reset ();
        let checked, divergences =
          Lineage.audit ~view:"v1" ~sample:5 ~total:5 ~check:(fun idx ->
              idx <> 2)
        in
        Alcotest.(check (pair int int)) "result" (5, 1) (checked, divergences);
        Alcotest.(check int)
          "checked counter" 5
          (counter_value
             ~labels:[ ("view", "v1") ]
             "minview_lineage_audit_checked_total");
        Alcotest.(check int)
          "divergence counter" 1
          (counter_value
             ~labels:[ ("view", "v1") ]
             "minview_lineage_audit_divergences_total"));
    test "a maintained warehouse self-audits clean" (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        let rng = Workload.Prng.create 3 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:60);
        (match Warehouse.self_audit wh ~sample:8 with
        | [ (name, checked, divergences) ] ->
          Alcotest.(check string) "view" "monthly_revenue" name;
          Alcotest.(check bool) "something checked" true (checked > 0);
          Alcotest.(check int) "no divergence" 0 divergences
        | l -> Alcotest.fail (Printf.sprintf "got %d audits" (List.length l)));
        Alcotest.(check (list (pair string bool)))
          "sampled audit passes"
          [ ("monthly_revenue", true) ]
          (Warehouse.audit ~sample:8 wh
             ~reference:(Warehouse.believed_source wh)));
    test "views without retained detail fall back to the full comparison"
      (fun () ->
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view ~strategy:Warehouse.Replicate wh
          Workload.Retail.monthly_revenue;
        Alcotest.(check (list (pair string bool)))
          "replica audits through reference"
          [ ("monthly_revenue", true) ]
          (Warehouse.audit ~sample:4 wh
             ~reference:(Warehouse.believed_source wh));
        Alcotest.(check int)
          "no self-audit entry" 0
          (List.length (Warehouse.self_audit wh ~sample:4)));
  ]

(* --- savings attribution -------------------------------------------------- *)

let attribution_tests =
  [
    test "the waterfall telescopes exactly on the paper's example" (fun () ->
        let db = paper_example_db () in
        let d = Mindetail.Derive.derive db Workload.Retail.product_sales in
        let attrs = Attribution.measure db d in
        Alcotest.(check int) "one entry per view table" 3 (List.length attrs);
        List.iter
          (fun (a : Attribution.t) ->
            let b = Attribution.bytes a in
            Alcotest.(check int)
              (a.Attribution.table ^ " telescopes")
              b.Attribution.raw_bytes
              (b.Attribution.local_selection + b.Attribution.local_projection
              + b.Attribution.join_reduction + b.Attribution.compression
              + b.Attribution.elimination + b.Attribution.stored_bytes);
            if not a.Attribution.retained then
              Alcotest.(check int)
                (a.Attribution.table ^ " omitted stores nothing")
                0 b.Attribution.stored_bytes)
          attrs;
        let sale =
          List.find
            (fun (a : Attribution.t) ->
              String.equal a.Attribution.table "sale")
            attrs
        in
        (* 7 sales fold into 4 distinct (timeid, productid) groups — price
           is absorbed into a SUM by Algorithm 3.1, so it does not split
           the groups *)
        Alcotest.(check int) "7 raw sales" 7 sale.Attribution.raw_rows;
        Alcotest.(check int) "7 survive the joins" 7
          sale.Attribution.rows_after_join;
        Alcotest.(check int) "4 resident groups" 4
          sale.Attribution.resident_rows;
        Alcotest.(check (float 1e-9))
          "fold factor" (7. /. 4.)
          (Attribution.fold_factor sale);
        let time =
          List.find
            (fun (a : Attribution.t) ->
              String.equal a.Attribution.table "time")
            attrs
        in
        Alcotest.(check int)
          "the 1996 row falls to local selection" 3
          time.Attribution.rows_after_local);
    test "attribution reconciles with the live gauges after ingestion"
      (fun () ->
        Metrics.reset ();
        Lineage.clear ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        let rng = Workload.Prng.create 17 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:80);
        let recs = Warehouse.reconcile_attribution wh in
        Alcotest.(check bool) "has auxviews" true (recs <> []);
        List.iter
          (fun (r : Warehouse.reconciliation) ->
            Alcotest.(check bool)
              (r.Warehouse.rec_aux ^ " reconciles within one row")
              true r.Warehouse.consistent;
            Alcotest.(check int)
              (r.Warehouse.rec_aux ^ " resident matches exactly")
              r.Warehouse.gauge_resident r.Warehouse.measured_resident;
            Alcotest.(check int)
              (r.Warehouse.rec_aux ^ " detail matches exactly")
              r.Warehouse.gauge_detail r.Warehouse.measured_detail)
          recs);
    test "rendering carries the technique columns and the row flow" (fun () ->
        let db = paper_example_db () in
        let d = Mindetail.Derive.derive db Workload.Retail.product_sales in
        let attrs = Attribution.measure db d in
        let table = Attribution.render ~view:"product_sales" attrs in
        List.iter
          (fun needle ->
            Alcotest.(check bool) (needle ^ " present") true
              (contains table needle))
          [ "local sel"; "dup comp"; "eliminated"; "TOTAL"; "row flow:" ];
        let js = Attribution.to_json ~view:"product_sales" (List.hd attrs) in
        Alcotest.(check bool) "json has bytes" true (contains js "\"bytes\""));
  ]

(* --- satellite: jsonl sink rotation --------------------------------------- *)

let rotation_tests =
  [
    test "the sink rotates at the byte cap and keeps N files" (fun () ->
        let path = tmp "tele_rotate.jsonl" in
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          [ path; path ^ ".1"; path ^ ".2"; path ^ ".3" ];
        let s = Jsonl_sink.open_ ~max_bytes:100 ~keep:3 path in
        let line = Printf.sprintf "{\"n\":%d,\"pad\":\"0123456789012345\"}" in
        for n = 1 to 20 do
          Jsonl_sink.write_line s (line n)
        done;
        Jsonl_sink.close s;
        Alcotest.(check bool) "live file" true (Sys.file_exists path);
        Alcotest.(check bool) "first rotation" true
          (Sys.file_exists (path ^ ".1"));
        Alcotest.(check bool) "second rotation" true
          (Sys.file_exists (path ^ ".2"));
        Alcotest.(check bool) "keep=3 bounds the set" false
          (Sys.file_exists (path ^ ".3"));
        (* newest data stays in the live file *)
        let ic = open_in path in
        let last = ref "" in
        (try
           while true do
             last := input_line ic
           done
         with End_of_file -> ());
        close_in ic;
        Alcotest.(check string) "newest line last" (line 20) !last);
    test "a zero cap disables rotation" (fun () ->
        let path = tmp "tele_norotate.jsonl" in
        List.iter
          (fun p -> if Sys.file_exists p then Sys.remove p)
          [ path; path ^ ".1" ];
        let s = Jsonl_sink.open_ ~max_bytes:0 ~keep:3 path in
        for n = 1 to 200 do
          Jsonl_sink.write_line s (Printf.sprintf "{\"n\":%d}" n)
        done;
        Jsonl_sink.close s;
        Alcotest.(check bool) "no rotation" false
          (Sys.file_exists (path ^ ".1")));
  ]

(* --- satellite: histogram percentiles ------------------------------------- *)

let hist_snapshot name =
  List.find_map
    (fun s ->
      match s.Metrics.s_value with
      | Metrics.Histogram_v h when String.equal s.Metrics.s_name name -> Some h
      | _ -> None)
    (Metrics.snapshot ())

let percentile_tests =
  [
    test "percentiles interpolate inside the log-scale buckets" (fun () ->
        Metrics.reset ();
        let h = Histogram.make ~lo:1. ~factor:2. ~buckets:4 "lin_test_pct" in
        for _ = 1 to 50 do
          Histogram.observe h 1.0
        done;
        for _ = 1 to 50 do
          Histogram.observe h 4.0
        done;
        let snap = Option.get (hist_snapshot "lin_test_pct") in
        Alcotest.(check (float 1e-9))
          "p50 sits at the low edge" 1.0
          (Metrics.percentile snap 0.50);
        Alcotest.(check (float 1e-9))
          "p95 interpolates (2,4]" 3.8
          (Metrics.percentile snap 0.95);
        Alcotest.(check (float 1e-9))
          "p99 interpolates (2,4]" 3.96
          (Metrics.percentile snap 0.99);
        Alcotest.(check (float 1e-9))
          "p100 is the bucket top" 4.0
          (Metrics.percentile snap 1.0);
        Alcotest.(check bool)
          "empty histogram has no percentile" true
          (Float.is_nan
             (Metrics.percentile
                (Option.get (hist_snapshot "lin_test_pct"))
                Float.nan)));
    test "the exports carry the percentile estimates" (fun () ->
        Metrics.reset ();
        let h = Histogram.make "lin_test_export" in
        Histogram.observe h 0.5;
        Alcotest.(check bool) "json dump" true
          (contains (Telemetry.dump_json ()) "\"p50\":");
        let prom = Telemetry.to_prometheus () in
        Alcotest.(check bool) "prometheus p50 family" true
          (contains prom "lin_test_export_p50");
        Alcotest.(check bool) "prometheus p99 family" true
          (contains prom "lin_test_export_p99"));
  ]

let () =
  Alcotest.run "lineage"
    [
      ("records", record_tests); ("drift-audit", audit_tests);
      ("attribution", attribution_tests); ("sink-rotation", rotation_tests);
      ("percentiles", percentile_tests);
    ]
