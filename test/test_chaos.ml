(* The chaos harness: a randomized crash-point x corruption-kind x seed
   sweep over the self-healing storage stack. Every iteration crashes a
   batched ingestion run at an armed fault point, optionally damages the
   state directory the way real hardware would (torn tail, snapshot rot,
   mid-WAL bit flip), recovers — through [Warehouse.repair] when recovery
   refuses — resumes the stream, and cross-checks the result against a
   serial no-fault oracle (from-scratch view evaluation over the evolved
   source) plus lineage-file/WAL-sequence agreement.

   Plus directed tests for the supervision machinery (worker failure ->
   rollback -> serial degradation -> re-promotion), wedged-worker pools,
   the transient-fault retry policy, group-commit exposure bounds, the
   dead-letter cap, and a TELEMETRY=off regression sweep. *)

open Helpers
module Faults = Maintenance.Faults
module Shard = Maintenance.Shard

let test case fn = Alcotest.test_case case `Quick fn

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* state directories now contain generations/ — clean recursively, so a
   previous run's archived segments cannot leak into this one *)
let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir name =
  let dir = tmp name in
  if Sys.file_exists dir then rm_rf dir;
  dir

let tiny =
  {
    Workload.Retail.days = 6;
    stores = 2;
    products = 10;
    sold_per_store_day = 3;
    tx_per_product = 2;
    brands = 3;
    seed = 29;
  }

let all_views =
  [ Workload.Retail.product_sales; Workload.Retail.monthly_revenue;
    Workload.Retail.sales_by_time ]

let build () =
  let db = Workload.Retail.load tiny in
  let wh = Warehouse.create db in
  Warehouse.add_view wh Workload.Retail.product_sales;
  Warehouse.add_view ~strategy:Warehouse.Psj wh Workload.Retail.monthly_revenue;
  Warehouse.add_view ~strategy:Warehouse.Replicate wh
    Workload.Retail.sales_by_time;
  (db, wh)

let check_views ?(what = "") wh db =
  List.iter
    (fun v ->
      Alcotest.check relation (v.View.name ^ what) (Algebra.Eval.eval db v)
        (snd (Warehouse.query wh v.View.name)))
    all_views

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let flip_byte path offset =
  let s = Bytes.of_string (read_file path) in
  Bytes.set s offset (Char.chr (Char.code (Bytes.get s offset) lxor 0x55));
  write_file path (Bytes.to_string s)

let append_garbage path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  output_string oc "torn frame that never finished hitting the disk";
  close_out oc

(* highest committed transaction recorded in the lineage sink; every
   committed batch leaves one line keyed by its WAL sequence number *)
let max_lineage_txn dir =
  let path = Filename.concat dir "lineage.jsonl" in
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let best = ref 0 in
    (try
       while true do
         match Scanf.sscanf_opt (input_line ic) "{\"txn\":%d" Fun.id with
         | Some n -> if n > !best then best := n
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    !best
  end

(* --- the chaos property -------------------------------------------------- *)

(* What the iteration does to the state directory after the crash, before
   recovery — the damage a real deployment could find on disk. *)
type corruption = Clean | Torn_tail | Flip_snapshot | Flip_wal

let corruption_label = function
  | Clean -> "clean"
  | Torn_tail -> "torn-tail"
  | Flip_snapshot -> "flip-snapshot"
  | Flip_wal -> "flip-wal"

let wal_header_len = String.length "minview-wal/1\n"

let has_generation_snapshot dir =
  let gdir = Filename.concat dir "generations" in
  match Sys.readdir gdir with
  | entries ->
    Array.exists (fun f -> String.starts_with ~prefix:"snapshot-" f) entries
  | exception Sys_error _ -> false

(* Apply [kind] if its precondition holds (e.g. a snapshot flip without an
   older generation to fall back to would be unrecoverable by design);
   returns the corruption actually inflicted. *)
let corrupt dir kind =
  let wal = Filename.concat dir "wal.bin" in
  let snap = Filename.concat dir "snapshot.bin" in
  match kind with
  | Clean -> Clean
  | Torn_tail ->
    if Sys.file_exists wal then begin
      append_garbage wal;
      Torn_tail
    end
    else Clean
  | Flip_snapshot ->
    if Sys.file_exists snap && has_generation_snapshot dir then begin
      let len = String.length (read_file snap) in
      flip_byte snap (len - 1);
      Flip_snapshot
    end
    else Clean
  | Flip_wal ->
    let len = if Sys.file_exists wal then String.length (read_file wal) else 0 in
    if len > wal_header_len + 8 then begin
      flip_byte wal (wal_header_len + ((len - wal_header_len) / 2));
      Flip_wal
    end
    else Clean

(* Recovery under damage: [recover] either succeeds directly (clean state,
   auto-salvaged torn tail, generation-chain fallback) or refuses with
   [Corrupt_state] when damage may hide committed batches — then [repair]
   must quarantine the damage and a second [recover] must succeed. *)
let robust_recover dir =
  match Warehouse.recover ~dir with
  | wh -> wh
  | exception Warehouse.Error { kind = Warehouse.Corrupt_state; _ } ->
    let r = Warehouse.repair ~dir in
    Alcotest.(check bool) "repair leaves a recoverable directory" true
      r.Warehouse.repair_recoverable;
    Alcotest.(check bool) "repair quarantined something" true
      (r.Warehouse.repair_actions <> []);
    Warehouse.recover ~dir

let total_batches = 8

(* One chaos iteration. [done_before_crash] counts the ingest calls that
   returned: those batches are acknowledged-committed, and only a mid-WAL
   bit flip (damage [repair] explicitly accepts losing data to) may lose
   them. *)
let chaos_iteration point kind seed =
  let ctx =
    Printf.sprintf " [%s/%s/seed %d]" (Faults.to_string point)
      (corruption_label kind) seed
  in
  let db, wh = build () in
  let dir =
    fresh_dir
      (Printf.sprintf "wh_chaos_%s_%s_%d" (Faults.to_string point)
         (corruption_label kind) seed)
  in
  Warehouse.attach ~checkpoint_every:3 ~keep_generations:2 wh ~dir;
  let rng = Workload.Prng.create seed in
  (* generated up front: the stream evolves db to its final state, which is
     the serial no-fault oracle the recovered warehouse must reach *)
  let batches =
    List.init total_batches (fun _ -> Workload.Delta_gen.stream rng db ~n:10)
  in
  let skip =
    match point with
    | Faults.Mid_checkpoint | Faults.Before_wal_truncate
    | Faults.After_truncate_rename | Faults.After_checkpoint_rename ->
      1 (* let attach's initial checkpoint through; die on the first
           automatic one (after the third batch) *)
    | Faults.After_wal_append | Faults.Mid_engine_apply
    | Faults.Mid_group_commit | Faults.Wal_fsync ->
      2 (* die on the third batch's append/commit *)
    | Faults.In_shard_worker -> 0
  in
  Faults.arm ~skip point;
  let done_before_crash = ref 0 in
  let crashed = ref false in
  (try
     List.iter
       (fun b ->
         Warehouse.ingest wh b;
         incr done_before_crash)
       batches
   with Faults.Crash _ -> crashed := true);
  Faults.disarm ();
  Alcotest.(check bool) ("the armed fault fired" ^ ctx) true !crashed;
  Warehouse.close wh;
  let inflicted = corrupt dir kind in
  let wh' = robust_recover dir in
  let already = Warehouse.ingested_batches wh' in
  Alcotest.(check bool)
    ("recovery never invents batches" ^ ctx)
    true
    (already <= total_batches);
  (* the loss invariant: every acknowledged batch survives any crash and any
     damage except a mid-stream WAL flip, where repair explicitly accepts
     losing the records behind the flipped byte (still only a suffix: frames
     cannot resync past damage, so the survivors are a prefix) *)
  (match inflicted with
  | Clean | Torn_tail | Flip_snapshot ->
    Alcotest.(check bool)
      ("no committed batch lost" ^ ctx)
      true
      (already >= !done_before_crash)
  | Flip_wal -> ());
  (* resume the stream where the recovered warehouse says it stands; the
     result must be indistinguishable from a run that never crashed *)
  List.iteri
    (fun idx batch -> if idx >= already then Warehouse.ingest wh' batch)
    batches;
  Alcotest.(check int)
    ("resume reaches the full stream" ^ ctx)
    total_batches
    (Warehouse.ingested_batches wh');
  check_views ~what:ctx wh' db;
  (* lineage / WAL-sequence agreement: the newest lineage record carries the
     final WAL sequence number *)
  Alcotest.(check int)
    ("lineage agrees with the WAL sequence" ^ ctx)
    total_batches (max_lineage_txn dir);
  Warehouse.close wh';
  rm_rf dir

let chaos_seeds = [ 101; 102; 103; 104; 105; 106; 107 ]

let chaos_tests =
  (* In_shard_worker never fires on this serial matrix; its recoverable-mode
     coverage is the supervision suite below *)
  let points =
    List.filter (fun p -> p <> Faults.In_shard_worker) Faults.all
  in
  let kinds = [ Clean; Torn_tail; Flip_snapshot; Flip_wal ] in
  (* 8 points x 4 corruption kinds x 7 seeds = 224 iterations *)
  List.concat_map
    (fun point ->
      List.map
        (fun kind ->
          test
            (Printf.sprintf "crash at %s + %s damage (7 seeds)"
               (Faults.to_string point) (corruption_label kind))
            (fun () -> List.iter (chaos_iteration point kind) chaos_seeds))
        kinds)
    points

(* --- supervised parallel apply ------------------------------------------- *)

(* A batch of distinct-priced sale inserts: enough compacted root operations
   to fan out once MINVIEW_PAR_THRESHOLD is lowered, and valid against the
   tiny retail schema (timeid/productid/storeid all in range). *)
let sale_batch k =
  List.init 8 (fun j ->
      Delta.insert "sale"
        (row
           [ i (3_000_000 + (k * 100) + j); i ((j mod tiny.Workload.Retail.days) + 1);
             i ((j mod tiny.Workload.Retail.products) + 1);
             i ((j mod tiny.Workload.Retail.stores) + 1); i (j + 1) ]))

let with_par_threshold n f =
  Unix.putenv "MINVIEW_PAR_THRESHOLD" (string_of_int n);
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MINVIEW_PAR_THRESHOLD" "")
    f

let mode : Warehouse.apply_mode Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Warehouse.Serial -> Format.pp_print_string ppf "serial"
      | Warehouse.Parallel -> Format.pp_print_string ppf "parallel"
      | Warehouse.Degraded { remaining; next_backoff } ->
        Format.fprintf ppf "degraded(%d,%d)" remaining next_backoff)
    ( = )

let supervision_tests =
  [
    test "worker failure: rollback, degrade to serial, re-promote" (fun () ->
        with_par_threshold 1 @@ fun () ->
        let _db, wh = build () in
        Warehouse.set_parallel wh
          (Some (Shard.supervised ~domains:2 ~deadline:10.));
        Alcotest.check mode "starts parallel" Warehouse.Parallel
          (Warehouse.apply_mode wh);
        (* the injected worker failure is recoverable: the batch must still
           commit (serially) and the warehouse must degrade *)
        Faults.arm ~mode:Faults.Fail Faults.In_shard_worker;
        Warehouse.ingest wh (sale_batch 0);
        Faults.disarm ();
        Alcotest.check mode "degraded after the failure"
          (Warehouse.Degraded { remaining = 3; next_backoff = 8 })
          (Warehouse.apply_mode wh);
        check_views wh (Warehouse.believed_source wh);
        (* three clean serial batches walk the degradation clock down *)
        Warehouse.ingest wh (sale_batch 1);
        Warehouse.ingest wh (sale_batch 2);
        Alcotest.check mode "still degraded"
          (Warehouse.Degraded { remaining = 1; next_backoff = 8 })
          (Warehouse.apply_mode wh);
        Warehouse.ingest wh (sale_batch 3);
        Alcotest.check mode "re-promoted to parallel" Warehouse.Parallel
          (Warehouse.apply_mode wh);
        (* and the parallel path really is taken again, correctly *)
        Warehouse.ingest wh (sale_batch 4);
        check_views wh (Warehouse.believed_source wh));
    test "repeated failures double the degradation period" (fun () ->
        with_par_threshold 1 @@ fun () ->
        let _db, wh = build () in
        Warehouse.set_parallel wh
          (Some (Shard.supervised ~domains:2 ~deadline:10.));
        Faults.arm ~mode:Faults.Fail Faults.In_shard_worker;
        Warehouse.ingest wh (sale_batch 0);
        Faults.disarm ();
        for k = 1 to 3 do
          Warehouse.ingest wh (sale_batch k)
        done;
        (* promoted; fail again immediately: backoff doubles *)
        Faults.arm ~mode:Faults.Fail Faults.In_shard_worker;
        Warehouse.ingest wh (sale_batch 4);
        Faults.disarm ();
        Alcotest.check mode "second degradation runs twice as long"
          (Warehouse.Degraded { remaining = 7; next_backoff = 16 })
          (Warehouse.apply_mode wh);
        check_views wh (Warehouse.believed_source wh));
    test "set_parallel resets the supervision slate" (fun () ->
        with_par_threshold 1 @@ fun () ->
        let _db, wh = build () in
        Warehouse.set_parallel wh
          (Some (Shard.supervised ~domains:2 ~deadline:10.));
        Faults.arm ~mode:Faults.Fail Faults.In_shard_worker;
        Warehouse.ingest wh (sale_batch 0);
        Faults.disarm ();
        Warehouse.set_parallel wh (Some (Shard.create ~domains:2));
        Alcotest.check mode "fresh pool starts parallel" Warehouse.Parallel
          (Warehouse.apply_mode wh);
        Warehouse.set_parallel wh None;
        Alcotest.check mode "no pool is serial" Warehouse.Serial
          (Warehouse.apply_mode wh));
    test "a wedge aborts the batch, rebuilds engines, keeps ingesting"
      (fun () ->
        with_par_threshold 1 @@ fun () ->
        let _db, wh = build () in
        Warehouse.set_parallel wh
          (Some (Shard.supervised ~domains:2 ~deadline:0.05));
        (* the stall outlives the deadline only on the spawned worker
           domain: the caller sees Wedged while the stray domain is still
           inside the batch, so nothing the batch touched may be reused —
           the batch must abort and the engines must be rebuilt, never
           rolled back or serially re-applied in place *)
        Faults.arm ~mode:(Faults.Stall 0.3) Faults.In_shard_worker;
        let r = Warehouse.ingest_report wh (sale_batch 0) in
        Faults.disarm ();
        Alcotest.(check int) "the wedged batch aborts" 0 r.Warehouse.applied;
        Alcotest.(check bool) "the batch is quarantined as a wedge" true
          (List.exists
             (fun rj -> contains rj.Delta.detail "wedged")
             r.Warehouse.rejected);
        Alcotest.check mode "degraded after the wedge"
          (Warehouse.Degraded { remaining = 4; next_backoff = 8 })
          (Warehouse.apply_mode wh);
        (* the rebuilt engines carry exactly the committed state — checked
           while the stray domain may still be scribbling on the abandoned
           ones *)
        check_views wh (Warehouse.believed_source wh);
        (* ingestion continues serially and re-promotes after the backoff *)
        for k = 1 to 4 do
          Warehouse.ingest wh (sale_batch k)
        done;
        Alcotest.check mode "re-promoted after the backoff" Warehouse.Parallel
          (Warehouse.apply_mode wh);
        Warehouse.ingest wh (sale_batch 5);
        check_views wh (Warehouse.believed_source wh));
    test "a wedged worker raises Wedged and the pool respawns" (fun () ->
        let pool = Shard.supervised ~domains:2 ~deadline:0.05 in
        (match
           Shard.run pool ~workers:2 (fun w ->
               if w > 0 then Unix.sleepf 0.4)
         with
        | () -> Alcotest.fail "expected Wedged"
        | exception Shard.Wedged { worker; waited } ->
          Alcotest.(check int) "the spawned worker wedged" 1 worker;
          Alcotest.(check bool) "waited at least the deadline" true
            (waited >= 0.05));
        (* the poisoned pool replaces its workers on the next run *)
        let hits = Atomic.make 0 in
        Shard.run pool ~workers:2 (fun _ -> Atomic.incr hits);
        Alcotest.(check int) "respawned pool runs both workers" 2
          (Atomic.get hits));
  ]

(* --- transient-fault retry ----------------------------------------------- *)

let retry_tests =
  [
    test "a transient fsync failure is retried and absorbed" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_retry_dir" in
        Warehouse.attach wh ~dir;
        Warehouse.set_retry wh
          { Warehouse.attempts = 3; base_delay = 0.; max_delay = 0. };
        let rng = Workload.Prng.create 3 in
        let batch = Workload.Delta_gen.stream rng db ~n:20 in
        Faults.arm ~mode:Faults.Fail Faults.Wal_fsync;
        Warehouse.ingest wh batch;
        Faults.disarm ();
        Warehouse.close wh;
        (* the retried barrier really made the batch durable *)
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "batch survived the flaky fsync" 1
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh';
        rm_rf dir);
    test "retry exhaustion surfaces as Io_error" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_retry_exhausted_dir" in
        Warehouse.attach wh ~dir;
        Warehouse.set_retry wh
          { Warehouse.attempts = 0; base_delay = 0.; max_delay = 0. };
        let rng = Workload.Prng.create 4 in
        Faults.arm ~mode:Faults.Fail Faults.Wal_fsync;
        (match Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10) with
        | () -> Alcotest.fail "expected Io_error"
        | exception Warehouse.Error { kind = Warehouse.Io_error; detail } ->
          Alcotest.(check bool) "mentions the fault" true
            (contains detail "wal-commit"));
        Faults.disarm ();
        Warehouse.close wh;
        rm_rf dir);
    test "retry exhaustion rolls the validator back; ingestion continues"
      (fun () ->
        let _db, wh = build () in
        let dir = fresh_dir "wh_retry_resume_dir" in
        Warehouse.attach wh ~dir;
        Warehouse.set_retry wh
          { Warehouse.attempts = 0; base_delay = 0.; max_delay = 0. };
        Faults.arm ~mode:Faults.Fail Faults.Wal_fsync;
        (match Warehouse.ingest wh (sale_batch 0) with
        | () -> Alcotest.fail "expected Io_error"
        | exception Warehouse.Error { kind = Warehouse.Io_error; _ } -> ());
        Faults.disarm ();
        (* the validator transaction was rolled back: the next ingest must
           work instead of raising Invalid_argument, and the shadow must
           not contain the failed batch *)
        Warehouse.ingest wh (sale_batch 1);
        check_views wh (Warehouse.believed_source wh);
        (* the failed batch consumed its sequence number under an abort
           marker, so recovery cannot resurrect it either *)
        Warehouse.close wh;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "aborted + committed batches" 2
          (Warehouse.ingested_batches wh');
        check_views wh' (Warehouse.believed_source wh');
        Warehouse.close wh';
        rm_rf dir);
    test "set_retry rejects negative policies" (fun () ->
        let _db, wh = build () in
        match
          Warehouse.set_retry wh
            { Warehouse.attempts = -1; base_delay = 0.; max_delay = 0. }
        with
        | exception Warehouse.Error { kind = Warehouse.Invalid_request; _ } ->
          ()
        | () -> Alcotest.fail "expected Invalid_request");
    test "group commit honours the in-flight budget" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_inflight_dir" in
        Warehouse.attach wh ~dir;
        let rng = Workload.Prng.create 8 in
        let batches =
          List.init 5 (fun _ -> Workload.Delta_gen.stream rng db ~n:12)
        in
        let reports = Warehouse.ingest_all ~in_flight:2 wh batches in
        Alcotest.(check (list int))
          "sequence numbers" [ 1; 2; 3; 4; 5 ]
          (List.map (fun r -> r.Warehouse.batch) reports);
        Warehouse.close wh;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "all batches durable" 5
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh';
        rm_rf dir);
    test "a zero in-flight budget is refused" (fun () ->
        let _db, wh = build () in
        match Warehouse.ingest_all ~in_flight:0 wh [] with
        | exception Warehouse.Error { kind = Warehouse.Invalid_request; _ } ->
          ()
        | _ -> Alcotest.fail "expected Invalid_request");
    test "the dead-letter cap drops the oldest rejections" (fun () ->
        let _db, wh = build () in
        Warehouse.set_dead_letter_cap wh (Some 2);
        (* three rejections: saleids duplicating existing rows would vary by
           seed, so use unknown foreign keys — deterministic rejects *)
        let bad j =
          Delta.insert "sale" (row [ i (4_000_000 + j); i 999; i 1; i 1; i 5 ])
        in
        Warehouse.ingest wh [ bad 0 ];
        Warehouse.ingest wh [ bad 1 ];
        Warehouse.ingest wh [ bad 2 ];
        let letters = Warehouse.dead_letters wh in
        Alcotest.(check int) "capped at two letters" 2 (List.length letters);
        (* oldest-first queue: the first rejection was dropped *)
        let ids =
          List.map
            (fun r ->
              match r.Delta.delta.Delta.change with
              | Delta.Insert t -> t.(0)
              | _ -> Value.Null)
            letters
        in
        Alcotest.(check (list value))
          "newest two survive"
          [ i 4_000_001; i 4_000_002 ]
          ids;
        (match Warehouse.set_dead_letter_cap wh (Some 0) with
        | exception Warehouse.Error { kind = Warehouse.Invalid_request; _ } ->
          ()
        | () -> Alcotest.fail "expected Invalid_request"));
  ]

(* --- fsck / repair ------------------------------------------------------- *)

let fsck_tests =
  [
    test "a healthy directory is clean and recoverable" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_fsck_clean_dir" in
        Warehouse.attach ~checkpoint_every:2 wh ~dir;
        let rng = Workload.Prng.create 12 in
        for _ = 1 to 5 do
          Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10)
        done;
        Warehouse.close wh;
        let r = Warehouse.fsck ~dir in
        Alcotest.(check bool) "clean" true r.Warehouse.fsck_clean;
        Alcotest.(check bool) "recoverable" true r.Warehouse.fsck_recoverable;
        Alcotest.(check bool) "every entry verifies" true
          (List.for_all (fun e -> e.Warehouse.f_ok) r.Warehouse.fsck_entries);
        (* repair on a clean directory is a no-op *)
        let rep = Warehouse.repair ~dir in
        Alcotest.(check int) "nothing to repair" 0
          (List.length rep.Warehouse.repair_actions);
        rm_rf dir);
    test "snapshot rot is flagged, repaired and survived via the chain"
      (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_fsck_rot_dir" in
        Warehouse.attach ~keep_generations:2 wh ~dir;
        let rng = Workload.Prng.create 13 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.checkpoint wh;
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.close wh;
        let snap = Filename.concat dir "snapshot.bin" in
        flip_byte snap (String.length (read_file snap) - 1);
        let r = Warehouse.fsck ~dir in
        Alcotest.(check bool) "not clean" false r.Warehouse.fsck_clean;
        Alcotest.(check bool) "still recoverable (the chain holds)" true
          r.Warehouse.fsck_recoverable;
        let rep = Warehouse.repair ~dir in
        Alcotest.(check bool) "repair quarantined the snapshot" true
          (List.exists
             (fun (f, _) -> f = "snapshot.bin")
             rep.Warehouse.repair_actions);
        Alcotest.(check bool) "recoverable after repair" true
          rep.Warehouse.repair_recoverable;
        let wh' = Warehouse.recover ~dir in
        Alcotest.(check int) "both batches recovered from gen K-1" 2
          (Warehouse.ingested_batches wh');
        check_views wh' db;
        Warehouse.close wh';
        rm_rf dir);
    test "an unrecoverable directory is reported as such" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_fsck_dead_dir" in
        Warehouse.attach ~keep_generations:0 wh ~dir;
        let rng = Workload.Prng.create 14 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.close wh;
        let snap = Filename.concat dir "snapshot.bin" in
        flip_byte snap (String.length (read_file snap) - 1);
        let r = Warehouse.fsck ~dir in
        Alcotest.(check bool) "not recoverable" false
          r.Warehouse.fsck_recoverable;
        let rep = Warehouse.repair ~dir in
        Alcotest.(check bool) "repair cannot save it" false
          rep.Warehouse.repair_recoverable;
        rm_rf dir);
    test "fsck refuses a non-directory" (fun () ->
        match Warehouse.fsck ~dir:(tmp "wh_fsck_missing_dir") with
        | exception Warehouse.Error { kind = Warehouse.Io_error; _ } -> ()
        | _ -> Alcotest.fail "expected Io_error");
    test "an operational load failure never demotes the snapshot" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_io_error_dir" in
        Warehouse.attach ~keep_generations:2 wh ~dir;
        let rng = Workload.Prng.create 15 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.checkpoint wh;
        Warehouse.close wh;
        (* make opening the live snapshot fail operationally (EISDIR) — an
           OS-level failure, not failed verification *)
        let snap = Filename.concat dir "snapshot.bin" in
        Sys.remove snap;
        Sys.mkdir snap 0o755;
        (match Warehouse.recover ~dir with
        | _ -> Alcotest.fail "expected Io_error"
        | exception Warehouse.Error { kind = Warehouse.Io_error; _ } -> ());
        (* the transient failure must not quarantine the live snapshot or
           fall back to the older generation *)
        Alcotest.(check bool) "nothing was quarantined" false
          (Sys.file_exists (snap ^ ".quarantine"));
        rm_rf dir);
    test "repeated quarantines never clobber earlier evidence" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_quarantine_unique_dir" in
        Warehouse.attach ~keep_generations:4 wh ~dir;
        let rng = Workload.Prng.create 16 in
        let snap = Filename.concat dir "snapshot.bin" in
        let corrupt_live () =
          flip_byte snap (String.length (read_file snap) - 1)
        in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.checkpoint wh;
        Warehouse.close wh;
        corrupt_live ();
        let wh' = Warehouse.recover ~dir in
        (* regrow the live snapshot, then rot it again *)
        Warehouse.checkpoint wh';
        Warehouse.close wh';
        corrupt_live ();
        let wh'' = Warehouse.recover ~dir in
        check_views wh'' db;
        Warehouse.close wh'';
        Alcotest.(check bool) "first quarantine preserved" true
          (Sys.file_exists (snap ^ ".quarantine"));
        Alcotest.(check bool) "second quarantine got a fresh name" true
          (Sys.file_exists (snap ^ ".quarantine.1"));
        rm_rf dir);
    test "a quarantined generation index is never reallocated" (fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_gen_index_dir" in
        Warehouse.attach ~keep_generations:4 wh ~dir;
        let rng = Workload.Prng.create 17 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.checkpoint wh;
        (* archives generation 1 *)
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.checkpoint wh;
        (* archives generation 2 *)
        let gdir = Filename.concat dir "generations" in
        let gfile name = Filename.concat gdir name in
        (* simulate a past fallback: generation 2's snapshot was quarantined
           and its WAL segment never reached the disk (crash between the
           snapshot rename and the rotation) *)
        Sys.rename
          (gfile "snapshot-00000002.bin")
          (gfile "snapshot-00000002.bin.quarantine");
        Sys.remove (gfile "wal-00000002.bin");
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:10);
        Warehouse.checkpoint wh;
        (* the quarantined index 2 must not be reallocated: a re-used index
           would pair the new snapshot with the old wal-2 segment and the
           rotation would clobber it *)
        Alcotest.(check bool) "index 3 allocated" true
          (Sys.file_exists (gfile "snapshot-00000003.bin"));
        Alcotest.(check bool) "quarantined snapshot untouched" true
          (Sys.file_exists (gfile "snapshot-00000002.bin.quarantine"));
        Warehouse.close wh;
        rm_rf dir);
  ]

(* --- TELEMETRY=off regression -------------------------------------------- *)

let telemetry_off_tests =
  [
    test "crash, fsck, repair and recovery stay green with telemetry off"
      (fun () ->
        Telemetry.set_enabled false;
        Fun.protect ~finally:(fun () -> Telemetry.set_enabled true)
        @@ fun () ->
        let db, wh = build () in
        let dir = fresh_dir "wh_telemetry_off_dir" in
        Warehouse.attach ~checkpoint_every:3 ~keep_generations:2 wh ~dir;
        let rng = Workload.Prng.create 21 in
        let batches =
          List.init 6 (fun _ -> Workload.Delta_gen.stream rng db ~n:10)
        in
        Faults.arm ~skip:1 Faults.After_checkpoint_rename;
        (try List.iter (Warehouse.ingest wh) batches
         with Faults.Crash _ -> ());
        Faults.disarm ();
        Warehouse.close wh;
        append_garbage (Filename.concat dir "wal.bin");
        let r = Warehouse.fsck ~dir in
        Alcotest.(check bool) "recoverable" true r.Warehouse.fsck_recoverable;
        ignore (Warehouse.repair ~dir);
        let wh' = robust_recover dir in
        let already = Warehouse.ingested_batches wh' in
        List.iteri
          (fun idx batch -> if idx >= already then Warehouse.ingest wh' batch)
          batches;
        check_views wh' db;
        Warehouse.close wh';
        rm_rf dir);
  ]

let () =
  Alcotest.run "chaos"
    [
      ("chaos", chaos_tests); ("supervision", supervision_tests);
      ("retry", retry_tests); ("fsck", fsck_tests);
      ("telemetry-off", telemetry_off_tests);
    ]
