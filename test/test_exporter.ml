(* Socket-level tests for the metrics HTTP exporter: /metrics serves
   Prometheus text with the runtime and allocation families, /healthz flips
   to 503 when warehouse health degrades (forced through the chaos
   harness's injected worker failure), /profile dumps GC stats, and the
   router answers 404/405. The exporter runs on its own domain on an
   ephemeral loopback port; the tests speak raw HTTP. *)

open Helpers
module Faults = Maintenance.Faults
module Shard = Maintenance.Shard
module Exporter = Telemetry.Http_exporter

let test case fn = Alcotest.test_case case `Quick fn

let tiny =
  {
    Workload.Retail.days = 6;
    stores = 2;
    products = 10;
    sold_per_store_day = 3;
    tx_per_product = 2;
    brands = 3;
    seed = 31;
  }

let build () =
  let db = Workload.Retail.load tiny in
  let wh = Warehouse.create db in
  Warehouse.add_view wh Workload.Retail.product_sales;
  Warehouse.add_view wh Workload.Retail.sales_by_time;
  (db, wh)

(* Enough compacted root operations to fan out once MINVIEW_PAR_THRESHOLD
   is lowered, valid against the tiny retail schema. *)
let sale_batch k =
  List.init 8 (fun j ->
      Delta.insert "sale"
        (row
           [ i (4_000_000 + (k * 100) + j);
             i ((j mod tiny.Workload.Retail.days) + 1);
             i ((j mod tiny.Workload.Retail.products) + 1);
             i ((j mod tiny.Workload.Retail.stores) + 1); i (j + 1) ]))

let with_par_threshold n f =
  Unix.putenv "MINVIEW_PAR_THRESHOLD" (string_of_int n);
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MINVIEW_PAR_THRESHOLD" "")
    f

let with_exporter ~health f =
  let exp = Exporter.create ~port:0 ~health () in
  let d = Domain.spawn (fun () -> Exporter.run exp) in
  Fun.protect
    ~finally:(fun () ->
      Exporter.request_stop exp;
      Domain.join d)
    (fun () -> f (Exporter.port exp))

(* One raw HTTP exchange: returns (status code, whole response text). *)
let http_request ?(meth = "GET") port path =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (* a wedged exporter must fail the test, not hang it *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      let req =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\nConnection: \
                        close\r\n\r\n"
          meth path
      in
      let b = Bytes.of_string req in
      let rec send off =
        if off < Bytes.length b then
          send (off + Unix.write fd b off (Bytes.length b - off))
      in
      send 0;
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          recv ()
      in
      recv ();
      let response = Buffer.contents buf in
      let code =
        try Scanf.sscanf response "HTTP/1.1 %d" Fun.id with _ -> -1
      in
      (code, response))

let http_get port path = http_request port path

let check_contains what response needle =
  if not (contains response needle) then
    Alcotest.failf "%s: expected %S in the response:\n%s" what needle response

let metrics_tests =
  [
    test "/metrics serves self-describing Prometheus text" (fun () ->
        let db, wh = build () in
        (* a committed batch populates the phase latency + allocation
           histograms *)
        let rng = Workload.Prng.create 7 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:50);
        Warehouse.publish_offheap wh;
        with_exporter ~health:(fun () -> Warehouse.health wh) @@ fun port ->
        let code, resp = http_get port "/metrics" in
        Alcotest.(check int) "status" 200 code;
        check_contains "content type" resp "text/plain; version=0.0.4";
        check_contains "build info" resp "minview_build_info{";
        check_contains "typed families" resp "# TYPE";
        check_contains "help lines" resp "# HELP";
        (* the scrape-time runtime sample (no commit hook armed here) *)
        check_contains "gc gauge" resp "minview_runtime_gc_heap_words ";
        check_contains "offheap gauge" resp "minview_runtime_offheap_bytes ";
        (* per-phase allocation next to latency *)
        check_contains "alloc histogram" resp
          "minview_engine_phase_alloc_bytes_count{phase=\"view-update\"}";
        check_contains "ingest alloc" resp
          "minview_warehouse_ingest_alloc_bytes_count");
    test "/profile dumps GC stats and histograms" (fun () ->
        let _db, wh = build () in
        with_exporter ~health:(fun () -> Warehouse.health wh) @@ fun port ->
        let code, resp = http_get port "/profile" in
        Alcotest.(check int) "status" 200 code;
        check_contains "gc section" resp "\"gc\":{\"minor_words\":";
        check_contains "heap words" resp "\"heap_words\":";
        check_contains "histograms section" resp "\"histograms\":[");
    test "unknown paths 404, non-GET 405" (fun () ->
        let _db, wh = build () in
        with_exporter ~health:(fun () -> Warehouse.health wh) @@ fun port ->
        let code, resp = http_get port "/nope" in
        Alcotest.(check int) "404" 404 code;
        check_contains "hint" resp "/metrics";
        let code, _ = http_request ~meth:"POST" port "/metrics" in
        Alcotest.(check int) "405" 405 code);
  ]

let health_tests =
  [
    test "/healthz answers 200 ok, then 503 under forced degradation"
      (fun () ->
        with_par_threshold 1 @@ fun () ->
        let _db, wh = build () in
        Warehouse.set_parallel wh
          (Some (Shard.supervised ~domains:2 ~deadline:10.));
        with_exporter ~health:(fun () -> Warehouse.health wh) @@ fun port ->
        let code, resp = http_get port "/healthz" in
        Alcotest.(check int) "healthy status" 200 code;
        check_contains "ok body" resp "\"status\":\"ok\"";
        check_contains "apply check" resp "{\"name\":\"apply\",\"ok\":true";
        (* the chaos harness's recoverable worker failure: the batch still
           commits (serially) and the warehouse degrades *)
        Faults.arm ~mode:Faults.Fail Faults.In_shard_worker;
        Warehouse.ingest wh (sale_batch 0);
        Faults.disarm ();
        let code, resp = http_get port "/healthz" in
        Alcotest.(check int) "degraded status" 503 code;
        check_contains "degraded body" resp "\"status\":\"degraded\"";
        check_contains "failing check" resp "{\"name\":\"apply\",\"ok\":false";
        check_contains "detail names the fallback" resp "degraded to serial");
    test "health ~require_wal flags an unattached warehouse" (fun () ->
        let _db, wh = build () in
        Alcotest.(check bool) "default: wal optional" true
          (Exporter.healthy (Warehouse.health wh));
        Alcotest.(check bool) "require_wal: unhealthy" false
          (Exporter.healthy (Warehouse.health ~require_wal:true wh));
        let dir =
          Filename.concat (Filename.get_temp_dir_name ()) "exporter_wal_test"
        in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Warehouse.attach wh ~dir;
        Alcotest.(check bool) "attached: healthy again" true
          (Exporter.healthy (Warehouse.health ~require_wal:true wh));
        Warehouse.close wh);
    test "health thresholds: commit age and epoch lag" (fun () ->
        let _db, wh = build () in
        (* before any commit: age unknown, passes even with a threshold *)
        Alcotest.(check bool) "no commits yet passes" true
          (Exporter.healthy (Warehouse.health ~max_commit_age_s:0.001 wh));
        Warehouse.ingest wh (sale_batch 1);
        Alcotest.(check bool) "fresh commit within a generous limit" true
          (Exporter.healthy (Warehouse.health ~max_commit_age_s:3600. wh));
        Unix.sleepf 0.02;
        Alcotest.(check bool) "stale commit fails a tiny limit" false
          (Exporter.healthy (Warehouse.health ~max_commit_age_s:0.001 wh));
        Alcotest.(check bool) "epoch lag within limit" true
          (Exporter.healthy (Warehouse.health ~max_epoch_lag:0 wh)));
  ]

let () =
  Alcotest.run "exporter"
    [ ("metrics", metrics_tests); ("health", health_tests) ]
