(* Tests for the epoch read path: the torn-read regression (a reader racing
   ingest must never observe a state between two commits, under serial and
   shard-parallel apply), the publication discipline (epochs appear at
   registration and commit only — rollback, rejection and age-out publish
   nothing), pinned-snapshot immutability, and the snapshot/quiesced-query
   equivalence property over random workloads. *)

open Helpers
module Shard = Maintenance.Shard
module Faults = Maintenance.Faults

let test case fn = Alcotest.test_case case `Quick fn

(* --- a dedicated schema where tearing is arithmetically visible ----------

   fact(id PK, k, v) summarized as GROUP BY k. Every batch inserts one row
   for each of [groups_per_batch] brand-new keys, so at every commit point
   the view's group count is a multiple of [groups_per_batch]. A reader
   served anything mid-batch — the old direct path handed out the live
   engine's mutable contents — sees a count that breaks the invariant. *)

let groups_per_batch = 5

let fact_db () =
  let db = Database.create () in
  Database.add_table db
    (Schema.make ~name:"fact" ~key:"id"
       [ { Schema.col_name = "id"; col_type = Datatype.TInt };
         { Schema.col_name = "k"; col_type = Datatype.TInt };
         { Schema.col_name = "v"; col_type = Datatype.TInt } ])
    ~updatable:[ "v" ];
  db

let by_k =
  {
    View.name = "by_k";
    select =
      [ group (a "fact" "k"); sum ~alias:"total" (a "fact" "v");
        count_star ~alias:"cnt" () ];
    tables = [ "fact" ];
    locals = [];
    joins = [];
    having = [];
  }

let fact_batch n =
  List.init groups_per_batch (fun j ->
      let g = (n * groups_per_batch) + j in
      Delta.insert "fact" (row [ i g; i g; i (7 * g) ]))

let with_par_threshold n f =
  Unix.putenv "MINVIEW_PAR_THRESHOLD" (string_of_int n);
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MINVIEW_PAR_THRESHOLD" "")
    f

let torn_read_run ~parallel =
  let wh = Warehouse.create (fact_db ()) in
  Warehouse.add_view wh by_k;
  if parallel then Warehouse.set_parallel wh (Some (Shard.create ~domains:2));
  let batches = 60 in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let reads = ref 0 and bad = ref None in
        while not (Atomic.get stop) do
          let _, rel = Warehouse.query wh "by_k" in
          let n = Relation.cardinality rel in
          if n mod groups_per_batch <> 0 && !bad = None then bad := Some n;
          incr reads
        done;
        (!reads, !bad))
  in
  for n = 0 to batches - 1 do
    Warehouse.ingest wh (fact_batch n)
  done;
  Atomic.set stop true;
  let reads, bad = Domain.join reader in
  if parallel then Warehouse.set_parallel wh None;
  Alcotest.(check bool) "reader observed the run" true (reads > 0);
  (match bad with
  | None -> ()
  | Some n ->
    Alcotest.failf "torn read: %d groups is not a multiple of %d" n
      groups_per_batch);
  let _, final = Warehouse.query wh "by_k" in
  Alcotest.(check int) "all batches landed" (batches * groups_per_batch)
    (Relation.cardinality final)

let torn_read_tests =
  [
    test "reader racing serial ingest never sees a torn state" (fun () ->
        torn_read_run ~parallel:false);
    test "reader racing shard-parallel ingest never sees a torn state"
      (fun () ->
        with_par_threshold 1 @@ fun () -> torn_read_run ~parallel:true);
  ]

(* --- publication discipline ---------------------------------------------- *)

let epoch_of wh = Warehouse.snapshot_epoch (Warehouse.current_snapshot wh)
let seq_of wh = Warehouse.snapshot_seq (Warehouse.current_snapshot wh)

let publication_tests =
  [
    test "epochs publish at registration and commit, tracking the WAL seq"
      (fun () ->
        let wh = Warehouse.create (fact_db ()) in
        Alcotest.(check int) "nothing published yet" 0 (epoch_of wh);
        Alcotest.(check (list string)) "empty epoch" []
          (List.map
             (fun v -> v.View.name)
             (Warehouse.snapshot_views (Warehouse.current_snapshot wh)));
        Warehouse.add_view wh by_k;
        Alcotest.(check int) "registration publishes" 1 (epoch_of wh);
        Alcotest.(check int) "at seq 0" 0 (seq_of wh);
        Warehouse.ingest wh (fact_batch 0);
        Alcotest.(check int) "commit publishes" 2 (epoch_of wh);
        Alcotest.(check int) "epoch seq is the batch seq"
          (Warehouse.ingested_batches wh)
          (seq_of wh));
    test "a fully rejected batch publishes nothing" (fun () ->
        let wh = Warehouse.create (fact_db ()) in
        Warehouse.add_view wh by_k;
        Warehouse.ingest wh (fact_batch 0);
        let epoch = epoch_of wh and seq = seq_of wh in
        (* every delta re-inserts an existing key: validation rejects all *)
        let r = Warehouse.ingest_report wh (fact_batch 0) in
        Alcotest.(check int) "nothing applied" 0 r.Warehouse.applied;
        Alcotest.(check bool) "everything rejected" true
          (List.length r.Warehouse.rejected = groups_per_batch);
        Alcotest.(check int) "epoch unchanged" epoch (epoch_of wh);
        Alcotest.(check int) "seq unchanged" seq (seq_of wh));
    test "an engine failure rolls back without publishing; the next commit \
          publishes once" (fun () ->
        let wh = Warehouse.create (fact_db ()) in
        Warehouse.add_view wh by_k;
        Warehouse.ingest wh (fact_batch 0);
        let epoch = epoch_of wh in
        Faults.arm ~mode:Faults.Fail Faults.Mid_engine_apply;
        let r = Warehouse.ingest_report wh (fact_batch 1) in
        Faults.disarm ();
        Alcotest.(check int) "aborted batch applied nothing" 0
          r.Warehouse.applied;
        Alcotest.(check int) "rollback published nothing" epoch (epoch_of wh);
        let _, rel = Warehouse.query wh "by_k" in
        Alcotest.(check int) "readers still see the pre-batch state"
          groups_per_batch (Relation.cardinality rel);
        Warehouse.ingest wh (fact_batch 2);
        Alcotest.(check int) "the next good batch publishes exactly once"
          (epoch + 1) (epoch_of wh);
        let _, rel = Warehouse.query wh "by_k" in
        Alcotest.(check int) "and its contents skip the aborted batch"
          (2 * groups_per_batch) (Relation.cardinality rel));
  ]

(* --- pinned snapshots ----------------------------------------------------- *)

let render_rows rel =
  String.concat "\n"
    (List.map
       (fun (tup, m) -> Printf.sprintf "%d:%s" m (Tuple.to_string tup))
       (Relation.to_sorted_list rel))

let pinned_tests =
  [
    test "a pinned snapshot is immune to later commits" (fun () ->
        let wh = Warehouse.create (fact_db ()) in
        Warehouse.add_view wh by_k;
        Warehouse.ingest wh (fact_batch 0);
        let pin = Warehouse.current_snapshot wh in
        let read_pinned () =
          render_rows (snd (Warehouse.read_view ~snapshot:pin wh "by_k"))
        in
        let before = read_pinned () in
        for n = 1 to 3 do
          Warehouse.ingest wh (fact_batch n)
        done;
        Alcotest.(check string) "pinned bytes unchanged" before
          (read_pinned ());
        Alcotest.(check bool) "the live epoch moved on" true
          (epoch_of wh > Warehouse.snapshot_epoch pin);
        let _, live = Warehouse.query wh "by_k" in
        Alcotest.(check int) "the live epoch has the new groups"
          (4 * groups_per_batch) (Relation.cardinality live));
  ]

(* --- aged views ------------------------------------------------------------ *)

let aged_tests =
  [
    test "age_out is invisible to readers and publishes no epoch" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let boundary = ref 10 in
        let is_old tup =
          match tup.(1) with Value.Int t -> t <= !boundary | _ -> false
        in
        let wh = Warehouse.create db in
        let view =
          { Workload.Retail.sales_by_time with View.name = "aged_sales" }
        in
        Warehouse.add_view ~strategy:(Warehouse.Aged is_old) wh view;
        let rng = Workload.Prng.create 7 in
        let inserts =
          { Workload.Delta_gen.insert = 1; delete = 0; update = 0 }
        in
        Warehouse.ingest wh
          (Workload.Delta_gen.stream_for ~mix:inserts rng db
             ~tables:[ "sale" ] ~n:150);
        let epoch = epoch_of wh in
        let before = render_rows (snd (Warehouse.query wh "aged_sales")) in
        let aged =
          Database.fold db "sale"
            (fun tup acc ->
              match tup.(1) with
              | Value.Int t when t > 10 && t <= 12 -> tup :: acc
              | _ -> acc)
            []
        in
        Warehouse.age_out wh "aged_sales" aged;
        boundary := 12;
        Alcotest.(check int) "age_out publishes nothing" epoch (epoch_of wh);
        Alcotest.(check string) "merged contents unchanged" before
          (render_rows (snd (Warehouse.query wh "aged_sales")));
        (* the next commit re-captures the view: the old partition's rows
           must still be part of the merged answer *)
        Warehouse.ingest wh
          (Workload.Delta_gen.stream_for ~mix:inserts rng db
             ~tables:[ "sale" ] ~n:50);
        Alcotest.(check int) "the commit published" (epoch + 1) (epoch_of wh);
        Alcotest.check relation "old partition still aggregated in"
          (Algebra.Eval.eval (Warehouse.believed_source wh) view)
          (snd (Warehouse.query wh "aged_sales")));
  ]

(* --- snapshot == quiesced recomputation (property) ------------------------- *)

let prop_params =
  {
    Workload.Retail.days = 8;
    stores = 2;
    products = 10;
    sold_per_store_day = 4;
    tx_per_product = 2;
    brands = 4;
    seed = 23;
  }

let prop_snapshot_quiesced =
  QCheck2.Test.make ~count:8
    ~name:"with_snapshot == quiesced recomputation at the same WAL seq"
    (QCheck2.Gen.int_range 0 10_000)
    (fun seed ->
      let db = Workload.Retail.load prop_params in
      let wh = Warehouse.create db in
      let views =
        [ Workload.Retail.product_sales; Workload.Retail.sales_by_time ]
      in
      List.iter (Warehouse.add_view wh) views;
      let rng = Workload.Prng.create seed in
      for _round = 1 to 4 do
        ignore (Warehouse.ingest_report wh (Workload.Delta_gen.stream rng db ~n:40));
        Warehouse.with_snapshot wh (fun s ->
            if Warehouse.snapshot_seq s <> Warehouse.ingested_batches wh then
              QCheck2.Test.fail_reportf "epoch seq %d != WAL seq %d"
                (Warehouse.snapshot_seq s)
                (Warehouse.ingested_batches wh);
            List.iter
              (fun view ->
                let _, rows =
                  Warehouse.read_view ~snapshot:s wh view.View.name
                in
                let expected =
                  Algebra.Eval.eval (Warehouse.believed_source wh) view
                in
                (* byte-identical in canonical order, not just bag-equal *)
                if render_rows rows <> render_rows expected then
                  QCheck2.Test.fail_reportf "%s: snapshot diverges:\n%s\n!=\n%s"
                    view.View.name (render_rows rows) (render_rows expected))
              views)
      done;
      true)

let () =
  Alcotest.run "epoch"
    [
      ("torn-reads", torn_read_tests);
      ("publication", publication_tests);
      ("pinned", pinned_tests);
      ("aged", aged_tests);
      ("properties", [ QCheck_alcotest.to_alcotest prop_snapshot_quiesced ]);
    ]
