(* The telemetry layer: histogram bucket geometry, registry semantics,
   multi-domain write merging, the serial-vs-parallel logical-counter
   property, the warehouse rollback/recovery/fault counters, and the trace
   ring. *)

open Helpers
module Metrics = Telemetry.Metrics
module Counter = Telemetry.Counter
module Gauge = Telemetry.Gauge
module Histogram = Telemetry.Histogram
module Trace = Telemetry.Trace
module Engine = Maintenance.Engine
module Engines = Maintenance.Engines
module Shard = Maintenance.Shard
module Faults = Maintenance.Faults

let test case fn = Alcotest.test_case case `Quick fn
let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let fresh_dir name =
  let dir = tmp name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

(* fetch-by-make: registration is idempotent, so re-making a metric with the
   same (name, labels) returns the live handle *)
let counter_value ?labels name = Counter.value (Counter.make ?labels name)

(* --- histogram bucket geometry ------------------------------------------ *)

let histogram_tests =
  [
    test "bucket edges are inclusive upper bounds" (fun () ->
        Metrics.reset ();
        let h =
          Histogram.make ~lo:1. ~factor:2. ~buckets:4 "tele_test_edges"
        in
        Alcotest.(check (array (float 1e-9)))
          "bounds" [| 1.; 2.; 4.; infinity |] (Histogram.bucket_bounds h);
        (* bucket 0 holds v <= lo, including everything below *)
        List.iter (Histogram.observe h) [ 0.0; 0.5; 1.0 ];
        (* bucket 1 is (1, 2] — both edges checked *)
        List.iter (Histogram.observe h) [ 1.0000001; 2.0 ];
        (* bucket 2 is (2, 4] *)
        List.iter (Histogram.observe h) [ 2.1; 4.0 ];
        (* the last bucket is the +Inf overflow *)
        List.iter (Histogram.observe h) [ 4.1; 1e12 ];
        Alcotest.(check (array int))
          "per-bucket counts" [| 3; 2; 2; 2 |] (Histogram.bucket_counts h);
        Alcotest.(check int) "count" 9 (Histogram.count h);
        Alcotest.(check (float 1e-9)) "min" 0.0 (Histogram.min_value h);
        Alcotest.(check (float 1e-3)) "max" 1e12 (Histogram.max_value h));
    test "sum and emptiness" (fun () ->
        Metrics.reset ();
        let h = Histogram.make "tele_test_sum" in
        Alcotest.(check int) "empty count" 0 (Histogram.count h);
        Alcotest.(check bool)
          "empty min is nan" true
          (Float.is_nan (Histogram.min_value h));
        Histogram.observe h 0.25;
        Histogram.observe h 0.75;
        Alcotest.(check (float 1e-9)) "sum" 1.0 (Histogram.sum h));
    test "time observes the thunk duration, also on exception" (fun () ->
        Metrics.reset ();
        let h = Histogram.make "tele_test_time" in
        Alcotest.(check int) "result" 7 (Histogram.time h (fun () -> 7));
        (match Histogram.time h (fun () -> failwith "boom") with
        | _ -> Alcotest.fail "exception must propagate"
        | exception Failure _ -> ());
        Alcotest.(check int) "both runs observed" 2 (Histogram.count h));
    test "default layout has 40 buckets from 1 microsecond" (fun () ->
        Metrics.reset ();
        let h = Histogram.make "tele_test_default" in
        let bounds = Histogram.bucket_bounds h in
        Alcotest.(check int) "bucket count" 40 (Array.length bounds);
        Alcotest.(check (float 1e-12)) "first bound" 1e-6 bounds.(0));
  ]

(* --- registry semantics -------------------------------------------------- *)

let registry_tests =
  [
    test "make is idempotent: same handle state" (fun () ->
        Metrics.reset ();
        let a = Counter.make ~labels:[ ("k", "v") ] "tele_test_idem" in
        let b = Counter.make ~labels:[ ("k", "v") ] "tele_test_idem" in
        Counter.inc a 3;
        Counter.one b;
        Alcotest.(check int) "shared" 4 (Counter.value a);
        Alcotest.(check int) "shared" 4 (Counter.value b));
    test "label order does not split the metric" (fun () ->
        Metrics.reset ();
        let a =
          Counter.make ~labels:[ ("a", "1"); ("b", "2") ] "tele_test_order"
        in
        let b =
          Counter.make ~labels:[ ("b", "2"); ("a", "1") ] "tele_test_order"
        in
        Counter.one a;
        Alcotest.(check int) "same cell" 1 (Counter.value b));
    test "a kind clash is refused" (fun () ->
        let _ = Counter.make "tele_test_clash" in
        match Gauge.make "tele_test_clash" with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    test "disabled writes are dropped, reads still work" (fun () ->
        Metrics.reset ();
        let c = Counter.make "tele_test_off" in
        Telemetry.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Telemetry.set_enabled true)
          (fun () -> Counter.inc c 5);
        Counter.one c;
        Alcotest.(check int) "only the enabled write" 1 (Counter.value c));
    test "snapshot sorts by name then labels and sorts label lists" (fun () ->
        Metrics.reset ();
        let _ = Counter.make ~labels:[ ("z", "1"); ("a", "2") ] "tele_test_snap" in
        let snaps =
          List.filter
            (fun s -> s.Metrics.s_name = "tele_test_snap")
            (Metrics.snapshot ())
        in
        match snaps with
        | [ s ] ->
          Alcotest.(check (list (pair string string)))
            "labels sorted" [ ("a", "2"); ("z", "1") ] s.Metrics.s_labels
        | l -> Alcotest.fail (Printf.sprintf "got %d snaps" (List.length l)));
  ]

(* --- multi-domain merge -------------------------------------------------- *)

let merge_tests =
  [
    test "writes from many domains merge on read" (fun () ->
        Metrics.reset ();
        let c = Counter.make "tele_test_domains" in
        let h = Histogram.make ~lo:1. ~factor:2. ~buckets:4 "tele_test_dhist" in
        let per_domain = 10_000 in
        let worker () =
          for k = 1 to per_domain do
            Counter.one c;
            Histogram.observe h (float_of_int (k mod 5))
          done
        in
        let domains = List.init 4 (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join domains;
        Alcotest.(check int) "counter merged" (5 * per_domain) (Counter.value c);
        Alcotest.(check int) "histogram merged" (5 * per_domain)
          (Histogram.count h);
        Alcotest.(check (float 1e-9)) "min across domains" 0.
          (Histogram.min_value h);
        Alcotest.(check (float 1e-9)) "max across domains" 4.
          (Histogram.max_value h));
  ]

(* --- serial vs parallel: identical logical counters ---------------------- *)

let tiny =
  {
    Workload.Retail.days = 6;
    stores = 2;
    products = 10;
    sold_per_store_day = 3;
    tx_per_product = 2;
    brands = 3;
    seed = 7;
  }

(* storage gauges under a name prefix, as (name, labels, value) triples *)
let storage_gauges () =
  List.filter_map
    (fun s ->
      match s.Metrics.s_value with
      | Metrics.Gauge_v v
        when String.starts_with ~prefix:"minview_aux_" s.Metrics.s_name
             || String.equal s.Metrics.s_name "minview_view_groups" ->
        Some (s.Metrics.s_name, s.Metrics.s_labels, v)
      | _ -> None)
    (Metrics.snapshot ())

(* The property: the logical counters — deltas seen, deltas surviving
   compaction, operations applied, and the storage gauges after the flush —
   must describe the same batch identically whether it was applied serially
   or through the shard-parallel fast path. Timing histograms differ; the
   logic must not. *)
let serial_parallel_counters seed domains n () =
  let db = Workload.Retail.load { tiny with seed } in
  let serial =
    Engine.init db (Mindetail.Derive.derive db Workload.Retail.monthly_revenue)
  in
  let rng = Workload.Prng.create ((seed * 31) + domains) in
  Engine.apply_batch serial (Workload.Delta_gen.stream rng db ~n:40);
  let par = Engine.copy serial in
  let batch = Workload.Delta_gen.stream rng db ~n in
  let profile = Engine.net_profile par batch in
  Metrics.reset ();
  Engine.apply_batch serial batch;
  let serial_deltas = counter_value "minview_engine_deltas_total" in
  let serial_gauges = storage_gauges () in
  Metrics.reset ();
  Engine.apply_batch ~parallel:(Shard.create ~domains) par batch;
  Alcotest.(check int)
    "deltas_total agrees across modes" serial_deltas
    (counter_value "minview_engine_deltas_total");
  Alcotest.(check int)
    "netted counter = compaction profile" profile.Engine.netted
    (counter_value "minview_engine_deltas_netted_total");
  Alcotest.(check int)
    "applied counter = compaction profile" profile.Engine.applied
    (counter_value "minview_engine_ops_applied_total");
  Alcotest.(check
              (list (triple string (list (pair string string)) (float 1e-9))))
    "storage gauges agree across modes" serial_gauges (storage_gauges ());
  Alcotest.(check bool)
    "states equal" true
    (Engine.equal_state serial par)

let property_tests =
  List.concat_map
    (fun seed ->
      List.concat_map
        (fun domains ->
          List.map
            (fun n ->
              test
                (Printf.sprintf
                   "logical counters: seed %d, %d domains, batch %d" seed
                   domains n)
                (serial_parallel_counters seed domains n))
            [ 10; 120 ])
        [ 1; 4 ])
    [ 3; 11 ]

(* --- warehouse counters: rollback, recovery, faults ---------------------- *)

let fresh_id = ref 2_000_000

let next_id () =
  incr fresh_id;
  !fresh_id

let valid_sale () =
  Delta.insert "sale" (row [ i (next_id ()); i 1; i 1; i 1; i 12 ])

let warehouse_tests =
  [
    test "an engine failure bumps the rollback counter" (fun () ->
        Metrics.reset ();
        let db = paper_example_db () in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.product_sales;
        (* a price update crossing an Aged view's partition boundary passes
           validation and blows up the partitioned engine mid-batch *)
        let is_old tup =
          match tup.(4) with Value.Int p -> p < 15 | _ -> false
        in
        let aged =
          { Workload.Retail.sales_by_time with View.name = "aged_sales" }
        in
        Warehouse.add_view ~strategy:(Warehouse.Aged is_old) wh aged;
        Metrics.reset ();
        let r1 = Warehouse.ingest_report wh [ valid_sale () ] in
        Alcotest.(check int) "clean batch applies" 1 r1.Warehouse.applied;
        let boundary_crossing =
          Delta.update "sale"
            ~before:(row [ i 1; i 1; i 1; i 1; i 10 ])
            ~after:(row [ i 1; i 1; i 1; i 1; i 50 ])
        in
        let r2 = Warehouse.ingest_report wh [ boundary_crossing ] in
        Alcotest.(check int) "poisoned batch aborts" 0 r2.Warehouse.applied;
        Alcotest.(check int)
          "one commit" 1
          (counter_value "minview_warehouse_txn_commits_total");
        Alcotest.(check int)
          "one rollback" 1
          (counter_value "minview_warehouse_txn_rollbacks_total"));
    test "validation rejects count as quarantined, not rollbacks" (fun () ->
        Metrics.reset ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        Metrics.reset ();
        let null_insert =
          Delta.insert "sale" (row [ i (next_id ()); i 6; i 1; i 1; Value.Null ])
        in
        let r = Warehouse.ingest_report wh [ null_insert ] in
        Alcotest.(check int) "nothing applied" 0 r.Warehouse.applied;
        Alcotest.(check int)
          "quarantined" 1
          (counter_value "minview_warehouse_quarantined_deltas_total");
        Alcotest.(check int)
          "no rollback" 0
          (counter_value "minview_warehouse_txn_rollbacks_total"));
    test "an injected crash is visible in the fault and recovery counters"
      (fun () ->
        Metrics.reset ();
        Trace.clear ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        let dir = fresh_dir "tele_crash_dir" in
        Warehouse.attach wh ~dir;
        Warehouse.ingest wh [ valid_sale () ];
        Metrics.reset ();
        Faults.arm Faults.Mid_engine_apply;
        (match Warehouse.ingest wh [ valid_sale () ] with
        | () -> Alcotest.fail "armed crash point must fire"
        | exception Faults.Crash _ -> ());
        Alcotest.(check int)
          "crash counted at its point" 1
          (counter_value
             ~labels:[ ("point", "mid-engine-apply"); ("mode", "kill") ]
             "minview_faults_crashes_total");
        let wh2 = Warehouse.recover ~dir in
        Alcotest.(check int)
          "one recovery" 1
          (counter_value "minview_warehouse_recoveries_total");
        (* both post-checkpoint batches replay: the committed one and the
           one whose apply the crash interrupted after its WAL append *)
        Alcotest.(check int)
          "the WAL tail replays" 2
          (counter_value "minview_warehouse_replayed_batches_total");
        Alcotest.(check bool)
          "WAL work is visible" true
          (counter_value "minview_wal_appends_total" > 0);
        Warehouse.close wh2);
    test "dropping a saved parallel pool warns through the counter" (fun () ->
        Metrics.reset ();
        Trace.clear ();
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        Warehouse.add_view wh Workload.Retail.monthly_revenue;
        Warehouse.set_parallel wh (Some (Shard.create ~domains:2));
        let path = tmp "tele_pool_snapshot.bin" in
        Warehouse.save wh path;
        Metrics.reset ();
        let _wh2 = Warehouse.load path in
        Alcotest.(check int)
          "reset counted" 1
          (counter_value "minview_warehouse_parallel_resets_total");
        Alcotest.(check bool)
          "reset traced" true
          (List.exists
             (fun (s : Trace.span) ->
               String.equal s.Trace.name "warehouse.parallel-reset")
             (Trace.recent ()));
        (* a snapshot without a pool loads silently *)
        Metrics.reset ();
        Warehouse.set_parallel wh None;
        Warehouse.save wh path;
        let _wh3 = Warehouse.load path in
        Alcotest.(check int)
          "no spurious warning" 0
          (counter_value "minview_warehouse_parallel_resets_total"));
  ]

(* --- the trace ring ------------------------------------------------------ *)

let trace_tests =
  [
    test "with_span records name, attrs and a plausible duration" (fun () ->
        Trace.clear ();
        let r =
          Trace.with_span ~attrs:[ ("k", "v") ] "tele.span" (fun () -> 42)
        in
        Alcotest.(check int) "result" 42 r;
        match Trace.recent () with
        | [ s ] ->
          Alcotest.(check string) "name" "tele.span" s.Trace.name;
          Alcotest.(check (list (pair string string)))
            "attrs" [ ("k", "v") ] s.Trace.attrs;
          Alcotest.(check bool) "duration" true (s.Trace.dur_s >= 0.)
        | l -> Alcotest.fail (Printf.sprintf "got %d spans" (List.length l)));
    test "a span survives its body raising" (fun () ->
        Trace.clear ();
        (match Trace.with_span "tele.raise" (fun () -> failwith "boom") with
        | () -> Alcotest.fail "exception must propagate"
        | exception Failure _ -> ());
        Alcotest.(check int) "recorded" 1 (List.length (Trace.recent ())));
    test "the ring keeps the newest spans and counts the total" (fun () ->
        Trace.clear ();
        for k = 1 to Trace.capacity + 100 do
          Trace.event (Printf.sprintf "tele.e%d" k)
        done;
        Alcotest.(check int) "total" (Trace.capacity + 100) (Trace.total ());
        let spans = Trace.recent () in
        Alcotest.(check int) "ring bounded" Trace.capacity (List.length spans);
        Alcotest.(check string)
          "oldest survivor" "tele.e101" (List.hd spans).Trace.name;
        Alcotest.(check string)
          "newest last"
          (Printf.sprintf "tele.e%d" (Trace.capacity + 100))
          (List.nth spans (Trace.capacity - 1)).Trace.name);
    test "disabled telemetry records no spans" (fun () ->
        Trace.clear ();
        Telemetry.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Telemetry.set_enabled true)
          (fun () -> Trace.with_span "tele.off" (fun () -> ()));
        Alcotest.(check int) "nothing recorded" 0
          (List.length (Trace.recent ())));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("histograms", histogram_tests); ("registry", registry_tests);
      ("domain-merge", merge_tests); ("serial-vs-parallel", property_tests);
      ("warehouse-counters", warehouse_tests); ("trace", trace_tests);
    ]
