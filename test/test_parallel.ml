(* Parallel-apply determinism: the compacted shard-parallel fast path of
   [Engine.apply_batch ?parallel] must leave state structurally identical
   ([Engines.equal_state]) to serial application of the same batch — across
   engine configurations, seeds, domain counts and batch shapes, including
   a rejected batch rolled back under parallel apply. Plus unit tests for
   the net-effect compactor ([Delta_batch]). *)

open Helpers
module Engines = Maintenance.Engines
module Shard = Maintenance.Shard
module Delta_batch = Relational.Delta_batch

let test case fn = Alcotest.test_case case `Quick fn

let tiny =
  {
    Workload.Retail.days = 6;
    stores = 2;
    products = 10;
    sold_per_store_day = 3;
    tx_per_product = 2;
    brands = 3;
    seed = 7;
  }

let insert_only = { Workload.Delta_gen.insert = 1; delete = 0; update = 0 }

type case = {
  cname : string;
  build : Database.t -> Engines.t;
  cview : View.t;
  mix : Workload.Delta_gen.op_mix;
}

let cases =
  [
    {
      cname = "minimal";
      build = (fun db -> Engines.minimal db Workload.Retail.monthly_revenue);
      cview = Workload.Retail.monthly_revenue;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "minimal-distinct";
      build = (fun db -> Engines.minimal db Workload.Retail.product_sales);
      cview = Workload.Retail.product_sales;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "psj";
      build = (fun db -> Engines.psj db Workload.Retail.monthly_revenue);
      cview = Workload.Retail.monthly_revenue;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "sales-by-time";
      build = (fun db -> Engines.minimal db Workload.Retail.sales_by_time);
      cview = Workload.Retail.sales_by_time;
      mix = Workload.Delta_gen.default_mix;
    };
    {
      cname = "append-only";
      build = (fun db -> Engines.append_only db Workload.Retail.monthly_revenue);
      cview = Workload.Retail.monthly_revenue;
      mix = insert_only;
    };
    {
      cname = "partitioned";
      build =
        (fun db ->
          Engines.partitioned db Workload.Retail.sales_by_time
            ~is_old:(fun tup -> Value.compare tup.(1) (i 3) <= 0));
      cview = Workload.Retail.sales_by_time;
      mix = insert_only;
    };
  ]

(* The property: warm an engine up, copy it, apply the same fresh batch
   serially to one copy and through the pool to the other — the two must be
   structurally equal, and both must match recomputation over the evolved
   source. *)
let parallel_matches_serial case seed domains n () =
  let db = Workload.Retail.load { tiny with seed } in
  let serial = case.build db in
  let rng = Workload.Prng.create ((seed * 17) + domains) in
  Engines.apply_batch serial
    (Workload.Delta_gen.stream ~mix:case.mix rng db ~n:40);
  let par = Engines.copy serial in
  let batch = Workload.Delta_gen.stream ~mix:case.mix rng db ~n in
  Engines.apply_batch serial batch;
  let pool = Shard.create ~domains in
  Engines.apply_batch ~parallel:pool par batch;
  Alcotest.(check bool)
    (Printf.sprintf "parallel(%d) state == serial state" domains)
    true
    (Engines.equal_state serial par);
  Alcotest.check relation "parallel view tracks recomputation"
    (Algebra.Eval.eval db case.cview)
    (Engines.view_contents par)

(* Push a batch past the engine's inline threshold (512 compacted root
   operations) so both phases really fan out over worker domains: every
   insert carries a distinct price, so no two merge and the op count stays
   at 1000. *)
let big_batch_parallel domains () =
  let db = Workload.Retail.load tiny in
  let serial = Engines.minimal db Workload.Retail.sales_by_time in
  let rng = Workload.Prng.create 41 in
  Engines.apply_batch serial (Workload.Delta_gen.stream rng db ~n:40);
  let par = Engines.copy serial in
  let batch =
    List.init 1_000 (fun j ->
        Delta.insert "sale"
          (row
             [ i (2_000_000 + j); i ((j mod 6) + 1); i ((j mod 10) + 1);
               i ((j mod 2) + 1); i (j + 1) ]))
  in
  Engines.apply_batch serial batch;
  Engines.apply_batch ~parallel:(Shard.create ~domains) par batch;
  Alcotest.(check bool)
    (Printf.sprintf "big-batch parallel(%d) == serial" domains)
    true
    (Engines.equal_state serial par)

let determinism_tests =
  List.concat_map
    (fun case ->
      List.concat_map
        (fun seed ->
          List.concat_map
            (fun domains ->
              List.map
                (fun n ->
                  test
                    (Printf.sprintf "%s: seed %d, %d domains, batch %d"
                       case.cname seed domains n)
                    (parallel_matches_serial case seed domains n))
                [ 1; 25; 200 ])
            [ 1; 2; 4 ])
        [ 3; 4 ])
    cases
  @ List.map
      (fun domains ->
        test
          (Printf.sprintf "big batch crosses the inline threshold, %d domains"
             domains)
          (big_batch_parallel domains))
      [ 2; 4 ]

(* A poisoned batch (NULL in a summed column) must raise under parallel
   apply exactly as under serial, and rollback must restore the pre-batch
   state bit for bit. *)
let parallel_rollback domains () =
  let db = Workload.Retail.load tiny in
  let eng = Engines.minimal db Workload.Retail.monthly_revenue in
  let rng = Workload.Prng.create 23 in
  Engines.apply_batch eng (Workload.Delta_gen.stream rng db ~n:40);
  let snapshot = Engines.copy eng in
  let valid = Workload.Delta_gen.stream rng db ~n:10 in
  (* timeid 6 passes the view's 1997 semijoin, so the NULL price reaches
     the aggregation *)
  let poison =
    Delta.insert "sale" (row [ i 1_000_001; i 6; i 1; i 1; Value.Null ])
  in
  let pool = Shard.create ~domains in
  Engines.begin_txn eng;
  (match Engines.apply_batch ~parallel:pool eng (valid @ [ poison ]) with
  | () -> Alcotest.fail "the poisoned batch must raise"
  | exception _ -> ());
  Engines.rollback eng;
  Alcotest.(check bool)
    "rollback restores the pre-batch state" true
    (Engines.equal_state eng snapshot);
  (* the engine stays fully usable afterwards, serial and parallel *)
  Engines.apply_batch ~parallel:pool eng valid;
  Alcotest.check relation "post-rollback maintenance tracks recomputation"
    (Algebra.Eval.eval db Workload.Retail.monthly_revenue)
    (Engines.view_contents eng)

let rollback_tests =
  List.map
    (fun domains ->
      test
        (Printf.sprintf "poisoned batch under %d domains rolls back" domains)
        (parallel_rollback domains))
    [ 1; 2; 4 ]

(* --- Delta_batch unit tests --------------------------------------------- *)

let sale id ?(timeid = 1) ?(price = 10) () =
  row [ i id; i timeid; i 1; i 1; i price ]

let key_index tbl =
  Relational.Schema.key_index
    (Database.schema_of (Workload.Retail.empty ()) tbl)

let net deltas = Delta_batch.net ~key_index deltas

let delta : Delta.t Alcotest.testable =
  Alcotest.testable Delta.pp (fun a b ->
      a.Delta.table = b.Delta.table
      &&
      match (a.Delta.change, b.Delta.change) with
      | Delta.Insert x, Delta.Insert y | Delta.Delete x, Delta.Delete y ->
        Tuple.equal x y
      | Delta.Update u, Delta.Update v ->
        Tuple.equal u.before v.before && Tuple.equal u.after v.after
      | _ -> false)

let compactor_tests =
  [
    test "insert then delete cancels" (fun () ->
        let t =
          net [ Delta.insert "sale" (sale 1 ());
                Delta.delete "sale" (sale 1 ()) ]
        in
        Alcotest.(check (list delta)) "no net deltas" [] (Delta_batch.deltas t);
        Alcotest.(check int) "stats.input" 2 t.Delta_batch.stats.input;
        Alcotest.(check int) "stats.output" 0 t.Delta_batch.stats.output);
    test "insert then update nets to one insert" (fun () ->
        let t =
          net
            [ Delta.insert "sale" (sale 1 ~price:10 ());
              Delta.update "sale" ~before:(sale 1 ~price:10 ())
                ~after:(sale 1 ~price:25 ()) ]
        in
        Alcotest.(check (list delta))
          "net insert of the after-image"
          [ Delta.insert "sale" (sale 1 ~price:25 ()) ]
          (Delta_batch.deltas t));
    test "update chain composes endpoints" (fun () ->
        let t =
          net
            [ Delta.update "sale" ~before:(sale 1 ~price:10 ())
                ~after:(sale 1 ~price:20 ());
              Delta.update "sale" ~before:(sale 1 ~price:20 ())
                ~after:(sale 1 ~price:30 ()) ]
        in
        Alcotest.(check (list delta))
          "one composed update"
          [ Delta.update "sale" ~before:(sale 1 ~price:10 ())
              ~after:(sale 1 ~price:30 ()) ]
          (Delta_batch.deltas t));
    test "a round-tripping update chain cancels" (fun () ->
        let t =
          net
            [ Delta.update "sale" ~before:(sale 1 ~price:10 ())
                ~after:(sale 1 ~price:20 ());
              Delta.update "sale" ~before:(sale 1 ~price:20 ())
                ~after:(sale 1 ~price:10 ()) ]
        in
        Alcotest.(check (list delta)) "no net deltas" [] (Delta_batch.deltas t));
    test "delete then reinsert nets to an update" (fun () ->
        let t =
          net
            [ Delta.delete "sale" (sale 1 ~price:10 ());
              Delta.insert "sale" (sale 1 ~price:40 ()) ]
        in
        Alcotest.(check (list delta))
          "one update"
          [ Delta.update "sale" ~before:(sale 1 ~price:10 ())
              ~after:(sale 1 ~price:40 ()) ]
          (Delta_batch.deltas t));
    test "delete then identical reinsert cancels" (fun () ->
        let t =
          net
            [ Delta.delete "sale" (sale 1 ());
                Delta.insert "sale" (sale 1 ()) ]
        in
        Alcotest.(check (list delta)) "no net deltas" [] (Delta_batch.deltas t));
    test "a key-changing update decomposes into delete + insert" (fun () ->
        let t =
          net
            [ Delta.update "sale" ~before:(sale 1 ~price:10 ())
                ~after:(sale 2 ~price:10 ()) ]
        in
        Alcotest.(check (list delta))
          "delete old slot, insert new slot"
          [ Delta.delete "sale" (sale 1 ~price:10 ());
            Delta.insert "sale" (sale 2 ~price:10 ()) ]
          (Delta_batch.deltas t));
    test "untouched slots pass through in first-touch order" (fun () ->
        let ds =
          [ Delta.insert "sale" (sale 3 ()); Delta.insert "sale" (sale 1 ());
            Delta.insert "sale" (sale 2 ()) ]
        in
        Alcotest.(check (list delta)) "order preserved" ds
          (Delta_batch.deltas (net ds)));
    test "a duplicate insert is rejected" (fun () ->
        (* the delete forces the table through the netting path; a
           pure-insert batch passes through untouched, deferring duplicate
           detection to the validator just like the serial path *)
        match
          net
            [ Delta.delete "sale" (sale 9 ()); Delta.insert "sale" (sale 1 ());
              Delta.insert "sale" (sale 1 ()) ]
        with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "a double delete is rejected" (fun () ->
        match net [ Delta.delete "sale" (sale 1 ()); Delta.delete "sale" (sale 1 ()) ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* net_profile mirrors what the fast path would do; on a heavily skewed
   batch the applied count collapses *)
let profile_tests =
  [
    test "net_profile collapses churn on one slot" (fun () ->
        let db = Workload.Retail.load tiny in
        let eng = Maintenance.Engine.init db (Mindetail.Derive.derive db Workload.Retail.monthly_revenue) in
        let tup p = sale 1_000_002 ~timeid:2 ~price:p () in
        let churn =
          Delta.insert "sale" (tup 10)
          :: List.concat_map
               (fun p ->
                 [ Delta.update "sale" ~before:(tup p) ~after:(tup (p + 1)) ])
               (List.init 20 (fun k -> k + 10))
        in
        let prof = Maintenance.Engine.net_profile eng churn in
        Alcotest.(check int) "input" 21 prof.Maintenance.Engine.input;
        Alcotest.(check int) "netted" 1 prof.Maintenance.Engine.netted;
        Alcotest.(check int) "applied" 1 prof.Maintenance.Engine.applied);
  ]

let () =
  Alcotest.run "parallel"
    [
      ("determinism", determinism_tests); ("parallel-rollback", rollback_tests);
      ("delta-batch", compactor_tests); ("net-profile", profile_tests);
    ]
