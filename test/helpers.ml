(* Shared test fixtures: alcotest testables, schema/view shorthands, and the
   paper's example instances. *)

module Value = Relational.Value
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Schema = Relational.Schema
module Database = Relational.Database
module Datatype = Relational.Datatype
module Delta = Relational.Delta
module View = Algebra.View
module Attr = Algebra.Attr
module Aggregate = Algebra.Aggregate
module Select_item = Algebra.Select_item
module Predicate = Algebra.Predicate
module Cmp = Algebra.Cmp

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal
let tuple : Tuple.t Alcotest.testable = Alcotest.testable Tuple.pp Tuple.equal

let relation : Relation.t Alcotest.testable =
  Alcotest.testable Relation.pp Relation.equal

let i n = Value.Int n
let s x = Value.String x
let f x = Value.Float x
let b x = Value.Bool x

let row vs = Array.of_list vs

(* relation from expanded tuple lists *)
let rel rows = Relation.of_list (List.map (fun r -> (row r, 1)) rows)

let a = Attr.make
let join src dst = { View.src; dst }

let local attr op const =
  { Predicate.left = attr; op; right = Predicate.Const const }

let group = Select_item.group
let sum ?(alias = "sum") attr = Select_item.Agg (Aggregate.make ~alias Aggregate.Sum (Some attr))
let avg ?(alias = "avg") attr = Select_item.Agg (Aggregate.make ~alias Aggregate.Avg (Some attr))
let min_ ?(alias = "min") attr = Select_item.Agg (Aggregate.make ~alias Aggregate.Min (Some attr))
let max_ ?(alias = "max") attr = Select_item.Agg (Aggregate.make ~alias Aggregate.Max (Some attr))
let count_star ?(alias = "cnt") () = Select_item.Agg (Aggregate.make ~alias Aggregate.Count_star None)

let count_distinct ?(alias = "cntd") attr =
  Select_item.Agg
    (Aggregate.make ~distinct:true ~alias Aggregate.Count (Some attr))

(* The paper's example instance behind Tables 3 and 4: sales with known
   timeid/productid/price combinations. *)
let paper_example_db () =
  let db = Workload.Retail.empty () in
  List.iteri
    (fun idx (day, month, year) ->
      Database.insert db "time"
        (row [ i (idx + 1); i day; i month; i year ]))
    [ (1, 1, 1997); (2, 1, 1997); (3, 2, 1997); (4, 1, 1996) ];
  List.iteri
    (fun idx (brand, cat) ->
      Database.insert db "product" (row [ i (idx + 1); s brand; s cat ]))
    [ ("acme", "food"); ("apex", "drink") ];
  Database.insert db "store" (row [ i 1; s "1 Main"; s "aal"; s "dk"; s "m" ]);
  (* the instance of Table 3: (timeid, productid, price) combinations with
     duplicates *)
  List.iteri
    (fun idx (timeid, productid, price) ->
      Database.insert db "sale"
        (row [ i (idx + 1); i timeid; i productid; i 1; i price ]))
    [
      (1, 1, 10); (1, 1, 10); (1, 2, 10); (2, 1, 15); (2, 1, 15); (2, 1, 20);
      (3, 2, 30);
    ];
  db

(* substring test used when checking rendered reports *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_view_maintained ?(rounds = 10) ?(per_round = 30) ?(seed = 0) db view
    =
  let engine = Maintenance.Engines.minimal db view in
  let rng = Workload.Prng.create seed in
  for round = 1 to rounds do
    let deltas = Workload.Delta_gen.stream rng db ~n:per_round in
    Maintenance.Engines.apply_batch engine deltas;
    let got = Maintenance.Engines.view_contents engine in
    let expected = Algebra.Eval.eval db view in
    Alcotest.check relation
      (Printf.sprintf "%s round %d" view.View.name round)
      expected got
  done

(* CI post-mortem hook: when MINVIEW_TEST_TELEMETRY_DIR is set (the CI
   test step does), every test binary dumps its final metrics snapshot
   and trace ring there on exit, so a failing `dune runtest` leaves
   TELEMETRY_dump.json / trace JSONL artifacts to upload. *)
let () =
  match Sys.getenv_opt "MINVIEW_TEST_TELEMETRY_DIR" with
  | None -> ()
  | Some dir ->
      at_exit (fun () ->
          (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
          let base =
            Filename.remove_extension (Filename.basename Sys.executable_name)
          in
          let write name contents =
            try
              let oc = open_out (Filename.concat dir name) in
              output_string oc contents;
              close_out oc
            with Sys_error _ -> ()
          in
          write (base ^ "_TELEMETRY_dump.json") (Telemetry.dump_json ());
          write
            (base ^ "_trace.jsonl")
            (String.concat ""
               (List.map
                  (fun s -> Telemetry.Trace.span_to_json s ^ "\n")
                  (Telemetry.Trace.recent ()))))
