(* Columnar storage equivalence: the typed-segment Aux_state / View_state
   must be observationally identical to the boxed reference implementations
   (Aux_boxed / View_boxed) under random insert/delete/update/rollback
   sequences, serial and parallel. Plus directed tests for the physical
   layer: dictionary growth (including concurrent intern), column
   specialization and demotion, swap-with-last index repair, and
   undo-journal cell restoration. *)

open Helpers
module AS = Maintenance.Aux_state
module AB = Maintenance.Aux_boxed
module VS = Maintenance.View_state
module VB = Maintenance.View_boxed
module Column = Maintenance.Column
module Icol = Maintenance.Column.Icol
module Dict = Maintenance.Dict
module Rowmap = Maintenance.Rowmap
module Engines = Maintenance.Engines
module Shard = Maintenance.Shard
module Derive = Mindetail.Derive
module Auxview = Mindetail.Auxview
module Prng = Workload.Prng
module Gen = QCheck2.Gen

let test case fn = Alcotest.test_case case `Quick fn

(* QCHECK_COUNT=500 dune exec test/test_columnar.exe  — soak mode *)
let count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some n -> int_of_string n
  | None -> 40

let tiny_params =
  {
    Workload.Retail.days = 8;
    stores = 2;
    products = 12;
    sold_per_store_day = 4;
    tx_per_product = 2;
    brands = 4;
    seed = 17;
  }

(* product_sales: SUM / COUNT( * ) / COUNT(DISTINCT product.brand) — no
   append-only extrema anywhere, so every auxview supports deletions. *)
let specs_for table =
  let db = Workload.Retail.load tiny_params in
  let d = Derive.derive db Workload.Retail.product_sales in
  match Derive.spec_for d table with
  | Some spec -> (spec, Database.schema_of db table)
  | None -> Alcotest.fail (table ^ ": expected a retained auxview")

(* rows materialized through either implementation, as comparable data *)
let as_rows st =
  let acc = ref [] in
  AS.iter st (fun r -> acc := (AS.plains st r, AS.cnt r, AS.sums st r, AS.exts st r) :: !acc);
  List.sort compare !acc

let ab_rows st =
  let acc = ref [] in
  AB.iter st (fun r -> acc := (AB.plains st r, AB.cnt r, AB.sums st r, AB.exts st r) :: !acc);
  List.sort compare !acc

(* --- random aux-state equivalence matrix -------------------------------- *)

(* Drive a 1-shard columnar state, a 4-shard columnar state and the boxed
   oracle through the same random weighted insert/delete stream, in
   committed and rolled-back transaction segments, comparing the full
   observable state after every segment. *)
let aux_matrix ~gen_tup seed (spec, schema) =
  let st1 = AS.create spec schema in
  let st4 = AS.create ~shards:4 spec schema in
  let oracle = AB.create spec schema in
  let rng = Prng.create seed in
  let present = ref [] in
  let ok = ref true in
  let check () =
    ok :=
      !ok
      && Relation.equal (AS.to_relation st1) (AB.to_relation oracle)
      && as_rows st1 = ab_rows oracle
      && AS.equal st1 st4
      && AS.row_count st1 = AB.row_count oracle
      && AS.base_count st1 = AB.base_count oracle
  in
  let op () =
    let n = List.length !present in
    if n > 0 && Prng.int rng 3 = 0 then begin
      let idx = Prng.int rng n in
      let tup, cnt = List.nth !present idx in
      present := List.filteri (fun j _ -> j <> idx) !present;
      AS.delete_base ~count:cnt st1 tup;
      AS.delete_base ~count:cnt st4 tup;
      AB.delete_base ~count:cnt oracle tup
    end
    else begin
      let tup = gen_tup rng in
      let cnt = 1 + Prng.int rng 3 in
      present := (tup, cnt) :: !present;
      AS.insert_base ~count:cnt st1 tup;
      AS.insert_base ~count:cnt st4 tup;
      AB.insert_base ~count:cnt oracle tup
    end
  in
  let all3 f g = f st1; f st4; g oracle in
  for _ = 1 to 3 do
    all3 AS.begin_txn AB.begin_txn;
    for _ = 1 to 15 do op () done;
    all3 AS.commit AB.commit;
    check ();
    let saved = !present in
    all3 AS.begin_txn AB.begin_txn;
    for _ = 1 to 15 do op () done;
    all3 AS.rollback AB.rollback;
    present := saved;
    check ()
  done;
  !ok

(* small key spaces so folds, underflows-to-zero and re-creations all occur *)
let sale_tup rng =
  row
    [
      i (1000 + Prng.int rng 60); i (1 + Prng.int rng 4); i (1 + Prng.int rng 5);
      i (1 + Prng.int rng 2); i (Prng.int rng 20);
    ]

(* dimension tuples are functionally determined by their key, as in any
   keyed base table — two tuples with one id must be the same tuple *)
let product_tup rng =
  let id = 1 + Prng.int rng 30 in
  row
    [
      i id;
      s (Printf.sprintf "brand-%d" (id mod 5));
      s (Printf.sprintf "cat-%d" (id mod 3));
    ]

let prop_aux_root =
  QCheck2.Test.make ~count ~name:"aux state == boxed oracle (root, int columns)"
    ~print:string_of_int (Gen.int_bound 100_000) (fun seed ->
      aux_matrix ~gen_tup:sale_tup seed (specs_for "sale"))

let prop_aux_dimension =
  QCheck2.Test.make ~count
    ~name:"aux state == boxed oracle (dimension, dictionary columns)"
    ~print:string_of_int (Gen.int_bound 100_000) (fun seed ->
      aux_matrix ~gen_tup:product_tup seed (specs_for "product"))

(* --- random view-state equivalence matrix ------------------------------- *)

(* group g, SUM(v), COUNT( * ), AVG(v), MAX(v), COUNT(DISTINCT lbl): CSMAS
   components plus both non-CSMAS kinds (extremum + distinct). *)
let vview =
  {
    View.name = "v";
    having = [];
    select =
      [
        group (a "t" "g");
        sum ~alias:"s" (a "t" "v");
        count_star ~alias:"c" ();
        avg ~alias:"av" (a "t" "v");
        max_ ~alias:"mx" (a "t" "v");
        count_distinct ~alias:"cd" (a "t" "lbl");
      ];
    tables = [ "t" ];
    locals = [];
    joins = [];
  }

let vs_contribs ~v ~lbl =
  [|
    None;
    Some (VS.C_sum { amount = i v; n = 1 });
    Some (VS.C_count 1);
    Some (VS.C_sum { amount = i v; n = 1 });
    Some (VS.C_value (i v));
    Some (VS.C_value (s lbl));
  |]

let vb_contribs ~v ~lbl =
  [|
    None;
    Some (VB.C_sum { amount = i v; n = 1 });
    Some (VB.C_count 1);
    Some (VB.C_sum { amount = i v; n = 1 });
    Some (VB.C_value (i v));
    Some (VB.C_value (s lbl));
  |]

let vs_groups st = List.sort compare (VS.fold_groups st (fun k c acc -> (k, c) :: acc) [])
let vb_groups st = List.sort compare (VB.fold_groups st (fun k c acc -> (k, c) :: acc) [])

let view_matrix seed =
  let s1 = VS.create vview ~determined:false in
  let s4 = VS.create ~shards:4 vview ~determined:false in
  let oracle = VB.create vview ~determined:false in
  let rng = Prng.create seed in
  let present = ref [] in
  let ok = ref true in
  let key k = row [ i k ] in
  let feed_all (k, v, lbl, cnt) =
    VS.feed s1 ~key:(key k) ~cnt (vs_contribs ~v ~lbl);
    VS.feed s4 ~key:(key k) ~cnt (vs_contribs ~v ~lbl);
    VB.feed oracle ~key:(key k) ~cnt (vb_contribs ~v ~lbl)
  in
  let unfeed_all (k, v, lbl, cnt) =
    VS.unfeed s1 ~key:(key k) ~cnt (vs_contribs ~v ~lbl);
    VS.unfeed s4 ~key:(key k) ~cnt (vs_contribs ~v ~lbl);
    VB.unfeed oracle ~key:(key k) ~cnt (vb_contribs ~v ~lbl)
  in
  let op () =
    let n = List.length !present in
    if n > 0 && Prng.int rng 3 = 0 then begin
      let idx = Prng.int rng n in
      let entry = List.nth !present idx in
      present := List.filteri (fun j _ -> j <> idx) !present;
      unfeed_all entry
    end
    else begin
      let entry =
        ( Prng.int rng 5, Prng.int rng 25,
          Printf.sprintf "l%d" (Prng.int rng 4), 1 + Prng.int rng 3 )
      in
      present := entry :: !present;
      feed_all entry
    end
  in
  (* stand-in for the engine's non-CSMAS recomputation: the three states
     must dirty the same groups; resolve them all to the same value so
     renders stay comparable *)
  let resolve () =
    let d1 = List.sort Tuple.compare (VS.take_dirty s1) in
    let d4 = List.sort Tuple.compare (VS.take_dirty s4) in
    let db_ = List.sort Tuple.compare (VB.take_dirty oracle) in
    ok := !ok && List.equal Tuple.equal d1 d4 && List.equal Tuple.equal d1 db_;
    List.iter
      (fun k ->
        List.iter
          (fun item ->
            VS.set_value s1 ~key:k ~item (i 7);
            VS.set_value s4 ~key:k ~item (i 7);
            VB.set_value oracle ~key:k ~item (i 7))
          [ 4; 5 ])
      d1
  in
  let check () =
    resolve ();
    ok :=
      !ok
      && Relation.equal (VS.render s1) (VB.render oracle)
      && VS.equal s1 s4
      && vs_groups s1 = vb_groups oracle
      && VS.group_count s1 = VB.group_count oracle
  in
  for _ = 1 to 3 do
    VS.begin_txn s1; VS.begin_txn s4; VB.begin_txn oracle;
    for _ = 1 to 15 do op () done;
    VS.commit s1; VS.commit s4; VB.commit oracle;
    check ();
    let saved = !present in
    VS.begin_txn s1; VS.begin_txn s4; VB.begin_txn oracle;
    for _ = 1 to 15 do op () done;
    VS.rollback s1; VS.rollback s4; VB.rollback oracle;
    present := saved;
    (* rollback also restores the (empty, post-resolve) dirty sets *)
    ok := !ok && (not (VS.is_dirty_pending s1)) && not (VB.is_dirty_pending oracle);
    check ()
  done;
  !ok

let prop_view_matrix =
  QCheck2.Test.make ~count ~name:"view state == boxed oracle (random feeds)"
    ~print:string_of_int (Gen.int_bound 100_000) view_matrix

(* --- forced-parallel engine equivalence --------------------------------- *)

let with_par_threshold n fn =
  Unix.putenv "MINVIEW_PAR_THRESHOLD" (string_of_int n);
  Fun.protect ~finally:(fun () -> Unix.putenv "MINVIEW_PAR_THRESHOLD" "") fn

let prop_parallel_equivalence =
  QCheck2.Test.make ~count:(max 15 (count / 2))
    ~name:"columnar engines: forced-parallel == serial (random streams)"
    ~print:string_of_int (Gen.int_bound 100_000) (fun seed ->
      with_par_threshold 0 (fun () ->
          let db = Workload.Retail.load tiny_params in
          let ser = Engines.minimal db Workload.Retail.product_sales in
          let par = Engines.minimal db Workload.Retail.product_sales in
          let pool = Shard.create ~domains:4 in
          let rng = Prng.create seed in
          let ok = ref true in
          for _ = 1 to 3 do
            let deltas = Workload.Delta_gen.stream rng db ~n:25 in
            Engines.apply_batch ser deltas;
            Engines.apply_batch ~parallel:pool par deltas;
            ok :=
              !ok
              && Relation.equal (Engines.view_contents ser)
                   (Engines.view_contents par)
              && Engines.equal_state ser par
          done;
          !ok))

(* --- directed: dictionaries --------------------------------------------- *)

let dict_tests =
  [
    test "dictionary growth keeps codes dense and stable" (fun () ->
        let d = Dict.create () in
        let n = 5_000 in
        (* growth doubles several times; codes stay dense and first-come *)
        for k = 0 to n - 1 do
          Alcotest.(check int) "dense code" k
            (Dict.intern d (Printf.sprintf "key-%d" k))
        done;
        Alcotest.(check int) "size" n (Dict.size d);
        for k = 0 to n - 1 do
          let str = Printf.sprintf "key-%d" k in
          Alcotest.(check int) "re-intern is stable" k (Dict.intern d str);
          Alcotest.(check string) "decode round-trips" str (Dict.decode d k);
          Alcotest.(check int) "hash matches Value.hash"
            (Value.hash (s str)) (Dict.hash d k)
        done;
        Alcotest.(check bool) "byte accounting nonzero" true (Dict.byte_size d > 0));
    test "concurrent intern with lock-free decode" (fun () ->
        let d = Dict.create () in
        let n = 2_000 in
        let writers =
          List.init 4 (fun w ->
              Domain.spawn (fun () ->
                  for k = 0 to n - 1 do
                    ignore (Dict.intern d (Printf.sprintf "key-%d" ((k + (w * 97)) mod n)))
                  done))
        in
        (* reader races the writers: any code below the observed size must
           decode to a fully-initialized slot *)
        for _ = 1 to 20_000 do
          let sz = Dict.size d in
          if sz > 0 then begin
            let c = sz - 1 in
            if not (String.length (Dict.decode d c) > 0) then
              Alcotest.fail "torn decode";
            ignore (Dict.hash d c)
          end
        done;
        List.iter Domain.join writers;
        Alcotest.(check int) "each string interned once" n (Dict.size d);
        for k = 0 to n - 1 do
          let str = Printf.sprintf "key-%d" k in
          Alcotest.(check string) "round trip" str (Dict.decode d (Dict.intern d str))
        done);
    test "pooled dictionaries are shared per (table, column)" (fun () ->
        let pool = Dict.create_pool () in
        let d1 = Dict.shared pool ~table:"product" ~column:"brand" in
        let d2 = Dict.shared pool ~table:"product" ~column:"brand" in
        let other = Dict.shared pool ~table:"product" ~column:"category" in
        Alcotest.(check bool) "same instance" true (d1 == d2);
        Alcotest.(check bool) "distinct column, distinct dict" true (d1 != other);
        let c1 = Column.create ~dict:d1 () and c2 = Column.create ~dict:d2 () in
        Column.append c1 (s "acme");
        Column.append c2 (s "acme");
        Column.append c2 (s "apex");
        Alcotest.(check string) "dict storage" "dict" (Column.kind c1);
        Alcotest.(check int) "interned once across columns" 2 (Dict.size d1);
        Alcotest.check value "decode through the column" (s "acme") (Column.get c2 0));
  ]

(* --- directed: columns --------------------------------------------------- *)

let column_tests =
  [
    test "int column: specialization, cell arithmetic, swap-delete" (fun () ->
        let c = Column.create () in
        Alcotest.(check string) "untyped" "empty" (Column.kind c);
        for k = 0 to 99 do Column.append c (i k) done;
        Alcotest.(check string) "specialized" "int" (Column.kind c);
        Column.add_cell c 5 (i 10) 3;
        Alcotest.check value "add_cell folds scaled value" (i 35) (Column.get c 5);
        Column.sub_cell c 5 (i 10) 3;
        Alcotest.check value "sub_cell reverses" (i 5) (Column.get c 5);
        Alcotest.(check bool) "equal_cell" true (Column.equal_cell c 7 (i 7));
        Alcotest.(check bool) "equal_cell mismatch" false (Column.equal_cell c 7 (i 8));
        Alcotest.(check int) "hash_cell" (Value.hash (i 7)) (Column.hash_cell c 7);
        Column.swap_delete c 0;
        Alcotest.(check int) "length after delete" 99 (Column.length c);
        Alcotest.check value "last cell moved into the hole" (i 99) (Column.get c 0);
        Alcotest.(check bool) "off-heap payload" true (Column.offheap_bytes c > 0));
    test "type mismatch demotes to boxed, preserving cells" (fun () ->
        let c = Column.create () in
        for k = 0 to 49 do Column.append c (i k) done;
        Column.append c (f 1.5);
        Alcotest.(check string) "demoted" "boxed" (Column.kind c);
        Alcotest.check value "old cell survives" (i 42) (Column.get c 42);
        Alcotest.check value "new cell stored" (f 1.5) (Column.get c 50);
        Column.add_cell c 42 (i 1) 2;
        Alcotest.check value "generic add_cell still works" (i 44) (Column.get c 42));
    test "float column: unboxed arithmetic, int operands" (fun () ->
        let c = Column.create () in
        Column.append c (f 1.0);
        Column.append c (f 2.0);
        Alcotest.(check string) "specialized" "float" (Column.kind c);
        Column.add_cell c 0 (f 0.5) 2;
        Alcotest.check value "float add" (f 2.0) (Column.get c 0);
        Column.add_cell c 0 (i 2) 3;
        Alcotest.check value "int operand on float storage" (f 8.0) (Column.get c 0);
        Column.set c 1 (f 9.5);
        Alcotest.check value "set" (f 9.5) (Column.get c 1));
    test "boxed sentinel column represents absent values" (fun () ->
        let c = Column.create_boxed () in
        Column.append c Value.Null;
        Column.append c (i 3);
        Alcotest.(check string) "forced boxed" "boxed" (Column.kind c);
        Alcotest.check value "sentinel" Value.Null (Column.get c 0);
        Column.combine_ext c 1 (i 7) ~is_min:false;
        Alcotest.check value "max combine" (i 7) (Column.get c 1);
        Column.combine_ext c 1 (i 5) ~is_min:true;
        Alcotest.check value "min combine" (i 5) (Column.get c 1));
    test "copy is independent; shared dictionary stays shared" (fun () ->
        let d = Dict.create () in
        let c = Column.create ~dict:d () in
        Column.append c (s "x");
        let c' = Column.copy c in
        Column.append c' (s "y");
        Alcotest.(check int) "copy grew" 2 (Column.length c');
        Alcotest.(check int) "original untouched" 1 (Column.length c);
        Alcotest.(check bool) "dictionary shared" true
          (match Column.dict c' with Some d' -> d' == d | None -> false));
    test "Icol: dense int cells with grow and swap-delete" (fun () ->
        let c = Icol.create () in
        for k = 0 to 999 do Icol.append c (k * 2) done;
        Alcotest.(check int) "length" 1000 (Icol.length c);
        Alcotest.(check int) "get" 84 (Icol.get c 42);
        Icol.add c 42 5;
        Alcotest.(check int) "add" 89 (Icol.get c 42);
        Icol.set c 42 84;
        Icol.swap_delete c 0;
        Alcotest.(check int) "swap-delete" 1998 (Icol.get c 0);
        Alcotest.(check int) "shrunk" 999 (Icol.length c);
        let c' = Icol.copy c in
        Icol.set c' 0 (-1);
        Alcotest.(check int) "copy independent" 1998 (Icol.get c 0));
  ]

(* --- directed: rowmap ---------------------------------------------------- *)

let rowmap_tests =
  [
    test "rowmap: find, steal, rename, tombstone churn" (fun () ->
        (* keys live outside the map, as in the columnar states *)
        let keys = Hashtbl.create 64 in
        let key_of r = Hashtbl.find keys r in
        let m = Rowmap.create ~hash:(fun r -> Hashtbl.hash (key_of r)) () in
        let add r k =
          Hashtbl.replace keys r k;
          Rowmap.add m ~hash:(Hashtbl.hash k) r
        in
        let find k =
          Rowmap.find m ~hash:(Hashtbl.hash k) ~eq:(fun r -> key_of r = k)
        in
        for r = 0 to 99 do add r (1000 + r) done;
        Alcotest.(check int) "live entries" 100 (Rowmap.length m);
        for r = 0 to 99 do
          Alcotest.(check (option int)) "find" (Some r) (find (1000 + r))
        done;
        Alcotest.(check (option int)) "absent" None (find 42);
        (* steal: replace the entry for key 1000 with a new row *)
        Hashtbl.replace keys 500 1000;
        (match
           Rowmap.replace m ~hash:(Hashtbl.hash 1000)
             ~eq:(fun r -> key_of r = 1000)
             500
         with
        | Some prev -> Alcotest.(check int) "stole row 0" 0 prev
        | None -> Alcotest.fail "expected a steal");
        Alcotest.(check (option int)) "stolen" (Some 500) (find 1000);
        (* rename: swap-with-last renumbers a row *)
        Alcotest.(check bool) "rename" true
          (Rowmap.rename_value m ~hash:(Hashtbl.hash 1001) ~old_row:1 ~new_row:700);
        Hashtbl.replace keys 700 1001;
        Alcotest.(check (option int)) "renamed" (Some 700) (find 1001);
        (* churn: repeated add/remove forces resizes through tombstones *)
        for cycle = 0 to 50 do
          for j = 0 to 63 do
            let r = 10_000 + (cycle * 64) + j in
            add r r
          done;
          for j = 0 to 63 do
            if j mod 2 = 0 then begin
              let r = 10_000 + (cycle * 64) + j in
              Alcotest.(check bool) "remove" true
                (Rowmap.remove_value m ~hash:(Hashtbl.hash (key_of r)) r)
            end
          done
        done;
        Alcotest.(check int) "live after churn" (100 + (51 * 32)) (Rowmap.length m);
        Alcotest.(check (option int)) "survivor found" (Some 10_001) (find 10_001);
        Alcotest.(check (option int)) "victim gone" None (find 10_002);
        let seen = ref 0 in
        Rowmap.iter m (fun _ -> incr seen);
        Alcotest.(check int) "iter visits live rows" (Rowmap.length m) !seen);
  ]

(* --- directed: swap-delete index repair ---------------------------------- *)

let row_sig st (r : AS.row) = (AS.plains st r, AS.cnt r, AS.sums st r, AS.exts st r)

(* rows_with through the secondary index vs. a full scan: must agree after
   swap-with-last deletions renumber rows *)
let check_index st ~column values =
  List.iter
    (fun v ->
      let indexed = List.sort compare (List.map (row_sig st) (AS.rows_with st ~column v)) in
      let scanned = ref [] in
      AS.iter st (fun r ->
          if Value.equal (AS.plain_of st r column) v then
            scanned := row_sig st r :: !scanned);
      Alcotest.(check bool)
        (Printf.sprintf "index agrees with scan for %s=%s" column (Value.to_string v))
        true
        (indexed = List.sort compare !scanned))
    values

let index_tests =
  [
    test "swap-delete repairs secondary indexes" (fun () ->
        let spec, schema = specs_for "sale" in
        let column = List.hd (Auxview.group_columns spec) in
        let st = AS.create ~indexed_columns:[ column ] spec schema in
        let rng = Prng.create 99 in
        let present = ref [] in
        let values = List.init 4 (fun k -> i (k + 1)) in
        for round = 1 to 6 do
          for _ = 1 to 20 do
            let tup = sale_tup rng in
            present := tup :: !present;
            AS.insert_base st tup
          done;
          (* delete a scattered half; swap-with-last renumbers rows *)
          let victims, keep =
            List.partition (fun _ -> Prng.int rng 2 = 0) !present
          in
          List.iter (AS.delete_base st) victims;
          present := keep;
          check_index st ~column values;
          (* a rolled-back wave of deletions must also leave the index intact *)
          if round mod 2 = 0 && !present <> [] then begin
            AS.begin_txn st;
            List.iter (AS.delete_base st) !present;
            Alcotest.(check int) "emptied in txn" 0 (AS.row_count st);
            AS.rollback st;
            check_index st ~column values
          end
        done);
  ]

(* --- directed: undo-journal cell restoration ------------------------------ *)

let undo_tests =
  [
    test "aux rollback restores cells, indexes and totals" (fun () ->
        let spec, schema = specs_for "sale" in
        let column = List.hd (Auxview.group_columns spec) in
        let st = AS.create ~indexed_columns:[ column ] ~shards:2 spec schema in
        let rng = Prng.create 7 in
        let committed = List.init 30 (fun _ -> sale_tup rng) in
        List.iter (AS.insert_base st) committed;
        let snap = AS.copy st in
        AS.begin_txn st;
        (* touch existing cells, create new groups, delete groups to zero *)
        List.iteri (fun k tup -> if k mod 2 = 0 then AS.insert_base ~count:3 st tup) committed;
        List.iter (fun k -> AS.delete_base st (List.nth committed k)) [ 0; 2; 4 ];
        for _ = 1 to 20 do AS.insert_base st (sale_tup rng) done;
        Alcotest.(check bool) "mutated" false (AS.equal st snap);
        AS.rollback st;
        Alcotest.(check bool) "structurally restored" true (AS.equal st snap);
        Alcotest.check relation "contents restored" (AS.to_relation snap)
          (AS.to_relation st);
        Alcotest.(check int) "base total restored" (AS.base_count snap)
          (AS.base_count st);
        check_index st ~column (List.init 4 (fun k -> i (k + 1))));
    test "dimension aux rollback restores dictionary-encoded cells" (fun () ->
        let spec, schema = specs_for "product" in
        let st = AS.create spec schema in
        let rng = Prng.create 11 in
        let committed = List.init 20 (fun _ -> product_tup rng) in
        List.iter (AS.insert_base st) committed;
        let snap = AS.copy st in
        AS.begin_txn st;
        for _ = 1 to 25 do AS.insert_base st (product_tup rng) done;
        List.iter (fun k -> AS.delete_base st (List.nth committed k)) [ 1; 3 ];
        AS.rollback st;
        Alcotest.(check bool) "restored" true (AS.equal st snap);
        Alcotest.check relation "contents restored" (AS.to_relation snap)
          (AS.to_relation st));
    test "view rollback restores components and the dirty set" (fun () ->
        let st = VS.create ~shards:2 vview ~determined:false in
        let feed k v lbl = VS.feed st ~key:(row [ i k ]) ~cnt:1 (vs_contribs ~v ~lbl) in
        feed 1 10 "a";
        feed 1 20 "b";
        feed 2 5 "a";
        (* leave group 1 dirty on purpose: rollback must restore the set *)
        let snap = VS.copy st in
        Alcotest.(check bool) "dirty before txn" true (VS.is_dirty_pending st);
        VS.begin_txn st;
        ignore (VS.take_dirty st);
        feed 3 7 "c";
        VS.unfeed st ~key:(row [ i 1 ]) ~cnt:1 (vs_contribs ~v:20 ~lbl:"b");
        VS.set_value st ~key:(row [ i 2 ]) ~item:4 (i 999);
        VS.rollback st;
        Alcotest.(check bool) "structurally restored" true (VS.equal st snap);
        Alcotest.(check bool) "dirty set restored" true (VS.is_dirty_pending st);
        Alcotest.(check int) "group count restored" 2 (VS.group_count st));
  ]

(* --- byte accounting ------------------------------------------------------ *)

let accounting_tests =
  [
    test "byte accounting grows with content and survives copy" (fun () ->
        let spec, schema = specs_for "product" in
        let st = AS.create spec schema in
        let empty_bytes = AS.byte_size st in
        let rng = Prng.create 3 in
        for _ = 1 to 200 do AS.insert_base st (product_tup rng) done;
        Alcotest.(check bool) "bytes grew" true (AS.byte_size st > empty_bytes);
        let snap = AS.copy st in
        Alcotest.(check int) "copy accounts the same" (AS.byte_size st)
          (AS.byte_size snap);
        let vs = VS.create vview ~determined:false in
        let before = VS.byte_size vs in
        for k = 0 to 199 do
          VS.feed vs ~key:(row [ i k ]) ~cnt:1 (vs_contribs ~v:k ~lbl:"x")
        done;
        Alcotest.(check bool) "view bytes grew" true (VS.byte_size vs > before);
        Alcotest.(check bool) "view off-heap payload" true (VS.offheap_bytes vs > 0));
  ]

let () =
  Alcotest.run "columnar"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_aux_root;
            prop_aux_dimension;
            prop_view_matrix;
            prop_parallel_equivalence;
          ] );
      ("dict", dict_tests);
      ("column", column_tests);
      ("rowmap", rowmap_tests);
      ("index-repair", index_tests);
      ("undo-journal", undo_tests);
      ("accounting", accounting_tests);
    ]
