(* Tests for the line-protocol query front-end: protocol smoke over a real
   socket, per-connection epoch pinning against live ingest, error replies,
   and graceful shutdown. The server runs on its own domain on an ephemeral
   loopback port; the tests are the client. *)

let test case fn = Alcotest.test_case case `Quick fn

let build () =
  let db = Workload.Retail.load Workload.Retail.small_params in
  let wh = Warehouse.create db in
  Warehouse.add_view wh Workload.Retail.product_sales;
  Warehouse.add_view wh Workload.Retail.sales_by_time;
  (db, wh)

(* [with_server f] runs a server on an ephemeral port and hands [f] the
   warehouse and port; the server is shut down (via the protocol) and its
   domain joined before returning, even when [f] raises. *)
let with_server f =
  let db, wh = build () in
  let srv = Serve.create ~port:0 wh in
  let d = Domain.spawn (fun () -> Serve.run srv) in
  Fun.protect
    ~finally:(fun () ->
      Serve.request_stop srv;
      Domain.join d)
    (fun () -> f db wh (Serve.port srv))

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (* a wedged server must fail the test, not hang it *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let disconnect (fd, _, _) = try Unix.close fd with Unix.Unix_error _ -> ()

let send (_, _, oc) line =
  output_string oc (line ^ "\n");
  flush oc

let recv (_, ic, _) = input_line ic

(* Read a body response: the head line, then lines until the [.]
   terminator (excluded). *)
let recv_body conn =
  let head = recv conn in
  let rec go acc =
    match recv conn with "." -> List.rev acc | l -> go (l :: acc)
  in
  (head, go [])

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let check_prefix what prefix s =
  if not (starts_with prefix s) then
    Alcotest.failf "%s: expected %S..., got %S" what prefix s

let protocol_tests =
  [
    test "PING, EPOCH, VIEWS, QUERY, RECONSTRUCT over one connection"
      (fun () ->
        with_server @@ fun _db wh port ->
        let c = connect port in
        Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
        send c "PING";
        Alcotest.(check string) "pong" "+PONG" (recv c);
        send c "EPOCH";
        let e =
          Warehouse.snapshot_epoch (Warehouse.current_snapshot wh)
        in
        Alcotest.(check string) "epoch echoes the published epoch"
          (Printf.sprintf "+EPOCH %d 0" e)
          (recv c);
        send c "VIEWS";
        let head, names = recv_body c in
        Alcotest.(check string) "views head" "+VIEWS 2" head;
        Alcotest.(check (list string)) "view names"
          [ "product_sales"; "sales_by_time" ]
          names;
        send c "QUERY product_sales";
        let head, body = recv_body c in
        check_prefix "query head" "+ROWS " head;
        (match body with
        | header :: rows ->
          check_prefix "column header" "#\t" header;
          let n =
            match String.split_on_char ' ' head with
            | _ :: n :: _ -> int_of_string n
            | _ -> -1
          in
          Alcotest.(check int) "row count matches the head" n
            (List.length rows);
          let _, expected = Warehouse.query_sorted wh "product_sales" in
          Alcotest.(check int) "every row served" (List.length expected) n
        | [] -> Alcotest.fail "QUERY returned no header");
        send c "RECONSTRUCT product_sales";
        let head, sql = recv_body c in
        check_prefix "sql head" "+SQL " head;
        Alcotest.(check bool) "a SELECT came back" true
          (List.exists (fun l -> starts_with "SELECT" (String.trim l)) sql);
        send c "QUIT";
        Alcotest.(check string) "bye" "+BYE" (recv c));
    test "unknown views and unknown verbs answer -ERR" (fun () ->
        with_server @@ fun _db _wh port ->
        let c = connect port in
        Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
        send c "QUERY no_such_view";
        check_prefix "unknown view" "-ERR unknown-view:" (recv c);
        send c "FROBNICATE now";
        check_prefix "unknown verb" "-ERR invalid-request:" (recv c);
        (* the connection survives errors *)
        send c "PING";
        Alcotest.(check string) "still alive" "+PONG" (recv c));
  ]

let pinning_tests =
  [
    test "connections pin their accept-time epoch until PIN" (fun () ->
        with_server @@ fun db wh port ->
        let a = connect port in
        Fun.protect ~finally:(fun () -> disconnect a) @@ fun () ->
        send a "EPOCH";
        let before = recv a in
        (* rows served from the pinned epoch *)
        send a "QUERY sales_by_time";
        let _, body_before = recv_body a in
        (* commit a batch while the connection stays open *)
        let rng = Workload.Prng.create 11 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:100);
        send a "EPOCH";
        Alcotest.(check string) "pinned epoch unchanged by the commit" before
          (recv a);
        send a "QUERY sales_by_time";
        let _, body_after = recv_body a in
        Alcotest.(check (list string)) "pinned rows unchanged by the commit"
          body_before body_after;
        (* a fresh connection sees the new epoch *)
        let b = connect port in
        Fun.protect ~finally:(fun () -> disconnect b) @@ fun () ->
        send b "EPOCH";
        let fresh = recv b in
        Alcotest.(check bool) "a new connection pins the new epoch" true
          (fresh <> before);
        (* PIN re-pins the old connection to it *)
        send a "PIN";
        Alcotest.(check string) "PIN catches the connection up" fresh (recv a));
  ]

let shutdown_tests =
  [
    test "SHUTDOWN answers +BYE and stops the server" (fun () ->
        let _db, wh = build () in
        let srv = Serve.create ~port:0 wh in
        let d = Domain.spawn (fun () -> Serve.run srv) in
        let c = connect (Serve.port srv) in
        send c "PING";
        Alcotest.(check string) "served" "+PONG" (recv c);
        send c "SHUTDOWN";
        Alcotest.(check string) "bye" "+BYE" (recv c);
        (* the run loop exits on its own: no request_stop from outside *)
        Domain.join d;
        disconnect c;
        Alcotest.(check bool) "requests were counted" true
          (Serve.requests srv >= 2);
        match connect (Serve.port srv) with
        | c2 ->
          disconnect c2;
          Alcotest.fail "the listening socket should be closed"
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  ]

let slowlog_tests =
  [
    test "slow queries are logged with rotation and traced as spans"
      (fun () ->
        let dir = Filename.temp_file "minview_slowlog" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o700;
        let path = Filename.concat dir "slowlog.jsonl" in
        (* a tiny cap so a short burst of queries forces a rotation *)
        let sink = Telemetry.Jsonl_sink.open_ ~max_bytes:2048 ~keep:3 path in
        let _db, wh = build () in
        (* threshold 0: every query counts as slow *)
        let srv = Serve.create ~slowlog:sink ~slow_threshold_s:0. ~port:0 wh in
        let d = Domain.spawn (fun () -> Serve.run srv) in
        Fun.protect
          ~finally:(fun () ->
            Serve.request_stop srv;
            Domain.join d;
            Telemetry.Jsonl_sink.close sink)
          (fun () ->
            let c = connect (Serve.port srv) in
            Fun.protect ~finally:(fun () -> disconnect c) @@ fun () ->
            for _ = 1 to 60 do
              send c "QUERY product_sales";
              let _head, _body = recv_body c in
              ()
            done);
        Alcotest.(check bool) "active slowlog exists" true
          (Sys.file_exists path);
        Alcotest.(check bool) "sixty ~100-byte lines rotated a 2 KiB cap"
          true
          (Sys.file_exists (path ^ ".1"));
        (* the newest line parses and carries the query's identity *)
        let last_line =
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let rec go last =
                match input_line ic with
                | l -> go (Some l)
                | exception End_of_file -> last
              in
              match go None with
              | Some l -> l
              | None -> Alcotest.fail "active slowlog is empty")
        in
        let j = Telemetry.Json.parse_exn last_line in
        let str k =
          match Option.bind (Telemetry.Json.member k j) Telemetry.Json.to_string
          with
          | Some s -> s
          | None -> Alcotest.failf "slowlog line lacks string %S: %s" k last_line
        in
        let num k =
          match Option.bind (Telemetry.Json.member k j) Telemetry.Json.to_float
          with
          | Some f -> f
          | None -> Alcotest.failf "slowlog line lacks number %S: %s" k last_line
        in
        Alcotest.(check string) "verb" "QUERY" (str "verb");
        Alcotest.(check string) "view" "product_sales" (str "view");
        Alcotest.(check bool) "rows counted" true (num "rows" >= 0.);
        Alcotest.(check bool) "duration recorded" true (num "dur_s" >= 0.);
        Alcotest.(check bool) "epoch recorded" true (num "epoch" >= 0.);
        (* the serving path also traced the query *)
        Alcotest.(check bool) "a serve.query span was recorded" true
          (List.exists
             (fun (s : Telemetry.Trace.span) -> s.name = "serve.query")
             (Telemetry.Trace.recent ()));
        Alcotest.(check bool) "slow-query counter bumped" true
          (List.exists
             (fun (snap : Telemetry.Metrics.snap) ->
               snap.s_name = "minview_serve_slow_queries_total"
               &&
               match snap.s_value with
               | Telemetry.Metrics.Counter_v n -> n >= 60
               | _ -> false)
             (Telemetry.Metrics.snapshot ())));
  ]

let () =
  Alcotest.run "serve"
    [
      ("protocol", protocol_tests);
      ("pinning", pinning_tests);
      ("shutdown", shutdown_tests);
      ("slowlog", slowlog_tests);
    ]
