(* Tests for warehouse persistence: the maintained state survives a
   save/load cycle and ingestion resumes seamlessly. *)

open Helpers

let test case fn = Alcotest.test_case case `Quick fn

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let tiny =
  {
    Workload.Retail.days = 8;
    stores = 2;
    products = 12;
    sold_per_store_day = 4;
    tx_per_product = 2;
    brands = 4;
    seed = 31;
  }

let build () =
  let db = Workload.Retail.load tiny in
  let wh = Warehouse.create db in
  Warehouse.add_view wh Workload.Retail.product_sales;
  Warehouse.add_view ~strategy:Warehouse.Psj wh Workload.Retail.monthly_revenue;
  Warehouse.add_view ~strategy:Warehouse.Replicate wh
    Workload.Retail.sales_by_time;
  (db, wh)

let contents wh name = snd (Warehouse.query wh name)

let tests =
  [
    test "save/load round-trips every view" (fun () ->
        let db, wh = build () in
        let rng = Workload.Prng.create 1 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:150);
        let path = tmp "wh_roundtrip.bin" in
        Warehouse.save wh path;
        let wh' = Warehouse.load path in
        Alcotest.(check (list string)) "names"
          (Warehouse.view_names wh) (Warehouse.view_names wh');
        List.iter
          (fun name ->
            Alcotest.check relation name (contents wh name) (contents wh' name))
          (Warehouse.view_names wh);
        Sys.remove path);
    test "ingestion resumes after a restart" (fun () ->
        let db, wh = build () in
        let rng = Workload.Prng.create 2 in
        Warehouse.ingest wh (Workload.Delta_gen.stream rng db ~n:100);
        let path = tmp "wh_resume.bin" in
        Warehouse.save wh path;
        (* the process "restarts": only the state file and the live delta
           stream remain *)
        let wh' = Warehouse.load path in
        let more = Workload.Delta_gen.stream rng db ~n:100 in
        Warehouse.ingest wh' more;
        List.iter
          (fun view ->
            Alcotest.check relation view.View.name
              (Algebra.Eval.eval db view)
              (contents wh' view.View.name))
          [ Workload.Retail.product_sales; Workload.Retail.monthly_revenue;
            Workload.Retail.sales_by_time ];
        Sys.remove path);
    test "detail profile survives the round trip" (fun () ->
        let _db, wh = build () in
        let path = tmp "wh_profile.bin" in
        Warehouse.save wh path;
        let wh' = Warehouse.load path in
        Alcotest.(check (list (triple string int int))) "profile"
          (Warehouse.detail_profile wh)
          (Warehouse.detail_profile wh');
        Sys.remove path);
    test "aged views are rejected by save" (fun () ->
        let db = Workload.Retail.load tiny in
        let wh = Warehouse.create db in
        let mergeable =
          { Workload.Retail.sales_by_time with View.name = "mergeable" }
        in
        Warehouse.add_view ~strategy:(Warehouse.Aged (fun _ -> false)) wh
          mergeable;
        match Warehouse.save wh (tmp "wh_aged.bin") with
        | exception Warehouse.Error { kind = Warehouse.Not_persistable; _ } ->
          ()
        | () -> Alcotest.fail "expected Not_persistable");
    test "load rejects foreign files" (fun () ->
        let path = tmp "wh_bogus.bin" in
        let oc = open_out_bin path in
        output_string oc "definitely not a warehouse state file .........";
        close_out oc;
        (match Warehouse.load path with
        | exception Warehouse.Error { kind = Warehouse.Corrupt_state; _ } -> ()
        | _ -> Alcotest.fail "expected Corrupt_state");
        Sys.remove path);
    test "load rejects truncated files" (fun () ->
        let path = tmp "wh_short.bin" in
        let oc = open_out_bin path in
        output_string oc "mini";
        close_out oc;
        (match Warehouse.load path with
        | exception Warehouse.Error { kind = Warehouse.Corrupt_state; _ } -> ()
        | _ -> Alcotest.fail "expected Corrupt_state");
        Sys.remove path);
  ]

let () = Alcotest.run "persistence" [ ("save-load", tests) ]
