(* Current vs. old detail data (Figure 1): the warehouse keeps a mutable
   current partition of the fact table and an append-only old partition.
   Section 4's observation — old detail can be reduced further because only
   insertions must be survived — shows up directly: the old partition
   pre-aggregates MIN/MAX and shrinks by another two orders of magnitude.

   Run with: dune exec examples/old_detail_aging.exe *)

module R = Workload.Retail
module P = Maintenance.Partitioned

let params = { R.small_params with R.days = 30; seed = 99 }

(* revenue / traffic / price-ceiling profile per month *)
let profile =
  let a = Algebra.Attr.make in
  {
    Algebra.View.name = "monthly_profile";
    having = [];
    select =
      [
        Algebra.Select_item.group (a "time" "month");
        Algebra.Select_item.Agg
          (Algebra.Aggregate.make ~alias:"Revenue" Algebra.Aggregate.Sum
             (Some (a "sale" "price")));
        Algebra.Select_item.Agg
          (Algebra.Aggregate.make ~alias:"Sales" Algebra.Aggregate.Count_star
             None);
        Algebra.Select_item.Agg
          (Algebra.Aggregate.make ~alias:"MaxPrice" Algebra.Aggregate.Max
             (Some (a "sale" "price")));
      ];
    tables = [ "sale"; "time" ];
    locals = [];
    joins = [ { Algebra.View.src = a "sale" "timeid"; dst = a "time" "id" } ];
  }

let show_profile p =
  print_string
    (Warehouse.Storage.render_profile Warehouse.Storage.paper_model
       (P.detail_profile p))

let () =
  let db = R.load params in
  let boundary = ref 10 in
  let is_old tup =
    match tup.(1) with Relational.Value.Int t -> t <= !boundary | _ -> false
  in
  let p = P.init db profile ~is_old in
  print_endline "detail data, split at day 10:";
  show_profile p;

  (* a week of traffic: new sales land in the current partition; prices of
     recent sales get corrected; old sales are immutable *)
  let rng = Workload.Prng.create 17 in
  for _ = 1 to 7 do
    let inserts = { Workload.Delta_gen.insert = 1; delete = 0; update = 0 } in
    let stream =
      Workload.Delta_gen.stream_for ~mix:inserts rng db ~tables:[ "sale" ]
        ~n:150
    in
    P.apply_batch p stream
  done;
  Printf.printf "\nafter a week: merged view == recomputed: %b\n"
    (Relational.Relation.equal (P.view_contents p)
       (Algebra.Eval.eval db profile));

  (* nightly job: age days 11..20 out of the current partition *)
  let aged =
    Relational.Database.fold db "sale"
      (fun tup acc ->
        match tup.(1) with
        | Relational.Value.Int t when t > 10 && t <= 20 -> tup :: acc
        | _ -> acc)
      []
  in
  boundary := 20;
  P.age_out p aged;
  Printf.printf "aged %d facts into the old partition; view unchanged: %b\n"
    (List.length aged)
    (Relational.Relation.equal (P.view_contents p)
       (Algebra.Eval.eval db profile));
  print_endline "detail data after aging (old partition stays tiny):";
  show_profile p
