(* Clickstream analytics: a mixed star/snowflake over an append-heavy event
   stream. Shows (1) the per-session rollup needing NO event detail at all,
   (2) DISTINCT through the snowflake, and (3) the append-only relaxation
   turning a MIN/MAX view self-maintainable without detail.

   Run with: dune exec examples/clickstream_analytics.exe *)

module C = Workload.Clickstream
module Engines = Maintenance.Engines

let verify name e db view =
  Printf.printf "  %-22s maintained == recomputed: %b\n" name
    (Relational.Relation.equal
       (Engines.view_contents e)
       (Algebra.Eval.eval db view))

let () =
  let db = C.load C.small_params in
  let views =
    [ C.traffic_by_section; C.engagement_by_channel; C.events_per_session ]
  in
  List.iter
    (fun v ->
      let d = Mindetail.Derive.derive db v in
      Printf.printf "%s: auxiliary views %s%s\n" v.Algebra.View.name
        (String.concat ", "
           (List.map
              (fun (s : Mindetail.Auxview.t) -> s.Mindetail.Auxview.name)
              (Mindetail.Derive.specs d)))
        (match Mindetail.Derive.omitted_tables d with
        | [] -> ""
        | ts -> Printf.sprintf " (omitted: %s)" (String.concat ", " ts)))
    views;

  (* the live summaries, fed by a mixed change stream *)
  let engines = List.map (fun v -> (v, Engines.minimal db v)) views in
  let rng = Workload.Prng.create 808 in
  let deltas = Workload.Delta_gen.stream rng db ~n:1_500 in
  Printf.printf "\ningesting %d source changes...\n" (List.length deltas);
  List.iter (fun (_, e) -> Engines.apply_batch e deltas) engines;
  List.iter (fun (v, e) -> verify v.Algebra.View.name e db v) engines;

  (* dwell_extremes holds MIN/MAX: in the default mode it needs the full
     compressed event detail, but events are append-only in practice *)
  print_endline "\ndwell_extremes (MIN/MAX view) under the two regimes:";
  let standard = Mindetail.Derive.derive db C.dwell_extremes in
  let append =
    Mindetail.Derive.derive_with Mindetail.Derive.append_only_options db
      C.dwell_extremes
  in
  Printf.printf "  standard: omitted [%s]\n"
    (String.concat ", " (Mindetail.Derive.omitted_tables standard));
  Printf.printf "  append-only: omitted [%s]\n"
    (String.concat ", " (Mindetail.Derive.omitted_tables append));
  let e = Engines.append_only db C.dwell_extremes in
  let inserts = { Workload.Delta_gen.insert = 1; delete = 0; update = 0 } in
  let stream =
    Workload.Delta_gen.stream_for ~mix:inserts rng db ~tables:[ "event" ]
      ~n:1_000
  in
  Engines.apply_batch e stream;
  verify "dwell_extremes" e db C.dwell_extremes;
  let cols, rel = (Algebra.Eval.output_columns C.traffic_by_section,
                   Engines.view_contents (List.assq C.traffic_by_section engines)) in
  print_endline "\ntraffic_by_section:";
  print_string (Relational.Table_printer.render_relation ~columns:cols rel)
