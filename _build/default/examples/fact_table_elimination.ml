(* Omitting the huge fact table (Section 3.3): when the view groups by the
   key of a dimension, the fact table transitively depends on everything,
   sits in nobody's Need set and feeds only CSMAS aggregates — so its
   auxiliary view is eliminated and the warehouse stores only the tiny
   dimension detail table.

   Run with: dune exec examples/fact_table_elimination.exe *)

module R = Workload.Retail

let () =
  let source = R.load R.small_params in
  let view = R.sales_by_time in

  let d = Mindetail.Derive.derive source view in
  print_string (Mindetail.Explain.report d);
  (match Mindetail.Derive.omitted_tables d with
  | [ "sale" ] -> print_endline "=> the fact table needs NO detail copy at all"
  | other ->
    Printf.printf "unexpected omissions: [%s]\n" (String.concat ", " other));

  let wh = Warehouse.create source in
  Warehouse.add_view wh view;
  print_endline "\ndetail storage (note: no saleDTL):";
  print_string
    (Warehouse.Storage.render_profile Warehouse.Storage.paper_model
       (Warehouse.detail_profile wh));

  (* maintenance still works on fact inserts, deletes and price updates *)
  let rng = Workload.Prng.create 77 in
  let deltas =
    Workload.Delta_gen.stream_for rng source ~tables:[ "sale"; "time" ]
      ~n:1_000
  in
  Warehouse.ingest wh deltas;
  let _, maintained = Warehouse.query wh "sales_by_time" in
  Printf.printf
    "\nafter %d changes, maintained view matches recomputation: %b\n"
    (List.length deltas)
    (Relational.Relation.equal maintained (Algebra.Eval.eval source view))
