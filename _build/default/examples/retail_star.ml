(* The paper's running example (Section 1.1) at laptop scale: the grocery
   chain star schema, the product_sales view, and a storage comparison of
   the three detail-data strategies — full replication, PSJ auxiliary views
   (Quass et al.), and the paper's minimal duplicate-compressed views.

   Run with: dune exec examples/retail_star.exe *)

module R = Workload.Retail

let params =
  {
    R.days = 60;
    stores = 4;
    products = 120;
    sold_per_store_day = 30;
    tx_per_product = 5;
    brands = 12;
    seed = 1998;
  }

let () =
  Printf.printf "loading retail star schema: %d fact rows...\n%!"
    (R.fact_rows params);
  let source = R.load params in
  let view = R.product_sales in

  (* the paper's derivation *)
  let d = Mindetail.Derive.derive source view in
  print_string (Mindetail.Explain.report d);

  (* three warehouses over the same source *)
  let strategies =
    [ (Warehouse.Replicate, "full replication");
      (Warehouse.Psj, "PSJ auxiliary views");
      (Warehouse.Minimal, "minimal (this paper)") ]
  in
  let warehouses =
    List.map
      (fun (s, label) ->
        let wh = Warehouse.create source in
        Warehouse.add_view ~strategy:s wh view;
        (wh, label))
      strategies
  in
  print_endline "detail data stored per strategy:";
  List.iter
    (fun (wh, label) ->
      let profile = Warehouse.detail_profile wh in
      Printf.printf "%-22s %8d rows  %10s\n" label
        (List.fold_left (fun acc (_, r, _) -> acc + r) 0 profile)
        (Warehouse.Storage.show_bytes
           (Warehouse.Storage.profile_bytes Warehouse.Storage.paper_model
              profile)))
    warehouses;

  (* a month of source activity *)
  let rng = Workload.Prng.create 2024 in
  let deltas = Workload.Delta_gen.stream rng source ~n:2_000 in
  Printf.printf "\ningesting %d source changes...\n%!" (List.length deltas);
  List.iter (fun (wh, _) -> Warehouse.ingest wh deltas) warehouses;

  (* all strategies agree with recomputation *)
  let expected = Algebra.Eval.eval source view in
  List.iter
    (fun (wh, label) ->
      let _, got = Warehouse.query wh view.Algebra.View.name in
      Printf.printf "%-22s matches recomputation: %b\n" label
        (Relational.Relation.equal got expected))
    warehouses;

  print_endline "\nproduct_sales after the change stream:";
  let wh_min = fst (List.nth warehouses 2) in
  let cols, rel = Warehouse.query wh_min "product_sales" in
  print_string (Relational.Table_printer.render_relation ~columns:cols rel)
