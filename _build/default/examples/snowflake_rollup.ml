(* Snowflake schemas (Section 3.3): the extended join graph of
   sale -> product -> brand -> category is a tree, so Algorithm 3.2 applies
   unchanged — semijoin reductions chain through the hierarchy, and a
   DISTINCT that is functionally determined by a key-annotated ancestor even
   lets the fact auxiliary view disappear.

   Run with: dune exec examples/snowflake_rollup.exe *)

module S = Workload.Snowflake

let exercise source view =
  let d = Mindetail.Derive.derive source view in
  print_string (Mindetail.Explain.report d);
  let wh = Warehouse.create source in
  Warehouse.add_view wh view;
  let rng = Workload.Prng.create 5 in
  let deltas = Workload.Delta_gen.stream rng source ~n:800 in
  Warehouse.ingest wh deltas;
  let name = view.Algebra.View.name in
  let _, maintained = Warehouse.query wh name in
  Printf.printf "%s maintained over %d changes, matches recomputation: %b\n\n"
    name (List.length deltas)
    (Relational.Relation.equal maintained (Algebra.Eval.eval source view))

let () =
  exercise (S.load S.small_params) S.category_revenue;
  exercise (S.load S.small_params) S.product_brand_profile
