examples/streaming_maintenance.mli:
