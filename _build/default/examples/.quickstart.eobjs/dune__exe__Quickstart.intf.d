examples/quickstart.mli:
