examples/quickstart.ml: Algebra Mindetail Printf Relational Sqlfront Warehouse
