examples/fact_table_elimination.mli:
