examples/old_detail_aging.mli:
