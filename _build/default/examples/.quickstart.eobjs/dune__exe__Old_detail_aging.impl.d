examples/old_detail_aging.ml: Algebra Array List Maintenance Printf Relational Warehouse Workload
