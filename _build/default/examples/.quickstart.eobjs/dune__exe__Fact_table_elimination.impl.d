examples/fact_table_elimination.ml: Algebra List Mindetail Printf Relational String Warehouse Workload
