examples/retail_star.ml: Algebra List Mindetail Printf Relational Warehouse Workload
