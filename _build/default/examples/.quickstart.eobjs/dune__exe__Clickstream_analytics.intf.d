examples/clickstream_analytics.mli:
