examples/streaming_maintenance.ml: Algebra List Printf Relational Sys Warehouse Workload
