examples/snowflake_rollup.ml: Algebra List Mindetail Printf Relational Warehouse Workload
