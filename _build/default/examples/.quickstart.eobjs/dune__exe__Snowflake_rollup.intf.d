examples/snowflake_rollup.mli:
