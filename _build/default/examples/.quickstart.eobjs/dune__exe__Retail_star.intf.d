examples/retail_star.mli:
