examples/clickstream_analytics.ml: Algebra List Maintenance Mindetail Printf Relational String Workload
