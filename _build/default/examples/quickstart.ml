(* Quickstart: define a schema and a summary view in SQL, let the warehouse
   derive its minimal detail data, and keep the summary fresh from a change
   stream — without ever re-reading the base tables.

   Run with: dune exec examples/quickstart.exe *)

let schema =
  {|
  CREATE TABLE customer (id INT PRIMARY KEY, region TEXT, segment TEXT);
  CREATE TABLE orders (id INT PRIMARY KEY,
                       customerid INT REFERENCES customer,
                       amount INT UPDATABLE);

  INSERT INTO customer VALUES (1, 'north', 'retail');
  INSERT INTO customer VALUES (2, 'north', 'wholesale');
  INSERT INTO customer VALUES (3, 'south', 'retail');
  INSERT INTO orders VALUES (10, 1, 120);
  INSERT INTO orders VALUES (11, 2, 80);
  INSERT INTO orders VALUES (12, 3, 200);
|}

let view_sql =
  {|CREATE VIEW revenue_by_region AS
    SELECT region, SUM(amount) AS Revenue, COUNT(*) AS Orders
    FROM orders, customer
    WHERE orders.customerid = customer.id
    GROUP BY region;|}

let print_view wh name =
  let cols, rel = Warehouse.query wh name in
  print_string (Relational.Table_printer.render_relation ~columns:cols rel)

let () =
  (* the operational store (simulated data sources) *)
  let source = Relational.Database.create () in
  ignore (Sqlfront.Elaborate.run_script source schema);

  (* the warehouse: registering the view runs Algorithm 3.2 and performs the
     one-time initial load *)
  let wh = Warehouse.create source in
  Warehouse.add_view_sql wh view_sql;

  print_endline "derivation:";
  (match Warehouse.derivation_of wh "revenue_by_region" with
  | Some d -> print_string (Mindetail.Explain.report d)
  | None -> assert false);

  print_endline "initial contents:";
  print_view wh "revenue_by_region";

  (* sources change; the warehouse sees only the deltas *)
  let changes =
    Sqlfront.Elaborate.run_script source
      {|INSERT INTO orders VALUES (13, 1, 50);
        UPDATE orders SET amount = 100 WHERE id = 11;
        DELETE FROM orders WHERE id = 12;|}
    |> Sqlfront.Elaborate.changes
  in
  Warehouse.ingest wh changes;

  print_endline "after one order added, one re-priced, one cancelled:";
  print_view wh "revenue_by_region";

  (* sanity: the maintained view equals recomputation from the source *)
  let _, maintained = Warehouse.query wh "revenue_by_region" in
  let expected =
    match Warehouse.derivation_of wh "revenue_by_region" with
    | Some d -> Algebra.Eval.eval source d.Mindetail.Derive.view
    | None -> assert false
  in
  Printf.printf "matches recomputation: %b\n"
    (Relational.Relation.equal maintained expected)
