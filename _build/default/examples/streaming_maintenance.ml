(* Continuous operation: a warehouse with several summary tables over one
   source, ingesting change batches and reporting per-batch maintenance
   statistics. Demonstrates that cost tracks the delta, not the base size.

   Run with: dune exec examples/streaming_maintenance.exe *)

module R = Workload.Retail

let () =
  let params = { R.small_params with days = 60; products = 200; seed = 3 } in
  let source = R.load params in
  let wh = Warehouse.create source in
  List.iter (Warehouse.add_view wh)
    [ R.product_sales; R.monthly_revenue; R.sales_by_time ];

  Printf.printf "warehouse with %d summary tables over %d fact rows\n\n"
    (List.length (Warehouse.view_names wh))
    (Relational.Database.row_count source "sale");

  let rng = Workload.Prng.create 11 in
  for batch = 1 to 10 do
    let deltas = Workload.Delta_gen.stream rng source ~n:500 in
    let t0 = Sys.time () in
    Warehouse.ingest wh deltas;
    let dt = Sys.time () -. t0 in
    let rows =
      List.fold_left (fun acc (_, r, _) -> acc + r) 0 (Warehouse.detail_profile wh)
    in
    Printf.printf
      "batch %2d: %4d changes ingested in %6.1f ms  (detail rows: %d)\n%!"
      batch (List.length deltas) (dt *. 1000.) rows
  done;

  print_endline "\nfinal verification against recomputation:";
  List.iter
    (fun view ->
      let name = view.Algebra.View.name in
      let _, maintained = Warehouse.query wh name in
      Printf.printf "  %-16s %b\n" name
        (Relational.Relation.equal maintained (Algebra.Eval.eval source view)))
    [ R.product_sales; R.monthly_revenue; R.sales_by_time ]
