(* Tests for the workload substrate: the deterministic PRNG, the retail and
   snowflake generators, and the legality of generated delta streams. *)

open Helpers

let test case fn = Alcotest.test_case case `Quick fn

let prng_tests =
  [
    test "same seed yields the same stream" (fun () ->
        let a = Workload.Prng.create 42 and b = Workload.Prng.create 42 in
        for _ = 1 to 50 do
          Alcotest.(check int) "step" (Workload.Prng.int a 1_000_000)
            (Workload.Prng.int b 1_000_000)
        done);
    test "different seeds diverge" (fun () ->
        let a = Workload.Prng.create 1 and b = Workload.Prng.create 2 in
        let same = ref 0 in
        for _ = 1 to 32 do
          if Workload.Prng.int a 1000 = Workload.Prng.int b 1000 then incr same
        done;
        Alcotest.(check bool) "mostly different" true (!same < 8));
    test "int stays in range" (fun () ->
        let rng = Workload.Prng.create 7 in
        for _ = 1 to 500 do
          let x = Workload.Prng.int rng 13 in
          Alcotest.(check bool) "range" true (x >= 0 && x < 13)
        done);
    test "int covers the range" (fun () ->
        let rng = Workload.Prng.create 7 in
        let seen = Array.make 8 false in
        for _ = 1 to 400 do
          seen.(Workload.Prng.int rng 8) <- true
        done;
        Alcotest.(check bool) "all buckets hit" true
          (Array.for_all Fun.id seen));
    test "int rejects non-positive bound" (fun () ->
        let rng = Workload.Prng.create 7 in
        match Workload.Prng.int rng 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    test "pick selects from the list" (fun () ->
        let rng = Workload.Prng.create 7 in
        for _ = 1 to 50 do
          Alcotest.(check bool) "member" true
            (List.mem (Workload.Prng.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
        done);
    test "chance extremes" (fun () ->
        let rng = Workload.Prng.create 7 in
        for _ = 1 to 50 do
          Alcotest.(check bool) "never" false (Workload.Prng.chance rng 0.);
          Alcotest.(check bool) "always" true (Workload.Prng.chance rng 1.)
        done);
    test "split yields an independent stream" (fun () ->
        let a = Workload.Prng.create 42 in
        let b = Workload.Prng.split a in
        (* consuming b must not change what a would have produced next
           relative to a fresh clone advanced identically *)
        let _ = Workload.Prng.int b 100 in
        let x = Workload.Prng.int a 1_000_000 in
        Alcotest.(check bool) "progresses" true (x >= 0));
  ]

let retail_tests =
  [
    test "fact_rows matches the paper's arithmetic" (fun () ->
        Alcotest.(check int) "paper" 13_140_000_000
          (Workload.Retail.fact_rows Workload.Retail.paper_params));
    test "load produces the declared row counts" (fun () ->
        let p = Workload.Retail.small_params in
        let db = Workload.Retail.load p in
        Alcotest.(check int) "time" p.Workload.Retail.days
          (Database.row_count db "time");
        Alcotest.(check int) "product" p.Workload.Retail.products
          (Database.row_count db "product");
        Alcotest.(check int) "store" p.Workload.Retail.stores
          (Database.row_count db "store");
        Alcotest.(check int) "sale" (Workload.Retail.fact_rows p)
          (Database.row_count db "sale"));
    test "load is deterministic per seed" (fun () ->
        let p = Workload.Retail.small_params in
        let r1 =
          Algebra.Eval.eval (Workload.Retail.load p) Workload.Retail.monthly_revenue
        in
        let r2 =
          Algebra.Eval.eval (Workload.Retail.load p) Workload.Retail.monthly_revenue
        in
        Alcotest.check relation "same" r1 r2);
    test "both years are represented" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let years =
          Database.fold db "time"
            (fun tup acc ->
              if List.exists (Value.equal tup.(3)) acc then acc
              else tup.(3) :: acc)
            []
        in
        Alcotest.(check int) "two years" 2 (List.length years));
    test "exposed_time changes the updatable declaration" (fun () ->
        let db = Workload.Retail.empty ~exposed_time:true () in
        Alcotest.(check bool) "year updatable" true
          (List.mem "year" (Database.updatable_columns db "time"));
        let db' = Workload.Retail.empty () in
        Alcotest.(check bool) "year fixed" false
          (List.mem "year" (Database.updatable_columns db' "time")));
    test "snowflake load respects referential integrity" (fun () ->
        let db = Workload.Snowflake.load Workload.Snowflake.small_params in
        Alcotest.(check int) "sales"
          Workload.Snowflake.small_params.Workload.Snowflake.sales
          (Database.row_count db "sale"));
  ]

let clickstream_tests =
  [
    test "clickstream load respects declared sizes" (fun () ->
        let p = Workload.Clickstream.small_params in
        let db = Workload.Clickstream.load p in
        Alcotest.(check int) "events" p.Workload.Clickstream.events
          (Database.row_count db "event");
        Alcotest.(check int) "sessions" p.Workload.Clickstream.sessions
          (Database.row_count db "session"));
    test "clickstream views validate and derive" (fun () ->
        let db = Workload.Clickstream.empty () in
        List.iter
          (fun v -> View.validate db v)
          [ Workload.Clickstream.traffic_by_section;
            Workload.Clickstream.engagement_by_channel;
            Workload.Clickstream.events_per_session;
            Workload.Clickstream.dwell_extremes ];
        let d =
          Mindetail.Derive.derive db Workload.Clickstream.events_per_session
        in
        Alcotest.(check (list string)) "event omitted" [ "event" ]
          (Mindetail.Derive.omitted_tables d));
    test "clickstream views maintain under random streams" (fun () ->
        List.iter
          (fun view ->
            let db = Workload.Clickstream.load Workload.Clickstream.small_params in
            let e = Maintenance.Engines.minimal db view in
            let rng = Workload.Prng.create 2_001 in
            for round = 1 to 3 do
              Maintenance.Engines.apply_batch e
                (Workload.Delta_gen.stream rng db ~n:60);
              Alcotest.check relation
                (Printf.sprintf "%s round %d" view.View.name round)
                (Algebra.Eval.eval db view)
                (Maintenance.Engines.view_contents e)
            done)
          [ Workload.Clickstream.traffic_by_section;
            Workload.Clickstream.engagement_by_channel;
            Workload.Clickstream.events_per_session;
            Workload.Clickstream.dwell_extremes ]);
    test "dwell_extremes eliminates detail in append-only mode" (fun () ->
        let db = Workload.Clickstream.empty () in
        Alcotest.(check (list string)) "omitted" [ "event" ]
          (Mindetail.Derive.omitted_tables
             (Mindetail.Derive.derive_with
                Mindetail.Derive.append_only_options db
                Workload.Clickstream.dwell_extremes)));
  ]

let stream_tests =
  [
    test "streams only touch requested tables" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let rng = Workload.Prng.create 3 in
        let deltas =
          Workload.Delta_gen.stream_for rng db ~tables:[ "sale" ] ~n:100
        in
        Alcotest.(check bool) "only sale" true
          (List.for_all
             (fun (d : Delta.t) -> String.equal d.Delta.table "sale")
             deltas));
    test "streams respect the op mix" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let rng = Workload.Prng.create 3 in
        let inserts_only =
          { Workload.Delta_gen.insert = 1; delete = 0; update = 0 }
        in
        let deltas = Workload.Delta_gen.stream ~mix:inserts_only rng db ~n:80 in
        Alcotest.(check bool) "inserts only" true
          (List.for_all
             (fun (d : Delta.t) ->
               match d.Delta.change with Delta.Insert _ -> true | _ -> false)
             deltas));
    test "streams are already applied to the store" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let before = Database.row_count db "sale" in
        let rng = Workload.Prng.create 3 in
        let inserts_only =
          { Workload.Delta_gen.insert = 1; delete = 0; update = 0 }
        in
        let deltas =
          Workload.Delta_gen.stream_for ~mix:inserts_only rng db
            ~tables:[ "sale" ] ~n:25
        in
        Alcotest.(check int) "applied" (before + List.length deltas)
          (Database.row_count db "sale"));
    test "replaying a stream on a pre-stream replica is legal" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let replica = Database.copy db in
        let rng = Workload.Prng.create 9 in
        let deltas = Workload.Delta_gen.stream rng db ~n:200 in
        (* must not raise *)
        Database.apply_all replica deltas;
        Alcotest.(check int) "same sale count" (Database.row_count db "sale")
          (Database.row_count replica "sale"));
    test "updates only touch declared updatable columns" (fun () ->
        let db = Workload.Retail.load Workload.Retail.small_params in
        let rng = Workload.Prng.create 11 in
        let deltas = Workload.Delta_gen.stream rng db ~n:300 in
        List.iter
          (fun (d : Delta.t) ->
            match d.Delta.change with
            | Delta.Update _ as c ->
              let updatable = Database.updatable_columns db d.Delta.table in
              let schema = Database.schema_of db d.Delta.table in
              List.iter
                (fun idx ->
                  let col = schema.Schema.columns.(idx).Schema.col_name in
                  Alcotest.(check bool) (d.Delta.table ^ "." ^ col) true
                    (List.mem col updatable))
                (Delta.changed_indices c)
            | Delta.Insert _ | Delta.Delete _ -> ())
          deltas);
    test "empty store yields an empty stream gracefully" (fun () ->
        let db = Workload.Retail.empty () in
        let rng = Workload.Prng.create 1 in
        let deltas =
          Workload.Delta_gen.stream_for rng db ~tables:[ "sale" ] ~n:10
            ~mix:{ Workload.Delta_gen.insert = 0; delete = 1; update = 0 }
        in
        Alcotest.(check (list string)) "none" []
          (List.map (fun (d : Delta.t) -> d.Delta.table) deltas));
  ]

let () =
  Alcotest.run "workload"
    [
      ("prng", prng_tests);
      ("generators", retail_tests);
      ("clickstream", clickstream_tests);
      ("delta-streams", stream_tests);
    ]
