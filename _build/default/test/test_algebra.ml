(* Unit tests for the GPSJ algebra: predicates, aggregates, view validation
   and the reference evaluator. *)

open Helpers
module Eval = Algebra.Eval

let test case fn = Alcotest.test_case case `Quick fn

(* --- comparison and predicates ------------------------------------------ *)

let cmp_tests =
  [
    test "eval covers all operators" (fun () ->
        let check op l r expected =
          Alcotest.(check bool) (Cmp.to_string op) expected (Cmp.eval op l r)
        in
        check Cmp.Eq (i 1) (i 1) true;
        check Cmp.Eq (i 1) (i 2) false;
        check Cmp.Neq (i 1) (i 2) true;
        check Cmp.Lt (i 1) (i 2) true;
        check Cmp.Lt (i 2) (i 2) false;
        check Cmp.Le (i 2) (i 2) true;
        check Cmp.Gt (i 3) (i 2) true;
        check Cmp.Ge (i 2) (i 3) false;
        check Cmp.Lt (s "a") (s "b") true);
    test "of_string round-trips to_string" (fun () ->
        List.iter
          (fun op ->
            Alcotest.(check bool) (Cmp.to_string op) true
              (Cmp.of_string (Cmp.to_string op) = Some op))
          [ Cmp.Eq; Cmp.Neq; Cmp.Lt; Cmp.Le; Cmp.Gt; Cmp.Ge ]);
    test "predicate against constant and column" (fun () ->
        let env = function
          | { Attr.table = "t"; column = "x" } -> i 5
          | { Attr.table = "t"; column = "y" } -> i 7
          | _ -> Alcotest.fail "unexpected attr"
        in
        let p1 = local (a "t" "x") Cmp.Lt (i 6) in
        Alcotest.(check bool) "const" true (Predicate.holds p1 env);
        let p2 =
          { Predicate.left = a "t" "x"; op = Cmp.Lt; right = Predicate.Col (a "t" "y") }
        in
        Alcotest.(check bool) "col" true (Predicate.holds p2 env);
        Alcotest.(check (list string)) "attrs" [ "t.x"; "t.y" ]
          (List.map Attr.to_string (Predicate.attrs p2)));
  ]

(* --- aggregate computation ------------------------------------------------ *)

let agg func ?(distinct = false) arg =
  Aggregate.make ~distinct ~alias:"out" func arg

let occs vs = List.map (fun (v, n) -> (v, n)) vs

let agg_tests =
  [
    test "COUNT(*) counts with multiplicities" (fun () ->
        Alcotest.(check (option value)) "count" (Some (i 5))
          (Aggregate.compute (agg Aggregate.Count_star None)
             (occs [ (i 0, 2); (i 0, 3) ])));
    test "empty group yields None" (fun () ->
        Alcotest.(check (option value)) "none" None
          (Aggregate.compute (agg Aggregate.Count_star None) []));
    test "SUM weights by multiplicity" (fun () ->
        Alcotest.(check (option value)) "sum" (Some (i 26))
          (Aggregate.compute (agg Aggregate.Sum (Some (a "t" "x")))
             (occs [ (i 10, 2); (i 3, 2) ])));
    test "AVG is float" (fun () ->
        Alcotest.(check (option value)) "avg" (Some (f 6.5))
          (Aggregate.compute (agg Aggregate.Avg (Some (a "t" "x")))
             (occs [ (i 10, 2); (i 3, 2) ])));
    test "MIN/MAX ignore multiplicities" (fun () ->
        Alcotest.(check (option value)) "min" (Some (i 3))
          (Aggregate.compute (agg Aggregate.Min (Some (a "t" "x")))
             (occs [ (i 10, 5); (i 3, 1) ]));
        Alcotest.(check (option value)) "max" (Some (i 10))
          (Aggregate.compute (agg Aggregate.Max (Some (a "t" "x")))
             (occs [ (i 10, 1); (i 3, 9) ])));
    test "DISTINCT deduplicates before aggregating" (fun () ->
        Alcotest.(check (option value)) "count distinct" (Some (i 2))
          (Aggregate.compute (agg ~distinct:true Aggregate.Count (Some (a "t" "x")))
             (occs [ (i 10, 3); (i 10, 1); (i 3, 2) ]));
        Alcotest.(check (option value)) "sum distinct" (Some (i 13))
          (Aggregate.compute (agg ~distinct:true Aggregate.Sum (Some (a "t" "x")))
             (occs [ (i 10, 3); (i 10, 1); (i 3, 2) ])));
    test "MIN over strings" (fun () ->
        Alcotest.(check (option value)) "min" (Some (s "a"))
          (Aggregate.compute (agg Aggregate.Min (Some (a "t" "x")))
             (occs [ (s "b", 1); (s "a", 1) ])));
    test "make rejects inconsistent shapes" (fun () ->
        let expect_invalid f =
          match f () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"
        in
        expect_invalid (fun () ->
            Aggregate.make ~alias:"x" Aggregate.Count_star (Some (a "t" "x")));
        expect_invalid (fun () -> Aggregate.make ~alias:"x" Aggregate.Sum None);
        expect_invalid (fun () ->
            Aggregate.make ~distinct:true ~alias:"x" Aggregate.Count_star None));
  ]

(* --- view validation ------------------------------------------------------ *)

let db () = Workload.Retail.empty ()

let base_view =
  {
    View.name = "v";
    having = [];
    select = [ group (a "time" "month"); sum ~alias:"total" (a "sale" "price") ];
    tables = [ "sale"; "time" ];
    locals = [];
    joins = [ join (a "sale" "timeid") (a "time" "id") ];
  }

let expect_invalid v =
  match View.validate (db ()) v with
  | exception View.Invalid _ -> ()
  | () -> Alcotest.fail "expected View.Invalid"

let validation_tests =
  [
    test "paper views validate" (fun () ->
        View.validate (db ()) Workload.Retail.product_sales;
        View.validate (db ()) Workload.Retail.product_sales_max;
        View.validate (db ()) Workload.Retail.sales_by_time;
        View.validate (db ()) Workload.Retail.monthly_revenue;
        View.validate (db ()) Workload.Retail.months;
        View.validate (Workload.Snowflake.empty ())
          Workload.Snowflake.category_revenue);
    test "empty select rejected" (fun () ->
        expect_invalid { base_view with View.select = [] });
    test "unknown table rejected" (fun () ->
        expect_invalid { base_view with View.tables = [ "sale"; "nosuch" ] });
    test "unknown attribute rejected" (fun () ->
        expect_invalid
          { base_view with
            View.select = base_view.View.select @ [ group (a "time" "bogus") ] });
    test "attribute outside FROM rejected" (fun () ->
        expect_invalid
          { base_view with
            View.select = base_view.View.select @ [ group (a "product" "brand") ]
          });
    test "duplicate aliases rejected" (fun () ->
        expect_invalid
          { base_view with
            View.select =
              [ group ~alias:"x" (a "time" "month");
                sum ~alias:"x" (a "sale" "price") ] });
    test "join not on key rejected" (fun () ->
        expect_invalid
          { base_view with
            View.joins = [ join (a "sale" "timeid") (a "time" "day") ] });
    test "disconnected graph rejected" (fun () ->
        expect_invalid { base_view with View.joins = [] });
    test "two incoming joins rejected" (fun () ->
        expect_invalid
          { base_view with
            View.tables = [ "sale"; "store"; "time" ];
            joins =
              [ join (a "sale" "timeid") (a "time" "id");
                join (a "store" "id") (a "time" "id") ] });
    test "non-numeric SUM rejected" (fun () ->
        expect_invalid
          { base_view with
            View.tables = [ "sale"; "time"; "product" ];
            joins =
              base_view.View.joins
              @ [ join (a "sale" "productid") (a "product" "id") ];
            select =
              base_view.View.select @ [ sum ~alias:"s2" (a "product" "brand") ]
          });
    test "superfluous MIN over group-by rejected" (fun () ->
        expect_invalid
          { base_view with
            View.select =
              base_view.View.select @ [ min_ ~alias:"m" (a "time" "month") ] });
    test "type-mismatched local rejected" (fun () ->
        expect_invalid
          { base_view with
            View.locals = [ local (a "time" "year") Cmp.Eq (s "1997") ] });
    test "non-local column condition rejected" (fun () ->
        expect_invalid
          { base_view with
            View.locals =
              [ { Predicate.left = a "time" "day"; op = Cmp.Eq;
                  right = Predicate.Col (a "sale" "price") } ] });
    test "root and accessors" (fun () ->
        Alcotest.(check string) "root" "sale" (View.root base_view);
        Alcotest.(check (list string)) "preserved sale"
          [ "price" ]
          (View.preserved_columns (db ()) base_view ~table:"sale");
        Alcotest.(check (list string)) "join cols sale" [ "timeid" ]
          (View.join_columns base_view ~table:"sale");
        Alcotest.(check (list string)) "join cols time" [ "id" ]
          (View.join_columns base_view ~table:"time"));
    test "to_sql re-parses" (fun () ->
        let sql = View.to_sql Workload.Retail.product_sales ^ ";" in
        match Sqlfront.Parser.statement sql with
        | Sqlfront.Ast.Create_view { name; select } ->
          let v = Sqlfront.Elaborate.view_of_select (db ()) ~name select in
          Alcotest.(check bool) "equal" true (v = Workload.Retail.product_sales)
        | _ -> Alcotest.fail "expected CREATE VIEW");
  ]

(* --- evaluation ------------------------------------------------------------ *)

let eval_tests =
  [
    test "product_sales on the paper instance" (fun () ->
        let db = paper_example_db () in
        let got = Eval.eval db Workload.Retail.product_sales in
        (* month 1: sales 1-6 (prices 10,10,10,15,15,20), brands acme+apex;
           month 2: sale 7 (price 30), brand apex; 1996 sale filtered out *)
        let expected =
          rel
            [
              [ i 1; i 80; i 6; i 2 ];
              [ i 2; i 30; i 1; i 1 ];
            ]
        in
        Alcotest.check relation "contents" expected got);
    test "filters drop non-qualifying rows" (fun () ->
        let db = paper_example_db () in
        (* no sale references the 1996 time tuple: the filtered view is empty *)
        let v =
          { base_view with
            View.locals = [ local (a "time" "year") Cmp.Eq (i 1996) ] }
        in
        Alcotest.(check int) "no groups" 0
          (Relation.cardinality (Eval.eval db v));
        (* a price filter keeps only the qualifying facts *)
        let v2 =
          { base_view with
            View.locals = [ local (a "sale" "price") Cmp.Ge (i 20) ] }
        in
        (* qualifying: (2,1,20) month 1 and (3,2,30) month 2 *)
        Alcotest.check relation "price filter"
          (rel [ [ i 1; i 20 ]; [ i 2; i 30 ] ])
          (Eval.eval db v2));
    test "single-table projection eliminates duplicates" (fun () ->
        let db = paper_example_db () in
        let got = Eval.eval db Workload.Retail.months in
        (* distinct (year, month): (1997,1), (1997,2), (1996,1) *)
        Alcotest.check relation "months"
          (rel [ [ i 1997; i 1 ]; [ i 1997; i 2 ]; [ i 1996; i 1 ] ])
          got);
    test "view with no aggregates and joins" (fun () ->
        let db = paper_example_db () in
        let v =
          {
            View.name = "brands_sold";
            having = [];
            select = [ group (a "product" "brand") ];
            tables = [ "sale"; "product" ];
            locals = [];
            joins = [ join (a "sale" "productid") (a "product" "id") ];
          }
        in
        Alcotest.check relation "brands"
          (rel [ [ s "acme" ]; [ s "apex" ] ])
          (Eval.eval db v));
    test "MAX and AVG across groups" (fun () ->
        let db = paper_example_db () in
        let v =
          {
            View.name = "by_product";
            having = [];
            select =
              [ group (a "sale" "productid");
                max_ ~alias:"mx" (a "sale" "price");
                avg ~alias:"av" (a "sale" "price") ];
            tables = [ "sale" ];
            locals = [];
            joins = [];
          }
        in
        (* product 1: prices 10,10,15,15,20 -> max 20 avg 14;
           product 2: prices 10,30 -> max 30 avg 20 *)
        Alcotest.check relation "per-product"
          (rel [ [ i 1; i 20; f 14. ]; [ i 2; i 30; f 20. ] ])
          (Eval.eval db v));
    test "empty base yields empty view" (fun () ->
        let db = Workload.Retail.empty () in
        Alcotest.(check int) "empty" 0
          (Relation.cardinality (Eval.eval db Workload.Retail.product_sales)));
    test "output_columns follow select order" (fun () ->
        Alcotest.(check (list string)) "cols"
          [ "month"; "TotalPrice"; "TotalCount"; "DifferentBrands" ]
          (Eval.output_columns Workload.Retail.product_sales));
  ]

let () =
  Alcotest.run "algebra"
    [
      ("cmp+predicate", cmp_tests);
      ("aggregate", agg_tests);
      ("view-validation", validation_tests);
      ("eval", eval_tests);
    ]
