(* Tests for the cross-view sharing analysis (future-work prototype: minimal
   detail data for classes of summary data). *)

open Helpers
module Derive = Mindetail.Derive
module Auxview = Mindetail.Auxview
module Sharing = Mindetail.Sharing

let test case fn = Alcotest.test_case case `Quick fn

let db = Workload.Retail.empty ()

let spec_of view table =
  Option.get (Derive.spec_for (Derive.derive db view) table)

(* a second view over the same schema needing the same product detail *)
let brand_sales =
  {
    View.name = "brand_sales";
    having = [];
    select =
      [
        group (a "product" "brand");
        sum ~alias:"Revenue" (a "sale" "price");
        count_star ~alias:"Sales" ();
      ];
    tables = [ "sale"; "product" ];
    locals = [];
    joins = [ join (a "sale" "productid") (a "product" "id") ];
  }

(* same as product_sales but with a coarser select on the fact table *)
let monthly_count =
  {
    View.name = "monthly_count";
    having = [];
    select =
      [ group (a "time" "month"); count_star ~alias:"Sales" () ];
    tables = [ "sale"; "time" ];
    locals =
      [ local (a "time" "year") Cmp.Eq (i 1997) ];
    joins = [ join (a "sale" "timeid") (a "time" "id") ];
  }

let verdict_tests =
  [
    test "a spec is identical to itself" (fun () ->
        let s = spec_of Workload.Retail.product_sales "sale" in
        Alcotest.(check bool) "identical" true
          (Sharing.compare_specs s s = Sharing.Identical));
    test "identical product details across views" (fun () ->
        let s1 = spec_of Workload.Retail.product_sales "product" in
        let s2 = spec_of brand_sales "product" in
        (* both keep (id, brand): identical modulo the view they serve *)
        Alcotest.(check bool) "identical" true
          (Sharing.compare_specs s1 s2 = Sharing.Identical));
    test "tuple-level PSJ view subsumes the compressed one" (fun () ->
        let compressed = spec_of Workload.Retail.product_sales "sale" in
        let tuple_level =
          Option.get
            (Derive.spec_for
               (Mindetail.Psj.derive db Workload.Retail.product_sales)
               "sale")
        in
        Alcotest.(check bool) "subsumes" true
          (Sharing.compare_specs tuple_level compressed <> Sharing.Unrelated);
        (* but not the other way round: the compressed view lost the key *)
        Alcotest.(check bool) "not backwards" true
          (Sharing.compare_specs compressed tuple_level = Sharing.Unrelated));
    test "finer grouping subsumes coarser (in context)" (fun () ->
        (* product_sales groups saleDTL by (timeid, productid); monthly_count
           needs only (timeid) with a count. The extra semijoin against
           productDTL is vacuous (productDTL has no conditions), which only
           the context-aware comparison can see. *)
        let d = Derive.derive db Workload.Retail.product_sales in
        let fine = Option.get (Derive.spec_for d "sale") in
        let coarse = spec_of monthly_count "sale" in
        Alcotest.(check bool) "conservative says unrelated" true
          (Sharing.compare_specs fine coarse = Sharing.Unrelated);
        let d_coarse = Derive.derive db monthly_count in
        Alcotest.(check bool) "contextual subsumes" true
          (Sharing.compare_in_context d fine d_coarse coarse
          = Sharing.Subsumes));
    test "different conditions are unrelated" (fun () ->
        (* timeDTL of product_sales filters year = 1997; sales_by_time's
           does not, so the filtered one cannot serve it *)
        let filtered = spec_of Workload.Retail.product_sales "time" in
        let unfiltered = spec_of Workload.Retail.sales_by_time "time" in
        Alcotest.(check bool) "filtered cannot serve" true
          (Sharing.compare_specs filtered unfiltered = Sharing.Unrelated);
        (* the unfiltered one keeps id only: it cannot produce month *)
        Alcotest.(check bool) "narrow columns cannot serve" true
          (Sharing.compare_specs unfiltered filtered = Sharing.Unrelated));
  ]

let analyze_tests =
  [
    test "semijoins against differently-filtered targets block sharing"
      (fun () ->
        (* product_sales' saleDTL is semijoin-reduced by a year-filtered
           timeDTL; monthly_revenue's is reduced by an unfiltered one, so the
           structurally identical specs hold different rows and must not be
           shared in that direction *)
        let d_ps = Derive.derive db Workload.Retail.product_sales in
        let d_mr = Derive.derive db Workload.Retail.monthly_revenue in
        let s_ps = Option.get (Derive.spec_for d_ps "sale") in
        let s_mr = Option.get (Derive.spec_for d_mr "sale") in
        Alcotest.(check bool) "filtered cannot serve unfiltered" true
          (Sharing.compare_in_context d_ps s_ps d_mr s_mr
          = Sharing.Unrelated);
        (* the unfiltered one subsumes the filtered one, since the year
           condition is re-checkable through monthly_revenue's timeDTL...
           which it is not (the filter lives on the time view), so it is
           conservatively unrelated as well *)
        Alcotest.(check bool) "reverse also conservative" true
          (Sharing.compare_in_context d_mr s_mr d_ps s_ps
          <> Sharing.Identical));
    test "analyze groups identical specs once" (fun () ->
        let named =
          [
            ("product_sales", Derive.derive db Workload.Retail.product_sales);
            ("brand_sales", Derive.derive db brand_sales);
          ]
        in
        let ops = Sharing.analyze named in
        Alcotest.(check bool) "at least one opportunity" true (ops <> []);
        (* the product detail tables are shared *)
        Alcotest.(check bool) "product shared" true
          (List.exists
             (fun (op : Sharing.opportunity) ->
               (snd op.Sharing.keep).Auxview.base = "product")
             ops));
    test "analyze finds subsumption across grains" (fun () ->
        let named =
          [
            ("product_sales", Derive.derive db Workload.Retail.product_sales);
            ("monthly_count", Derive.derive db monthly_count);
          ]
        in
        let ops = Sharing.analyze named in
        Alcotest.(check bool) "sale shared" true
          (List.exists
             (fun (op : Sharing.opportunity) ->
               (snd op.Sharing.keep).Auxview.base = "sale")
             ops));
    test "no opportunities on disjoint views" (fun () ->
        let named =
          [ ("months", Derive.derive db Workload.Retail.months) ]
        in
        Alcotest.(check (list string)) "none" []
          (List.map
             (fun (op : Sharing.opportunity) -> fst op.Sharing.keep)
             (Sharing.analyze named)));
    test "report is readable" (fun () ->
        let named =
          [
            ("product_sales", Derive.derive db Workload.Retail.product_sales);
            ("brand_sales", Derive.derive db brand_sales);
          ]
        in
        let out = Sharing.report named in
        let contains needle = contains out needle in
        Alcotest.(check bool) "mentions serving" true (contains "also serves"));
  ]

let () =
  Alcotest.run "sharing"
    [ ("verdicts", verdict_tests); ("analyze", analyze_tests) ]
