(* Tests for restrictions on groups — the HAVING clause, the first
   generalization the paper's Section 4 calls for. The maintained state is
   the full group set; HAVING filters at read time, so groups can leave and
   re-enter the visible view as their aggregates move across the threshold. *)

open Helpers
module Engines = Maintenance.Engines

let test case fn = Alcotest.test_case case `Quick fn

let hv column op const = { View.h_column = column; h_op = op; h_const = const }

(* busy months: at least 3 qualifying sales *)
let busy_months =
  {
    Workload.Retail.product_sales with
    View.name = "busy_months";
    having = [ hv "TotalCount" Cmp.Ge (i 3) ];
  }

let eval_tests =
  [
    test "HAVING filters groups in the reference evaluator" (fun () ->
        let db = paper_example_db () in
        (* month 1 has 6 sales, month 2 has 1 *)
        let got = Algebra.Eval.eval db busy_months in
        Alcotest.(check int) "one group" 1 (Relation.cardinality got);
        Alcotest.(check bool) "month 1 kept" true
          (Relation.fold (fun tup _ acc -> acc || tup.(0) = i 1) got false));
    test "empty HAVING is the identity" (fun () ->
        let db = paper_example_db () in
        Alcotest.check relation "same"
          (Algebra.Eval.eval db Workload.Retail.product_sales)
          (Algebra.Eval.eval db
             { Workload.Retail.product_sales with View.having = [] }));
    test "validate rejects unknown output columns" (fun () ->
        let db = Workload.Retail.empty () in
        match
          View.validate db
            { busy_months with
              View.having = [ hv "NoSuchColumn" Cmp.Ge (i 3) ] }
        with
        | exception View.Invalid _ -> ()
        | () -> Alcotest.fail "expected View.Invalid");
    test "HAVING on a group-by column works too" (fun () ->
        let db = paper_example_db () in
        let v =
          { Workload.Retail.product_sales with
            View.name = "late_months";
            having = [ hv "month" Cmp.Ge (i 2) ] }
        in
        let got = Algebra.Eval.eval db v in
        Alcotest.(check int) "one group" 1 (Relation.cardinality got));
  ]

let sql_tests =
  [
    test "parser accepts HAVING and the view round-trips" (fun () ->
        let db = Workload.Retail.empty () in
        let sql =
          "CREATE VIEW busy AS SELECT time.month, SUM(price) AS Total, \
           COUNT(*) AS N FROM sale, time WHERE sale.timeid = time.id \
           GROUP BY time.month HAVING N >= 3 AND Total > 100;"
        in
        match Sqlfront.Parser.statement sql with
        | Sqlfront.Ast.Create_view { name; select } ->
          let v = Sqlfront.Elaborate.view_of_select db ~name select in
          Alcotest.(check int) "two conditions" 2 (List.length v.View.having);
          (* pretty-print and re-parse *)
          (match Sqlfront.Parser.statement (View.to_sql v ^ ";") with
          | Sqlfront.Ast.Create_view { name; select } ->
            let v2 = Sqlfront.Elaborate.view_of_select db ~name select in
            Alcotest.(check bool) "round trip" true (v = v2)
          | _ -> Alcotest.fail "expected CREATE VIEW")
        | _ -> Alcotest.fail "expected CREATE VIEW");
    test "reconstruction SQL carries the HAVING clause" (fun () ->
        let db = Workload.Retail.empty () in
        let sql =
          Mindetail.Reconstruct.to_sql (Mindetail.Derive.derive db busy_months)
        in
        let contains needle = contains sql needle in
        Alcotest.(check bool) "having" true (contains "HAVING TotalCount >= 3"));
    test "ad-hoc SELECT with HAVING" (fun () ->
        let db = paper_example_db () in
        match
          Sqlfront.Elaborate.run db
            (Sqlfront.Parser.statement
               "SELECT productid, COUNT(*) AS n FROM sale GROUP BY productid \
                HAVING n > 2;")
        with
        | Sqlfront.Elaborate.Queried (_, got) ->
          (* product 1 has 5 sales, product 2 has 2 *)
          Alcotest.check relation "rows" (rel [ [ i 1; i 5 ] ]) got
        | _ -> Alcotest.fail "expected Queried");
  ]

let maintenance_tests =
  [
    test "groups cross the HAVING threshold in both directions" (fun () ->
        let db = paper_example_db () in
        let e = Engines.minimal db busy_months in
        Alcotest.(check int) "initially one visible group" 1
          (Relation.cardinality (Engines.view_contents e));
        (* push month 2 over the threshold *)
        let deltas =
          [ Delta.insert "sale" (row [ i 301; i 3; i 1; i 1; i 5 ]);
            Delta.insert "sale" (row [ i 302; i 3; i 1; i 1; i 5 ]) ]
        in
        Database.apply_all db deltas;
        Engines.apply_batch e deltas;
        Alcotest.check relation "both visible"
          (Algebra.Eval.eval db busy_months)
          (Engines.view_contents e);
        Alcotest.(check int) "two groups" 2
          (Relation.cardinality (Engines.view_contents e));
        (* and back below it *)
        let out =
          [ Delta.delete "sale" (row [ i 301; i 3; i 1; i 1; i 5 ]);
            Delta.delete "sale" (row [ i 302; i 3; i 1; i 1; i 5 ]) ]
        in
        Database.apply_all db out;
        Engines.apply_batch e out;
        Alcotest.(check int) "one group again" 1
          (Relation.cardinality (Engines.view_contents e)));
    test "all engines agree under random streams with HAVING" (fun () ->
        let tiny =
          { Workload.Retail.small_params with
            Workload.Retail.days = 8; stores = 2; products = 12;
            sold_per_store_day = 4; tx_per_product = 2 }
        in
        let db = Workload.Retail.load tiny in
        let engines =
          [ Engines.minimal db busy_months; Engines.psj db busy_months;
            Engines.recompute db busy_months ]
        in
        let rng = Workload.Prng.create 5 in
        for round = 1 to 5 do
          let deltas = Workload.Delta_gen.stream rng db ~n:40 in
          List.iter (fun e -> Engines.apply_batch e deltas) engines;
          let expected = Algebra.Eval.eval db busy_months in
          List.iter
            (fun e ->
              Alcotest.check relation
                (Printf.sprintf "%s round %d" (Engines.name e) round)
                expected (Engines.view_contents e))
            engines
        done);
    test "HAVING composes with fact-table elimination" (fun () ->
        let db = paper_example_db () in
        let v =
          { Workload.Retail.sales_by_time with
            View.name = "busy_days";
            having = [ hv "Sales" Cmp.Ge (i 2) ] }
        in
        let d = Mindetail.Derive.derive db v in
        Alcotest.(check (list string)) "still eliminated" [ "sale" ]
          (Mindetail.Derive.omitted_tables d);
        let e = Engines.minimal db v in
        let deltas =
          [ Delta.insert "sale" (row [ i 400; i 3; i 1; i 1; i 2 ]);
            Delta.delete "sale" (row [ i 1; i 1; i 1; i 1; i 10 ]) ]
        in
        Database.apply_all db deltas;
        Engines.apply_batch e deltas;
        Alcotest.check relation "maintained" (Algebra.Eval.eval db v)
          (Engines.view_contents e));
    test "partitioned maintenance rejects HAVING" (fun () ->
        let db = paper_example_db () in
        let v =
          { Workload.Retail.sales_by_time with
            View.name = "busy_days";
            having = [ hv "Sales" Cmp.Ge (i 2) ] }
        in
        match Maintenance.Partitioned.init db v ~is_old:(fun _ -> false) with
        | exception Maintenance.Partitioned.Unsupported _ -> ()
        | _ -> Alcotest.fail "expected Unsupported");
  ]

let () =
  Alcotest.run "having"
    [
      ("eval", eval_tests);
      ("sql", sql_tests);
      ("maintenance", maintenance_tests);
    ]
