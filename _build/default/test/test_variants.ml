(* Tests for the derivation variants: the ablation switches (each reduction
   technique disabled individually) and the append-only old-detail relaxation
   of Section 4. *)

open Helpers
module Derive = Mindetail.Derive
module Auxview = Mindetail.Auxview
module Engines = Maintenance.Engines
module Engine = Maintenance.Engine

let test case fn = Alcotest.test_case case `Quick fn

let tiny_params =
  {
    Workload.Retail.days = 8;
    stores = 2;
    products = 12;
    sold_per_store_day = 4;
    tx_per_product = 2;
    brands = 4;
    seed = 17;
  }

let no_push = { Derive.default_options with Derive.push_locals = false }
let no_semijoin = { Derive.default_options with Derive.join_reductions = false }
let no_compress = { Derive.default_options with Derive.compression = false }
let no_elim = { Derive.default_options with Derive.elimination = false }

let all_off =
  {
    Derive.push_locals = false;
    join_reductions = false;
    compression = false;
    elimination = false;
    append_only = false;
  }

let variants =
  [
    ("no-pushdown", no_push); ("no-semijoin", no_semijoin);
    ("no-compression", no_compress); ("no-elimination", no_elim);
    ("all-off", all_off);
  ]

let detail_rows db d =
  List.fold_left
    (fun acc (spec : Auxview.t) ->
      acc
      + Relation.cardinality (Mindetail.Materialize.aux db d spec.Auxview.base))
    0 (Derive.specs d)

(* --- structure of the variant derivations --------------------------------- *)

let structure_tests =
  [
    test "no-pushdown keeps condition columns, no spec locals" (fun () ->
        let db = Workload.Retail.empty () in
        let d = Derive.derive_with no_push db Workload.Retail.product_sales in
        let time_spec = Option.get (Derive.spec_for d "time") in
        Alcotest.(check int) "no pushed conds" 0
          (List.length time_spec.Auxview.locals);
        Alcotest.(check bool) "year kept" true
          (Auxview.plain_index time_spec "year" <> None);
        Alcotest.(check int) "one residual" 1
          (List.length (Derive.residual_locals d "time")));
    test "default derivation has no residuals" (fun () ->
        let db = Workload.Retail.empty () in
        let d = Derive.derive db Workload.Retail.product_sales in
        List.iter
          (fun tbl ->
            Alcotest.(check int) tbl 0
              (List.length (Derive.residual_locals d tbl)))
          [ "sale"; "time"; "product" ]);
    test "no-semijoin drops all semijoins" (fun () ->
        let db = Workload.Retail.empty () in
        let d =
          Derive.derive_with no_semijoin db Workload.Retail.product_sales
        in
        List.iter
          (fun (spec : Auxview.t) ->
            Alcotest.(check int) spec.Auxview.base 0
              (List.length spec.Auxview.semijoins))
          (Derive.specs d));
    test "no-compression stores tuple-level views with keys" (fun () ->
        let db = Workload.Retail.empty () in
        let d =
          Derive.derive_with no_compress db Workload.Retail.product_sales
        in
        List.iter
          (fun (spec : Auxview.t) ->
            Alcotest.(check bool) spec.Auxview.base false
              spec.Auxview.compressed;
            let key =
              (Relational.Database.schema_of db spec.Auxview.base).Schema.key
            in
            Alcotest.(check bool) "keeps key" true (Auxview.keeps_key spec ~key))
          (Derive.specs d));
    test "no-elimination retains the fact view of sales_by_time" (fun () ->
        let db = Workload.Retail.empty () in
        let d = Derive.derive_with no_elim db Workload.Retail.sales_by_time in
        Alcotest.(check (list string)) "nothing omitted" []
          (Derive.omitted_tables d));
  ]

(* --- correctness of every variant under random streams -------------------- *)

let correctness_tests =
  List.map
    (fun (name, options) ->
      test (name ^ " maintains correctly") (fun () ->
          List.iteri
            (fun idx view ->
              let db = Workload.Retail.load tiny_params in
              let e = Engines.with_options ~name options db view in
              let rng = Workload.Prng.create (100 + idx) in
              for round = 1 to 4 do
                let deltas = Workload.Delta_gen.stream rng db ~n:40 in
                Engines.apply_batch e deltas;
                Alcotest.check relation
                  (Printf.sprintf "%s/%s round %d" name view.View.name round)
                  (Algebra.Eval.eval db view)
                  (Engines.view_contents e)
              done)
            [
              Workload.Retail.product_sales;
              Workload.Retail.product_sales_max;
              Workload.Retail.sales_by_time;
              Workload.Retail.monthly_revenue;
            ]))
    variants

let variant_aux_tests =
  [
    test "variant aux state matches variant materialization" (fun () ->
        List.iter
          (fun (name, options) ->
            let db = Workload.Retail.load tiny_params in
            let d =
              Derive.derive_with options db Workload.Retail.product_sales
            in
            let engine = Engine.init db d in
            let rng = Workload.Prng.create 55 in
            Engine.apply_batch engine (Workload.Delta_gen.stream rng db ~n:80);
            let got = Engine.aux_contents engine in
            List.iter
              (fun (tbl, expected) ->
                Alcotest.check relation (name ^ "/" ^ tbl) expected
                  (List.assoc tbl got))
              (Mindetail.Materialize.all db d))
          variants);
    test "variant reconstruction equals evaluation" (fun () ->
        List.iter
          (fun (name, options) ->
            let db = Workload.Retail.load tiny_params in
            let d =
              Derive.derive_with options db Workload.Retail.product_sales
            in
            Alcotest.(check bool) name true (Mindetail.Reconstruct.check db d))
          variants);
    test "each technique reduces stored detail rows" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let rows options =
          detail_rows db
            (Derive.derive_with options db Workload.Retail.product_sales)
        in
        let full = rows Derive.default_options in
        List.iter
          (fun (name, options) ->
            Alcotest.(check bool) name true (full <= rows options))
          [ ("no-pushdown", no_push); ("no-semijoin", no_semijoin);
            ("no-compression", no_compress); ("all-off", all_off) ]);
  ]

(* --- append-only mode ------------------------------------------------------ *)

let inserts_only = { Workload.Delta_gen.insert = 1; delete = 0; update = 0 }

let append_tests =
  [
    test "MIN/MAX are CSMAS under insertions only" (fun () ->
        let mk f = Aggregate.make ~alias:"x" f (Some (a "t" "c")) in
        Alcotest.(check bool) "max" true
          (Mindetail.Classify.is_csmas ~append_only:true (mk Aggregate.Max));
        Alcotest.(check bool) "min" true
          (Mindetail.Classify.is_csmas ~append_only:true (mk Aggregate.Min));
        Alcotest.(check bool) "distinct still not" false
          (Mindetail.Classify.is_csmas ~append_only:true
             (Aggregate.make ~distinct:true ~alias:"x" Aggregate.Count
                (Some (a "t" "c")))));
    test "append-only eliminates the single-table MAX view entirely" (fun () ->
        (* with MAX completely self-maintainable, the single-table
           product_sales_max needs no auxiliary data at all *)
        let db = Workload.Retail.empty () in
        let d =
          Derive.derive_with Derive.append_only_options db
            Workload.Retail.product_sales_max
        in
        Alcotest.(check (list string)) "omitted" [ "sale" ]
          (Derive.omitted_tables d));
    test "append-only compresses MAX into a max column" (fun () ->
        let db = Workload.Retail.empty () in
        (* force retention to observe the compressed spec *)
        let d =
          Derive.derive_with
            { Derive.append_only_options with Derive.elimination = false }
            db Workload.Retail.product_sales_max
        in
        let spec = Option.get (Derive.spec_for d "sale") in
        Alcotest.(check bool) "compressed" true spec.Auxview.compressed;
        Alcotest.(check bool) "max col" true
          (Auxview.max_position spec "price" <> None);
        Alcotest.(check bool) "sum col" true
          (Auxview.sum_position spec "price" <> None);
        (* price no longer needs to be kept plainly *)
        Alcotest.(check bool) "price not plain" true
          (Auxview.plain_index spec "price" = None));
    test "append-only unblocks elimination for MAX views" (fun () ->
        let db = Workload.Retail.empty () in
        let v =
          { Workload.Retail.sales_by_time with
            View.name = "with_max";
            having = [];
            select =
              Workload.Retail.sales_by_time.View.select
              @ [ max_ ~alias:"mx" (a "sale" "price") ] }
        in
        Alcotest.(check (list string)) "standard keeps all" []
          (Derive.omitted_tables (Derive.derive db v));
        Alcotest.(check (list string)) "append-only omits sale" [ "sale" ]
          (Derive.omitted_tables
             (Derive.derive_with Derive.append_only_options db v)));
    test "append-only engine maintains MIN/MAX under insert streams" (fun () ->
        List.iter
          (fun view ->
            let db = Workload.Retail.load tiny_params in
            let e = Engines.append_only db view in
            let rng = Workload.Prng.create 7 in
            for round = 1 to 4 do
              let deltas =
                Workload.Delta_gen.stream ~mix:inserts_only rng db ~n:50
              in
              Engines.apply_batch e deltas;
              Alcotest.check relation
                (Printf.sprintf "%s round %d" view.View.name round)
                (Algebra.Eval.eval db view)
                (Engines.view_contents e)
            done)
          [
            Workload.Retail.product_sales_max;
            Workload.Retail.product_sales;
            Workload.Retail.monthly_revenue;
          ]);
    test "append-only reconstruction reads the extremum columns" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let d =
          Derive.derive_with
            { Derive.append_only_options with Derive.elimination = false }
            db Workload.Retail.product_sales_max
        in
        Alcotest.(check bool) "reconstructs" true
          (Mindetail.Reconstruct.check db d);
        let mx =
          List.find
            (fun (g : Aggregate.t) -> g.Aggregate.alias = "MaxPrice")
            (View.aggregates Workload.Retail.product_sales_max)
        in
        match Derive.agg_source d mx with
        | Some (Derive.From_max { table = "sale"; column = "price" }) -> ()
        | _ -> Alcotest.fail "MaxPrice should read the max column");
    test "append-only engine rejects deletions and updates" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let e = Engines.append_only db Workload.Retail.product_sales_max in
        let victim =
          Relational.Database.fold db "sale" (fun tup acc ->
              match acc with None -> Some tup | some -> some)
            None
          |> Option.get
        in
        match Engines.apply_batch e [ Delta.delete "sale" victim ] with
        | exception Engine.Invariant _ -> ()
        | () -> Alcotest.fail "expected Engine.Invariant");
    test "append-only aux state matches materialization" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let d =
          Derive.derive_with Derive.append_only_options db
            Workload.Retail.product_sales_max
        in
        let engine = Engine.init db d in
        let rng = Workload.Prng.create 9 in
        Engine.apply_batch engine
          (Workload.Delta_gen.stream ~mix:inserts_only rng db ~n:100);
        let got = Engine.aux_contents engine in
        List.iter
          (fun (tbl, expected) ->
            Alcotest.check relation tbl expected (List.assoc tbl got))
          (Mindetail.Materialize.all db d));
    test "append-only detail is no larger than standard" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let rows options =
          detail_rows db
            (Derive.derive_with options db Workload.Retail.product_sales_max)
        in
        Alcotest.(check bool) "smaller or equal" true
          (rows Derive.append_only_options <= rows Derive.default_options));
  ]

let () =
  Alcotest.run "variants"
    [
      ("structure", structure_tests);
      ("ablation-correctness", correctness_tests);
      ("ablation-aux", variant_aux_tests);
      ("append-only", append_tests);
    ]
