(* Tests for the current/old detail split (Figure 1, Section 4): the
   partitioned engine with an append-only old partition. *)

open Helpers
module Partitioned = Maintenance.Partitioned
module Engine = Maintenance.Engine

let test case fn = Alcotest.test_case case `Quick fn

let tiny_params =
  {
    Workload.Retail.days = 10;
    stores = 2;
    products = 10;
    sold_per_store_day = 4;
    tx_per_product = 2;
    brands = 4;
    seed = 23;
  }

(* facts with timeid <= boundary are old *)
let is_old boundary (tup : Tuple.t) =
  match tup.(1) with Value.Int t -> t <= boundary | _ -> false

(* a mergeable view: SUM/COUNT/MIN/MAX only *)
let sales_profile =
  {
    View.name = "sales_profile";
    having = [];
    select =
      [
        group (a "time" "month");
        sum ~alias:"Revenue" (a "sale" "price");
        count_star ~alias:"Sales" ();
        min_ ~alias:"MinPrice" (a "sale" "price");
        max_ ~alias:"MaxPrice" (a "sale" "price");
      ];
    tables = [ "sale"; "time" ];
    locals = [];
    joins = [ join (a "sale" "timeid") (a "time" "id") ];
  }

let check_merged ?(msg = "merged view") p db view =
  Alcotest.check relation msg (Algebra.Eval.eval db view)
    (Partitioned.view_contents p)

let current_facts db boundary =
  Database.fold db "sale"
    (fun tup acc -> if is_old boundary tup then acc else tup :: acc)
    []

let tests =
  [
    test "init rejects AVG and DISTINCT" (fun () ->
        let db = Workload.Retail.load tiny_params in
        (match
           Partitioned.init db Workload.Retail.monthly_revenue
             ~is_old:(is_old 5)
         with
        | exception Partitioned.Unsupported _ -> ()
        | _ -> Alcotest.fail "AVG should be rejected");
        match
          Partitioned.init db Workload.Retail.product_sales ~is_old:(is_old 5)
        with
        | exception Partitioned.Unsupported _ -> ()
        | _ -> Alcotest.fail "DISTINCT should be rejected");
    test "initial merge equals evaluation over the whole store" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        check_merged p db sales_profile);
    test "everything-old and everything-current degenerate cases" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let all_old = Partitioned.init db sales_profile ~is_old:(fun _ -> true) in
        check_merged ~msg:"all old" all_old db sales_profile;
        let all_cur = Partitioned.init db sales_profile ~is_old:(fun _ -> false) in
        check_merged ~msg:"all current" all_cur db sales_profile);
    test "fact inserts route to the right partition" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        (* a late-arriving old fact and a current fact *)
        let old_fact = row [ i 90_001; i 2; i 1; i 1; i 7 ] in
        let cur_fact = row [ i 90_002; i 9; i 1; i 1; i 70 ] in
        List.iter (Database.apply db)
          [ Delta.insert "sale" old_fact; Delta.insert "sale" cur_fact ];
        Partitioned.apply_batch p
          [ Delta.insert "sale" old_fact; Delta.insert "sale" cur_fact ];
        check_merged p db sales_profile);
    test "current facts remain deletable and updatable" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        match current_facts db 5 with
        | victim :: target :: _ ->
          let updated = Array.copy target in
          updated.(4) <- i 9_999;
          let deltas =
            [ Delta.delete "sale" victim;
              Delta.update "sale" ~before:target ~after:updated ]
          in
          Database.apply_all db deltas;
          Partitioned.apply_batch p deltas;
          check_merged p db sales_profile
        | _ -> Alcotest.fail "need at least two current facts");
    test "old facts reject deletion" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        let old_fact =
          Database.fold db "sale"
            (fun tup acc -> if is_old 5 tup then Some tup else acc)
            None
          |> Option.get
        in
        match Partitioned.apply p (Delta.delete "sale" old_fact) with
        | exception Engine.Invariant _ -> ()
        | _ -> Alcotest.fail "expected Engine.Invariant");
    test "cross-partition updates are rejected" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        match current_facts db 5 with
        | fact :: _ ->
          let moved = Array.copy fact in
          moved.(1) <- i 1 (* now old *);
          (match
             Partitioned.apply p (Delta.update "sale" ~before:fact ~after:moved)
           with
          | exception Engine.Invariant _ -> ()
          | _ -> Alcotest.fail "expected Engine.Invariant")
        | [] -> Alcotest.fail "no current fact");
    test "dimension changes reach both partitions" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        (* month is a group attribute of both partial views *)
        let before = Option.get (Database.find_by_key db "time" (i 3)) in
        let after = Array.copy before in
        after.(2) <- i 12;
        Database.apply db (Delta.update "time" ~before ~after);
        Partitioned.apply p (Delta.update "time" ~before ~after);
        check_merged p db sales_profile;
        (* and a new dimension member plus facts on both sides of it *)
        let deltas =
          [ Delta.insert "time" (row [ i 99; i 9; i 9; i 1997 ]);
            Delta.insert "sale" (row [ i 90_010; i 99; i 1; i 1; i 4 ]) ]
        in
        Database.apply_all db deltas;
        Partitioned.apply_batch p deltas;
        check_merged p db sales_profile);
    test "age_out keeps the merged view intact and shrinks current detail"
      (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        let before_view = Partitioned.view_contents p in
        let current_rows profile =
          List.fold_left
            (fun acc (n, r, _) ->
              if String.length n > 8 && String.sub n 0 8 = "current/" then
                acc + r
              else acc)
            0 profile
        in
        let before_rows = current_rows (Partitioned.detail_profile p) in
        (* age out every current fact referencing timeid 6 *)
        let aged =
          Database.fold db "sale"
            (fun tup acc -> if tup.(1) = i 6 then tup :: acc else acc)
            []
        in
        Alcotest.(check bool) "something to age" true (aged <> []);
        Partitioned.age_out p aged;
        Alcotest.check relation "view unchanged" before_view
          (Partitioned.view_contents p);
        Alcotest.(check bool) "current shrank" true
          (current_rows (Partitioned.detail_profile p) < before_rows);
        check_merged p db sales_profile);
    test "sustained mixed stream stays correct" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        let rng = Workload.Prng.create 7 in
        let inserts = { Workload.Delta_gen.insert = 1; delete = 0; update = 0 } in
        for round = 1 to 6 do
          (* fact inserts anywhere; arbitrary dim churn on product/store;
             (time rows may be deleted only while unreferenced, which the
             generator guarantees) *)
          let fact_stream =
            Workload.Delta_gen.stream_for ~mix:inserts rng db
              ~tables:[ "sale" ] ~n:20
          in
          let dim_stream =
            Workload.Delta_gen.stream_for rng db ~tables:[ "time"; "product" ]
              ~n:10
          in
          Partitioned.apply_batch p (fact_stream @ dim_stream);
          Alcotest.check relation
            (Printf.sprintf "round %d" round)
            (Algebra.Eval.eval db sales_profile)
            (Partitioned.view_contents p)
        done);
    test "old partition pre-aggregates MIN/MAX" (fun () ->
        let db = Workload.Retail.load tiny_params in
        let p = Partitioned.init db sales_profile ~is_old:(is_old 5) in
        let profile = Partitioned.detail_profile p in
        (* both partitions present and prefixed *)
        Alcotest.(check bool) "old side" true
          (List.exists (fun (n, _, _) -> String.sub n 0 4 = "old/") profile);
        Alcotest.(check bool) "current side" true
          (List.exists
             (fun (n, _, _) ->
               String.length n > 8 && String.sub n 0 8 = "current/")
             profile));
  ]

let () = Alcotest.run "partitioned" [ ("old-vs-current", tests) ]
