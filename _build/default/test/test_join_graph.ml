(* Tests for the extended join graph (Definition 2, Figure 2). *)

open Helpers
module Join_graph = Mindetail.Join_graph

let test case fn = Alcotest.test_case case `Quick fn

let graph view db = Join_graph.build db view

let retail = Workload.Retail.empty ()
let snow = Workload.Snowflake.empty ()

let annot =
  Alcotest.testable
    (fun ppf x -> Format.pp_print_string ppf (Join_graph.annotation_name x))
    ( = )

let figure2_tests =
  [
    test "Figure 2: product_sales graph" (fun () ->
        let g = graph Workload.Retail.product_sales retail in
        Alcotest.(check string) "root" "sale" (Join_graph.root g);
        Alcotest.(check (slist string String.compare)) "children"
          [ "product"; "time" ]
          (Join_graph.children g "sale");
        Alcotest.check annot "time is g" Join_graph.Grouped
          (Join_graph.annotation g "time");
        Alcotest.check annot "product plain" Join_graph.Plain
          (Join_graph.annotation g "product");
        Alcotest.check annot "sale plain" Join_graph.Plain
          (Join_graph.annotation g "sale"));
    test "key annotation wins over grouped" (fun () ->
        let g = graph Workload.Retail.sales_by_time retail in
        Alcotest.check annot "time is k" Join_graph.Keyed
          (Join_graph.annotation g "time"));
    test "root key group-by annotates the root" (fun () ->
        let g = graph Workload.Retail.product_sales_max retail in
        (* grouped on sale.productid, not the key sale.id *)
        Alcotest.check annot "sale grouped" Join_graph.Grouped
          (Join_graph.annotation g "sale"));
    test "parent relation" (fun () ->
        let g = graph Workload.Retail.product_sales retail in
        Alcotest.(check (option string)) "time" (Some "sale")
          (Join_graph.parent g "time");
        Alcotest.(check (option string)) "root" None (Join_graph.parent g "sale"));
    test "subtree of snowflake chain" (fun () ->
        let g = graph Workload.Snowflake.category_revenue snow in
        Alcotest.(check (list string)) "product subtree"
          [ "product"; "brand"; "category" ]
          (Join_graph.subtree g "product");
        Alcotest.(check (list string)) "leaf" [ "category" ]
          (Join_graph.subtree g "category"));
    test "edge lookup" (fun () ->
        let g = graph Workload.Snowflake.category_revenue snow in
        (match Join_graph.edge g ~parent:"brand" ~child:"category" with
        | Some j ->
          Alcotest.(check string) "src" "brand.categoryid"
            (Attr.to_string j.View.src)
        | None -> Alcotest.fail "edge missing");
        Alcotest.(check bool) "absent" true
          (Join_graph.edge g ~parent:"sale" ~child:"category" = None));
    test "single-table graph" (fun () ->
        let g = graph Workload.Retail.months retail in
        Alcotest.(check string) "root" "time" (Join_graph.root g);
        Alcotest.(check (list string)) "no children" []
          (Join_graph.children g "time"));
    test "ascii rendering mentions annotations" (fun () ->
        let g = graph Workload.Retail.product_sales retail in
        let out = Mindetail.Explain.join_graph_ascii g in
        let contains needle = contains out needle in
        Alcotest.(check bool) "time [g]" true (contains "time [g]");
        Alcotest.(check bool) "sale root" true (contains "sale"));
    test "dot rendering is well formed" (fun () ->
        let g = graph Workload.Retail.product_sales retail in
        let out = Mindetail.Explain.join_graph_dot g in
        Alcotest.(check bool) "digraph" true
          (String.length out > 8 && String.sub out 0 8 = "digraph ");
        Alcotest.(check bool) "closed" true (String.contains out '}'));
  ]

let () = Alcotest.run "join_graph" [ ("figure2", figure2_tests) ]
